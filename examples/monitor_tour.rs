//! Monitor tour: the streaming observability plane end to end — a blocked
//! receiver streams NDJSON while the simulation runs, the bundled parser
//! replays the stream, the SLO engine's fire/clear alerts are walked
//! tick by tick, and the terminal monitor renders the final view.
//!
//! Run with: `cargo run --release --example monitor_tour`

use densevlc::Simulation;
use vlc_obs::{
    densevlc_defaults, monitor, parse_stream_strict, AlertState, MemorySink, ObsConfig, ObsPlane,
    ObsRecord, WindowConfig,
};
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::Span;

fn main() {
    println!("Monitor tour: stream -> parse -> alert\n");

    // 1. A simulation worth watching: a person stands on RX1 (total
    //    shadow) and walks away, so the receiver starves and recovers.
    let mut sim = Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2);
    sim.add_person(0.92, 0.92, 0.5, &[(0.92, 4.5)]);
    let n_rx = 4;

    // 2. Stream the run: every tick becomes an NDJSON record; every 5
    //    ticks the plane snapshots rolling windows and evaluates the
    //    stock SLO catalogue (per-RX throughput floor at 3 Mb/s).
    let sink = MemorySink::new();
    let telemetry = Registry::new();
    let mut plane = ObsPlane::new(
        Box::new(sink.clone()),
        ObsConfig {
            run: "monitor tour".into(),
            every: 5,
            window: WindowConfig {
                bucket_ticks: 5,
                buckets: 1,
                max_samples_per_bucket: 4096,
            },
            rules: densevlc_defaults(n_rx, 3e6, 0.5),
            panic_at_tick: None,
        },
    );
    let timeline = sim.run_observed(3.0, &telemetry, &Span::noop(), &mut plane);
    plane.finish(&telemetry, 0);
    println!(
        "streamed {} ticks, mean system {:.2} Mb/s",
        timeline.ticks.len(),
        timeline.mean_system_bps() / 1e6
    );

    // 3. Replay the stream with the bundled parser — the same one
    //    `obs_check` and `densevlc monitor` run on. Every line must
    //    round-trip or this example fails loudly.
    let text = sink.text();
    let records = parse_stream_strict(&text).expect("every streamed line is valid");
    let count = |f: fn(&ObsRecord) -> bool| records.iter().filter(|r| f(r)).count();
    println!(
        "parsed {} records: {} ticks, {} window snapshots, {} alerts\n",
        records.len(),
        count(|r| matches!(r, ObsRecord::Tick { .. })),
        count(|r| matches!(r, ObsRecord::Window { .. })),
        count(|r| matches!(r, ObsRecord::Alert { .. })),
    );

    // 4. The alert timeline: hysteresis means one fire and one clear per
    //    starvation episode, not a flap per window.
    println!("alert timeline:");
    for r in &records {
        if let ObsRecord::Alert {
            tick,
            rule,
            state,
            value,
            threshold,
            ..
        } = r
        {
            let verb = match state {
                AlertState::Firing => "FIRING ",
                AlertState::Cleared => "cleared",
            };
            println!(
                "  tick {tick:>3}  {verb}  {rule}  ({:.2} vs {:.2} Mb/s)",
                value / 1e6,
                threshold / 1e6
            );
        }
    }

    // 5. The monitor view — what `densevlc monitor <stream>` prints.
    println!("\n{}", monitor::render(&records));
}
