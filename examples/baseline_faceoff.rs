//! Baseline face-off: the Fig. 21 comparison as an interactive-style tour —
//! DenseVLC's ranked-assignment curve against the SISO and D-MISO operating
//! points, in every Table 6 scenario.
//!
//! Run with: `cargo run --release --example baseline_faceoff`

use densevlc::experiments::fig21_baselines;
use vlc_testbed::Scenario;

fn main() {
    println!("Baseline face-off: DenseVLC (κ = 1.3) vs SISO vs D-MISO\n");
    for scenario in [Scenario::One, Scenario::Two, Scenario::Three] {
        let fig = fig21_baselines::run(scenario);
        let max = fig
            .densevlc_curve
            .iter()
            .map(|p| p.system_bps)
            .fold(0.0, f64::max);
        println!("{}", scenario.label());
        println!(
            "  SISO:   {:.3} W for {:.2} of max throughput",
            fig.siso.0,
            fig.siso.1 / max
        );
        println!(
            "  D-MISO: {:.3} W for {:.2} of max throughput",
            fig.dmiso.0,
            fig.dmiso.1 / max
        );
        println!(
            "  DenseVLC matches D-MISO at {:.3} W → {:.2}× power efficiency",
            fig.densevlc_power_at_dmiso_w, fig.efficiency_gain
        );
        println!(
            "  …and that point beats SISO's throughput by {:+.1} %\n",
            fig.throughput_gain_vs_siso * 100.0
        );
    }
    println!("(paper headline, Scenario 2: 2.3× power efficiency, +45 % throughput)");
}
