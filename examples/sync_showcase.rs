//! Synchronization showcase: walk through the paper's §6/§8.1 story —
//! measure the three schemes on the scope, check NLOS pilot detectability
//! across the grid, and run the Table-5 end-to-end experiment.
//!
//! Run with: `cargo run --release --example sync_showcase`

use densevlc::e2e::{run as e2e_run, E2eConfig, E2eTx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vlc_channel::RxOptics;
use vlc_geom::{Room, TxGrid};
use vlc_phy::manchester::manchester_encode;
use vlc_sync::{NlosSyncLink, SyncScheme};
use vlc_testbed::{BbbHostMap, Deployment, Scope};

fn main() {
    let mut rng = StdRng::seed_from_u64(0x570C);

    // 1. Table 4: scope-measured median sync error for the three schemes.
    println!("1) scope measurement (TX2 leading, TX3 following, 100 Ksym/s):");
    let scope = Scope::paper();
    let chips = manchester_encode(&[0xA5, 0x5A, 0xC3, 0x3C, 0x0F, 0xF0, 0x99, 0x66]);
    for (name, scheme, paper_us, leader_follower) in [
        ("no synchronization", SyncScheme::SyncOff, 10.040, false),
        ("NTP/PTP", SyncScheme::NtpPtp, 4.565, false),
        ("NLOS VLC", SyncScheme::nlos_paper(), 0.575, true),
    ] {
        let d = if leader_follower {
            scope.measure_leader_follower_delay(&chips, 100e3, &scheme, 100, &mut rng)
        } else {
            scope.measure_sync_delay(&chips, 100e3, &scheme, 100, &mut rng)
        }
        .expect("edges exist");
        println!("   {name:<20} {:>7.3} µs (paper: {paper_us} µs)", d * 1e6);
    }

    // 2. Pilot detectability: which followers hear TX8's reflected pilot?
    println!("\n2) NLOS pilot coverage of leading TX8 (floor reflectance 0.6):");
    let room = Room::paper_testbed();
    let grid = TxGrid::paper(&room);
    let leader = 7; // TX8
    let mut heard = Vec::new();
    for tx in 0..grid.len() {
        if tx == leader {
            continue;
        }
        let link = NlosSyncLink::between(
            &grid.pose(leader),
            &grid.pose(tx),
            &room,
            15f64.to_radians(),
            &RxOptics::paper(),
        );
        if link.detect(&mut rng).detected {
            heard.push(grid.label(tx));
        }
    }
    println!(
        "   {} followers detect the pilot: {}",
        heard.len(),
        heard.join(", ")
    );

    // 3. Table 5: the end-to-end iperf experiment.
    println!("\n3) end-to-end joint transmission (RX amid TX2/TX3/TX8/TX9):");
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    let hosts = BbbHostMap::paper();
    let tx = |i: usize| E2eTx {
        gain: d.model.channel.gain(i, 0),
        host: hosts.host_of(i),
    };
    let cfg = E2eConfig::default();
    let rows = [
        ("2 TXs (same BBB)", vec![tx(1), tx(7)], SyncScheme::SyncOff),
        (
            "4 TXs (no sync)",
            vec![tx(1), tx(7), tx(2), tx(8)],
            SyncScheme::SyncOff,
        ),
        (
            "4 TXs (NLOS sync)",
            vec![tx(1), tx(7), tx(2), tx(8)],
            SyncScheme::nlos_paper(),
        ),
    ];
    for (label, txs, scheme) in rows {
        let res = e2e_run(&txs, &scheme, &cfg, 40, 99);
        println!(
            "   {label:<20} {:>7.1} kb/s, PER {:>6.2} %",
            res.goodput_bps / 1e3,
            res.per * 100.0
        );
    }
}
