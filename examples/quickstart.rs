//! Quickstart: bring up the paper's 36-TX / 4-RX deployment, let the
//! controller form beamspots under a power budget, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use densevlc::System;
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;

fn main() {
    // A live registry: every layer the adaptation round touches records
    // counters, gauges, and span timings into it (pass `Registry::noop()`
    // — or call the uninstrumented methods — to skip all of that).
    let telemetry = Registry::new();

    // Scenario 2 from the paper (Table 6): four receivers amid the grid,
    // with real inter-beamspot interference.
    let budget_w = 1.2;
    let mut system = System::scenario(Scenario::Two, budget_w);
    println!("DenseVLC quickstart — {}", Scenario::Two.label());
    println!(
        "deployment: {} TXs over {:.1} m × {:.1} m, {} receivers, budget {budget_w} W\n",
        system.deployment.grid.len(),
        system.deployment.room.width,
        system.deployment.room.depth,
        system.deployment.receivers.len(),
    );

    // One adaptation round: measure → rank → form beamspots.
    let round = system.adapt_instrumented(&telemetry);
    println!(
        "controller formed {} beamspots:",
        round.plan.beamspots.len()
    );
    for spot in &round.plan.beamspots {
        let txs: Vec<String> = spot
            .txs
            .iter()
            .map(|&t| system.deployment.grid.label(t))
            .collect();
        println!(
            "  RX{} <- [{}] (leader {}, {:.2} Mb/s)",
            spot.rx + 1,
            txs.join(", "),
            system.deployment.grid.label(spot.leader),
            round.per_rx_bps[spot.rx] / 1e6,
        );
    }
    println!(
        "\nsystem throughput {:.2} Mb/s using {:.3} W of communication power",
        round.system_throughput_bps / 1e6,
        round.power_w
    );

    // Mobility: RX1 strolls to the far corner; the cell-free design just
    // re-forms its beamspot from whatever TXs now have the best channels.
    system.move_receivers(&[(2.55, 2.55), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)]);
    let after = system.adapt_instrumented(&telemetry);
    let spot = after.plan.beamspot_for(0).expect("RX1 still served");
    let txs: Vec<String> = spot
        .txs
        .iter()
        .map(|&t| system.deployment.grid.label(t))
        .collect();
    println!(
        "\nafter RX1 moved to (2.55, 2.55): beamspot re-formed from [{}], {:.2} Mb/s",
        txs.join(", "),
        after.per_rx_bps[0] / 1e6
    );

    // What the system just did, by the numbers: planning phase timings,
    // round counts, and the latest per-receiver throughput gauges. For the
    // causal view of the same round — a span tree loadable in Perfetto —
    // see `cargo run --example trace_tour` or `densevlc-cli adapt --trace
    // trace.json`.
    println!("\n{}", telemetry.snapshot().summary_table());
}
