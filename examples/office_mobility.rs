//! Office mobility study: a receiver crosses the room on an ACRO gantry
//! while the controller re-adapts at a fixed cadence — the paper's "fast
//! adaptation" motivation made concrete.
//!
//! The study compares per-step throughput of the moving receiver when the
//! controller re-plans every step versus when it keeps the stale plan from
//! the walk's start, quantifying what the 0.07 s heuristic buys.
//!
//! Run with: `cargo run --example office_mobility`

use densevlc::System;
use vlc_geom::Vec3;
use vlc_testbed::{AcroPositioner, Scenario};

fn main() {
    let budget_w = 1.2;
    let mut adaptive = System::scenario(Scenario::Two, budget_w);
    let mut stale = System::scenario(Scenario::Two, budget_w);
    let stale_plan = stale.adapt().plan;

    // RX1 rides a gantry from its Scenario-2 spot to the opposite corner.
    let room = adaptive.deployment.room;
    let mut gantry = AcroPositioner::new(Vec3::new(0.92, 0.92, 0.0), 0.25, room);
    gantry.queue(Vec3::new(2.4, 1.0, 0.0));
    gantry.queue(Vec3::new(2.4, 2.4, 0.0));

    println!("Mobility study: RX1 walks (0.92,0.92) → (2.4,1.0) → (2.4,2.4) at 0.25 m/s");
    println!("re-adaptation every 1 s; stale system keeps its initial plan\n");
    println!("  t[s]   RX1 pos        adaptive RX1 [Mb/s]   stale RX1 [Mb/s]   beamspot");

    let mut adaptive_total = 0.0;
    let mut stale_total = 0.0;
    for step in 0..=12 {
        let p = gantry.position;
        let positions = [(p.x, p.y), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)];
        adaptive.move_receivers(&positions);
        stale.move_receivers(&positions);

        let round = adaptive.adapt();
        let stale_bps = stale.deployment.model.throughput(&stale_plan.allocation)[0];
        let leader = round
            .plan
            .beamspot_for(0)
            .map(|s| adaptive.deployment.grid.label(s.leader))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:>4}   ({:.2}, {:.2})   {:>12.2}          {:>10.2}        {}",
            step,
            p.x,
            p.y,
            round.per_rx_bps[0] / 1e6,
            stale_bps / 1e6,
            leader
        );
        adaptive_total += round.per_rx_bps[0];
        stale_total += stale_bps;
        gantry.advance(1.0);
    }

    println!(
        "\nmean RX1 throughput while moving: adaptive {:.2} Mb/s vs stale {:.2} Mb/s ({:.1}× gain)",
        adaptive_total / 13.0 / 1e6,
        stale_total / 13.0 / 1e6,
        adaptive_total / stale_total.max(1.0)
    );
}
