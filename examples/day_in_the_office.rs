//! A day in the office: the whole system under composed disturbances.
//!
//! Four receivers sit at their Scenario-2 desks. A laptop (RX1) relocates
//! across the room, a colleague walks a lap right through the beamspots,
//! and the controller keeps re-planning at its adaptation cadence. The
//! timeline shows throughput dips where the walker shadows links and the
//! recovery after every re-plan — the cell-free promise in one run.
//!
//! Run with: `cargo run --release --example day_in_the_office`

use densevlc::sim::Simulation;
use vlc_testbed::{Deployment, Scenario};

fn main() {
    let mut sim = Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2);

    // RX1's owner carries it to a meeting table across the room.
    sim.send_receiver(0, 2.3, 2.1);

    // A colleague walks a lap through the middle of the room.
    sim.add_person(
        0.2,
        1.5,
        0.8,
        &[(1.5, 1.5), (1.8, 0.8), (2.8, 0.8), (2.8, 2.8), (0.2, 2.8)],
    );

    let timeline = sim.run(12.0);

    println!("A day in the office — 12 s, 0.1 s ticks, re-plan every 0.2 s\n");
    println!("  t[s]   system[Mb/s]   RX1[Mb/s]   blocked links   replanned");
    for tick in timeline.ticks.iter().step_by(5) {
        let system: f64 = tick.per_rx_bps.iter().sum();
        println!(
            "  {:>4.1}   {:>10.2}   {:>8.2}   {:>12}   {}",
            tick.t_s,
            system / 1e6,
            tick.per_rx_bps[0] / 1e6,
            tick.blocked_links,
            if tick.replanned { "*" } else { "" }
        );
    }

    println!(
        "\nmean system throughput {:.2} Mb/s, outage {:.1} %, {} re-plans",
        timeline.mean_system_bps() / 1e6,
        timeline.outage_fraction() * 100.0,
        timeline.replans()
    );
    println!(
        "the walker shadows up to {} links at once; the cadence keeps every dip short",
        timeline
            .ticks
            .iter()
            .map(|t| t.blocked_links)
            .max()
            .unwrap_or(0)
    );
}
