//! Blockage study: the paper's §9 hypothesis that in a cell-free VLC
//! system blockage is not purely harmful — an occluder that shadows an
//! *interfering* TX improves the victim receiver's SINR.
//!
//! The study places a standing person at each position of a coarse grid,
//! recomputes the channel with the cylinder occluder, re-runs the
//! controller, and reports where the system throughput went up versus down.
//!
//! Run with: `cargo run --release --example blockage_study`

use vlc_alloc::heuristic::heuristic_allocation;
use vlc_alloc::model::SystemModel;
use vlc_alloc::HeuristicConfig;
use vlc_channel::{ChannelMatrix, CylinderBlocker};
use vlc_testbed::{Deployment, Scenario};

fn throughput_with_blockers(d: &Deployment, blockers: &[CylinderBlocker]) -> f64 {
    let channel = ChannelMatrix::compute_with_blockage(
        &d.grid,
        &d.receivers,
        d.half_power_semi_angle,
        &d.optics,
        blockers,
    );
    let mut model: SystemModel = d.model.clone();
    model.channel = channel;
    // The controller re-plans on the blocked channel (it only sees
    // measurements, so blockage is just another channel realization).
    let alloc = heuristic_allocation(&model.channel, &model.led, 1.2, &HeuristicConfig::paper());
    model.system_throughput(&alloc)
}

fn main() {
    let d = Deployment::scenario(Scenario::Three);
    let clear = throughput_with_blockers(&d, &[]);
    println!("Blockage study — {}", Scenario::Three.label());
    println!("clear-room system throughput: {:.2} Mb/s\n", clear / 1e6);
    println!("standing person at (x, y) → throughput change:");

    let mut helped = 0;
    let mut hurt = 0;
    let mut worst: (f64, f64, f64) = (0.0, 0.0, 0.0);
    let mut best: (f64, f64, f64) = (0.0, 0.0, 0.0);
    for iy in 0..6 {
        print!("  ");
        for ix in 0..6 {
            let (x, y) = (0.25 + ix as f64 * 0.5, 0.25 + iy as f64 * 0.5);
            let t = throughput_with_blockers(&d, &[CylinderBlocker::person(x, y)]);
            let delta = (t / clear - 1.0) * 100.0;
            if delta > 0.5 {
                helped += 1;
            } else if delta < -0.5 {
                hurt += 1;
            }
            if delta < worst.2 {
                worst = (x, y, delta);
            }
            if delta > best.2 {
                best = (x, y, delta);
            }
            print!("{delta:>7.1}%");
        }
        println!();
    }

    println!(
        "\npositions that helped: {helped}, hurt: {hurt} (out of 36 tested)\n\
         biggest loss  {:.1} % at ({:.2}, {:.2}) — the person shadows a serving TX\n\
         biggest gain  {:+.1} % at ({:.2}, {:.2}) — the person shadows interference,\n\
         confirming the paper's §9 intuition that blockage can *help* cell-free VLC",
        worst.2, worst.0, worst.1, best.2, best.0, best.1
    );
}
