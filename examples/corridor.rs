//! A custom deployment beyond the paper's 6 × 6 room: a 2 × 8 LED strip
//! lighting a corridor, serving two receivers walking in opposite
//! directions. Shows that every layer — grid builder, channel, controller,
//! metrics — is parameterized, not hard-wired to the paper's geometry.
//!
//! Run with: `cargo run --release --example corridor`

use vlc_alloc::analysis::jain_fairness;
use vlc_channel::{ChannelMatrix, RxOptics};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_mac::{Controller, ControllerConfig};

fn main() {
    // A 1.5 m × 12 m corridor with a 2 × 8 strip of luminaires. (The grid
    // builder centers any cols × rows layout in any room.)
    let corridor = Room {
        width: 1.5,
        depth: 12.0,
        height: 2.6,
        floor_reflectance: 0.5,
    };
    let grid = TxGrid::centered(&corridor, 2, 8, 1.5);
    println!(
        "corridor deployment: {} TXs over {:.1} m × {:.1} m",
        grid.len(),
        corridor.width,
        corridor.depth
    );

    let controller = Controller::new(ControllerConfig::paper(0.6), grid.len(), 2);
    println!("\n  t   RX1@y      RX2@y      RX1 beamspot        RX2 beamspot        fairness");
    for step in 0..=10 {
        // The receivers walk past each other along the corridor.
        let y1 = 1.0 + step as f64; // north-bound
        let y2 = 11.0 - step as f64; // south-bound
        let rxs = vec![Pose::face_up(0.75, y1, 0.9), Pose::face_up(0.75, y2, 0.9)];
        let channel = ChannelMatrix::compute(&grid, &rxs, 25f64.to_radians(), &RxOptics::paper());
        let plan = controller.plan(&channel);

        let spot_str = |rx: usize| {
            plan.beamspot_for(rx)
                .map(|s| {
                    s.txs
                        .iter()
                        .map(|&t| grid.label(t))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_else(|| "-".into())
        };
        // Evaluate the plan on a throwaway model for the fairness metric.
        let model = vlc_alloc::model::SystemModel::paper(channel);
        let t = model.throughput(&plan.allocation);
        println!(
            "  {:>2}   {:>5.1}      {:>5.1}      {:<18}  {:<18}  {:.3}",
            step,
            y1,
            y2,
            spot_str(0),
            spot_str(1),
            jain_fairness(&t)
        );
    }
    println!(
        "\nthe beamspots slide along the strip with the walkers and hand over at each\n\
         step; at the crossing instant the two receivers are co-located and the greedy\n\
         SJR ranking (the paper's Algorithm 1) briefly serves only one of them — the\n\
         co-location limitation documented in DESIGN.md, gone one step later"
    );
}
