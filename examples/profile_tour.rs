//! Profile tour: trace one adaptation round twice — the second time with
//! a deliberately heavier solver — then walk span tree → profile →
//! folded stacks → flamegraph → differential, the same pipeline
//! `densevlc-cli profile` and `bench_gate --explain` use.
//!
//! Run with: `cargo run --example profile_tour`
//!
//! The profiler's invariant (Σ self-time == Σ root wall time) makes the
//! tables trustworthy: every nanosecond of traced wall time appears in
//! exactly one row. The differential at the end shows how a regression
//! investigation reads: the solver we made heavier owns the delta.

use densevlc::System;
use vlc_alloc::OptimalSolver;
use vlc_par::Jobs;
use vlc_prof::{to_folded, write_flamegraph, Profile, ProfileDiff};
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;
use vlc_trace::Tracer;

/// One traced round: adaptation plus a solver probe with `starts` random
/// restarts. Returns the profile.
fn traced_round(starts: usize) -> Profile {
    let tracer = Tracer::new();
    let telemetry = Registry::noop();
    let root = tracer.root("profile_tour");
    let mut system = System::scenario(Scenario::Two, 1.2);
    system.adapt_traced(&telemetry, &root);
    let solver = OptimalSolver {
        random_starts: starts,
        ..OptimalSolver::quick()
    };
    solver.solve_traced_jobs(
        &system.deployment.model,
        1.2,
        &telemetry,
        Jobs::from_env(),
        &root,
    );
    drop(root);
    Profile::from_snapshot(&tracer.snapshot(), Jobs::from_env().get())
}

fn main() {
    // Baseline round, then a "regressed" round with a 4x heavier solver.
    let before = traced_round(2);
    let after = traced_round(8);

    println!("self-time table (top 8 paths, baseline round):");
    print!("{}", before.self_table(8));
    println!(
        "\ninvariant: sum(self) = {:.6}s, sum(roots) = {:.6}s",
        before.total_self_s(),
        before.total_root_s()
    );

    // Folded stacks load into any flamegraph tool; the SVG needs nothing.
    let folded = to_folded(&after);
    std::fs::write("profile.folded", &folded).expect("write profile.folded");
    let lines = vlc_prof::parse_folded(&folded).expect("own output parses");
    std::fs::write(
        "flamegraph.svg",
        write_flamegraph("profile_tour (heavy round)", &lines),
    )
    .expect("write flamegraph.svg");
    println!(
        "\nwrote profile.folded ({} paths) and flamegraph.svg",
        lines.len()
    );

    // The differential names where the extra time went.
    let diff = ProfileDiff::between(&before, &after);
    println!("\ndifferential (top 6 by |self-time delta|):");
    print!("{}", diff.table(6));
    let mut regressed = diff.regressed();
    if let Some(worst) = regressed.next() {
        println!(
            "\nworst regression: {} ({:+.6}s self) — the heavier solver, as planted",
            worst.path,
            worst.delta_s()
        );
    }
}
