//! Trace tour: run one adaptation round with causal tracing on, write the
//! span tree as Chrome Trace Event JSON (open `trace.json` in Perfetto or
//! chrome://tracing), and print the deepest span chains.
//!
//! Run with: `cargo run --example trace_tour`
//!
//! Tracing is opt-in and pay-as-you-go: every traced entry point takes a
//! parent [`Span`], and passing `Span::noop()` (what the untraced wrappers
//! do) reduces each span site to a single branch. Here we pass a live
//! root instead, so the whole `sim.adapt` → `mac.plan` → `mac.rank` /
//! `mac.allocate` tree lands in the tracer's ring — plus the solver probe
//! with its per-start and per-iteration-batch children.

use densevlc::System;
use vlc_alloc::OptimalSolver;
use vlc_par::Jobs;
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;
use vlc_trace::Tracer;

fn main() {
    let tracer = Tracer::new();
    let telemetry = Registry::noop();

    // One adaptation round on the paper's Scenario 2, traced end to end.
    let root = tracer.root("trace_tour");
    let mut system = System::scenario(Scenario::Two, 1.2);
    let round = system.adapt_traced(&telemetry, &root);
    println!(
        "adaptation round: {} beamspots, {:.2} Mb/s at {:.3} W",
        round.plan.beamspots.len(),
        round.system_throughput_bps / 1e6,
        round.power_w
    );

    // The optimal solver fans out over random starts; its spans land on
    // per-worker lanes (Perfetto rows) while the *structure* of the tree
    // stays identical for any worker count.
    OptimalSolver::quick().solve_traced_jobs(
        &system.deployment.model,
        1.2,
        &telemetry,
        Jobs::from_env(),
        &root,
    );
    drop(root);

    let snapshot = tracer.snapshot();
    println!("\nrecorded {} spans; the 3 deepest chains:", snapshot.len());
    for chain in snapshot.deepest_chains(3) {
        println!("  {chain}");
    }

    std::fs::write("trace.json", snapshot.to_chrome_json()).expect("write trace.json");
    println!("\nwrote trace.json — load it in Perfetto (ui.perfetto.dev) or chrome://tracing");
}
