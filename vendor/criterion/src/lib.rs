//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-io access, so this crate reproduces
//! the subset of the criterion 0.5 API the `vlc-bench` crate uses:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups, `bench_function`, `iter`, `iter_batched`, and [`BatchSize`].
//!
//! Measurement is deliberately simple: a short warm-up, then batched
//! wall-clock timing until a time budget is spent, reporting the median
//! per-iteration time. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup output to hold per measurement batch (accepted for API
/// compatibility; the stub times one invocation at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Sets the wall-clock budget for subsequent benches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time(d);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (formatting hook; nothing to flush in the stub).
    pub fn finish(self) {}
}

/// Times closures on behalf of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} no samples (routine never ran)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}] ({} samples)",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .bench_function("smoke", |b| b.iter(|| 2u64 + 2));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
