//! Derive macros for the vendored serde stub.
//!
//! Emits `impl serde::Serialize` (a marker in the stub) and a
//! `serde::Deserialize` impl whose body reports that the stub does not
//! perform real deserialization. Parsing is done directly on the token
//! stream — no `syn`/`quote` (the build environment has no crates-io
//! access). Generic items are rejected with a compile error; the workspace
//! derives these traits on concrete types only.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the item name from a `struct`/`enum`/`union` definition,
/// skipping attributes, doc comments, and visibility.
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            // `#[attr]` / `#![attr]`: skip the '#' and the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                match tokens.peek() {
                    Some(TokenTree::Punct(bang)) if bang.as_char() == '!' => {
                        tokens.next();
                    }
                    _ => {}
                }
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip an optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next();
                }
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected an item name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the vendored serde stub cannot derive for generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
            _ => {}
        }
    }
    Err("expected a struct, enum, or union definition".to_string())
}

fn emit(input: TokenStream, template: impl Fn(&str) -> String) -> TokenStream {
    match item_name(input) {
        Ok(name) => template(&name)
            .parse()
            .expect("generated impl must tokenize"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error must tokenize"),
    }
}

/// Derives the stub `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives a stub `serde::Deserialize` whose body reports that the
/// vendored stub does not reconstruct compound types.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\
                 fn deserialize<__D: ::serde::Deserializer<'de>>(_d: __D)\
                     -> ::core::result::Result<Self, __D::Error> {{\
                     ::core::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(\
                             \"the vendored serde stub does not deserialize compound types\"))\
                 }}\
             }}"
        )
    })
}
