//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the *contract surface* it relies on:
//!
//! * the [`Serialize`] / [`Deserialize`] traits (so `#[derive(Serialize,
//!   Deserialize)]` on public config/result types keeps compiling and keeps
//!   documenting the persistence contract),
//! * `serde::de::value` plumbing ([`de::value::F64Deserializer`],
//!   [`de::IntoDeserializer`]) used by the contract tests.
//!
//! This is **not** a serialization framework: `Serialize` is a marker here
//! and derived `Deserialize` impls return an error. The repository's actual
//! export formats (telemetry JSON/CSV) are hand-written in `vlc-telemetry`
//! precisely so they carry no format-crate dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the derive-generated `::serde::...` paths resolve inside this
// crate's own tests (the same trick upstream serde uses).
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type's public shape is part of the persistence contract.
///
/// Upstream serde drives a `Serializer` here; the vendored stub records
/// intent only.
pub trait Serialize {}

/// A type reconstructible from the simplified self-describing data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of one value in the simplified data model.
pub trait Deserializer<'de>: Sized {
    /// The error type produced on malformed input.
    type Error: de::Error;

    /// Produces the underlying value.
    fn deserialize_value(self) -> Result<de::value::SimpleValue, Self::Error>;
}

macro_rules! impl_deserialize_number {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    de::value::SimpleValue::F64(x) => Ok(x as $t),
                    de::value::SimpleValue::U64(x) => Ok(x as $t),
                    de::value::SimpleValue::I64(x) => Ok(x as $t),
                    other => Err(<D::Error as de::Error>::custom(format_args!(
                        "expected a number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_deserialize_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            de::value::SimpleValue::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected a bool, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            de::value::SimpleValue::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected a string, found {other:?}"
            ))),
        }
    }
}

/// Deserialization support types (mirrors `serde::de`).
pub mod de {
    use std::fmt::Display;

    /// Errors a deserializer can raise.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Conversion of a plain value into a deserializer over it.
    pub trait IntoDeserializer<'de, E: Error = value::Error> {
        /// The deserializer produced.
        type Deserializer: crate::Deserializer<'de, Error = E>;

        /// Wraps `self` in its deserializer.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    /// Value-level deserializers (mirrors `serde::de::value`).
    pub mod value {
        use std::fmt;
        use std::marker::PhantomData;

        /// The simplified self-describing data model of the stub.
        #[derive(Debug, Clone, PartialEq)]
        pub enum SimpleValue {
            /// A floating-point number.
            F64(f64),
            /// An unsigned integer.
            U64(u64),
            /// A signed integer.
            I64(i64),
            /// A boolean.
            Bool(bool),
            /// A string.
            Str(String),
            /// The unit value.
            Unit,
        }

        /// A minimal string-message error.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error {
            msg: String,
        }

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.msg)
            }
        }

        impl std::error::Error for Error {}

        impl super::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error {
                    msg: msg.to_string(),
                }
            }
        }

        macro_rules! value_deserializer {
            ($name:ident, $t:ty, $variant:ident) => {
                /// A deserializer holding a single plain value.
                #[derive(Debug, Clone)]
                pub struct $name<E> {
                    value: $t,
                    marker: PhantomData<E>,
                }

                impl<'de, E: super::Error> crate::Deserializer<'de> for $name<E> {
                    type Error = E;
                    fn deserialize_value(self) -> Result<SimpleValue, E> {
                        Ok(SimpleValue::$variant(self.value))
                    }
                }

                impl<'de, E: super::Error> super::IntoDeserializer<'de, E> for $t {
                    type Deserializer = $name<E>;
                    fn into_deserializer(self) -> $name<E> {
                        $name {
                            value: self,
                            marker: PhantomData,
                        }
                    }
                }
            };
        }

        value_deserializer!(F64Deserializer, f64, F64);
        value_deserializer!(U64Deserializer, u64, U64);
        value_deserializer!(I64Deserializer, i64, I64);
        value_deserializer!(BoolDeserializer, bool, Bool);
        value_deserializer!(StringDeserializer, String, Str);
    }
}

#[cfg(test)]
mod tests {
    use super::de::value::{Error as ValueError, F64Deserializer, U64Deserializer};
    use super::de::IntoDeserializer;
    use super::Deserialize;

    #[test]
    fn f64_roundtrip() {
        let de: F64Deserializer<ValueError> = 0.3675f64.into_deserializer();
        assert_eq!(f64::deserialize(de).expect("f64"), 0.3675);
    }

    #[test]
    fn u64_widens_to_f64() {
        let de: U64Deserializer<ValueError> = 7u64.into_deserializer();
        assert_eq!(f64::deserialize(de).expect("f64"), 7.0);
    }

    #[test]
    fn bool_from_number_is_an_error() {
        let de: F64Deserializer<ValueError> = 1.0f64.into_deserializer();
        assert!(bool::deserialize(de).is_err());
    }

    #[test]
    fn derives_compile_on_structs_and_enums() {
        #[derive(crate::Serialize, crate::Deserialize)]
        struct S {
            _a: f64,
        }
        #[derive(crate::Serialize, crate::Deserialize)]
        enum E {
            _A,
            _B(u8),
        }
        fn is_serialize<T: crate::Serialize>() {}
        is_serialize::<S>();
        is_serialize::<E>();
    }
}
