//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! crates-io mirror, so the workspace vendors the *subset* of the rand 0.8
//! API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract:
//! deterministic for a given seed, uniform, and fast. Tests that assert on
//! exact sampled values must derive them from this generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (the only constructor this workspace
/// uses; upstream's byte-array seeding is not reproduced).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range. Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; keep the half-open
        // contract.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {self:?}");
        start + f64::sample_standard(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {self:?}");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; streams differ from upstream for
    /// the same seed, determinism and quality do not.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-25.0..25.0);
            assert!((-25.0..25.0).contains(&x));
            let k = rng.gen_range(0usize..7);
            assert!(k < 7);
            let b = rng.gen_range(1..=255u8);
            assert!(b >= 1);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample_one<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0.0..1.0).contains(&sample_one(&mut rng)));
    }
}
