//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! crate.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`collection::vec`], [`arbitrary::any`], and
//!   [`strategy::Just`] strategies.
//!
//! Differences from upstream: case generation is deterministic (seeded from
//! the test's module path and case index), there is **no shrinking** — a
//! failing case reports its exact inputs instead — and
//! `proptest-regressions` files are not consulted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. See the crate docs for the supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strategies;
                    ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                };
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        ::std::panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            __case, __config.cases, e, __inputs
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        ::std::eprintln!(
                            "property panicked at case {}/{}\n  inputs: {}",
                            __case, __config.cases, __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its inputs reported) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_len(v in crate::collection::vec(0u8..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for b in &v {
                prop_assert!(*b < 5);
            }
        }

        #[test]
        fn flat_map_and_map_compose(v in (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n).prop_map(|v| (v.len(), v))
        })) {
            let (n, data) = v;
            prop_assert_eq!(n, data.len());
        }

        #[test]
        fn any_u64_reaches_high_bits(seed in any::<u64>()) {
            // Not a property per se; exercises the arbitrary path.
            let _ = seed.wrapping_mul(3);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        // Build the generated runner manually and check it panics with the
        // inputs embedded.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("inputs"), "message was: {msg}");
    }
}
