//! The [`Strategy`] trait and its combinators, plus range and tuple
//! strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// directly produces one value for the case.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value for the current case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `f`, regenerating otherwise (bounded
    /// retries; panics if the predicate is too selective).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
