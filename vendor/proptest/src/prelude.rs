//! The conventional `use proptest::prelude::*;` import surface.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Mirrors upstream's `prop` module alias for nested paths like
/// `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
