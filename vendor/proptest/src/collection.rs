//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.lo == self.len.hi_inclusive {
            self.len.lo
        } else {
            rng.gen_range(self.len.lo..=self.len.hi_inclusive)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
