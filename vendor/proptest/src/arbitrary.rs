//! `any::<T>()` — the whole-domain strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy covering `T`'s full domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Primitive types with a whole-domain generator.
pub trait ArbitraryValue: std::fmt::Debug {
    /// Draws one value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Upstream `any::<f64>()` spans the full finite range; tests here
        // only need broad coverage, so sample a wide symmetric range.
        (rng.gen::<f64>() - 0.5) * 2e12
    }
}
