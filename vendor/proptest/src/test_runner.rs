//! Test execution support: configuration, errors, and the deterministic
//! per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Run configuration (mirrors `proptest::test_runner::Config` minimally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold; the message describes why.
    Fail(String),
    /// The inputs were rejected (e.g. by an assumption).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving case generation.
///
/// Each (test, case index) pair gets an independent, reproducible stream:
/// failures always reproduce under `cargo test`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
