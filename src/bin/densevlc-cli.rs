//! `densevlc-cli` — drive the DenseVLC reproduction from the command line.
//!
//! ```text
//! densevlc-cli adapt   [--scenario 1|2|3] [--budget W]   one adaptation round
//! densevlc-cli map     [--scenario 1|2|3] [--budget W]   ASCII beamspot floor plan
//! densevlc-cli lux     [--sim|--testbed]                 illuminance check
//! densevlc-cli codecs                                    FEC stack catalogue
//! densevlc-cli sync                                      Table-4 measurement
//! densevlc-cli iperf   [--frames N]                      Table-5 experiment
//! densevlc-cli faceoff [--scenario 1|2|3]                Fig-21 comparison
//! densevlc-cli sim     [--scenario 1|2|3] [--duration S] streamed simulation
//! densevlc-cli building [--rooms CxR] [--events N]       sharded multi-cell load
//! densevlc-cli monitor <stream.ndjson> [--follow]        dashboard from a stream
//! densevlc-cli profile <command> [options]               profiled run of any command
//! densevlc-cli help
//! ```
//!
//! Every command accepts the unified observability flag set parsed by
//! `vlc_obs::ObsOptions` (the same flags, with the same errors, that
//! `run_all` takes): `--telemetry <json|csv|summary>` records metrics and
//! appends the chosen rendering, `--telemetry-out <file>` redirects it,
//! `--trace <file>` writes Chrome Trace JSON, and the profiling trio
//! `--profile-out` / `--folded-out` / `--flame-out` derives a
//! `densevlc-prof/1` self-time profile, folded stacks, or an SVG
//! flamegraph from the same spans. Prefixing any command with `profile`
//! (e.g. `densevlc-cli profile sim`) additionally prints self/inclusive
//! time tables and attributes heap allocations to the root span via the
//! process-wide counting allocator. The `sim` command adds the
//! streaming plane: `--obs-stream <file>` writes a live NDJSON record
//! stream (`--obs-every N` sets the flush cadence), `--flight-recorder
//! <file>` keeps a crash ring of the last `--flight-last K` records, and
//! `--watch` renders the monitor dashboard when the run ends.
//!
//! Argument parsing is std-only on purpose: the reproduction's dependency
//! set stays at the approved crates.

use std::path::Path;

use densevlc::experiments::{fig05_illuminance, fig21_baselines, tab04_sync_error, tab05_iperf};
use densevlc::{Simulation, System};
use vlc_cell::{
    drive, BuildingConfig, BuildingEngine, BuildingObs, BuildingObsConfig, LoadGenConfig,
};
use vlc_led::LedParams;
use vlc_obs::{
    densevlc_defaults, inject_panic_from_env, monitor::render, parse_stream, FileSink,
    FlightRecorder, MemorySink, ObsConfig, ObsOptions, ObsPlane, ObsRecord, ObsSink,
    TelemetryFormat, WindowConfig,
};
use vlc_par::{Jobs, Pool};
use vlc_prof::alloc_counter::{AllocScope, CountingAlloc};
use vlc_prof::{flamegraph_from_profile, to_folded, Profile};
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::{Span, Tracer};

// Installed process-wide so `profile <cmd>` can attribute heap churn to
// span scopes. The cost is one thread-local `Cell` bump per allocation —
// unmeasurable next to solver work. `run_all` (the BENCH.json producer)
// deliberately does NOT install it, keeping baseline timings
// allocator-identical to the seed.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = match ObsOptions::parse(&mut args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // `profile <cmd>` wraps any other command: the tracer goes live, the
    // root span carries this thread's allocation deltas, and the run ends
    // with self/inclusive time tables (plus any --profile-out/--folded-out/
    // --flame-out artifacts).
    let profiling = args.first().map(String::as_str) == Some("profile");
    if profiling {
        args.remove(0);
    }
    let telemetry = if obs.wants_registry() {
        Registry::new()
    } else {
        Registry::noop()
    };
    let tracer = if profiling || obs.wants_tracer() {
        Tracer::new()
    } else {
        Tracer::noop()
    };
    // With observability flags (or a bare `profile`) and no command,
    // default to an adaptation round so there is something to record.
    let cmd = match args.first().map(String::as_str) {
        Some(c) => c,
        None if profiling || obs.wants_registry() || obs.wants_tracer() => "adapt",
        None => "help",
    };
    let root = tracer.root(&format!("cli.{cmd}"));
    // Dropped (writing alloc attrs) just before the root span closes.
    let alloc_scope = AllocScope::new(&root);
    match cmd {
        "adapt" => adapt(rest(&args), &telemetry, &root),
        "map" => map(rest(&args), &telemetry, &root),
        "lux" => lux(),
        "codecs" => codecs(),
        "sync" => sync(&telemetry, &root),
        "iperf" => iperf(rest(&args), &telemetry),
        "faceoff" => faceoff(rest(&args)),
        "sim" => sim(rest(&args), &telemetry, &root, &obs, &tracer, profiling),
        "building" => building(rest(&args), &telemetry, &root, &obs),
        "monitor" => monitor(rest(&args)),
        "help" | "--help" | "-h" => help(),
        other => {
            eprintln!("unknown command `{other}`\n");
            help();
            std::process::exit(2);
        }
    }
    drop(alloc_scope);
    drop(root);
    if let Some(path) = &obs.trace {
        write_file(path, &tracer.snapshot().to_chrome_json(), "Chrome trace");
    }
    // Surface span-ring health next to event-ring health: the summary
    // exporter's rings line reads this counter (see export::summary).
    if obs.wants_tracer() && telemetry.is_enabled() {
        telemetry
            .counter("trace.spans_dropped")
            .add(tracer.snapshot().dropped);
    }
    if obs.telemetry.is_some() || obs.telemetry_out.is_some() {
        let snapshot = telemetry.snapshot();
        // A bare `--telemetry-out FILE` means JSON; an explicit format
        // applies to the file just as it would to stdout.
        let rendered = match obs.telemetry.unwrap_or(TelemetryFormat::Json) {
            TelemetryFormat::Json => snapshot.to_json() + "\n",
            TelemetryFormat::Csv => snapshot.to_csv(),
            TelemetryFormat::Summary => snapshot.summary_table(),
        };
        match &obs.telemetry_out {
            Some(path) => write_file(path, &rendered, "telemetry"),
            None => match obs.telemetry {
                Some(TelemetryFormat::Summary) => print!("\n{rendered}"),
                _ => print!("{rendered}"),
            },
        }
    }
    if profiling || obs.wants_profile() {
        let profile = Profile::from_snapshot(&tracer.snapshot(), Jobs::from_env().get());
        if profiling {
            println!(
                "\nprofile: {} paths, {} calls, {:.6} s traced",
                profile.nodes.len(),
                profile.nodes.iter().map(|n| n.calls).sum::<u64>(),
                profile.total_root_s()
            );
            print!("\nself time (top 10)\n{}", profile.self_table(10));
            print!("\ninclusive time (top 10)\n{}", profile.inclusive_table(10));
        }
        if let Some(path) = &obs.profile_out {
            write_file(path, &profile.to_json(), "self-time profile");
        }
        if let Some(path) = &obs.folded_out {
            write_file(path, &to_folded(&profile), "folded stacks");
        }
        if let Some(path) = &obs.flame_out {
            match flamegraph_from_profile(&format!("densevlc-cli {cmd}"), &profile) {
                Ok(svg) => write_file(path, &svg, "flamegraph"),
                Err(e) => {
                    eprintln!("error: flamegraph rendering failed: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
}

fn write_file(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} to {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {what} to {path}");
}

/// The argument slice after the command word (empty when the command was
/// implied by `--telemetry` alone).
fn rest(args: &[String]) -> &[String] {
    if args.is_empty() {
        args
    } else {
        &args[1..]
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn u64_flag(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {flag} value `{v}`");
            std::process::exit(2);
        }),
    }
}

fn f64_flag(args: &[String], flag: &str, default: f64) -> f64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {flag} value `{v}`");
            std::process::exit(2);
        }),
    }
}

fn scenario_arg(args: &[String]) -> Scenario {
    match flag_value(args, "--scenario").as_deref() {
        Some("1") => Scenario::One,
        Some("3") => Scenario::Three,
        Some("2") | None => Scenario::Two,
        Some(other) => {
            eprintln!("unknown scenario `{other}` (expected 1, 2 or 3)");
            std::process::exit(2);
        }
    }
}

fn adapt(args: &[String], telemetry: &Registry, parent: &Span) {
    let scenario = scenario_arg(args);
    let budget = f64_flag(args, "--budget", 1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt_traced(telemetry, parent);
    println!("{} @ {budget} W", scenario.label());
    for spot in &round.plan.beamspots {
        let txs: Vec<String> = spot
            .txs
            .iter()
            .map(|&t| system.deployment.grid.label(t))
            .collect();
        println!(
            "  RX{} <- [{}] leader {} ({:.2} Mb/s)",
            spot.rx + 1,
            txs.join(", "),
            system.deployment.grid.label(spot.leader),
            round.per_rx_bps[spot.rx] / 1e6
        );
    }
    println!(
        "system: {:.2} Mb/s at {:.3} W",
        round.system_throughput_bps / 1e6,
        round.power_w
    );
    // Fig. 11's cost gap: time both allocators on the same channel so the
    // summary shows optimal vs heuristic wall-time side by side. The
    // optimal solver rejects a non-positive budget, so skip the probe.
    if (telemetry.is_enabled() || parent.is_enabled()) && budget > 0.0 {
        let model = &system.deployment.model;
        let heuristic = vlc_alloc::heuristic::heuristic_allocation_traced(
            &model.channel,
            &model.led,
            budget,
            &vlc_alloc::HeuristicConfig::paper(),
            telemetry,
            parent,
        );
        let optimal = vlc_alloc::OptimalSolver::quick().solve_traced_jobs(
            model,
            budget,
            telemetry,
            Jobs::from_env(),
            parent,
        );
        println!(
            "solver objectives (sum-log): heuristic {:.3}, optimal {:.3} in {} iterations",
            model.sum_log_throughput(&heuristic),
            optimal.objective,
            optimal.iterations
        );
    }
}

/// Renders the ceiling grid with per-TX beamspot membership and the
/// receiver positions as an ASCII floor plan.
fn map(args: &[String], telemetry: &Registry, parent: &Span) {
    let scenario = scenario_arg(args);
    let budget = f64_flag(args, "--budget", 1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt_traced(telemetry, parent);
    let grid = &system.deployment.grid;

    // Per-TX glyph: the digit of the served RX, or '.' for illumination.
    let mut glyph = vec!['.'; grid.len()];
    for spot in &round.plan.beamspots {
        for &tx in &spot.txs {
            glyph[tx] = char::from_digit(spot.rx as u32 + 1, 10).unwrap_or('?');
        }
    }
    println!(
        "{} @ {budget} W — ceiling view (y grows upward)",
        scenario.label()
    );
    println!("TX glyphs: digit = serving that RX, . = illumination only; rN = receiver\n");
    // Rows top-down: row 5 (max y) first.
    for row in (0..grid.rows).rev() {
        print!("  y={:.2} ", grid.pose(row * grid.cols).position.y);
        for col in 0..grid.cols {
            print!("  {} ", glyph[row * grid.cols + col]);
        }
        println!();
        // Receivers whose y falls between this row and the next.
        let y_hi = grid.pose(row * grid.cols).position.y + grid.pitch / 2.0;
        let y_lo = y_hi - grid.pitch;
        let mut markers = String::new();
        for (i, rx) in system.deployment.receivers.iter().enumerate() {
            let p = rx.position;
            if p.y < y_hi && p.y >= y_lo {
                markers.push_str(&format!("  r{} at ({:.2}, {:.2})", i + 1, p.x, p.y));
            }
        }
        if !markers.is_empty() {
            println!("         ^{markers}");
        }
    }
    println!(
        "\nsystem: {:.2} Mb/s at {:.3} W across {} beamspots",
        round.system_throughput_bps / 1e6,
        round.power_w,
        round.plan.beamspots.len()
    );
}

fn lux() {
    print!(
        "{}",
        fig05_illuminance::run(&LedParams::cree_xte_paper(), 0x10).report()
    );
}

/// Lists the pluggable FEC stacks the frame pipeline can run on, with the
/// overhead and correction guarantees each advertises on the paper's
/// 200-byte payload (see `docs/CODECS.md`).
fn codecs() {
    let payload = 200usize;
    println!("FEC codec stacks (vlc_phy::codec::registry), {payload}-byte payload:\n");
    println!(
        "  {:<14} {:>9} {:>9}  {:>8} {:>9} {:>6}",
        "name", "coded B", "overhead", "t/block", "block B", "burst"
    );
    for stack in vlc_phy::codec::registry() {
        let coded = stack.encoded_len(payload);
        let c = stack.correction();
        println!(
            "  {:<14} {:>9} {:>8.1}%  {:>8} {:>9} {:>6}",
            stack.name(),
            coded,
            100.0 * (coded - payload) as f64 / payload as f64,
            c.t_per_block,
            c.block_len,
            c.burst_tolerance
        );
    }
    println!(
        "\nguarantees are per coded block (0 = detect-only or statistical); sweep them\n\
         against calibrated noise with: cargo run --release -p vlc-bench --bin codec_campaign"
    );
}

fn sync(telemetry: &Registry, parent: &Span) {
    print!(
        "{}",
        tab04_sync_error::run_traced(150, 0x11, telemetry, parent).report()
    );
}

fn iperf(args: &[String], telemetry: &Registry) {
    let frames: usize = flag_value(args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    print!(
        "{}",
        tab05_iperf::run_instrumented(frames, 0x12, telemetry).report()
    );
}

fn faceoff(args: &[String]) {
    print!("{}", fig21_baselines::run(scenario_arg(args)).report());
}

/// Drives a deterministic synthetic session load through the sharded
/// multi-cell building engine (`crates/cell`, docs/SHARDING.md) — the
/// CLI-sized cousin of `cargo run --release -p vlc-cell --bin load_gen`,
/// sharing its schedule generator so the workload is a pure function of
/// the seed. `--obs-stream` emits the `building.*` NDJSON signals.
fn building(args: &[String], telemetry: &Registry, parent: &Span, obs: &ObsOptions) {
    let rooms = flag_value(args, "--rooms").unwrap_or_else(|| "4x3".into());
    let parsed = rooms
        .split_once('x')
        .and_then(|(c, r)| Some((c.parse::<usize>().ok()?, r.parse::<usize>().ok()?)));
    let (cols, rows) = match parsed {
        Some((c, r)) if c * r > 0 => (c, r),
        _ => {
            eprintln!("bad --rooms value `{rooms}` (expected CxR, e.g. 4x3)");
            std::process::exit(2);
        }
    };
    let load = LoadGenConfig {
        cols,
        rows,
        ticks: u64_flag(args, "--ticks", 300),
        target_events: u64_flag(args, "--events", 60_000),
        seed: u64_flag(args, "--seed", 42),
        mean_lifetime_ticks: u64_flag(args, "--lifetime", 80),
        move_period_ticks: u64_flag(args, "--move-period", 6),
        step_m: f64_flag(args, "--step", 1.5),
    };
    let config = BuildingConfig::paper(cols, rows);
    let mut engine = BuildingEngine::new(&config, telemetry);
    let pool = Pool::new(Jobs::from_env()).with_telemetry(telemetry);
    let mut plane = obs.obs_stream.as_ref().map(|path| {
        let sink: Box<dyn ObsSink> = match FileSink::create(Path::new(path)) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("cannot create obs stream `{path}`: {e}");
                std::process::exit(2);
            }
        };
        let cfg = BuildingObsConfig {
            run: format!("cli building seed{}", load.seed),
            every: obs.obs_every,
            ..BuildingObsConfig::default()
        };
        BuildingObs::new(&cfg, engine.map(), sink).expect("obs meta record")
    });
    let report = drive(&mut engine, &load.schedule(), &pool, plane.as_mut(), parent)
        .expect("obs sink write");
    if let Some(plane) = plane {
        plane.finish().expect("obs summary record");
    }
    println!(
        "building {cols}x{rows} ({} rooms), seed {}: {} events, {} sessions (peak {}), \
         {} handovers",
        cols * rows,
        load.seed,
        report.events,
        report.sessions,
        report.peak_sessions,
        report.handovers
    );
    println!(
        "replans {} (cache hits {}) · wall {:.2} s · events/s {:.0} · replans/s {:.0}",
        report.replans, report.plan_hits, report.wall_s, report.events_per_s, report.replans_per_s
    );
    println!(
        "control tick p50 {:.1} µs · p99 {:.1} µs · max {:.1} µs · system {:.3e} bit/s",
        report.tick_p50_us, report.tick_p99_us, report.tick_max_us, report.final_system_bps
    );
}

/// Runs the composable simulation, optionally streaming the
/// observability plane; `--person X Y` drops a standing occluder to make
/// blockage (and the per-RX throughput SLOs) do something.
fn sim(
    args: &[String],
    telemetry: &Registry,
    parent: &Span,
    obs: &ObsOptions,
    tracer: &Tracer,
    profiling: bool,
) {
    let scenario = scenario_arg(args);
    let budget = f64_flag(args, "--budget", 1.2);
    let duration = f64_flag(args, "--duration", 2.0);
    let period = f64_flag(args, "--period", 0.25);
    let slo_bps = f64_flag(args, "--slo-bps", 1e6);
    let slo_solver_s = f64_flag(args, "--slo-solver-s", 0.05);
    let mut simulation = Simulation::new(Deployment::scenario(scenario), budget, period);
    if let Some(x) = flag_value(args, "--person") {
        let i = args.iter().position(|a| a == "--person").unwrap();
        let Some(y) = args.get(i + 2) else {
            eprintln!("--person expects X Y coordinates");
            std::process::exit(2);
        };
        match (x.parse::<f64>(), y.parse::<f64>()) {
            (Ok(px), Ok(py)) => simulation.add_person(px, py, 0.5, &[]),
            _ => {
                eprintln!("bad --person coordinates `{x} {y}`");
                std::process::exit(2);
            }
        }
    }
    let n_rx = simulation.deployment.receivers.len();

    let timeline = if obs.wants_stream() {
        let mem = MemorySink::new();
        let sink: Box<dyn ObsSink> = match &obs.obs_stream {
            Some(path) => match FileSink::create(Path::new(path)) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot create stream file {path}: {e}");
                    std::process::exit(2);
                }
            },
            None => Box::new(mem.clone()),
        };
        let cfg = ObsConfig {
            run: format!("sim {}", scenario.label()),
            every: obs.obs_every,
            window: WindowConfig::default(),
            rules: densevlc_defaults(n_rx, slo_bps, slo_solver_s),
            panic_at_tick: inject_panic_from_env(),
        };
        let mut plane = ObsPlane::new(sink, cfg);
        if let Some(path) = &obs.flight_recorder {
            plane = plane.with_flight(FlightRecorder::new(Path::new(path), obs.flight_last));
        }
        let tl = simulation.run_observed(duration, telemetry, parent, &mut plane);
        // A profiled run digests its profile into the stream ahead of the
        // summary record (obs_check --expect-summary wants summary last).
        // The root `cli.sim` span is still open here, so its children
        // surface as profile roots — fine for a hottest-path digest.
        if profiling || obs.wants_profile() {
            let profile = Profile::from_snapshot(&tracer.snapshot(), Jobs::from_env().get());
            plane.emit_record(&ObsRecord::profile_summary(&profile));
        }
        plane.finish(telemetry, tracer.snapshot().dropped);
        if let Some(path) = &obs.obs_stream {
            eprintln!("wrote observability stream to {path}");
        }
        if obs.watch {
            let text = match &obs.obs_stream {
                Some(path) => std::fs::read_to_string(path).unwrap_or_default(),
                None => mem.text(),
            };
            match parse_stream(&text) {
                Ok(records) => print!("\n{}", render(&records)),
                Err(e) => eprintln!("error: stream failed validation: {e}"),
            }
        }
        tl
    } else {
        simulation.run_traced(duration, telemetry, parent)
    };

    println!(
        "{}: {} ticks over {duration} s — mean system {:.2} Mb/s, {} replans, outage {:.1}%",
        scenario.label(),
        timeline.ticks.len(),
        timeline.mean_system_bps() / 1e6,
        timeline.replans(),
        timeline.outage_fraction() * 100.0
    );
}

/// Renders the monitor dashboard from an NDJSON stream file; `--follow`
/// re-reads and re-renders until the stream ends in a summary or panic.
fn monitor(args: &[String]) {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("monitor expects a stream file (densevlc-cli monitor run.ndjson)");
        std::process::exit(2);
    };
    let follow = args.iter().any(|a| a == "--follow");
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if follow => {
                // The producer may not have created the file yet.
                eprintln!("waiting for {path}: {e}");
                std::thread::sleep(std::time::Duration::from_millis(500));
                continue;
            }
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match parse_stream(&text) {
            Ok(records) => {
                if follow {
                    // Clear and repaint, terminal-dashboard style.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&records));
                let done = records
                    .iter()
                    .any(|r| matches!(r, ObsRecord::Summary { .. } | ObsRecord::Panic { .. }));
                if !follow || done {
                    break;
                }
            }
            Err(e) => {
                eprintln!("error: {path} failed stream validation: {e}");
                std::process::exit(2);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

fn help() {
    println!(
        "densevlc-cli — DenseVLC (CoNEXT '18) reproduction\n\n\
         USAGE:\n  densevlc-cli <command> [options]\n\n\
         COMMANDS:\n  \
         adapt   [--scenario 1|2|3] [--budget W]  run one adaptation round\n  \
         map     [--scenario 1|2|3] [--budget W]  ASCII floor plan of beamspots\n  \
         lux                                      illuminance / ISO 8995-1 check\n  \
         codecs                                   FEC stack catalogue (docs/CODECS.md)\n  \
         sync                                     Table-4 sync-error measurement\n  \
         iperf   [--frames N]                     Table-5 end-to-end experiment\n  \
         faceoff [--scenario 1|2|3]               Fig-21 SISO/D-MISO comparison\n  \
         sim     [--scenario 1|2|3] [--budget W] [--duration S] [--period S]\n  \
         \x20       [--person X Y] [--slo-bps BPS] [--slo-solver-s S]\n  \
         \x20                                        run the tick simulation\n  \
         building [--rooms CxR] [--ticks N] [--events N] [--seed N]\n  \
         \x20        [--lifetime T] [--move-period T] [--step M]\n  \
         \x20                                        drive a synthetic session load\n  \
         \x20                                        through the sharded multi-cell\n  \
         \x20                                        engine (docs/SHARDING.md)\n  \
         monitor <stream.ndjson> [--follow]       dashboard from an obs stream\n  \
         profile <command> [options]              run any command with the tracer\n  \
         \x20                                        live and print self/inclusive\n  \
         \x20                                        time tables (docs/OBSERVABILITY.md)\n  \
         help                                     this text\n\n\
         OBSERVABILITY OPTIONS (any command):\n  \
         --telemetry <json|csv|summary>           record metrics during the run\n  \
         \x20                                        and append them to the output\n  \
         --telemetry-out <file>                   write the telemetry rendering to\n  \
         \x20                                        a file instead (default json)\n  \
         --trace <file>                           record causal spans and write\n  \
         \x20                                        Chrome Trace JSON (Perfetto)\n  \
         --profile-out <file>                     densevlc-prof/1 self-time profile\n  \
         --folded-out <file>                      folded stacks (flamegraph input)\n  \
         --flame-out <file>                       self-contained SVG flamegraph\n\n\
         STREAMING OPTIONS (sim):\n  \
         --obs-stream <file>                      live NDJSON observability stream\n  \
         --obs-every <n>                          stream flush cadence in ticks\n  \
         --flight-recorder <file>                 crash dump of the last records\n  \
         --flight-last <k>                        flight ring capacity (lines)\n  \
         --watch                                  render the dashboard at exit\n\n\
         Full per-figure binaries live in the vlc-bench crate:\n  \
         cargo run --release -p vlc-bench --bin run_all"
    );
}
