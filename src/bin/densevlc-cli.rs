//! `densevlc-cli` — drive the DenseVLC reproduction from the command line.
//!
//! ```text
//! densevlc-cli adapt   [--scenario 1|2|3] [--budget W]   one adaptation round
//! densevlc-cli map     [--scenario 1|2|3] [--budget W]   ASCII beamspot floor plan
//! densevlc-cli lux     [--sim|--testbed]                 illuminance check
//! densevlc-cli sync                                      Table-4 measurement
//! densevlc-cli iperf   [--frames N]                      Table-5 experiment
//! densevlc-cli faceoff [--scenario 1|2|3]                Fig-21 comparison
//! densevlc-cli help
//! ```
//!
//! Argument parsing is std-only on purpose: the reproduction's dependency
//! set stays at the approved crates.

use densevlc::experiments::{fig05_illuminance, fig21_baselines, tab04_sync_error, tab05_iperf};
use densevlc::System;
use vlc_led::LedParams;
use vlc_testbed::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "adapt" => adapt(&args[1..]),
        "map" => map(&args[1..]),
        "lux" => lux(),
        "sync" => sync(),
        "iperf" => iperf(&args[1..]),
        "faceoff" => faceoff(&args[1..]),
        "help" | "--help" | "-h" => help(),
        other => {
            eprintln!("unknown command `{other}`\n");
            help();
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn scenario_arg(args: &[String]) -> Scenario {
    match flag_value(args, "--scenario").as_deref() {
        Some("1") => Scenario::One,
        Some("3") => Scenario::Three,
        Some("2") | None => Scenario::Two,
        Some(other) => {
            eprintln!("unknown scenario `{other}` (expected 1, 2 or 3)");
            std::process::exit(2);
        }
    }
}

fn adapt(args: &[String]) {
    let scenario = scenario_arg(args);
    let budget: f64 = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt();
    println!("{} @ {budget} W", scenario.label());
    for spot in &round.plan.beamspots {
        let txs: Vec<String> = spot
            .txs
            .iter()
            .map(|&t| system.deployment.grid.label(t))
            .collect();
        println!(
            "  RX{} <- [{}] leader {} ({:.2} Mb/s)",
            spot.rx + 1,
            txs.join(", "),
            system.deployment.grid.label(spot.leader),
            round.per_rx_bps[spot.rx] / 1e6
        );
    }
    println!(
        "system: {:.2} Mb/s at {:.3} W",
        round.system_throughput_bps / 1e6,
        round.power_w
    );
}

/// Renders the ceiling grid with per-TX beamspot membership and the
/// receiver positions as an ASCII floor plan.
fn map(args: &[String]) {
    let scenario = scenario_arg(args);
    let budget: f64 = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt();
    let grid = &system.deployment.grid;

    // Per-TX glyph: the digit of the served RX, or '.' for illumination.
    let mut glyph = vec!['.'; grid.len()];
    for spot in &round.plan.beamspots {
        for &tx in &spot.txs {
            glyph[tx] = char::from_digit(spot.rx as u32 + 1, 10).unwrap_or('?');
        }
    }
    println!(
        "{} @ {budget} W — ceiling view (y grows upward)",
        scenario.label()
    );
    println!("TX glyphs: digit = serving that RX, . = illumination only; rN = receiver\n");
    // Rows top-down: row 5 (max y) first.
    for row in (0..grid.rows).rev() {
        print!("  y={:.2} ", grid.pose(row * grid.cols).position.y);
        for col in 0..grid.cols {
            print!("  {} ", glyph[row * grid.cols + col]);
        }
        println!();
        // Receivers whose y falls between this row and the next.
        let y_hi = grid.pose(row * grid.cols).position.y + grid.pitch / 2.0;
        let y_lo = y_hi - grid.pitch;
        let mut markers = String::new();
        for (i, rx) in system.deployment.receivers.iter().enumerate() {
            let p = rx.position;
            if p.y < y_hi && p.y >= y_lo {
                markers.push_str(&format!("  r{} at ({:.2}, {:.2})", i + 1, p.x, p.y));
            }
        }
        if !markers.is_empty() {
            println!("         ^{markers}");
        }
    }
    println!(
        "\nsystem: {:.2} Mb/s at {:.3} W across {} beamspots",
        round.system_throughput_bps / 1e6,
        round.power_w,
        round.plan.beamspots.len()
    );
}

fn lux() {
    print!(
        "{}",
        fig05_illuminance::run(&LedParams::cree_xte_paper(), 0x10).report()
    );
}

fn sync() {
    print!("{}", tab04_sync_error::run(150, 0x11).report());
}

fn iperf(args: &[String]) {
    let frames: usize = flag_value(args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    print!("{}", tab05_iperf::run(frames, 0x12).report());
}

fn faceoff(args: &[String]) {
    print!("{}", fig21_baselines::run(scenario_arg(args)).report());
}

fn help() {
    println!(
        "densevlc-cli — DenseVLC (CoNEXT '18) reproduction\n\n\
         USAGE:\n  densevlc-cli <command> [options]\n\n\
         COMMANDS:\n  \
         adapt   [--scenario 1|2|3] [--budget W]  run one adaptation round\n  \
         map     [--scenario 1|2|3] [--budget W]  ASCII floor plan of beamspots\n  \
         lux                                      illuminance / ISO 8995-1 check\n  \
         sync                                     Table-4 sync-error measurement\n  \
         iperf   [--frames N]                     Table-5 end-to-end experiment\n  \
         faceoff [--scenario 1|2|3]               Fig-21 SISO/D-MISO comparison\n  \
         help                                     this text\n\n\
         Full per-figure binaries live in the vlc-bench crate:\n  \
         cargo run --release -p vlc-bench --bin run_all"
    );
}
