//! `densevlc-cli` — drive the DenseVLC reproduction from the command line.
//!
//! ```text
//! densevlc-cli adapt   [--scenario 1|2|3] [--budget W]   one adaptation round
//! densevlc-cli map     [--scenario 1|2|3] [--budget W]   ASCII beamspot floor plan
//! densevlc-cli lux     [--sim|--testbed]                 illuminance check
//! densevlc-cli sync                                      Table-4 measurement
//! densevlc-cli iperf   [--frames N]                      Table-5 experiment
//! densevlc-cli faceoff [--scenario 1|2|3]                Fig-21 comparison
//! densevlc-cli help
//! ```
//!
//! Every command accepts `--telemetry <json|csv|summary>`: the run then
//! records metrics into a live registry and appends the chosen rendering
//! after the command's normal output (`densevlc-cli --telemetry summary`
//! alone runs an adaptation round and prints its summary table).
//! `--telemetry-out <file>` redirects that rendering to a file instead
//! (format from `--telemetry`, JSON when only the file is given), and
//! `--trace <file>` records causal spans for the whole command and writes
//! them as Chrome Trace Event JSON, loadable in Perfetto or
//! chrome://tracing.
//!
//! Argument parsing is std-only on purpose: the reproduction's dependency
//! set stays at the approved crates.

use densevlc::experiments::{fig05_illuminance, fig21_baselines, tab04_sync_error, tab05_iperf};
use densevlc::System;
use vlc_led::LedParams;
use vlc_par::Jobs;
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;
use vlc_trace::{Span, Tracer};

/// Telemetry rendering requested on the command line.
#[derive(Clone, Copy, PartialEq)]
enum TelemetryFormat {
    Json,
    Csv,
    Summary,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let format = telemetry_arg(&mut args);
    let telemetry_out = path_arg(&mut args, "--telemetry-out");
    let trace_out = path_arg(&mut args, "--trace");
    let telemetry = if format.is_some() || telemetry_out.is_some() {
        Registry::new()
    } else {
        Registry::noop()
    };
    let tracer = if trace_out.is_some() {
        Tracer::new()
    } else {
        Tracer::noop()
    };
    // With `--telemetry`/`--telemetry-out`/`--trace` and no command,
    // default to an adaptation round so there is something to record.
    let cmd = match args.first().map(String::as_str) {
        Some(c) => c,
        None if format.is_some() || telemetry_out.is_some() || trace_out.is_some() => "adapt",
        None => "help",
    };
    let root = tracer.root(&format!("cli.{cmd}"));
    match cmd {
        "adapt" => adapt(rest(&args), &telemetry, &root),
        "map" => map(rest(&args), &telemetry, &root),
        "lux" => lux(),
        "sync" => sync(&telemetry, &root),
        "iperf" => iperf(rest(&args), &telemetry),
        "faceoff" => faceoff(rest(&args)),
        "help" | "--help" | "-h" => help(),
        other => {
            eprintln!("unknown command `{other}`\n");
            help();
            std::process::exit(2);
        }
    }
    drop(root);
    if let Some(path) = &trace_out {
        write_file(path, &tracer.snapshot().to_chrome_json(), "Chrome trace");
    }
    if format.is_some() || telemetry_out.is_some() {
        let snapshot = telemetry.snapshot();
        // A bare `--telemetry-out FILE` means JSON; an explicit format
        // applies to the file just as it would to stdout.
        let rendered = match format.unwrap_or(TelemetryFormat::Json) {
            TelemetryFormat::Json => snapshot.to_json() + "\n",
            TelemetryFormat::Csv => snapshot.to_csv(),
            TelemetryFormat::Summary => snapshot.summary_table(),
        };
        match &telemetry_out {
            Some(path) => write_file(path, &rendered, "telemetry"),
            None => match format {
                Some(TelemetryFormat::Summary) => print!("\n{rendered}"),
                _ => print!("{rendered}"),
            },
        }
    }
}

fn write_file(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} to {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {what} to {path}");
}

/// The argument slice after the command word (empty when the command was
/// implied by `--telemetry` alone).
fn rest(args: &[String]) -> &[String] {
    if args.is_empty() {
        args
    } else {
        &args[1..]
    }
}

/// Extracts `--telemetry <json|csv|summary>` from anywhere in the argument
/// list, removing both tokens.
fn telemetry_arg(args: &mut Vec<String>) -> Option<TelemetryFormat> {
    let i = args.iter().position(|a| a == "--telemetry")?;
    let format = match args.get(i + 1).map(String::as_str) {
        Some("json") => TelemetryFormat::Json,
        Some("csv") => TelemetryFormat::Csv,
        Some("summary") => TelemetryFormat::Summary,
        other => {
            eprintln!(
                "--telemetry expects json, csv or summary (got `{}`)",
                other.unwrap_or("")
            );
            std::process::exit(2);
        }
    };
    args.drain(i..=i + 1);
    Some(format)
}

/// Extracts `<flag> <path>` from anywhere in the argument list, removing
/// both tokens.
fn path_arg(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(path) = args.get(i + 1).cloned() else {
        eprintln!("{flag} expects a file path");
        std::process::exit(2);
    };
    args.drain(i..=i + 1);
    Some(path)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn scenario_arg(args: &[String]) -> Scenario {
    match flag_value(args, "--scenario").as_deref() {
        Some("1") => Scenario::One,
        Some("3") => Scenario::Three,
        Some("2") | None => Scenario::Two,
        Some(other) => {
            eprintln!("unknown scenario `{other}` (expected 1, 2 or 3)");
            std::process::exit(2);
        }
    }
}

fn adapt(args: &[String], telemetry: &Registry, parent: &Span) {
    let scenario = scenario_arg(args);
    let budget: f64 = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt_traced(telemetry, parent);
    println!("{} @ {budget} W", scenario.label());
    for spot in &round.plan.beamspots {
        let txs: Vec<String> = spot
            .txs
            .iter()
            .map(|&t| system.deployment.grid.label(t))
            .collect();
        println!(
            "  RX{} <- [{}] leader {} ({:.2} Mb/s)",
            spot.rx + 1,
            txs.join(", "),
            system.deployment.grid.label(spot.leader),
            round.per_rx_bps[spot.rx] / 1e6
        );
    }
    println!(
        "system: {:.2} Mb/s at {:.3} W",
        round.system_throughput_bps / 1e6,
        round.power_w
    );
    // Fig. 11's cost gap: time both allocators on the same channel so the
    // summary shows optimal vs heuristic wall-time side by side. The
    // optimal solver rejects a non-positive budget, so skip the probe.
    if (telemetry.is_enabled() || parent.is_enabled()) && budget > 0.0 {
        let model = &system.deployment.model;
        let heuristic = vlc_alloc::heuristic::heuristic_allocation_traced(
            &model.channel,
            &model.led,
            budget,
            &vlc_alloc::HeuristicConfig::paper(),
            telemetry,
            parent,
        );
        let optimal = vlc_alloc::OptimalSolver::quick().solve_traced_jobs(
            model,
            budget,
            telemetry,
            Jobs::from_env(),
            parent,
        );
        println!(
            "solver objectives (sum-log): heuristic {:.3}, optimal {:.3} in {} iterations",
            model.sum_log_throughput(&heuristic),
            optimal.objective,
            optimal.iterations
        );
    }
}

/// Renders the ceiling grid with per-TX beamspot membership and the
/// receiver positions as an ASCII floor plan.
fn map(args: &[String], telemetry: &Registry, parent: &Span) {
    let scenario = scenario_arg(args);
    let budget: f64 = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let mut system = System::scenario(scenario, budget);
    let round = system.adapt_traced(telemetry, parent);
    let grid = &system.deployment.grid;

    // Per-TX glyph: the digit of the served RX, or '.' for illumination.
    let mut glyph = vec!['.'; grid.len()];
    for spot in &round.plan.beamspots {
        for &tx in &spot.txs {
            glyph[tx] = char::from_digit(spot.rx as u32 + 1, 10).unwrap_or('?');
        }
    }
    println!(
        "{} @ {budget} W — ceiling view (y grows upward)",
        scenario.label()
    );
    println!("TX glyphs: digit = serving that RX, . = illumination only; rN = receiver\n");
    // Rows top-down: row 5 (max y) first.
    for row in (0..grid.rows).rev() {
        print!("  y={:.2} ", grid.pose(row * grid.cols).position.y);
        for col in 0..grid.cols {
            print!("  {} ", glyph[row * grid.cols + col]);
        }
        println!();
        // Receivers whose y falls between this row and the next.
        let y_hi = grid.pose(row * grid.cols).position.y + grid.pitch / 2.0;
        let y_lo = y_hi - grid.pitch;
        let mut markers = String::new();
        for (i, rx) in system.deployment.receivers.iter().enumerate() {
            let p = rx.position;
            if p.y < y_hi && p.y >= y_lo {
                markers.push_str(&format!("  r{} at ({:.2}, {:.2})", i + 1, p.x, p.y));
            }
        }
        if !markers.is_empty() {
            println!("         ^{markers}");
        }
    }
    println!(
        "\nsystem: {:.2} Mb/s at {:.3} W across {} beamspots",
        round.system_throughput_bps / 1e6,
        round.power_w,
        round.plan.beamspots.len()
    );
}

fn lux() {
    print!(
        "{}",
        fig05_illuminance::run(&LedParams::cree_xte_paper(), 0x10).report()
    );
}

fn sync(telemetry: &Registry, parent: &Span) {
    print!(
        "{}",
        tab04_sync_error::run_traced(150, 0x11, telemetry, parent).report()
    );
}

fn iperf(args: &[String], telemetry: &Registry) {
    let frames: usize = flag_value(args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    print!(
        "{}",
        tab05_iperf::run_instrumented(frames, 0x12, telemetry).report()
    );
}

fn faceoff(args: &[String]) {
    print!("{}", fig21_baselines::run(scenario_arg(args)).report());
}

fn help() {
    println!(
        "densevlc-cli — DenseVLC (CoNEXT '18) reproduction\n\n\
         USAGE:\n  densevlc-cli <command> [options]\n\n\
         COMMANDS:\n  \
         adapt   [--scenario 1|2|3] [--budget W]  run one adaptation round\n  \
         map     [--scenario 1|2|3] [--budget W]  ASCII floor plan of beamspots\n  \
         lux                                      illuminance / ISO 8995-1 check\n  \
         sync                                     Table-4 sync-error measurement\n  \
         iperf   [--frames N]                     Table-5 end-to-end experiment\n  \
         faceoff [--scenario 1|2|3]               Fig-21 SISO/D-MISO comparison\n  \
         help                                     this text\n\n\
         OPTIONS:\n  \
         --telemetry <json|csv|summary>           record metrics during the run\n  \
         \x20                                        and append them to the output\n  \
         --telemetry-out <file>                   write the telemetry rendering to\n  \
         \x20                                        a file instead (default json)\n  \
         --trace <file>                           record causal spans and write\n  \
         \x20                                        Chrome Trace JSON (Perfetto)\n\n\
         Full per-figure binaries live in the vlc-bench crate:\n  \
         cargo run --release -p vlc-bench --bin run_all"
    );
}
