//! Root package of the DenseVLC reproduction workspace.
//!
//! This crate exists to host the runnable examples under `examples/` and
//! the cross-crate integration tests under `tests/`. The library itself is
//! a thin re-export of the [`densevlc`] facade; depend on `densevlc`
//! directly for real use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use densevlc::*;
