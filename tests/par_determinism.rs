//! The vlc-par determinism contract, end to end: every parallelised layer
//! (channel sounding, NLOS quadrature, the optimal solver, the exhaustive
//! search, and whole experiments driven through `DENSEVLC_JOBS`) must
//! produce *bitwise identical* results for any worker count. `jobs = 1` is
//! the exact legacy sequential path, so these tests also pin today's
//! numbers against accidental reassociation.

use vlc_alloc::exhaustive::exhaustive_binary_jobs;
use vlc_alloc::model::SystemModel;
use vlc_alloc::OptimalSolver;
use vlc_channel::nlos::{floor_bounce_gain_par, wall_bounce_gain_par, NlosConfig};
use vlc_channel::{ChannelMatrix, RxOptics};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_par::{Jobs, JOBS_ENV};

/// Worker counts exercised everywhere: sequential, even split, a count
/// that does not divide typical item counts, and every available core.
fn job_grid() -> [Jobs; 4] {
    [Jobs::serial(), Jobs::of(2), Jobs::of(7), Jobs::max()]
}

fn paper_setup() -> (TxGrid, Vec<Pose>) {
    let room = Room::paper_simulation();
    let grid = TxGrid::paper(&room);
    let rxs = vec![
        Pose::face_up(0.92, 0.92, 0.8),
        Pose::face_up(1.65, 0.65, 0.8),
        Pose::face_up(0.72, 1.93, 0.8),
        Pose::face_up(1.99, 1.69, 0.8),
    ];
    (grid, rxs)
}

/// Bit-exact equality for gain vectors: `==` on f64 would also pass for
/// `-0.0 == 0.0`, so compare the raw bit patterns.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x:?} vs {y:?})"
        );
    }
}

#[test]
fn channel_matrix_is_bitwise_identical_for_any_worker_count() {
    let (grid, rxs) = paper_setup();
    let optics = RxOptics::paper();
    let reference =
        ChannelMatrix::compute_par(&grid, &rxs, 15f64.to_radians(), &optics, Jobs::serial());
    for jobs in job_grid() {
        let h = ChannelMatrix::compute_par(&grid, &rxs, 15f64.to_radians(), &optics, jobs);
        assert_eq!(h.n_tx(), reference.n_tx());
        assert_eq!(h.n_rx(), reference.n_rx());
        for t in 0..h.n_tx() {
            assert_bits_eq(
                h.tx_row(t),
                reference.tx_row(t),
                &format!("H row {t} at jobs={jobs}"),
            );
        }
    }
}

#[test]
fn nlos_integrals_are_bitwise_identical_for_any_worker_count() {
    let room = Room::paper_simulation();
    let cfg = NlosConfig::default();
    let optics = RxOptics::paper();
    // Two ceiling TXs (sync path: leader flashes, follower's photodiode
    // listens via the floor bounce) and one upward-facing data receiver.
    let leader = Pose::ceiling(0.6, 0.6, room.height);
    let follower = Pose::ceiling(1.8, 1.4, room.height);
    let rx = Pose::face_up(1.2, 1.0, 0.8);

    let floor_ref = floor_bounce_gain_par(
        &leader,
        &follower,
        1.0,
        &optics,
        &room,
        &cfg,
        Jobs::serial(),
    );
    let wall_ref = wall_bounce_gain_par(&leader, &rx, 1.0, &optics, &room, &cfg, Jobs::serial());
    assert!(floor_ref > 0.0 && wall_ref > 0.0);

    for jobs in job_grid() {
        let floor = floor_bounce_gain_par(&leader, &follower, 1.0, &optics, &room, &cfg, jobs);
        let wall = wall_bounce_gain_par(&leader, &rx, 1.0, &optics, &room, &cfg, jobs);
        assert_eq!(
            floor.to_bits(),
            floor_ref.to_bits(),
            "floor bounce differs at jobs={jobs}"
        );
        assert_eq!(
            wall.to_bits(),
            wall_ref.to_bits(),
            "wall bounce differs at jobs={jobs}"
        );
    }
}

#[test]
fn optimal_solver_report_is_bitwise_identical_for_any_worker_count() {
    let (grid, rxs) = paper_setup();
    let h = ChannelMatrix::compute_par(
        &grid,
        &rxs,
        15f64.to_radians(),
        &RxOptics::paper(),
        Jobs::serial(),
    );
    let model = SystemModel::paper(h);
    let solver = OptimalSolver::quick();

    let reference = solver.solve_jobs(&model, 1.2, Jobs::serial());
    assert!(reference.objective.is_finite());
    for jobs in job_grid() {
        let report = solver.solve_jobs(&model, 1.2, jobs);
        assert_bits_eq(
            report.allocation.as_slice(),
            reference.allocation.as_slice(),
            &format!("allocation at jobs={jobs}"),
        );
        assert_eq!(report.objective.to_bits(), reference.objective.to_bits());
        assert_eq!(report.power_w.to_bits(), reference.power_w.to_bits());
        assert_eq!(report.iterations, reference.iterations);
    }
}

#[test]
fn exhaustive_search_is_bitwise_identical_for_any_worker_count() {
    // Small enough for (M+1)^N enumeration: 6 TX, 2 RX on a coarse grid.
    let room = Room::paper_simulation();
    let grid = TxGrid::centered(&room, 3, 2, 0.8);
    let rxs = vec![Pose::face_up(0.8, 0.9, 0.8), Pose::face_up(1.9, 1.5, 0.8)];
    let h = ChannelMatrix::compute_par(
        &grid,
        &rxs,
        15f64.to_radians(),
        &RxOptics::paper(),
        Jobs::serial(),
    );
    let model = SystemModel::paper(h);

    let reference = exhaustive_binary_jobs(&model, 0.9, 1_000, Jobs::serial());
    for jobs in job_grid() {
        let result = exhaustive_binary_jobs(&model, 0.9, 1_000, jobs);
        assert_bits_eq(
            result.allocation.as_slice(),
            reference.allocation.as_slice(),
            &format!("exhaustive best at jobs={jobs}"),
        );
        assert_eq!(result.objective.to_bits(), reference.objective.to_bits());
        assert_eq!(result.evaluated, reference.evaluated);
    }
}

/// Whole experiments driven through the `DENSEVLC_JOBS` environment knob:
/// the rendered report (the text behind the paper figure / the CSV rows)
/// must be byte-identical at every worker count. Env mutation stays inside
/// this single test; every other test in this binary passes `Jobs`
/// explicitly, so nothing races on the process environment.
#[test]
fn experiment_reports_are_identical_across_the_jobs_env_knob() {
    use densevlc::experiments::{fig08_throughput_vs_power, fig21_baselines};
    use vlc_testbed::Scenario;

    let run_both = || {
        (
            fig08_throughput_vs_power::run(&[0.3], 2, 8).report(),
            fig21_baselines::run(Scenario::Two).report(),
        )
    };

    std::env::set_var(JOBS_ENV, "1");
    let reference = run_both();
    for setting in ["2", "7", "max"] {
        std::env::set_var(JOBS_ENV, setting);
        let got = run_both();
        assert_eq!(
            got, reference,
            "experiment reports differ at {JOBS_ENV}={setting}"
        );
    }
    std::env::remove_var(JOBS_ENV);
    assert_eq!(run_both(), reference, "reports differ at {JOBS_ENV} unset");
}
