//! Golden-trace snapshots for three anchor experiments (Fig. 8, Fig. 11,
//! Fig. 21). Each experiment's result is rendered to JSON with exact
//! (`{:?}`) float formatting — which round-trips f64 bit patterns — and
//! compared byte-for-byte against `tests/golden/*.json`.
//!
//! Together with `tests/par_determinism.rs` this pins the full numeric
//! output of the pipeline: any reassociation, reordering, or seed change
//! anywhere in channel → allocator → experiment shows up as a golden diff.
//!
//! Regenerating after an *intentional* numeric change:
//!
//! ```text
//! DENSEVLC_GOLDEN_REGEN=1 cargo test --test golden_traces
//! git diff tests/golden/   # review the numeric drift, then commit
//! ```

use densevlc::experiments::{
    fig08_throughput_vs_power, fig11_heuristic_verification, fig21_baselines,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use vlc_testbed::Scenario;

/// Env var: when set (to anything non-empty), tests rewrite the golden
/// files instead of comparing against them.
const REGEN_ENV: &str = "DENSEVLC_GOLDEN_REGEN";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Exact JSON rendering of an f64: `{:?}` prints the shortest decimal that
/// round-trips the bit pattern. Non-finite values (JSON has none) are
/// quoted so a snapshot can still capture them.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        format!("\"{v:?}\"")
    }
}

fn jlist(vs: &[f64]) -> String {
    let inner: Vec<String> = vs.iter().map(|&v| jnum(v)).collect();
    format!("[{}]", inner.join(","))
}

fn jpair(p: (f64, f64)) -> String {
    format!("[{},{}]", jnum(p.0), jnum(p.1))
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var(REGEN_ENV)
        .map(|v| !v.is_empty())
        .unwrap_or(false)
    {
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `{REGEN_ENV}=1 cargo test --test golden_traces` \
             to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden.as_str(),
        "{name} drifted from its golden snapshot; if the numeric change is intentional, \
         regenerate with `{REGEN_ENV}=1 cargo test --test golden_traces` and review the diff"
    );
}

#[test]
fn fig08_trace_matches_golden() {
    let fig = fig08_throughput_vs_power::run(&[0.3, 1.2], 3, 0xF168);
    let mut s = String::new();
    write!(s, "{{\"instances\":{},\"points\":[", fig.instances).unwrap();
    for (i, p) in fig.points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let per_rx: Vec<String> = p.per_rx_bps.iter().map(|&pr| jpair(pr)).collect();
        write!(
            s,
            "{{\"budget_w\":{},\"system_bps\":{},\"per_rx_bps\":[{}]}}",
            jnum(p.budget_w),
            jpair(p.system_bps),
            per_rx.join(",")
        )
        .unwrap();
    }
    s.push_str("]}\n");
    check("fig08.json", &s);
}

#[test]
fn fig11_trace_matches_golden() {
    let fig = fig11_heuristic_verification::run(&[0.6, 1.2], 3, 1.2, 0xF11);
    let mut s = String::new();
    write!(
        s,
        "{{\"curves\":{{\"budgets_w\":{},\"optimal_bps\":{},\"heuristic_bps\":[",
        jlist(&fig.curves.budgets_w),
        jlist(&fig.curves.optimal_bps)
    )
    .unwrap();
    for (i, (kappa, bps)) in fig.curves.heuristic_bps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(s, "[{},{}]", jnum(*kappa), jlist(bps)).unwrap();
    }
    s.push_str("]},\"losses\":[");
    for (i, (kappa, losses)) in fig.losses.losses.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(s, "[{},{}]", jnum(*kappa), jlist(losses)).unwrap();
    }
    s.push_str("]}\n");
    check("fig11.json", &s);
}

#[test]
fn fig21_trace_matches_golden() {
    let fig = fig21_baselines::run(Scenario::Two);
    let mut s = String::new();
    s.push_str("{\"densevlc_curve\":[");
    for (i, p) in fig.densevlc_curve.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(
            s,
            "{{\"power_w\":{},\"per_rx_bps\":{},\"system_bps\":{},\"objective\":{},\"active_txs\":{}}}",
            jnum(p.power_w),
            jlist(&p.per_rx_bps),
            jnum(p.system_bps),
            jnum(p.objective),
            p.active_txs
        )
        .unwrap();
    }
    writeln!(
        s,
        "],\"siso\":{},\"dmiso\":{},\"densevlc_power_at_dmiso_w\":{},\
         \"efficiency_gain\":{},\"throughput_gain_vs_siso\":{}}}",
        jpair(fig.siso),
        jpair(fig.dmiso),
        jnum(fig.densevlc_power_at_dmiso_w),
        jnum(fig.efficiency_gain),
        jnum(fig.throughput_gain_vs_siso)
    )
    .unwrap();
    check("fig21.json", &s);
}
