//! Golden snapshot of the reduced codec campaign: the full
//! `densevlc-codec-campaign/1` report — every cell's PER, overhead, and
//! corrected count, plus the PER-vs-overhead frontiers — rendered with
//! exact (`{:?}`) float formatting and compared byte-for-byte against
//! `tests/golden/codec_campaign.json`.
//!
//! Together with the determinism test in `crates/bench/tests/` this pins
//! the campaign end to end: any change to a codec stack, a noise
//! injector's draw order, the Q-function approximation, or the vendored
//! RNG shows up as a golden diff.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! DENSEVLC_GOLDEN_REGEN=1 cargo test --test codec_campaign_golden
//! git diff tests/golden/   # review the drift, then commit
//! ```

use std::path::PathBuf;
use vlc_bench::codec_lab::{CampaignConfig, CampaignReport};
use vlc_par::{Jobs, Pool};

const REGEN_ENV: &str = "DENSEVLC_GOLDEN_REGEN";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var(REGEN_ENV)
        .map(|v| !v.is_empty())
        .unwrap_or(false)
    {
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `{REGEN_ENV}=1 cargo test --test \
             codec_campaign_golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden.as_str(),
        "{name} drifted from its golden snapshot; if the change is intentional, regenerate \
         with `{REGEN_ENV}=1 cargo test --test codec_campaign_golden` and review the diff"
    );
}

#[test]
fn reduced_campaign_matches_golden() {
    let cfg = CampaignConfig::reduced();
    let report = CampaignReport::run(&cfg, &Pool::new(Jobs::from_env()));
    check("codec_campaign.json", &report.to_json());
}
