//! Integration: the *physical* channel-measurement loop. Instead of handing
//! the controller synthetic SNRs, each TX's sounding pilot is rendered as a
//! waveform, attenuated by the Lambertian channel, mixed with receiver
//! noise, measured with the M2M4 estimator (exactly what the testbed's
//! §7.2 software does), and reported. The controller's plan on these
//! *measured* channels must closely match its plan on the ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vlc_channel::AwgnChannel;
use vlc_led::power::optical_swing_amplitude;
use vlc_led::LedParams;
use vlc_mac::protocol::ChannelReport;
use vlc_mac::{Controller, ControllerConfig};
use vlc_phy::manchester::manchester_encode;
use vlc_phy::snr::m2m4_snr;
use vlc_phy::waveform::{render, WaveformConfig};
use vlc_testbed::{Deployment, Scenario};

/// Renders TX `tx`'s pilot as received by RX `rx` and estimates its SNR.
fn measure_link(
    d: &Deployment,
    tx: usize,
    rx: usize,
    awgn: &mut AwgnChannel,
    rng: &mut StdRng,
) -> f64 {
    let cfg = WaveformConfig::paper();
    // A 64-byte sounding stream gives the M2M4 estimator ~10k samples.
    let pilot = manchester_encode(&[0x5A; 64]);
    let led = LedParams::cree_xte_paper();
    let amp = 0.40 * d.model.channel.gain(tx, rx) * optical_swing_amplitude(&led, led.max_swing);
    let n = pilot.len() * 10;
    let mut samples = render(&pilot, &cfg, amp, 0.0, n);
    for s in samples.iter_mut() {
        *s += awgn.sample(rng);
    }
    match m2m4_snr(&samples) {
        Some(est) if est.snr.is_finite() => est.snr,
        _ => 0.0,
    }
}

#[test]
fn measured_sounding_reproduces_the_truth_plan() {
    let d = Deployment::scenario(Scenario::Two);
    let mut rng = StdRng::seed_from_u64(0x500D);
    let mut awgn = AwgnChannel::new(d.model.noise);

    // Full TDM sounding sweep: every TX measured by every RX.
    let mut ctl = Controller::new(ControllerConfig::paper(1.2), 36, 4);
    for rx in 0..4 {
        let snr_per_tx: Vec<f64> = (0..36)
            .map(|tx| measure_link(&d, tx, rx, &mut awgn, &mut rng))
            .collect();
        ctl.ingest_report(ChannelReport { rx, snr_per_tx });
    }
    assert!(ctl.all_reported());

    // Calibration constant: receiver amplitude per unit gain over noise RMS.
    let led = LedParams::cree_xte_paper();
    let cal = 0.40 * optical_swing_amplitude(&led, led.max_swing) / d.model.noise.noise_rms();
    let estimated = ctl.estimated_channel(cal);

    // Measured gains track the truth for every link that matters (strong
    // links within 20 %; weak links may vanish below the noise floor).
    let truth = &d.model.channel;
    for rx in 0..4 {
        let best = truth.best_tx_for(rx);
        let est = estimated.gain(best, rx);
        let tru = truth.gain(best, rx);
        assert!(
            (est - tru).abs() / tru < 0.2,
            "RX{}: best-link gain measured {est:e} vs true {tru:e}",
            rx + 1
        );
    }

    // The plan from measurements serves everyone and overlaps the truth
    // plan in its TX selection (weak-tail links may differ).
    let plan_measured = ctl.plan(&estimated);
    let plan_truth = ctl.plan(truth);
    assert_eq!(plan_measured.beamspots.len(), 4, "an RX went unserved");
    let measured_txs = plan_measured.active_txs();
    let truth_txs = plan_truth.active_txs();
    let overlap = measured_txs
        .iter()
        .filter(|t| truth_txs.contains(t))
        .count();
    assert!(
        overlap * 10 >= truth_txs.len() * 8,
        "plans diverged: measured {measured_txs:?} vs truth {truth_txs:?}"
    );

    // And the measured plan's realized throughput (on the *true* channel)
    // is within a few percent of the truth plan's.
    let t_measured = d.model.system_throughput(&plan_measured.allocation);
    let t_truth = d.model.system_throughput(&plan_truth.allocation);
    assert!(
        t_measured > 0.9 * t_truth,
        "throughput {t_measured} vs {t_truth} under the truth plan"
    );
}

#[test]
fn weak_links_measure_as_zero_not_garbage() {
    let d = Deployment::scenario(Scenario::One);
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let mut awgn = AwgnChannel::new(d.model.noise);
    // A far-corner TX to the opposite-corner RX: physically negligible.
    let snr = measure_link(&d, 35, 0, &mut awgn, &mut rng);
    assert!(snr < 1.0, "impossible link measured snr {snr}");
}
