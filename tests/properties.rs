//! Cross-crate property tests: invariants that must hold for arbitrary
//! channel realizations, budgets and payloads.

use proptest::prelude::*;
use vlc_alloc::heuristic::{heuristic_allocation, rank_by_sjr};
use vlc_alloc::model::SystemModel;
use vlc_alloc::HeuristicConfig;
use vlc_channel::ChannelMatrix;
use vlc_led::power::{communication_power_avg, dynamic_resistance};
use vlc_led::LedParams;
use vlc_phy::frame::{Frame, FrameHeader};
use vlc_phy::manchester::{manchester_decode, manchester_encode};
use vlc_phy::rs::ReedSolomon;

/// Strategy: a random (n_tx × n_rx) channel with gains in the physical
/// range of the paper's geometry.
fn channel_strategy() -> impl Strategy<Value = ChannelMatrix> {
    (2usize..=12, 2usize..=4).prop_flat_map(|(n_tx, n_rx)| {
        proptest::collection::vec(0.0f64..2e-6, n_tx * n_rx)
            .prop_map(move |gains| ChannelMatrix::from_gains(n_tx, n_rx, gains))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SJR ranking is always a permutation of the TXs with
    /// non-increasing scores, regardless of the channel.
    #[test]
    fn ranking_is_always_a_permutation(
        channel in channel_strategy(),
        kappa in 0.8f64..2.0,
    ) {
        let ranking = rank_by_sjr(&channel, &HeuristicConfig::with_kappa(kappa));
        prop_assert_eq!(ranking.len(), channel.n_tx());
        let mut seen = vec![false; channel.n_tx()];
        for entry in &ranking {
            prop_assert!(!seen[entry.tx]);
            seen[entry.tx] = true;
            prop_assert!(entry.rx < channel.n_rx());
            prop_assert!(entry.sjr >= 0.0);
        }
        for w in ranking.windows(2) {
            prop_assert!(w[0].sjr >= w[1].sjr);
        }
    }

    /// The heuristic allocation never violates the swing bound or the power
    /// budget, for any channel and budget.
    #[test]
    fn heuristic_is_always_feasible(
        channel in channel_strategy(),
        budget_mw in 0.0f64..3000.0,
    ) {
        let led = LedParams::cree_xte_paper();
        let budget_w = budget_mw / 1e3;
        let alloc = heuristic_allocation(
            &channel, &led, budget_w, &HeuristicConfig::paper());
        let r = dynamic_resistance(&led);
        let mut power = 0.0;
        for t in 0..alloc.n_tx() {
            let s = alloc.tx_total_swing(t);
            prop_assert!(s <= led.max_swing + 1e-12);
            power += r * (s / 2.0) * (s / 2.0);
        }
        prop_assert!(power <= budget_w + 1e-9);
    }

    /// SINR values are finite and non-negative for any allocation the
    /// heuristic can produce, and zero-swing receivers have zero SINR.
    #[test]
    fn sinr_is_well_defined(
        channel in channel_strategy(),
        budget_mw in 1.0f64..2000.0,
    ) {
        let model = SystemModel::paper(channel);
        let alloc = heuristic_allocation(
            &model.channel, &model.led, budget_mw / 1e3, &HeuristicConfig::paper());
        for (rx, s) in model.sinr(&alloc).into_iter().enumerate() {
            prop_assert!(s.is_finite() && s >= 0.0, "RX{rx}: SINR {s}");
        }
        prop_assert!(model.comm_power(&alloc).is_finite());
    }

    /// Power model: the Taylor communication power is monotone in the swing
    /// and exactly quadratic (doubling the swing quadruples the power).
    #[test]
    fn comm_power_is_quadratic(swing in 0.0f64..0.45) {
        let led = LedParams::cree_xte_paper();
        let p1 = communication_power_avg(&led, swing);
        let p2 = communication_power_avg(&led, swing * 2.0);
        prop_assert!((p2 - 4.0 * p1).abs() < 1e-12);
    }

    /// Frame → Manchester chips → decode → parse is the identity for any
    /// payload and header (the full digital TX/RX path minus the analog
    /// stages, which have their own tests).
    #[test]
    fn digital_path_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..500),
        dst in any::<u16>(),
        src in any::<u16>(),
        proto in any::<u16>(),
    ) {
        let rs = ReedSolomon::paper();
        let frame = Frame::new(
            0xFFFF, FrameHeader { dst, src, protocol: proto }, payload);
        let chips = manchester_encode(&frame.to_bytes(&rs));
        let bytes = manchester_decode(&chips).expect("valid chips");
        let (parsed, fixed) = Frame::from_bytes(&bytes, &rs).expect("clean frame");
        prop_assert_eq!(parsed, frame);
        prop_assert_eq!(fixed, 0);
    }
}
