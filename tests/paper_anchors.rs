//! Integration: the paper's headline numbers, checked end to end. These are
//! the "does the reproduction actually reproduce" tests — each assertion
//! cites the anchor it targets. Runs use reduced instance counts to stay
//! fast; `cargo run -p vlc-bench --bin run_all` prints the full-scale rows.

use densevlc::experiments::*;
use vlc_led::LedParams;
use vlc_testbed::Scenario;

/// Fig. 4: ≈ 0.45 % Taylor error at the 900 mA maximum swing.
#[test]
fn fig04_taylor_error_anchor() {
    let fig = fig04_taylor_error::run(&LedParams::cree_xte_paper(), 90);
    assert!(
        (fig.error_at_max_pct - 0.45).abs() < 0.15,
        "{}",
        fig.error_at_max_pct
    );
}

/// §4 illuminance: 564 lux average, 74 % uniformity, ISO 8995-1 pass.
#[test]
fn fig05_illuminance_anchor() {
    let fig = fig05_illuminance::run(&LedParams::cree_xte_paper(), 5);
    assert!((fig.simulation.average_lux - 564.0).abs() < 20.0);
    assert!((fig.simulation.uniformity - 0.74).abs() < 0.05);
    assert!(fig.simulation.meets_iso_8995() && fig.testbed.meets_iso_8995());
}

/// §4.2: one full-swing TX consumes 74.42 mW of communication power, so
/// D-MISO's 36 TXs land at 2.68 W and SISO's four at 298 mW.
#[test]
fn power_accounting_anchors() {
    use vlc_led::power::full_swing_power;
    let p = full_swing_power(&LedParams::cree_xte_paper());
    assert!((p - 0.07442).abs() < 2e-4, "PC,tx,max {p}");
    assert!((36.0 * p - 2.68).abs() < 0.01);
    assert!((4.0 * p - 0.298).abs() < 0.003);
}

/// Table 4: sync error medians 10.040 / 4.565 / 0.575 µs.
#[test]
fn tab04_sync_error_anchor() {
    let t = tab04_sync_error::run(150, 7);
    assert!(
        (t.no_sync_s * 1e6 - 10.040).abs() < 4.0,
        "no-sync {}",
        t.no_sync_s
    );
    assert!(
        (t.ntp_ptp_s * 1e6 - 4.565).abs() < 2.0,
        "ntp {}",
        t.ntp_ptp_s
    );
    assert!(
        (t.nlos_vlc_s * 1e6 - 0.575).abs() < 0.3,
        "nlos {}",
        t.nlos_vlc_s
    );
}

/// Table 5: ~34 kb/s for synced rows, total collapse without sync.
#[test]
fn tab05_iperf_anchor() {
    let t = tab05_iperf::run(40, 8);
    assert!((t.two_tx.goodput_bps / 1e3 - 33.9).abs() < 4.0);
    assert!(t.two_tx.per < 0.05);
    assert!(
        t.four_tx_no_sync.per > 0.9,
        "no-sync PER {}",
        t.four_tx_no_sync.per
    );
    assert!((t.four_tx_nlos.goodput_bps / 1e3 - 33.8).abs() < 4.0);
    assert!(t.four_tx_nlos.per < 0.05);
}

/// Fig. 21: ≈ 2.3× power efficiency over D-MISO, with the match point near
/// the paper's 1.19 W, and a positive throughput gain over SISO.
#[test]
fn fig21_efficiency_anchor() {
    let fig = fig21_baselines::run(Scenario::Two);
    assert!(
        (fig.efficiency_gain - 2.3).abs() < 0.5,
        "efficiency gain {}",
        fig.efficiency_gain
    );
    assert!(
        (fig.densevlc_power_at_dmiso_w - 1.19).abs() < 0.3,
        "match point {} W",
        fig.densevlc_power_at_dmiso_w
    );
    assert!(
        fig.throughput_gain_vs_siso > 0.3,
        "{}",
        fig.throughput_gain_vs_siso
    );
}

/// §5: the heuristic reduces complexity by ~99.96 % at a few percent
/// throughput loss.
#[test]
fn complexity_anchor() {
    let c = complexity::run(1.2, 1, 2_000);
    assert!(c.reduction > 0.99, "reduction {}", c.reduction);
    assert!(c.throughput_loss.abs() < 0.10, "loss {}", c.throughput_loss);
}

/// §6.1: NTP/PTP tops out around 14.28 Ksymbols/s at 10 % overlap.
#[test]
fn fig12_rate_limit_anchor() {
    let fig = fig12_sync_delay::run(&[14.28e3], 4_001, 9);
    assert!((10_000.0..20_000.0).contains(&fig.ntp_max_rate_hz));
    // And at that rate the delay is near 10 % of the 70 µs symbol.
    assert!(
        (fig.ntp_ptp_s[0] - 7e-6).abs() < 2e-6,
        "{}",
        fig.ntp_ptp_s[0]
    );
}

/// Fig. 11: κ = 1.3 tracks the optimum within a few percent on average.
#[test]
fn fig11_kappa_loss_anchor() {
    let fig = fig11_heuristic_verification::run(&[0.6, 1.2], 6, 1.2, 10);
    let loss = fig.mean_loss(1.3);
    assert!(loss < 0.08, "κ=1.3 loss {loss} (paper: 1.8 %)");
    // κ = 1.0 is clearly worse than the tuned values.
    assert!(fig.mean_loss(1.0) > loss);
}
