//! The trace→profile determinism contract, end to end: running the
//! library's standard bench probes under a [`ManualClock`] tracer, the
//! resulting `densevlc-prof/1` profile — and therefore its JSON document,
//! folded-stack rendering, and SVG flamegraph — is byte-identical at any
//! `DENSEVLC_JOBS`. Also pins the profiler's core accounting invariant
//! (Σ self-time == Σ root inclusive, exactly, since durations are exact
//! under a manual clock) and the JSON/folded round trips on real data.

use vlc_bench::probes::{phase_probe, phy_probe};
use vlc_par::{Jobs, Pool};
use vlc_prof::{parse_folded, to_folded, Profile};
use vlc_telemetry::ManualClock;
use vlc_trace::Tracer;

/// Worker counts exercised: sequential, even split, a count that does not
/// divide typical item counts, and every available core.
fn job_grid() -> [Jobs; 4] {
    [Jobs::serial(), Jobs::of(2), Jobs::of(7), Jobs::max()]
}

/// Runs the standard phase probes (the exact workload `run_all` profiles)
/// under a manual clock and folds the trace into a profile.
fn probe_profile(jobs: Jobs) -> Profile {
    let tracer = Tracer::with_clock(ManualClock::new());
    phase_probe(&tracer, &Pool::new(jobs));
    phy_probe(&tracer);
    Profile::from_snapshot(&tracer.snapshot(), jobs.get())
}

#[test]
fn folded_output_is_byte_identical_for_any_worker_count() {
    let reference = probe_profile(Jobs::serial());
    assert!(
        reference.nodes.len() > 20,
        "the probes produce a real call tree ({} paths)",
        reference.nodes.len()
    );
    let reference_folded = to_folded(&reference);
    for jobs in job_grid() {
        let profile = probe_profile(jobs);
        assert_eq!(
            to_folded(&profile),
            reference_folded,
            "folded stacks differ at jobs={jobs}"
        );
    }
}

#[test]
fn profile_json_is_byte_identical_for_any_worker_count() {
    // `jobs` is recorded in the document header, so compare at a pinned
    // value: the *nodes* must not depend on who ran the work.
    let reference = {
        let mut p = probe_profile(Jobs::serial());
        p.jobs = 1;
        p.to_json()
    };
    for jobs in [Jobs::of(2), Jobs::of(7), Jobs::max()] {
        let mut p = probe_profile(jobs);
        p.jobs = 1;
        assert_eq!(
            p.to_json(),
            reference,
            "profile JSON differs at jobs={jobs}"
        );
    }
}

#[test]
fn self_time_telescopes_to_root_inclusive_under_manual_clock() {
    // Under ManualClock every span's wall time is exact, so the telescoped
    // sum is exact arithmetic re-grouped — float noise only.
    for jobs in job_grid() {
        let profile = probe_profile(jobs);
        let self_s = profile.total_self_s();
        let root_s = profile.total_root_s();
        assert!(
            (self_s - root_s).abs() <= 1e-9 * root_s.abs().max(1.0),
            "sum(self) {self_s} != sum(roots) {root_s} at jobs={jobs}"
        );
    }
}

#[test]
fn child_indexed_fanout_aggregates_and_still_telescopes() {
    // The probes' `sync.pilot_round` spans are created via child_indexed;
    // all four rounds must merge into one path whose call count is the
    // fan-out width, and their time must land in the parent's self-time
    // deficit (not vanish).
    let profile = probe_profile(Jobs::of(3));
    let round = profile
        .nodes
        .iter()
        .find(|n| n.path.ends_with(";sync.pilot_round"))
        .expect("fan-out path present");
    assert_eq!(round.calls, 4, "4 indexed rounds merge into one path");
    let parent = profile
        .node("bench.phase_probe")
        .expect("probe root present");
    assert!(
        parent.incl_s >= round.incl_s,
        "children are contained in the root's inclusive time"
    );
}

#[test]
fn json_and_folded_round_trip_on_probe_data() {
    let profile = probe_profile(Jobs::of(2));

    let parsed = Profile::from_json(&profile.to_json()).expect("own JSON parses");
    assert_eq!(parsed, profile, "JSON round trip is lossless");

    let folded = to_folded(&profile);
    let lines = parse_folded(&folded).expect("own folded output parses");
    assert_eq!(
        lines.len(),
        profile.nodes.len(),
        "one folded line per profile path"
    );
    // Every folded stack re-joins to a known profile path.
    for line in &lines {
        let path = line.frames.join(";");
        assert!(
            profile.node(&path).is_some(),
            "folded stack `{path}` missing from the profile"
        );
    }
}
