//! Property tests for the DSP substrate: FFT, OFDM modem, analog
//! front-end stability, and waveform tooling — the pieces every
//! symbol-level result rests on.

use proptest::prelude::*;
use vlc_phy::fft::{fft, ifft, Complex};
use vlc_phy::frontend::{AcCoupler, Butterworth7, FrontEnd};
use vlc_phy::manchester::{manchester_encode, Chip};
use vlc_phy::ofdm::{OfdmModem, QamOrder};
use vlc_phy::waveform::{render, slice_chips, WaveformConfig};

fn arb_complex_vec(log2_len: std::ops::Range<u32>) -> impl Strategy<Value = Vec<Complex>> {
    log2_len.prop_flat_map(|bits| {
        let n = 1usize << bits;
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT followed by IFFT is the identity for arbitrary inputs and all
    /// power-of-two sizes.
    #[test]
    fn fft_ifft_identity(data in arb_complex_vec(1..9)) {
        let mut x = data.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-6, "round-trip drift");
        }
    }

    /// Parseval: the FFT preserves energy (up to the 1/N convention).
    #[test]
    fn fft_preserves_energy(data in arb_complex_vec(2..8)) {
        let n = data.len() as f64;
        let time: f64 = data.iter().map(|v| v.norm_sq()).sum();
        let mut spec = data;
        fft(&mut spec);
        let freq: f64 = spec.iter().map(|v| v.norm_sq()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-6 * time.max(1.0));
    }

    /// The OFDM modem round-trips arbitrary whole-symbol payloads for both
    /// constellations on a clean channel.
    #[test]
    fn ofdm_roundtrip(
        seed_bits in proptest::collection::vec(any::<bool>(), 0..4),
        n_syms in 1usize..5,
        qam16 in any::<bool>(),
    ) {
        let order = if qam16 { QamOrder::Qam16 } else { QamOrder::Qam4 };
        let modem = OfdmModem { order, ..OfdmModem::vlc_default() };
        let bps = modem.bits_per_ofdm_symbol();
        // Deterministic filler derived from the seed bits.
        let bits: Vec<bool> = (0..n_syms * bps)
            .map(|i| seed_bits.get(i % seed_bits.len().max(1)).copied().unwrap_or(false) ^ (i % 3 == 0))
            .collect();
        let samples = modem.modulate(&bits).expect("whole symbols");
        prop_assert_eq!(samples.len(), n_syms * modem.samples_per_symbol());
        let decoded = modem.demodulate(&samples, 1.0).expect("aligned");
        prop_assert_eq!(decoded, bits);
    }

    /// OFDM waveforms always respect the intensity constraints regardless
    /// of payload: non-negative and within twice the bias.
    #[test]
    fn ofdm_waveform_stays_in_the_led_range(
        n_syms in 1usize..6,
        flip in any::<u64>(),
    ) {
        let modem = OfdmModem::vlc_default();
        let bps = modem.bits_per_ofdm_symbol();
        let bits: Vec<bool> =
            (0..n_syms * bps).map(|i| (flip >> (i % 64)) & 1 == 1).collect();
        let samples = modem.modulate(&bits).expect("whole symbols");
        for &s in &samples {
            prop_assert!((0.0..=2.0).contains(&s), "intensity {s} out of range");
        }
    }

    /// The analog front-end is BIBO stable: bounded photocurrent inputs
    /// never produce unbounded (or non-finite) outputs.
    #[test]
    fn frontend_is_bibo_stable(
        input in proptest::collection::vec(-1e-3f64..1e-3, 64..512),
    ) {
        let fe = FrontEnd::paper();
        let mut s = input;
        fe.process(&mut s);
        for &v in &s {
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() <= fe.adc.full_scale + 1e-9, "output {v} beyond ADC range");
        }
    }

    /// Each filter stage alone maps finite input to finite output.
    #[test]
    fn filters_never_produce_nan(
        input in proptest::collection::vec(-1e3f64..1e3, 32..256),
    ) {
        let mut a = input.clone();
        AcCoupler::paper().process(&mut a);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        let mut b = input;
        Butterworth7::paper().process(&mut b);
        prop_assert!(b.iter().all(|v| v.is_finite()));
    }

    /// Rendering then slicing recovers any chip stream, for any byte
    /// payload and positive amplitude.
    #[test]
    fn render_slice_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        amp_exp in -8i32..0,
    ) {
        let cfg = WaveformConfig::paper();
        let chips = manchester_encode(&payload);
        let amp = 10f64.powi(amp_exp);
        let w = render(&chips, &cfg, amp, 0.0, chips.len() * 10 + 4);
        let got: Vec<Chip> =
            slice_chips(&w, &cfg, 0, chips.len()).expect("stream long enough");
        prop_assert_eq!(got, chips);
    }
}
