//! The vlc-trace determinism contract, end to end: under a [`ManualClock`]
//! the *recorded span tree* — names, parent/child structure, structural
//! ids, and attributes — is identical for any worker count. Lanes
//! (`track`) are scheduling metadata and explicitly excluded; everything
//! `tree_string` renders is covered.
//!
//! Also pins the zero-cost default: entry points called without a live
//! parent span record no spans at all.

use vlc_alloc::heuristic::heuristic_allocation_traced;
use vlc_alloc::model::SystemModel;
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_channel::nlos::{floor_bounce_gain_traced, wall_bounce_gain_traced, NlosConfig};
use vlc_channel::{ChannelMatrix, RxOptics};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_led::LedParams;
use vlc_par::Jobs;
use vlc_telemetry::{ManualClock, Registry};
use vlc_trace::{Span, TraceSnapshot, Tracer};

/// Worker counts exercised: sequential, even split, a count that does not
/// divide typical item counts, and every available core.
fn job_grid() -> [Jobs; 4] {
    [Jobs::serial(), Jobs::of(2), Jobs::of(7), Jobs::max()]
}

/// Runs every traced parallel layer under one root and returns the
/// snapshot: channel sounding, both NLOS quadratures, the heuristic
/// allocator, and the optimal solver's multi-start fan-out.
fn traced_workload(jobs: Jobs) -> TraceSnapshot {
    let tracer = Tracer::with_clock(ManualClock::new());
    let root = tracer.root("workload");

    let room = Room::paper_simulation();
    let grid = TxGrid::paper(&room);
    let rxs = vec![
        Pose::face_up(0.92, 0.92, 0.8),
        Pose::face_up(1.65, 0.65, 0.8),
        Pose::face_up(0.72, 1.93, 0.8),
        Pose::face_up(1.99, 1.69, 0.8),
    ];
    let optics = RxOptics::paper();
    let h = ChannelMatrix::compute_with_blockage_traced(
        &grid,
        &rxs,
        15f64.to_radians(),
        &optics,
        &[],
        jobs,
        &root,
    );

    let cfg = NlosConfig::default();
    let leader = Pose::ceiling(0.6, 0.6, room.height);
    let follower = Pose::ceiling(1.8, 1.4, room.height);
    floor_bounce_gain_traced(&leader, &follower, 1.0, &optics, &room, &cfg, jobs, &root);
    let rx = Pose::face_up(1.2, 1.0, 0.8);
    wall_bounce_gain_traced(&leader, &rx, 1.0, &optics, &room, &cfg, jobs, &root);

    let model = SystemModel::paper(h);
    let quiet = Registry::noop();
    heuristic_allocation_traced(
        &model.channel,
        &LedParams::cree_xte_paper(),
        1.2,
        &HeuristicConfig::paper(),
        &quiet,
        &root,
    );
    OptimalSolver::quick().solve_traced_jobs(&model, 1.2, &quiet, jobs, &root);

    drop(root);
    tracer.snapshot()
}

#[test]
fn span_tree_is_identical_for_any_worker_count() {
    let reference = traced_workload(Jobs::serial());
    assert!(
        reference.len() > 50,
        "workload records a real tree ({} spans)",
        reference.len()
    );
    let reference_tree = reference.tree_string();
    for jobs in job_grid() {
        let snap = traced_workload(jobs);
        assert_eq!(
            snap.tree_string(),
            reference_tree,
            "span tree differs at jobs={jobs}"
        );
    }
}

#[test]
fn structural_ids_and_attrs_are_identical_for_any_worker_count() {
    // tree_string covers names/structure/attrs; this pins the raw ids too
    // (everything except timing and lanes).
    type Skeleton = Vec<(u64, u64, u64, String, Vec<(String, String)>)>;
    let skeleton = |snap: &TraceSnapshot| {
        let mut v: Skeleton = snap
            .spans
            .iter()
            .map(|s| (s.id, s.parent_id, s.seq, s.name.clone(), s.attrs.clone()))
            .collect();
        v.sort();
        v
    };
    let reference = skeleton(&traced_workload(Jobs::serial()));
    for jobs in [Jobs::of(2), Jobs::max()] {
        assert_eq!(
            skeleton(&traced_workload(jobs)),
            reference,
            "span ids differ at jobs={jobs}"
        );
    }
}

#[test]
fn untraced_entry_points_record_zero_spans() {
    // The default path hands every layer a noop parent: a live tracer in
    // the same process must stay empty, and the noop registry must record
    // no events either — the instrumentation is strictly opt-in.
    let tracer = Tracer::with_clock(ManualClock::new());
    let quiet = Registry::noop();

    let mut system = densevlc::System::scenario(vlc_testbed::Scenario::Two, 1.2);
    system.adapt(); // plain, uninstrumented entry point
    system.adapt_instrumented(&quiet); // instrumented, but noop parent inside

    let snap = tracer.snapshot();
    assert_eq!(snap.len(), 0, "no spans recorded on the default path");
    assert_eq!(snap.dropped, 0);
    let t = quiet.snapshot();
    assert!(t.events.is_empty(), "no events on the noop registry");
    assert_eq!(t.events_dropped, 0);
}

#[test]
fn noop_span_children_are_free_of_record() {
    // A deep noop chain never touches a ring: ids stay None throughout.
    let root = Span::noop();
    let a = root.child("a");
    let b = a.child_indexed("b", 3);
    b.attr("k", "v");
    assert_eq!(root.id(), None);
    assert_eq!(a.id(), None);
    assert_eq!(b.id(), None);
}
