//! Integration: the full measure → report → plan → serve loop across
//! `vlc-mac`, `vlc-alloc`, `vlc-channel` and `vlc-testbed`.

use densevlc::e2e::{run_instrumented as e2e_run, E2eConfig, E2eTx};
use densevlc::{Simulation, System};
use vlc_mac::protocol::ChannelReport;
use vlc_mac::{Controller, ControllerConfig};
use vlc_sync::SyncScheme;
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};

/// The controller reconstructs (up to calibration) the channel from RX
/// reports and produces the same plan as on the ground-truth channel.
#[test]
fn report_driven_plan_matches_truth() {
    let d = Deployment::scenario(Scenario::Two);
    let truth = &d.model.channel;
    let mut ctl = Controller::new(ControllerConfig::paper(1.2), 36, 4);
    let cal = 3e6;
    for rx in 0..4 {
        let snr_per_tx: Vec<f64> = (0..36)
            .map(|tx| (cal * truth.gain(tx, rx)).powi(2))
            .collect();
        ctl.ingest_report(ChannelReport { rx, snr_per_tx });
    }
    assert!(ctl.all_reported());
    let estimated = ctl.estimated_channel(cal);
    let plan_est = ctl.plan(&estimated);
    let plan_truth = ctl.plan(truth);
    assert_eq!(plan_est.active_txs(), plan_truth.active_txs());
    assert_eq!(plan_est.beamspots.len(), plan_truth.beamspots.len());
}

/// The adaptation loop under mobility: the moving receiver keeps service
/// and its serving beamspot follows it across the room. (The walk stops
/// short of RX4's corner — Algorithm 1 is greedy and cannot split a TX
/// between two *co-located* receivers, a limitation inherited from the
/// paper's heuristic.)
#[test]
fn beamspot_follows_a_walking_receiver() {
    let mut system = System::scenario(Scenario::One, 1.2);
    let mut previous_leader = None;
    let mut leader_changes = 0;
    for step in 0..=8 {
        let x = 0.5 + 0.2 * step as f64; // RX1 walks diagonally
        let y = 0.5 + 0.2 * step as f64;
        system.move_receivers(&[(x, y), (2.5, 0.5), (0.5, 2.5), (2.5, 2.5)]);
        let round = system.adapt();
        let spot = round.plan.beamspot_for(0).expect("RX1 always served");
        assert!(round.per_rx_bps[0] > 0.0, "RX1 starved at step {step}");
        // The leader must stay a decent channel for the receiver: within
        // the top-4 gains toward RX1.
        let mut gains: Vec<(usize, f64)> = (0..36)
            .map(|t| (t, system.deployment.model.channel.gain(t, 0)))
            .collect();
        gains.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top4: Vec<usize> = gains[..4].iter().map(|(t, _)| *t).collect();
        assert!(
            top4.contains(&spot.leader),
            "step {step}: leader TX{} not among the top channels",
            spot.leader + 1
        );
        if previous_leader != Some(spot.leader) {
            if previous_leader.is_some() {
                leader_changes += 1;
            }
            previous_leader = Some(spot.leader);
        }
    }
    // Walking 2.8 m diagonally across a 0.5 m grid must hand the beamspot
    // over several times.
    assert!(leader_changes >= 2, "only {leader_changes} handovers");
}

/// Budget monotonicity across the whole stack: more communication power
/// never reduces the (controller-planned) system throughput much, and
/// power spending respects the budget at every level.
#[test]
fn budget_sweep_is_consistent() {
    let mut prev_bps = 0.0;
    for budget in [0.15, 0.3, 0.6, 0.9, 1.2, 1.8] {
        let mut system = System::scenario(Scenario::Two, budget);
        let round = system.adapt();
        assert!(round.power_w <= budget + 1e-9, "overspent at {budget} W");
        assert!(
            round.system_throughput_bps >= prev_bps * 0.9,
            "throughput collapsed at {budget} W"
        );
        prev_bps = round.system_throughput_bps.max(prev_bps);
        // The plan's allocation must be feasible for the model too.
        assert!(system
            .deployment
            .model
            .is_feasible(&round.plan.allocation, budget));
    }
}

/// One registry watches the whole stack: a short mobility simulation
/// (controller planning) plus a clean-channel end-to-end frame run (PHY
/// codec) both record into the same live registry, and the snapshot shows
/// every layer did real work. The `Timeline` embeds the snapshot, while
/// uninstrumented runs carry none.
#[test]
fn telemetry_snapshot_reflects_the_full_loop() {
    let telemetry = Registry::new();

    let mut sim = Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2);
    sim.send_receiver(0, 2.0, 2.0);
    let timeline = sim.run_instrumented(1.0, &telemetry);

    // A clean single-host link: every frame should decode without ever
    // exhausting the Reed–Solomon budget.
    let txs = [E2eTx {
        gain: 2e-4,
        host: 0,
    }];
    let e2e = e2e_run(
        &txs,
        &SyncScheme::SyncOff,
        &E2eConfig::default(),
        5,
        7,
        &telemetry,
    );
    assert_eq!(e2e.frames_ok, 5, "clean channel should deliver all frames");

    let snap = telemetry.snapshot();
    assert!(snap.counter("mac.rounds_planned").unwrap_or(0) >= 1);
    assert!(snap.counter("phy.frames_decoded").unwrap_or(0) > 0);
    assert_eq!(snap.counter("phy.rs_uncorrectable").unwrap_or(0), 0);
    assert_eq!(snap.counter("sim.ticks"), Some(10));
    assert!(snap.histogram("sim.tick_s").is_some_and(|h| h.count == 10));
    assert!(snap.gauge("sim.rx0.bps").is_some_and(|bps| bps > 0.0));

    // The timeline embeds the (growing) registry's state at end-of-run;
    // an uninstrumented run embeds nothing.
    let embedded = timeline
        .telemetry
        .expect("instrumented run embeds telemetry");
    assert!(embedded.counter("mac.rounds_planned").unwrap_or(0) >= 1);
    assert!(embedded.counter("phy.frames_decoded").is_none());
    let plain = Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2).run(0.5);
    assert!(plain.telemetry.is_none());
}

/// Illumination invariance: whatever the controller decides, the average
/// drive current of every TX stays at the bias — communication never
/// changes perceived brightness.
#[test]
fn plans_never_perturb_illumination() {
    use vlc_led::{LedParams, OperatingMode};
    let led = LedParams::cree_xte_paper();
    let mut system = System::scenario(Scenario::Three, 2.0);
    let round = system.adapt();
    for tx in 0..36 {
        let swing = round.plan.allocation.tx_total_swing(tx);
        let mode = if swing > 0.0 {
            OperatingMode::IlluminationAndCommunication { swing }
        } else {
            OperatingMode::Illumination
        };
        mode.validate(&led).expect("valid mode");
        assert!(
            (mode.average_current(&led) - led.bias_current).abs() < 1e-12,
            "TX{} brightness changed",
            tx + 1
        );
    }
}
