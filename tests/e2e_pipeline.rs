//! Integration: the symbol-level pipeline across `vlc-phy`, `vlc-channel`,
//! `vlc-sync` and the `densevlc` end-to-end harness.

use densevlc::e2e::{run, E2eConfig, E2eTx};
use vlc_sync::SyncScheme;
use vlc_testbed::{BbbHostMap, Deployment};

fn gains_and_hosts() -> (Vec<f64>, BbbHostMap) {
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    (
        (0..36).map(|t| d.model.channel.gain(t, 0)).collect(),
        BbbHostMap::paper(),
    )
}

/// A single near TX delivers frames through the whole chain.
#[test]
fn single_tx_delivers_cleanly() {
    let (gains, hosts) = gains_and_hosts();
    let txs = vec![E2eTx {
        gain: gains[7],
        host: hosts.host_of(7),
    }];
    let res = run(&txs, &SyncScheme::SyncOff, &E2eConfig::default(), 20, 1);
    assert_eq!(res.frames_ok, 20, "PER {}", res.per);
}

/// Joint transmission from synchronized TXs beats a single TX's SNR enough
/// to keep delivery intact (superposition really adds amplitude).
#[test]
fn joint_transmission_superimposes() {
    let (gains, hosts) = gains_and_hosts();
    let single = vec![E2eTx {
        gain: gains[7],
        host: hosts.host_of(7),
    }];
    let four: Vec<E2eTx> = [1usize, 7, 2, 8]
        .iter()
        .map(|&i| E2eTx {
            gain: gains[i],
            host: hosts.host_of(i),
        })
        .collect();
    let cfg = E2eConfig::default();
    let res_single = run(&single, &SyncScheme::nlos_paper(), &cfg, 15, 2);
    let res_four = run(&four, &SyncScheme::nlos_paper(), &cfg, 15, 2);
    assert!(res_four.per <= res_single.per);
    assert!(res_four.frames_ok >= res_single.frames_ok);
}

/// The Reed–Solomon layer earns its keep: with a weak link, RS still
/// corrects residual byte errors on delivered frames.
#[test]
fn rs_corrects_on_marginal_links() {
    let (gains, hosts) = gains_and_hosts();
    // Attenuate the best TX to put chips near the noise floor.
    let txs = vec![E2eTx {
        gain: gains[7] * 0.045,
        host: hosts.host_of(7),
    }];
    let res = run(&txs, &SyncScheme::SyncOff, &E2eConfig::default(), 40, 3);
    // The link must be genuinely marginal: neither perfect nor dead.
    assert!(res.frames_ok > 0, "link completely dead");
    assert!(
        res.rs_corrections > 0 || res.per > 0.0,
        "link unexpectedly clean: {res:?}"
    );
}

/// Goodput accounting: delivering fewer frames must never yield more
/// goodput under the same configuration.
#[test]
fn goodput_tracks_delivery() {
    let (gains, hosts) = gains_and_hosts();
    let good = vec![E2eTx {
        gain: gains[7],
        host: hosts.host_of(7),
    }];
    let bad = vec![E2eTx {
        gain: gains[7] * 0.02,
        host: hosts.host_of(7),
    }];
    let cfg = E2eConfig::default();
    let res_good = run(&good, &SyncScheme::SyncOff, &cfg, 20, 4);
    let res_bad = run(&bad, &SyncScheme::SyncOff, &cfg, 20, 4);
    assert!(res_good.goodput_bps >= res_bad.goodput_bps);
    assert!(res_good.frames_ok >= res_bad.frames_ok);
}

/// Larger payloads amortize header overhead into higher goodput (while
/// staying under the same channel conditions).
#[test]
fn payload_size_trades_overhead() {
    let (gains, hosts) = gains_and_hosts();
    let txs = vec![E2eTx {
        gain: gains[7],
        host: hosts.host_of(7),
    }];
    let small = E2eConfig {
        payload_len: 50,
        ..E2eConfig::default()
    };
    let large = E2eConfig {
        payload_len: 600,
        ..E2eConfig::default()
    };
    let res_small = run(&txs, &SyncScheme::SyncOff, &small, 10, 5);
    let res_large = run(&txs, &SyncScheme::SyncOff, &large, 10, 5);
    assert_eq!(res_small.per, 0.0);
    assert_eq!(res_large.per, 0.0);
    assert!(
        res_large.goodput_bps > res_small.goodput_bps,
        "large {} vs small {}",
        res_large.goodput_bps,
        res_small.goodput_bps
    );
}

/// NTP/PTP is rate-limited: at 10 Ksym/s (below its §6.1 ceiling) it works;
/// at the testbed's 100 Ksym/s it degrades badly.
#[test]
fn ntp_ptp_rate_ceiling_shows_up_end_to_end() {
    let (gains, hosts) = gains_and_hosts();
    let four: Vec<E2eTx> = [1usize, 7, 2, 8]
        .iter()
        .map(|&i| E2eTx {
            gain: gains[i],
            host: hosts.host_of(i),
        })
        .collect();
    let slow = E2eConfig {
        symbol_rate_hz: 10_000.0,
        sample_rate_hz: 1_000_000.0,
        ..E2eConfig::default()
    };
    let fast = E2eConfig::default(); // 100 Ksym/s
    let res_slow = run(&four, &SyncScheme::NtpPtp, &slow, 15, 6);
    let res_fast = run(&four, &SyncScheme::NtpPtp, &fast, 15, 6);
    assert!(
        res_slow.per < res_fast.per,
        "slow {} vs fast {}",
        res_slow.per,
        res_fast.per
    );
    assert!(res_slow.per < 0.2, "PER at 10 Ksym/s: {}", res_slow.per);
}
