//! Smoke tests of the `densevlc-cli` binary's observability flags:
//! `--trace` writes Perfetto-loadable Chrome Trace JSON with the
//! plan→rank→allocate tree and per-worker lanes, `--telemetry-out`
//! redirects the telemetry rendering to a file without touching stdout.

use std::path::PathBuf;
use std::process::Command;
use vlc_trace::parse_chrome_json;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("densevlc-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_densevlc-cli"))
}

#[test]
fn adapt_trace_writes_a_perfetto_loadable_span_tree() {
    let trace = tmp("adapt_trace.json");
    let out = cli()
        .args(["adapt", "--trace"])
        .arg(&trace)
        // Force two workers so the optimal solver's fan-out exercises the
        // per-worker lanes even on a single-core machine.
        .env("DENSEVLC_JOBS", "2")
        .output()
        .expect("densevlc-cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The trace goes to the file; stdout keeps the normal report.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("system:"), "normal report intact: {stdout}");
    assert!(!stdout.contains("traceEvents"));

    let events = parse_chrome_json(&std::fs::read_to_string(&trace).unwrap())
        .expect("valid Chrome Trace JSON");
    let complete: Vec<_> = events.iter().filter(|e| e.ph == "X").collect();

    // The causal tree: cli.adapt → sim.adapt → mac.plan → {mac.rank,
    // mac.allocate}, each child nested inside its parent's ids.
    let find = |name: &str| {
        complete
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("span {name} in trace"))
    };
    let cli_root = find("cli.adapt");
    let sim = find("sim.adapt");
    let plan = find("mac.plan");
    let rank = find("mac.rank");
    let alloc = find("mac.allocate");
    assert_eq!(sim.arg("parent_id"), cli_root.arg("span_id"));
    assert_eq!(plan.arg("parent_id"), sim.arg("span_id"));
    assert_eq!(rank.arg("parent_id"), plan.arg("span_id"));
    assert_eq!(alloc.arg("parent_id"), plan.arg("span_id"));

    // Per-worker lanes: the solver's multi-start fan-out runs on worker
    // tids (≥1), with thread-name metadata rows declaring each lane.
    let starts: Vec<_> = complete
        .iter()
        .filter(|e| e.name == "alloc.optimal.start")
        .collect();
    assert!(!starts.is_empty(), "solver probe traced");
    assert!(
        starts.iter().any(|e| e.tid >= 1),
        "solver starts land on worker lanes"
    );
    assert!(events
        .iter()
        .any(|e| e.ph == "M" && e.name == "thread_name"));
}

#[test]
fn telemetry_out_writes_the_chosen_format_off_stdout() {
    // Default format: JSON.
    let json_path = tmp("telemetry.json");
    let out = cli()
        .args(["adapt", "--telemetry-out"])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("counters"), "telemetry off stdout");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"counters\"") && json.contains("mac.rounds_planned"));

    // Explicit format applies to the file: csv.
    let csv_path = tmp("telemetry.csv");
    let out = cli()
        .args(["adapt", "--telemetry", "csv", "--telemetry-out"])
        .arg(&csv_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.lines().count() > 3, "csv has rows: {csv}");
    assert!(csv.contains("mac.rounds_planned"));
}

#[test]
fn codecs_lists_the_stack_catalogue() {
    let out = cli().arg("codecs").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["rs", "rs+il16", "conv_k7+crc32", "crc32"] {
        assert!(text.contains(name), "missing stack `{name}`: {text}");
    }
    assert!(text.contains("codec_campaign"), "{text}");
}

#[test]
fn default_run_emits_no_observability_artifacts() {
    let out = cli().arg("adapt").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("traceEvents"));
    assert!(!stdout.contains("\"counters\""));
    assert!(String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn short_run_reports_zero_ring_drops_in_the_summary() {
    // Regression: the summary exporter surfaces both bounded-ring drop
    // counts, and a short run must not drop anything from either ring.
    let trace = tmp("drops_trace.json");
    let out = cli()
        .args([
            "sim",
            "--duration",
            "0.5",
            "--telemetry",
            "summary",
            "--trace",
        ])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("event ring dropped 0, span ring dropped 0"),
        "summary must report zero drops for a short run: {stdout}"
    );
}

#[test]
fn profile_subcommand_prints_tables_and_writes_valid_artifacts() {
    use vlc_prof::{parse_folded, to_folded, Profile};

    let prof = tmp("cli_profile.json");
    let folded = tmp("cli_profile.folded");
    let flame = tmp("cli_profile.svg");
    let out = cli()
        .args(["profile", "adapt", "--profile-out"])
        .arg(&prof)
        .arg("--folded-out")
        .arg(&folded)
        .arg("--flame-out")
        .arg(&flame)
        .output()
        .expect("densevlc-cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The normal report survives, followed by both profiler tables.
    assert!(stdout.contains("system:"), "{stdout}");
    assert!(stdout.contains("self time (top 10)"), "{stdout}");
    assert!(stdout.contains("inclusive time (top 10)"), "{stdout}");
    assert!(
        stdout.contains("cli.adapt"),
        "root path in tables: {stdout}"
    );

    // The JSON artifact parses, covers the command's call tree, and — with
    // the CLI's counting allocator installed — attributes allocations.
    let profile =
        Profile::from_json(&std::fs::read_to_string(&prof).unwrap()).expect("profile parses");
    let root = profile.node("cli.adapt").expect("root path present");
    assert!(root.allocs > 0, "allocation attribution on the root span");
    assert!(
        profile.node("cli.adapt;sim.adapt;mac.plan").is_some(),
        "planner path profiled"
    );

    // Folded output matches the profile byte for byte and parses.
    let folded_text = std::fs::read_to_string(&folded).unwrap();
    assert_eq!(folded_text, to_folded(&profile));
    parse_folded(&folded_text).expect("folded output parses");

    // The flamegraph is a self-contained SVG naming real frames.
    let svg = std::fs::read_to_string(&flame).unwrap();
    assert!(
        svg.starts_with("<svg xmlns="),
        "svg preamble: {}",
        &svg[..40]
    );
    assert!(svg.contains("</svg>"));
    assert!(svg.contains("mac.plan"), "frames labelled");
}

#[test]
fn profiled_sim_stream_carries_a_profile_record() {
    let stream = tmp("profiled_stream.ndjson");
    let out = cli()
        .args(["profile", "sim", "--duration", "0.5", "--obs-stream"])
        .arg(&stream)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&stream).unwrap();
    let records = vlc_obs::parse_stream_strict(&text).expect("valid NDJSON stream");
    let profile_at = records
        .iter()
        .position(|r| matches!(r, vlc_obs::ObsRecord::Profile { .. }))
        .expect("profile record in the stream");
    let summary_at = records
        .iter()
        .position(|r| matches!(r, vlc_obs::ObsRecord::Summary { .. }))
        .expect("summary record in the stream");
    assert!(
        profile_at < summary_at,
        "profile digest precedes the summary"
    );
    match &records[profile_at] {
        vlc_obs::ObsRecord::Profile {
            nodes,
            calls,
            top_path,
            ..
        } => {
            assert!(*nodes > 0 && *calls > 0);
            assert!(!top_path.is_empty(), "hottest path digested");
        }
        _ => unreachable!(),
    }
}

#[test]
fn streamed_sim_validates_and_the_monitor_renders_it() {
    let stream = tmp("sim_stream.ndjson");
    let out = cli()
        .args(["sim", "--duration", "1.0", "--obs-stream"])
        .arg(&stream)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every line parses; the stream is a complete run.
    let text = std::fs::read_to_string(&stream).unwrap();
    let records = vlc_obs::parse_stream_strict(&text).expect("valid NDJSON stream");
    assert!(matches!(
        records.first(),
        Some(vlc_obs::ObsRecord::Meta { .. })
    ));
    assert!(matches!(
        records.last(),
        Some(vlc_obs::ObsRecord::Summary { .. })
    ));

    // The monitor subcommand renders the same file.
    let out = cli().arg("monitor").arg(&stream).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let view = String::from_utf8_lossy(&out.stdout);
    assert!(view.contains("densevlc monitor"), "{view}");
    assert!(view.contains("run complete"), "{view}");

    // An invalid stream is rejected with a diagnostic.
    let bad = tmp("bad_stream.ndjson");
    std::fs::write(&bad, "{\"type\":\"nope\"}\n").unwrap();
    let out = cli().arg("monitor").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
