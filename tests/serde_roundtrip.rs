//! Stability checks for the public configuration and result types.
//!
//! Every public config/result type derives `Serialize`/`Deserialize` so a
//! deployment or plan can be persisted by downstream tooling. The approved
//! dependency set contains no serializer *format* crate, so these tests pin
//! the contracts those derives rest on: `Clone`/`PartialEq` stability,
//! determinism of the planning pipeline, and serde's value-level plumbing.

use serde::de::value::{Error as ValueError, F64Deserializer};
use serde::de::IntoDeserializer;
use serde::Deserialize;

/// Round-trips an `f64` through serde's value deserializer — a smoke check
/// that the serde wiring compiles and runs end to end.
fn roundtrip_f64(x: f64) -> f64 {
    let de: F64Deserializer<ValueError> = x.into_deserializer();
    f64::deserialize(de).expect("f64 round-trip")
}

#[test]
fn serde_value_plumbing_works() {
    assert_eq!(roundtrip_f64(0.3675), 0.3675);
}

#[test]
fn public_types_are_cloneable_and_comparable() {
    use vlc_alloc::model::Allocation;
    use vlc_alloc::HeuristicConfig;
    use vlc_channel::{ChannelMatrix, NoiseParams, RxOptics};
    use vlc_led::LedParams;
    use vlc_sync::SyncScheme;
    use vlc_testbed::{Deployment, Scenario};

    let led = LedParams::cree_xte_paper();
    assert_eq!(led.clone(), led);

    let noise = NoiseParams::paper();
    assert_eq!(noise, noise.clone());

    let optics = RxOptics::paper();
    assert_eq!(optics, optics.clone());

    let ch = ChannelMatrix::from_gains(2, 2, vec![1e-6, 0.0, 2e-6, 1e-7]);
    assert_eq!(ch, ch.clone());

    let mut alloc = Allocation::zeros(2, 2);
    alloc.set_swing(0, 1, 0.9);
    assert_eq!(alloc, alloc.clone());

    let cfg = HeuristicConfig::paper();
    assert_eq!(cfg, cfg.clone());

    let scheme = SyncScheme::nlos_paper();
    assert_eq!(scheme, scheme.clone());

    let d = Deployment::scenario(Scenario::Two);
    assert_eq!(d, d.clone());
}

#[test]
fn plans_and_rounds_are_stable_across_clones() {
    use densevlc::System;
    use vlc_testbed::Scenario;

    let mut a = System::scenario(Scenario::Three, 1.2);
    let mut b = a.clone();
    let ra = a.adapt();
    let rb = b.adapt();
    // Identical systems produce identical plans — the pipeline is
    // deterministic for a fixed channel.
    assert_eq!(ra.plan, rb.plan);
    assert_eq!(ra.per_rx_bps, rb.per_rx_bps);
}
