//! The incremental simulation engine must be an *exact* drop-in for the
//! cold one: same `Timeline`, tick for tick, bit for bit — including across
//! mid-run cache invalidations (a teleporting receiver, a person walking
//! through every beam) — while actually exercising the warm paths.

use densevlc::sim::Simulation;
use vlc_geom::Vec3;
use vlc_telemetry::Registry;
use vlc_testbed::{AcroPositioner, Deployment, Scenario};

fn sim() -> Simulation {
    Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2)
}

/// Runs the same script through both engines and returns the two
/// (timeline-ticks, snapshot) pairs. The script teleports RX1 across the
/// room mid-run and sends a person straight through the grid — both cache
/// invalidation classes (pose miss, blockage partial) fire mid-flight.
fn run_script(incremental: bool) -> (Vec<densevlc::sim::Tick>, Registry) {
    let mut s = sim();
    s.send_receiver(0, 2.0, 2.0);
    // The person crosses half the room then stands still, so the run has
    // walking ticks (blockage changes → partial re-tests) *and* settled
    // ticks (nothing changes → column hits).
    s.add_person(0.1, 1.5, 1.0, &[(1.5, 1.5)]);
    let telemetry = Registry::new();
    let mut ticks = Vec::new();
    let first = if incremental {
        s.run_instrumented(1.0, &telemetry)
    } else {
        s.run_cold_instrumented(1.0, &telemetry)
    };
    ticks.extend(first.ticks);
    // Teleport: replace the mover outright — a discontinuous jump no
    // ε-threshold could mistake for "hasn't moved".
    let room = s.deployment.room;
    s.rx_movers[0] = AcroPositioner::new(Vec3::new(0.3, 2.7, 0.0), 0.5, room);
    let second = if incremental {
        s.run_instrumented(1.0, &telemetry)
    } else {
        s.run_cold_instrumented(1.0, &telemetry)
    };
    ticks.extend(second.ticks);
    (ticks, telemetry)
}

#[test]
fn incremental_engine_reproduces_cold_timeline_through_invalidation() {
    let (warm, warm_telemetry) = run_script(true);
    let (cold, _) = run_script(false);
    assert_eq!(warm.len(), cold.len());
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(w, c, "tick t={} diverged", w.t_s);
    }
    // The run must actually have exercised the cache, not just bypassed it.
    let snap = warm_telemetry.snapshot();
    assert!(
        snap.counter("channel.cache.hit").unwrap_or(0) > 0,
        "no column was ever reused"
    );
    assert!(
        snap.counter("channel.cache.miss").unwrap_or(0) > 0,
        "no column was ever recomputed"
    );
    assert!(
        snap.counter("channel.cache.partial").unwrap_or(0) > 0,
        "blockage changes never re-tested a mask"
    );
}

#[test]
fn end_of_run_deployment_state_matches_cold() {
    // Beyond the timeline, the mutated deployment (receiver poses, stored
    // clear channel) must come out of both engines identical, so downstream
    // experiment code can't tell which engine ran.
    let mut warm = sim();
    warm.send_receiver(0, 2.4, 2.4);
    warm.run(2.0);
    let mut cold = sim();
    cold.send_receiver(0, 2.4, 2.4);
    cold.run_cold(2.0);
    assert_eq!(warm.deployment.receivers, cold.deployment.receivers);
    assert_eq!(warm.deployment.model.channel, cold.deployment.model.channel);
}

#[test]
fn blocked_links_are_counted_against_same_tick_clear_gains() {
    // Regression guard for the stale-diff bug: a receiver gliding under a
    // stationary person changes *which* links its column blocks while plans
    // are stale. Counting the mask against a stale stored channel would
    // double-count the moved column; the same-tick contract keeps both
    // engines in exact agreement, with a long stale window to stress it.
    let build = || {
        let mut s = sim();
        s.adaptation_period_s = 1.5; // mostly-stale plans
        s.add_person(1.32, 0.92, 0.5, &[]); // standing still near RX1
        s.send_receiver(0, 2.4, 0.9); // RX1 slides past the shadow
        s
    };
    let warm = build().run(3.0);
    let cold = build().run_cold(3.0);
    assert_eq!(warm.ticks.len(), cold.ticks.len());
    for (w, c) in warm.ticks.iter().zip(&cold.ticks) {
        assert_eq!(w.blocked_links, c.blocked_links, "t={}", w.t_s);
    }
    assert!(
        warm.ticks.iter().any(|t| t.blocked_links > 0),
        "scenario never blocked anything"
    );
    // The count varies as the receiver crosses the shadow — proof the diff
    // tracks the *current* geometry rather than a snapshot.
    let counts: Vec<usize> = warm.ticks.iter().map(|t| t.blocked_links).collect();
    assert!(
        counts.windows(2).any(|w| w[0] != w[1]),
        "blocked-link count never changed: {counts:?}"
    );
}

#[test]
fn static_world_hits_plan_cache() {
    // Nothing moves → after the first tick every column is a hit and every
    // re-plan lands in the plan cache.
    let mut s = sim();
    let telemetry = Registry::new();
    s.run_instrumented(2.0, &telemetry);
    let snap = telemetry.snapshot();
    assert!(snap.counter("mac.plan.cache_hits").unwrap_or(0) > 0);
    assert_eq!(snap.counter("mac.plan.cache_misses"), Some(1));
    assert!(snap.counter("channel.cache.hit").unwrap_or(0) > 0);
    assert!(snap.counter("par.pool.created").unwrap_or(0) >= 1);
}
