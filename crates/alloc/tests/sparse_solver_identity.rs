//! Property tests for the sparse/SoA solver identity contract: the fast
//! engine behind every public [`OptimalSolver`] entry point must reproduce
//! the historical dense engine's report *bitwise* — same allocation, same
//! objective, same iteration and start counts — for arbitrary channel zero
//! patterns (including the all-in-FOV degenerate case where nothing is
//! sparse), any budget, and any worker count. Likewise the heuristic's
//! row-best ranking against its full-rescan scalar reference. These ride in
//! `cargo test --workspace` and in the CI `soa` job at `DENSEVLC_JOBS` ∈
//! {1, max}.

use proptest::prelude::*;
use vlc_alloc::heuristic::{rank_by_sjr, rank_by_sjr_scalar, HeuristicConfig};
use vlc_alloc::model::SystemModel;
use vlc_alloc::OptimalSolver;
use vlc_channel::ChannelMatrix;
use vlc_par::Jobs;

/// A reduced-effort solver: the identity must hold per evaluation, so a
/// short ascent exercises it as well as a long one, much faster.
fn test_solver() -> OptimalSolver {
    OptimalSolver {
        max_iters: 60,
        random_starts: 2,
        tol: 1e-7,
        seed: 0x5eed,
    }
}

/// Maps a raw draw onto a sparse gain: negative draws become exact zeros,
/// a small band collapses onto one duplicated value (forcing tie-breaking
/// downstream), the rest log-spreads over [1e-8, 1e-5].
fn sparse_gain(v: f64) -> f64 {
    if v < 0.0 {
        0.0
    } else if v < 0.15 {
        1e-6
    } else {
        1e-8 * 10f64.powf(3.0 * v)
    }
}

/// Random channel with a controllable zero pattern. Each RX gets a distinct
/// dominant TX so the solver's equal-share baseline start serves everyone
/// and the program stays feasible (an unreachable RX makes every objective
/// −∞ and the solver panics by contract); every other link draws from the
/// sparse distribution.
fn arb_model() -> impl Strategy<Value = SystemModel> {
    (4usize..8, 1usize..4)
        .prop_flat_map(|(n_tx, n_rx)| {
            (
                Just(n_tx),
                Just(n_rx),
                proptest::collection::vec(-0.4f64..1.0, n_tx * n_rx),
            )
        })
        .prop_map(|(n_tx, n_rx, raw)| {
            // ~30 % exact zeros, the rest log-spread over [1e-8, 1e-5].
            let mut gains: Vec<f64> = raw.into_iter().map(sparse_gain).collect();
            for rx in 0..n_rx {
                gains[rx * n_rx + rx] = 2e-5;
            }
            SystemModel::paper(ChannelMatrix::from_gains(n_tx, n_rx, gains))
        })
}

/// The degenerate all-live case: every gain nonzero, so the sparse view
/// culls nothing and the fast engine runs fully dense index lists.
fn arb_dense_model() -> impl Strategy<Value = SystemModel> {
    (2usize..6, 1usize..4)
        .prop_flat_map(|(n_tx, n_rx)| {
            (
                Just(n_tx),
                Just(n_rx),
                proptest::collection::vec(1e-8f64..1e-5, n_tx * n_rx),
            )
        })
        .prop_map(|(n_tx, n_rx, gains)| {
            SystemModel::paper(ChannelMatrix::from_gains(n_tx, n_rx, gains))
        })
}

fn assert_reports_identical(
    fast: &vlc_alloc::SolveReport,
    dense: &vlc_alloc::SolveReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.iterations, dense.iterations);
    prop_assert_eq!(fast.objective.to_bits(), dense.objective.to_bits());
    prop_assert_eq!(fast.power_w.to_bits(), dense.power_w.to_bits());
    prop_assert_eq!(
        fast.allocation.as_slice().len(),
        dense.allocation.as_slice().len()
    );
    for (a, b) in fast
        .allocation
        .as_slice()
        .iter()
        .zip(dense.allocation.as_slice())
    {
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sparse zero patterns: fast engine == dense engine, at any worker
    /// count.
    #[test]
    fn fast_engine_matches_dense_engine(
        model in arb_model(),
        budget in 0.02f64..0.5,
    ) {
        let solver = test_solver();
        let dense = solver.solve_dense_jobs(&model, budget, Jobs::serial());
        for jobs in [Jobs::serial(), Jobs::max()] {
            let fast = solver.solve_jobs(&model, budget, jobs);
            assert_reports_identical(&fast, &dense)?;
        }
    }

    /// All-in-FOV degenerate case: nothing to cull, the CSR lists are full
    /// rows, and the identity still holds.
    #[test]
    fn fast_engine_matches_dense_on_fully_live_channel(
        model in arb_dense_model(),
        budget in 0.02f64..0.5,
    ) {
        let solver = test_solver();
        let dense = solver.solve_dense_jobs(&model, budget, Jobs::serial());
        let fast = solver.solve_jobs(&model, budget, Jobs::max());
        assert_reports_identical(&fast, &dense)?;
    }

    /// The heuristic's row-best greedy extraction selects the exact same
    /// (TX, RX, SJR) sequence as the full-rescan reference — including
    /// all-zero TX rows, tie patterns from duplicated gains, and per-TX κ.
    #[test]
    fn fast_ranking_matches_scalar_reference(
        shape in (2usize..12, 1usize..5).prop_flat_map(|(n_tx, n_rx)| {
            (
                Just(n_tx),
                Just(n_rx),
                proptest::collection::vec(-0.4f64..1.0, n_tx * n_rx),
            )
        }),
        kappa in 1.0f64..1.6,
    ) {
        let (n_tx, n_rx, raw) = shape;
        let gains: Vec<f64> = raw.into_iter().map(sparse_gain).collect();
        let channel = ChannelMatrix::from_gains(n_tx, n_rx, gains);
        let cfg = HeuristicConfig::with_kappa(kappa);
        let fast = rank_by_sjr(&channel, &cfg);
        let scalar = rank_by_sjr_scalar(&channel, &cfg);
        prop_assert_eq!(fast.len(), scalar.len());
        for (f, s) in fast.iter().zip(&scalar) {
            prop_assert_eq!((f.tx, f.rx), (s.tx, s.rx));
            prop_assert_eq!(f.sjr.to_bits(), s.sjr.to_bits());
        }
    }
}
