//! Baseline allocation schemes (paper §8.3).
//!
//! The paper benchmarks DenseVLC against two fixed strategies:
//!
//! * **SISO (nearest-TX)** — each RX is served only by its geometrically
//!   nearest TX at full swing (4 active TXs, 298 mW total).
//! * **D-MISO (all-TXs)** — every TX transmits at full swing toward its
//!   nearest RX regardless of positions; for the paper's grid this means
//!   each RX is served by its 9 surrounding TXs and the full 36-TX array
//!   burns 2.68 W.

use crate::model::Allocation;
use vlc_channel::ChannelMatrix;
use vlc_geom::{TxGrid, Vec3};
use vlc_led::LedParams;

/// The SISO baseline: each receiver's single best TX at full swing.
///
/// When two receivers share the same best TX (co-located receivers) the TX
/// serves the first of them and the later one falls back to its next-best
/// unclaimed TX, so every RX always has a dedicated serving TX.
pub fn siso_allocation(channel: &ChannelMatrix, led: &LedParams) -> Allocation {
    let n_tx = channel.n_tx();
    let n_rx = channel.n_rx();
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    let mut claimed = vec![false; n_tx];
    for rx in 0..n_rx {
        let mut best: Option<(usize, f64)> = None;
        for (tx, &taken) in claimed.iter().enumerate() {
            if taken {
                continue;
            }
            let g = channel.gain(tx, rx);
            if best.is_none_or(|(_, bg)| g > bg) {
                best = Some((tx, g));
            }
        }
        if let Some((tx, g)) = best {
            if g > 0.0 {
                claimed[tx] = true;
                alloc.set_swing(tx, rx, led.max_swing);
            }
        }
    }
    alloc
}

/// The D-MISO baseline: every TX at full swing, each serving the RX it has
/// the strongest channel to (TXs that reach no receiver stay dark — they
/// cannot contribute signal anywhere).
pub fn dmiso_allocation(channel: &ChannelMatrix, led: &LedParams) -> Allocation {
    let n_tx = channel.n_tx();
    let n_rx = channel.n_rx();
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    for tx in 0..n_tx {
        let mut best: Option<(usize, f64)> = None;
        for rx in 0..n_rx {
            let g = channel.gain(tx, rx);
            if g > 0.0 && best.is_none_or(|(_, bg)| g > bg) {
                best = Some((rx, g));
            }
        }
        if let Some((rx, _)) = best {
            alloc.set_swing(tx, rx, led.max_swing);
        }
    }
    alloc
}

/// The paper-faithful D-MISO: *every* TX transmits at full swing toward its
/// geometrically nearest RX, "independent of the position of the receivers"
/// (§8.3). Corner TXs that reach nobody still burn full communication power
/// — that inefficiency is exactly what Fig. 21 charges D-MISO for. For the
/// paper's 6 × 6 grid this is 36 full-swing TXs at 2.68 W.
pub fn dmiso_nearest_geometric(
    grid: &TxGrid,
    rx_positions: &[Vec3],
    led: &LedParams,
) -> Allocation {
    assert!(!rx_positions.is_empty(), "need at least one receiver");
    let n_tx = grid.len();
    let n_rx = rx_positions.len();
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    for tx in 0..n_tx {
        let p = grid.pose(tx).position;
        let nearest = (0..n_rx)
            .min_by(|&a, &b| {
                p.horizontal_distance(rx_positions[a])
                    .partial_cmp(&p.horizontal_distance(rx_positions[b]))
                    .expect("finite distances")
            })
            .expect("non-empty receivers");
        alloc.set_swing(tx, nearest, led.max_swing);
    }
    alloc
}

/// D-MISO restricted to the `per_rx` nearest TXs of each receiver — the
/// paper's experimental variant where "each RX is assigned 9 surrounding
/// TXs". TXs assigned to several receivers keep only their strongest one.
pub fn dmiso_k_allocation(channel: &ChannelMatrix, led: &LedParams, per_rx: usize) -> Allocation {
    let n_tx = channel.n_tx();
    let n_rx = channel.n_rx();
    // For each RX, find its `per_rx` strongest TXs.
    let mut choice: Vec<Option<(usize, f64)>> = vec![None; n_tx]; // tx -> (rx, gain)
    for rx in 0..n_rx {
        let mut order: Vec<(usize, f64)> = (0..n_tx).map(|t| (t, channel.gain(t, rx))).collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite gains"));
        for &(tx, g) in order.iter().take(per_rx) {
            if g <= 0.0 {
                break;
            }
            if choice[tx].is_none_or(|(_, bg)| g > bg) {
                choice[tx] = Some((rx, g));
            }
        }
    }
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    for (tx, c) in choice.iter().enumerate() {
        if let Some((rx, _)) = c {
            alloc.set_swing(tx, *rx, led.max_swing);
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use vlc_channel::RxOptics;
    use vlc_geom::{Pose, Room, TxGrid};

    fn scenario2() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn siso_activates_one_tx_per_rx() {
        let m = scenario2();
        let a = siso_allocation(&m.channel, &m.led);
        assert_eq!(a.active_tx_count(), 4);
        // Paper: SISO operating point is 298 mW.
        let p = m.comm_power(&a);
        assert!((p - 0.298).abs() < 0.003, "SISO power {p} W");
    }

    #[test]
    fn siso_serves_every_rx() {
        let m = scenario2();
        let a = siso_allocation(&m.channel, &m.led);
        for (i, t) in m.throughput(&a).iter().enumerate() {
            assert!(*t > 0.0, "RX{} unserved", i + 1);
        }
    }

    #[test]
    fn siso_resolves_best_tx_conflicts() {
        // Two RXs directly under the same TX: both must end up served.
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.75, 2.25, 0.8),
            Pose::face_up(0.76, 2.25, 0.8),
        ];
        let ch = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
        let led = vlc_led::LedParams::cree_xte_paper();
        let a = siso_allocation(&ch, &led);
        assert_eq!(a.active_tx_count(), 2);
        let m = SystemModel::paper(ch);
        assert!(m.throughput(&a).iter().all(|&t| t > 0.0));
    }

    #[test]
    fn dmiso_uses_whole_array_at_2_68_w() {
        let m = scenario2();
        let a = dmiso_allocation(&m.channel, &m.led);
        // Some corner TXs may reach nobody with 15° beams; the paper's
        // D-MISO burns the full array, ours burns every TX that can reach a
        // receiver. The power should be close to 36 × 74.42 mW = 2.68 W.
        let p = m.comm_power(&a);
        assert!(p > 2.0 && p <= 2.69, "D-MISO power {p} W");
    }

    #[test]
    fn dmiso_k_limits_per_rx_group_size() {
        let m = scenario2();
        let a = dmiso_k_allocation(&m.channel, &m.led, 9);
        // At most 9 TXs per RX → at most 36 active, and each active TX
        // serves exactly one RX at full swing.
        assert!(a.active_tx_count() <= 36);
        for t in 0..a.n_tx() {
            let s = a.tx_total_swing(t);
            assert!(s == 0.0 || (s - m.led.max_swing).abs() < 1e-12);
        }
        // Every RX group is bounded by 9.
        for rx in 0..a.n_rx() {
            let group = (0..a.n_tx()).filter(|&t| a.swing(t, rx) > 0.0).count();
            assert!(group <= 9, "RX{} has {group} serving TXs", rx + 1);
        }
    }

    #[test]
    fn geometric_dmiso_burns_the_full_array() {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rx_positions = vec![
            vlc_geom::Vec3::new(0.92, 0.92, 0.8),
            vlc_geom::Vec3::new(1.65, 0.65, 0.8),
            vlc_geom::Vec3::new(0.72, 1.93, 0.8),
            vlc_geom::Vec3::new(1.99, 1.69, 0.8),
        ];
        let m = scenario2();
        let a = dmiso_nearest_geometric(&grid, &rx_positions, &m.led);
        assert_eq!(a.active_tx_count(), 36);
        // Paper: D-MISO's operating point is 2.68 W.
        let p = m.comm_power(&a);
        assert!((p - 2.68).abs() < 0.01, "D-MISO power {p} W");
    }

    #[test]
    fn geometric_dmiso_wastes_power_vs_channel_aware() {
        // The geometric assignment achieves no more throughput than the
        // channel-aware one at the same (or higher) power.
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rx_positions = vec![
            vlc_geom::Vec3::new(0.92, 0.92, 0.8),
            vlc_geom::Vec3::new(1.65, 0.65, 0.8),
            vlc_geom::Vec3::new(0.72, 1.93, 0.8),
            vlc_geom::Vec3::new(1.99, 1.69, 0.8),
        ];
        let m = scenario2();
        let geo = dmiso_nearest_geometric(&grid, &rx_positions, &m.led);
        let aware = dmiso_allocation(&m.channel, &m.led);
        assert!(m.system_throughput(&geo) <= m.system_throughput(&aware) + 1.0);
        assert!(m.comm_power(&geo) >= m.comm_power(&aware) - 1e-9);
    }

    #[test]
    fn dmiso_outperforms_siso_in_throughput() {
        // More radiated signal power → more system throughput (at terrible
        // power efficiency — that's the paper's point).
        let m = scenario2();
        let siso = siso_allocation(&m.channel, &m.led);
        let dmiso = dmiso_k_allocation(&m.channel, &m.led, 9);
        assert!(m.system_throughput(&dmiso) > m.system_throughput(&siso));
    }
}
