//! The optimal swing-allocation solver (the paper's §3.4 nonlinear program).
//!
//! The paper solves Eq. 5–7 with Matlab's `fmincon` (165 s for 36 TX / 4 RX);
//! we implement a multi-start projected-gradient ascent with an analytic
//! gradient. The feasible set is
//!
//! * element-wise `0 ≤ I_sw^{j,k}`,
//! * per-TX total swing `Σ_k I_sw^{j,k} ≤ Isw,max` (Eq. 6),
//! * total communication power `Σ_j r·(Σ_k I^{j,k}/2)² ≤ P̄` (Eq. 7),
//!
//! and the projection used after each ascent step is: clamp to the
//! non-negative orthant, rescale over-limit rows onto the swing bound, then
//! rescale everything onto the power ball (power is homogeneous of degree 2
//! in the swings, so a global factor `√(P̄/P)` restores feasibility).
//! Backtracking line search guarantees monotone ascent of the projected
//! objective; multiple starts (heuristic warm starts across κ plus random
//! perturbations) handle the non-convexity introduced by interference.

use crate::heuristic::{heuristic_allocation, HeuristicConfig};
use crate::model::{Allocation, SystemModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vlc_channel::{ChannelSoA, SparseChannelView};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// Ascent iterations per `alloc.optimal.iters` child span: fine enough to
/// see where a start spends its time, coarse enough that a full solve adds
/// only a handful of records per start.
const ITER_BATCH: usize = 50;

/// Which objective/gradient kernels a solve runs on. Every public entry
/// point uses the fast engine; the dense engine is the historical reference
/// retained as the bit-identity oracle (`tests/sparse_solver_identity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Fast,
    Dense,
}

/// Per-solve immutable context for the fast kernels: the channel transposed
/// into contiguous per-RX gain rows ([`ChannelSoA`]), CSR live-link lists in
/// both orientations ([`SparseChannelView`] — the zero pattern already
/// contains every FOV-culled link, since a culled link has exactly-zero
/// gain), and the model constants every dense evaluation re-derived per
/// call.
///
/// Both kernels reproduce the dense fold orders bit for bit: zero-gain
/// terms of the non-negative stream/interference sums are skipped (`x +
/// (+0.0) == x` for `x ≥ +0.0`), everything else accumulates in the same
/// ascending order with the same association.
struct SolveContext {
    n_tx: usize,
    n_rx: usize,
    soa: ChannelSoA,
    view: SparseChannelView,
    /// Every link live (the paper's wide-FOV geometries): the kernels take
    /// branch-free lane paths with contiguous row sweeps instead of CSR
    /// indirection — same operations in the same order, so still bitwise.
    all_live: bool,
    /// Stream-amplitude scale of Eq. 12: `R·η·r`.
    scale: f64,
    noise: f64,
    bandwidth_hz: f64,
    r: f64,
    max_swing: f64,
}

/// Stream-axis lane width: the paper geometries carry four MRC streams, so
/// the per-RX accumulator of the stream pass fits one register lane.
const STREAM_LANE: usize = 4;

/// TX-axis lane width of the gradient fill: eight independent per-TX
/// evaluations run per step (each element-wise identical to the scalar op
/// sequence), deep enough to keep the divide pipeline busy.
const GRAD_LANE: usize = 8;

impl SolveContext {
    fn new(model: &SystemModel) -> Self {
        let r = model.dyn_resistance();
        let view = SparseChannelView::from_matrix(&model.channel);
        let all_live = view.live_links() == model.n_tx() * model.n_rx();
        SolveContext {
            n_tx: model.n_tx(),
            n_rx: model.n_rx(),
            soa: ChannelSoA::from_matrix(&model.channel),
            view,
            all_live,
            scale: model.responsivity * model.led.wall_plug_efficiency * r,
            noise: model.noise.noise_power(),
            bandwidth_hz: model.noise.bandwidth_hz,
            r,
            max_swing: model.led.max_swing,
        }
    }

    /// Accumulates all `n_rx` stream amplitudes at RX `i` into `acc`
    /// (before the `scale` factor), the shared first pass of both kernels:
    /// ascending-TX, stream-inner, exactly the dense triple loop's order.
    /// The all-live arm sweeps `x` row-chunks against the contiguous SoA
    /// gain row; the sparse arm hops the CSR live list (skipped terms are
    /// exactly `+0.0` in a non-negative ascending sum).
    #[inline]
    fn accumulate_streams_at(&self, i: usize, x: &[f64], acc: &mut [f64]) {
        acc.fill(0.0);
        if self.all_live && self.n_rx == STREAM_LANE {
            // Four streams exactly: the accumulator lane lives in registers
            // and the compiler sees a fixed-width inner loop. Same ops in
            // the same order as the generic arm below.
            let mut lane = [0.0f64; STREAM_LANE];
            for (row, &g) in x.chunks_exact(STREAM_LANE).zip(self.soa.rx_row(i)) {
                for (a, &swing) in lane.iter_mut().zip(row) {
                    let half = swing / 2.0;
                    *a += g * half * half;
                }
            }
            acc.copy_from_slice(&lane);
        } else if self.all_live {
            for (row, &g) in x.chunks_exact(self.n_rx).zip(self.soa.rx_row(i)) {
                for (a, &swing) in acc.iter_mut().zip(row) {
                    let half = swing / 2.0;
                    *a += g * half * half;
                }
            }
        } else {
            let (idx, gains) = self.view.rx_live(i);
            for (&t, &g) in idx.iter().zip(gains) {
                let row = &x[t as usize * self.n_rx..(t as usize + 1) * self.n_rx];
                for (a, &swing) in acc.iter_mut().zip(row) {
                    let half = swing / 2.0;
                    *a += g * half * half;
                }
            }
        }
    }

    /// `Σ_i ln(B·log2(1+SINR_i))` over the raw swing slice — bitwise equal
    /// to `SystemModel::sum_log_throughput` on the same swings. One pass
    /// over each RX's live TX list accumulates all `n_rx` stream amplitudes
    /// at that RX (one gain load shared across the stream lane; each
    /// stream's partial sum runs in ascending-TX order exactly as the dense
    /// triple loop).
    /// On top of the return value, the call leaves the stream amplitudes,
    /// denominators, SINRs, and throughput factors of `x` in `st` — exactly
    /// the state [`Self::gradient_cached`] needs, so an accepted
    /// backtracking candidate's evaluation doubles as the next iteration's
    /// first two gradient passes. Every intermediate is the same product in
    /// the same order as the historical fused objective, so the return is
    /// still bitwise `SystemModel::sum_log_throughput`.
    fn objective(&self, x: &[f64], st: &mut Scratch) -> f64 {
        let n_rx = self.n_rx;
        let ln2 = std::f64::consts::LN_2;
        for i in 0..n_rx {
            self.accumulate_streams_at(i, x, &mut st.acc);
            for (k, &a) in st.acc.iter().enumerate() {
                st.stream_at[k * n_rx + i] = self.scale * a;
            }
        }
        let mut obj = 0.0;
        for i in 0..n_rx {
            let mut interference = 0.0;
            for k in 0..n_rx {
                if k != i {
                    let b = st.stream_at[k * n_rx + i];
                    interference += b * b;
                }
            }
            st.denom[i] = self.noise + interference;
            let sig = st.stream_at[i * n_rx + i];
            let sinr = sig * sig / st.denom[i];
            st.sinr[i] = sinr;
            let t = (1.0 + sinr).log2();
            st.tfac[i] = if t > 0.0 {
                1.0 / (t * (1.0 + sinr) * ln2)
            } else {
                0.0
            };
            obj += (self.bandwidth_hz * t).ln();
        }
        obj
    }

    /// The analytic gradient into `st.grad` — bitwise equal to the dense
    /// `OptimalSolver::gradient`. Gradient rows of TXs with no live link
    /// are exactly `+0.0` in the dense formula and are zero-filled without
    /// evaluation; jam sums skip zero-gain receivers (each skipped term is
    /// `+0.0` in a non-negative ascending sum).
    /// `st` must hold the stream/denominator/SINR state of `x` from an
    /// immediately preceding [`Self::objective`] call at the same point —
    /// the ascent's invariant (every gradient follows an accepted
    /// evaluation), which saves recomputing both shared passes.
    fn gradient_cached(&self, x: &[f64], st: &mut Scratch) {
        if self.all_live {
            self.fill_gradient_lanes(x, st);
        } else {
            self.fill_gradient_sparse(x, st);
        }
    }

    /// The gradient fill for an all-live channel: per RX `k`, the TX axis
    /// runs in [`GRAD_LANE`]-wide batches over the contiguous SoA gain rows.
    /// Each lane element executes the dense reference's exact op sequence
    /// (`((((g·tfac)·2)·s)/denom)`, jam summed over ascending `i ≠ k`), so
    /// every `grad[j,k]` is bitwise the dense value; the batch only lets
    /// four independent divide chains overlap.
    fn fill_gradient_lanes(&self, x: &[f64], st: &mut Scratch) {
        let n_rx = self.n_rx;
        let tail = self.n_tx - self.n_tx % GRAD_LANE;
        for k in 0..n_rx {
            let gk = self.soa.rx_row(k);
            let tfac_k = st.tfac[k];
            let s_kk = st.stream_at[k * n_rx + k];
            let denom_k = st.denom[k];
            for base in (0..tail).step_by(GRAD_LANE) {
                let mut sig = [0.0f64; GRAD_LANE];
                for (l, s) in sig.iter_mut().enumerate() {
                    *s = gk[base + l] * tfac_k * 2.0 * s_kk / denom_k;
                }
                let mut jam = [0.0f64; GRAD_LANE];
                for i in 0..n_rx {
                    if i == k {
                        continue;
                    }
                    let gi = &self.soa.rx_row(i)[base..base + GRAD_LANE];
                    let tfac_i = st.tfac[i];
                    let sinr_i = st.sinr[i];
                    let s_ki = st.stream_at[k * n_rx + i];
                    let denom_i = st.denom[i];
                    for (j, &g) in jam.iter_mut().zip(gi) {
                        *j += g * tfac_i * 2.0 * sinr_i * s_ki / denom_i;
                    }
                }
                for l in 0..GRAD_LANE {
                    let j = base + l;
                    let dq = x[j * n_rx + k] / 2.0;
                    st.grad[j * n_rx + k] = if dq == 0.0 {
                        1e-3 * self.scale * (sig[l] - jam[l]).max(0.0)
                    } else {
                        dq * self.scale * (sig[l] - jam[l])
                    };
                }
            }
            for j in tail..self.n_tx {
                let dq = x[j * n_rx + k] / 2.0;
                let signal = gk[j] * tfac_k * 2.0 * s_kk / denom_k;
                let mut jam = 0.0;
                for i in 0..n_rx {
                    if i == k {
                        continue;
                    }
                    jam += self.soa.gain(j, i)
                        * st.tfac[i]
                        * 2.0
                        * st.sinr[i]
                        * st.stream_at[k * n_rx + i]
                        / st.denom[i];
                }
                st.grad[j * n_rx + k] = if dq == 0.0 {
                    1e-3 * self.scale * (signal - jam).max(0.0)
                } else {
                    dq * self.scale * (signal - jam)
                };
            }
        }
    }

    /// The gradient fill over the CSR live lists: rows of TXs with no live
    /// link are exactly `+0.0` in the dense formula and are zero-filled
    /// without evaluation; jam sums skip zero-gain receivers (each skipped
    /// term is `+0.0` in a non-negative ascending sum).
    fn fill_gradient_sparse(&self, x: &[f64], st: &mut Scratch) {
        let n_rx = self.n_rx;
        st.grad.fill(0.0);
        for j in 0..self.n_tx {
            if !self.view.tx_any_live(j) {
                continue;
            }
            let (jidx, jgains) = self.view.tx_live(j);
            for k in 0..n_rx {
                let dq = x[j * n_rx + k] / 2.0;
                let signal = self.soa.gain(j, k) * st.tfac[k] * 2.0 * st.stream_at[k * n_rx + k]
                    / st.denom[k];
                let mut jam = 0.0;
                for (&i, &g) in jidx.iter().zip(jgains) {
                    let i = i as usize;
                    if i == k {
                        continue;
                    }
                    jam += g * st.tfac[i] * 2.0 * st.sinr[i] * st.stream_at[k * n_rx + i]
                        / st.denom[i];
                }
                st.grad[j * n_rx + k] = if dq == 0.0 {
                    1e-3 * self.scale * (signal - jam).max(0.0)
                } else {
                    dq * self.scale * (signal - jam)
                };
            }
        }
    }
}

/// Reusable per-start buffers for [`OptimalSolver`]'s fast ascent: the
/// dense path allocated a fresh gradient (plus `n_rx` inner vectors) per
/// iteration and a fresh candidate clone per backtracking step.
struct Scratch {
    acc: Vec<f64>,
    stream_at: Vec<f64>,
    denom: Vec<f64>,
    sinr: Vec<f64>,
    tfac: Vec<f64>,
    grad: Vec<f64>,
    cand: Vec<f64>,
}

impl Scratch {
    fn new(n_tx: usize, n_rx: usize) -> Self {
        Scratch {
            acc: vec![0.0; n_rx],
            stream_at: vec![0.0; n_rx * n_rx],
            denom: vec![0.0; n_rx],
            sinr: vec![0.0; n_rx],
            tfac: vec![0.0; n_rx],
            grad: vec![0.0; n_tx * n_rx],
            cand: vec![0.0; n_tx * n_rx],
        }
    }
}

/// The feasible-set projection over a raw swing slice (see module docs) —
/// the one implementation behind both engines, operation-for-operation the
/// historical `Allocation`-based projection.
fn project_slice(x: &mut [f64], n_tx: usize, n_rx: usize, max_swing: f64, r: f64, budget_w: f64) {
    // Non-negativity. Written as a per-element select (each slot gets
    // either its own value or literal `0.0`, exactly as the branchy
    // historical form) so the pass vectorizes.
    for v in x.iter_mut() {
        *v = if v.is_finite() && *v >= 0.0 { *v } else { 0.0 };
    }
    // Per-TX swing cap and power total in one sweep. The historical form
    // ran a second full pass re-summing every row for the power ball; an
    // uncapped row's re-sum is bit-identical to the first (same elements,
    // same fold), so only capped rows are re-summed, and the per-row
    // powers accumulate in the same ascending-row order.
    let mut p = 0.0;
    for t in 0..n_tx {
        let row = &mut x[t * n_rx..(t + 1) * n_rx];
        let mut total: f64 = row.iter().sum();
        if total > max_swing {
            let f = max_swing / total;
            for v in row.iter_mut() {
                *v *= f;
            }
            total = row.iter().sum();
        }
        let half = total / 2.0;
        p += r * half * half;
    }
    // Power ball: power scales quadratically under a global factor.
    if p > budget_w {
        let f = (budget_w / p).sqrt();
        for v in x.iter_mut() {
            *v *= f;
        }
    }
}

/// Solver configuration.
///
/// ```
/// use vlc_alloc::{OptimalSolver, model::SystemModel};
/// use vlc_channel::ChannelMatrix;
///
/// // A toy 2-TX / 2-RX system with clean, symmetric channels.
/// let h = ChannelMatrix::from_gains(2, 2, vec![1e-6, 0.0, 0.0, 1e-6]);
/// let model = SystemModel::paper(h);
/// let report = OptimalSolver::quick().solve(&model, 0.15);
/// assert!(model.is_feasible(&report.allocation, 0.15));
/// assert!(report.objective.is_finite()); // both receivers served
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalSolver {
    /// Maximum gradient-ascent iterations per start.
    pub max_iters: usize,
    /// Number of random restarts (in addition to the warm starts).
    pub random_starts: usize,
    /// Convergence tolerance on the relative objective improvement.
    pub tol: f64,
    /// RNG seed for reproducible restarts.
    pub seed: u64,
}

impl Default for OptimalSolver {
    fn default() -> Self {
        OptimalSolver {
            max_iters: 400,
            random_starts: 4,
            tol: 1e-9,
            seed: 0x5eed,
        }
    }
}

/// Outcome of a solve: the best allocation plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReport {
    /// The best feasible allocation found.
    pub allocation: Allocation,
    /// Its objective value `Σ ln(B·log2(1+SINR))`.
    pub objective: f64,
    /// Its total communication power in watts.
    pub power_w: f64,
    /// Total ascent iterations across all starts.
    pub iterations: usize,
}

impl OptimalSolver {
    /// A faster, slightly less thorough configuration for sweeps.
    pub fn quick() -> Self {
        OptimalSolver {
            max_iters: 150,
            random_starts: 2,
            tol: 1e-7,
            seed: 0x5eed,
        }
    }

    /// Solves the program for `model` under a communication power budget.
    ///
    /// The independent ascent starts fan out over `DENSEVLC_JOBS` workers
    /// (sequential when that resolves to 1); the report is bitwise
    /// identical for any worker count — see [`Self::solve_jobs`].
    ///
    /// # Panics
    /// Panics if `budget_w` is non-positive (a zero budget admits only the
    /// all-zero allocation, whose objective is −∞).
    pub fn solve(&self, model: &SystemModel, budget_w: f64) -> SolveReport {
        self.solve_instrumented(model, budget_w, &Registry::noop())
    }

    /// [`Self::solve`] with an explicit worker count.
    pub fn solve_jobs(&self, model: &SystemModel, budget_w: f64, jobs: Jobs) -> SolveReport {
        self.solve_instrumented_jobs(model, budget_w, &Registry::noop(), jobs)
    }

    /// [`Self::solve`] with telemetry: wall-time into the
    /// `alloc.optimal.solve_s` histogram, plus `alloc.optimal.solves`,
    /// `.iterations`, `.starts`, and `.obj_evals` counters — the cost side
    /// of the paper's Fig. 11 optimal-vs-heuristic comparison. An
    /// all-zero result (no TX activated) counts as `alloc.optimal.infeasible`
    /// and emits an `infeasible_round` event.
    pub fn solve_instrumented(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
    ) -> SolveReport {
        self.solve_instrumented_jobs(model, budget_w, telemetry, Jobs::from_env())
    }

    /// [`Self::solve_instrumented`] with an explicit worker count.
    ///
    /// Each start's projected-gradient ascent is an independent work item;
    /// the winner is selected by scanning the per-start results in start
    /// order (first finite objective seeds the incumbent, only a strictly
    /// greater objective replaces it), which is exactly the sequential
    /// selection rule — so ties keep the lowest start index and the report
    /// is bitwise identical for any `jobs`.
    pub fn solve_instrumented_jobs(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        jobs: Jobs,
    ) -> SolveReport {
        self.solve_traced_jobs(model, budget_w, telemetry, jobs, &Span::noop())
    }

    /// [`Self::solve_instrumented_jobs`] recording an `alloc.optimal.solve`
    /// span under `parent`, with one `alloc.optimal.start` child per ascent
    /// start (indexed by start, so the span tree is worker-count
    /// independent) and an `alloc.optimal.iters` grandchild per batch of
    /// 50 ascent iterations. With a noop parent this is the
    /// instrumented path plus one branch per span site.
    pub fn solve_traced_jobs(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        jobs: Jobs,
        parent: &Span,
    ) -> SolveReport {
        self.solve_core(model, budget_w, telemetry, jobs, parent, None, Engine::Fast)
    }

    /// [`Self::solve_jobs`] forced through the historical dense kernels
    /// (per-iteration gradient allocation, AoS gain loads, no live-link
    /// skipping). Retained as the bit-identity oracle for the sparse/SoA
    /// fast engine — `tests/sparse_solver_identity.rs` asserts both produce
    /// the same report to the last bit — and for perf A/Bs.
    pub fn solve_dense_jobs(&self, model: &SystemModel, budget_w: f64, jobs: Jobs) -> SolveReport {
        self.solve_core(
            model,
            budget_w,
            &Registry::noop(),
            jobs,
            &Span::noop(),
            None,
            Engine::Dense,
        )
    }

    /// [`Self::solve_dense_jobs`] on a caller-supplied pool (see
    /// [`Self::solve_traced_pooled`]): the dense-oracle A/B can share the
    /// harness's hoisted pool instead of building one per solve.
    pub fn solve_dense_pooled(
        &self,
        model: &SystemModel,
        budget_w: f64,
        pool: &Pool,
    ) -> SolveReport {
        self.solve_core_pooled(
            model,
            budget_w,
            &Registry::noop(),
            pool,
            &Span::noop(),
            None,
            Engine::Dense,
        )
    }

    /// [`Self::solve_traced_jobs`] on a caller-supplied pool: no pool is
    /// created inside the solve, so a long-running control plane (or a
    /// benchmark harness) can hoist one pool across every solve — watch
    /// `par.pool.created` stay put.
    pub fn solve_traced_pooled(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        pool: &Pool,
        parent: &Span,
    ) -> SolveReport {
        self.solve_core_pooled(model, budget_w, telemetry, pool, parent, None, Engine::Fast)
    }

    /// [`Self::solve_warm_traced_jobs`] on a caller-supplied pool (see
    /// [`Self::solve_traced_pooled`]).
    #[allow(clippy::too_many_arguments)]
    pub fn solve_warm_traced_pooled(
        &self,
        model: &SystemModel,
        budget_w: f64,
        warm: Option<&Allocation>,
        telemetry: &Registry,
        pool: &Pool,
        parent: &Span,
    ) -> SolveReport {
        self.solve_core_pooled(model, budget_w, telemetry, pool, parent, warm, Engine::Fast)
    }

    /// [`Self::solve`] seeded with a previous allocation (projected back
    /// onto the feasible set) as an extra ascent start.
    ///
    /// On a mobility tick the channel changes slightly, so the previous
    /// plan is usually in the optimum's basin: the warm start converges in
    /// a few iterations and — being start 0 in the tie-keeps-lowest-index
    /// reduction — wins ties, keeping plans stable across ticks. With
    /// `warm: None` this is exactly [`Self::solve`].
    pub fn solve_warm(
        &self,
        model: &SystemModel,
        budget_w: f64,
        warm: Option<&Allocation>,
    ) -> SolveReport {
        self.solve_warm_traced_jobs(
            model,
            budget_w,
            warm,
            &Registry::noop(),
            Jobs::from_env(),
            &Span::noop(),
        )
    }

    /// [`Self::solve_warm`] with telemetry, an explicit worker count, and
    /// tracing (see [`Self::solve_traced_jobs`]). A used seed bumps
    /// `alloc.optimal.warm_starts` and tags the solve span `warm=true`.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_warm_traced_jobs(
        &self,
        model: &SystemModel,
        budget_w: f64,
        warm: Option<&Allocation>,
        telemetry: &Registry,
        jobs: Jobs,
        parent: &Span,
    ) -> SolveReport {
        self.solve_core(model, budget_w, telemetry, jobs, parent, warm, Engine::Fast)
    }

    /// The one solve implementation behind the cold and warm entry points:
    /// with `warm: None` it is byte-for-byte the historical cold solve
    /// (same starts, same spans, same counters), and the fast engine
    /// reproduces the dense engine's report bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn solve_core(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        jobs: Jobs,
        parent: &Span,
        warm: Option<&Allocation>,
        engine: Engine,
    ) -> SolveReport {
        let pool = Pool::new(jobs).with_telemetry(telemetry);
        self.solve_core_pooled(model, budget_w, telemetry, &pool, parent, warm, engine)
    }

    /// [`Self::solve_core`] minus the pool creation: every jobs-based
    /// entry builds a throwaway pool above, every `_pooled` entry reuses
    /// the caller's. Dispatch is identical either way, so both paths
    /// produce bitwise-identical reports.
    #[allow(clippy::too_many_arguments)]
    fn solve_core_pooled(
        &self,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        pool: &Pool,
        parent: &Span,
        warm: Option<&Allocation>,
        engine: Engine,
    ) -> SolveReport {
        assert!(budget_w > 0.0, "power budget must be positive");
        let ctx = match engine {
            Engine::Fast => Some(SolveContext::new(model)),
            Engine::Dense => None,
        };
        let trace = parent.child("alloc.optimal.solve");
        trace.attr("budget_w", &format!("{budget_w}"));
        let _solve_span = telemetry.span("alloc.optimal.solve_s");
        telemetry.counter("alloc.optimal.solves").inc();
        let n_tx = model.n_tx();
        let n_rx = model.n_rx();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut starts: Vec<Allocation> = Vec::new();
        // Warm starts: the heuristic at several κ values, projected onto the
        // budget (cheap and usually in the right basin).
        for kappa in [1.0, 1.2, 1.3, 1.5] {
            let cfg = HeuristicConfig {
                allow_partial_last: true,
                ..HeuristicConfig::with_kappa(kappa)
            };
            let a = heuristic_allocation(&model.channel, &model.led, budget_w, &cfg);
            if model.sum_log_throughput(&a).is_finite() {
                starts.push(a);
            }
        }
        // Baseline start: every RX served by its best TX with an equal share
        // of the budget (always gives a finite objective).
        starts.push(self.equal_share_start(model, budget_w));
        // Random perturbations of the equal-share start.
        for _ in 0..self.random_starts {
            let mut a = self.equal_share_start(model, budget_w);
            for v in a.as_mut_slice() {
                if *v > 0.0 {
                    *v *= rng.gen_range(0.25..1.0);
                }
            }
            // Give a few random extra TXs a nudge so restarts explore
            // different activation patterns.
            for _ in 0..n_tx / 4 {
                let t = rng.gen_range(0..n_tx);
                let r = rng.gen_range(0..n_rx);
                let idx = t * n_rx + r;
                a.as_mut_slice()[idx] += rng.gen_range(0.0..model.led.max_swing / 4.0);
            }
            self.project(model, &mut a, budget_w);
            starts.push(a);
        }
        // The warm seed goes first: the reduction keeps the lowest start
        // index on ties, so an equally-good warm start wins and the plan
        // stays stable across ticks.
        if let Some(prev) = warm {
            if prev.n_tx() == n_tx && prev.n_rx() == n_rx {
                let mut a = prev.clone();
                self.project(model, &mut a, budget_w);
                starts.insert(0, a);
                telemetry.counter("alloc.optimal.warm_starts").inc();
                trace.attr("warm", "true");
            }
        }

        let mut best: Option<(Allocation, f64)> = None;
        let mut total_iters = 0;
        let mut obj_evals = starts.len(); // one initial evaluation per start
        telemetry
            .counter("alloc.optimal.starts")
            .add(starts.len() as u64);
        trace.attr("starts", &starts.len().to_string());
        // Fan the independent ascents out, then reduce in start order: the
        // incumbent only changes on a strictly greater objective, so ties
        // keep the lowest start index — same as the sequential loop.
        let ascents = pool.map_indexed(starts.len(), |i| {
            let start_span = trace.child_indexed("alloc.optimal.start", i);
            let mut start = starts[i].clone();
            self.project(model, &mut start, budget_w);
            let out = match &ctx {
                Some(ctx) => self.ascend_fast(ctx, start, budget_w, &start_span),
                None => self.ascend(model, start, budget_w, &start_span),
            };
            start_span.attr("iters", &out.2.to_string());
            out
        });
        for (alloc, obj, iters, evals) in ascents {
            total_iters += iters;
            obj_evals += evals;
            let better = match &best {
                None => obj.is_finite(),
                Some((_, b)) => obj > *b,
            };
            if better {
                best = Some((alloc, obj));
            }
        }
        let (allocation, objective) = match best {
            Some(found) => found,
            None => {
                // Record the infeasibility before unwinding so a monitoring
                // registry keeps the evidence.
                telemetry.counter("alloc.optimal.infeasible").inc();
                telemetry.event(
                    "alloc.optimal",
                    "infeasible_round",
                    &[("budget_w", &format!("{budget_w}"))],
                );
                panic!("no start yields a finite objective at {budget_w} W");
            }
        };
        let power_w = model.comm_power(&allocation);
        telemetry
            .counter("alloc.optimal.iterations")
            .add(total_iters as u64);
        telemetry
            .counter("alloc.optimal.obj_evals")
            .add(obj_evals as u64);
        if allocation.active_tx_count() == 0 {
            telemetry.counter("alloc.optimal.infeasible").inc();
            telemetry.event(
                "alloc.optimal",
                "infeasible_round",
                &[("budget_w", &format!("{budget_w}"))],
            );
        }
        SolveReport {
            allocation,
            objective,
            power_w,
            iterations: total_iters,
        }
    }

    /// Equal-budget-share start: each RX's best TX gets the swing that its
    /// share of the budget affords.
    fn equal_share_start(&self, model: &SystemModel, budget_w: f64) -> Allocation {
        let n_rx = model.n_rx();
        let r = model.dyn_resistance();
        let share = budget_w / n_rx as f64;
        let swing = (2.0 * (share / r).sqrt()).min(model.led.max_swing);
        let mut a = Allocation::zeros(model.n_tx(), n_rx);
        for rx in 0..n_rx {
            let tx = model.channel.best_tx_for(rx);
            // Two RXs sharing a best TX split its swing range.
            let existing = a.tx_total_swing(tx);
            let room = (model.led.max_swing - existing).max(0.0);
            a.set_swing(tx, rx, swing.min(room));
        }
        a
    }

    /// Projected gradient ascent with backtracking line search. Returns the
    /// final point, its objective, the iteration count, and the number of
    /// objective evaluations spent (the dominant cost term).
    fn ascend(
        &self,
        model: &SystemModel,
        mut x: Allocation,
        budget_w: f64,
        span: &Span,
    ) -> (Allocation, f64, usize, usize) {
        let mut f = model.sum_log_throughput(&x);
        let mut step = 0.1 * model.led.max_swing;
        let mut iters = 0;
        let mut evals = 1;
        // RAII handle for the current iteration batch: reassigning it every
        // ITER_BATCH iterations closes the previous batch span. Underscore
        // name because on the untraced path the handle is never read.
        let mut _batch = Span::noop();
        for it in 0..self.max_iters {
            if span.is_enabled() && it % ITER_BATCH == 0 {
                let b = span.child("alloc.optimal.iters");
                b.attr("from_iter", &it.to_string());
                _batch = b;
            }
            iters += 1;
            let grad = self.gradient(model, &x);
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-14 {
                break;
            }
            // Backtracking: try the step, halve until the projected point
            // improves the objective.
            let mut improved = false;
            let mut local_step = step;
            for _ in 0..30 {
                let mut cand = x.clone();
                for (v, g) in cand.as_mut_slice().iter_mut().zip(&grad) {
                    *v += local_step * g / gnorm;
                }
                self.project(model, &mut cand, budget_w);
                let fc = model.sum_log_throughput(&cand);
                evals += 1;
                if fc > f {
                    let rel = (fc - f) / f.abs().max(1e-12);
                    x = cand;
                    f = fc;
                    improved = true;
                    // Grow the step again after a success.
                    step = (local_step * 1.5).min(model.led.max_swing);
                    if rel < self.tol {
                        return (x, f, iters, evals);
                    }
                    break;
                }
                local_step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        (x, f, iters, evals)
    }

    /// [`Self::ascend`] on the fast kernels: identical control flow driven
    /// by bitwise-identical objective and gradient values, so the returned
    /// point, objective, iteration count, and evaluation count all match
    /// the dense engine exactly — without its per-iteration allocations.
    fn ascend_fast(
        &self,
        ctx: &SolveContext,
        start: Allocation,
        budget_w: f64,
        span: &Span,
    ) -> (Allocation, f64, usize, usize) {
        let mut st = Scratch::new(ctx.n_tx, ctx.n_rx);
        let mut cand = std::mem::take(&mut st.cand);
        let mut x: Vec<f64> = start.as_slice().to_vec();
        let mut f = ctx.objective(&x, &mut st);
        let mut step = 0.1 * ctx.max_swing;
        let mut iters = 0;
        let mut evals = 1;
        let mut _batch = Span::noop();
        for it in 0..self.max_iters {
            if span.is_enabled() && it % ITER_BATCH == 0 {
                let b = span.child("alloc.optimal.iters");
                b.attr("from_iter", &it.to_string());
                _batch = b;
            }
            iters += 1;
            ctx.gradient_cached(&x, &mut st);
            let gnorm = st.grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-14 {
                break;
            }
            let mut improved = false;
            let mut local_step = step;
            for _ in 0..30 {
                // One fused pass: `cand = x + step·g/gnorm`, the same value
                // the dense path forms by cloning `x` then adding in place.
                for ((c, &xv), g) in cand.iter_mut().zip(&x).zip(&st.grad) {
                    *c = xv + local_step * g / gnorm;
                }
                project_slice(
                    &mut cand,
                    ctx.n_tx,
                    ctx.n_rx,
                    ctx.max_swing,
                    ctx.r,
                    budget_w,
                );
                let fc = ctx.objective(&cand, &mut st);
                evals += 1;
                if fc > f {
                    let rel = (fc - f) / f.abs().max(1e-12);
                    x.copy_from_slice(&cand);
                    f = fc;
                    improved = true;
                    step = (local_step * 1.5).min(ctx.max_swing);
                    if rel < self.tol {
                        return (
                            Allocation::from_swings(ctx.n_tx, ctx.n_rx, x),
                            f,
                            iters,
                            evals,
                        );
                    }
                    break;
                }
                local_step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        (
            Allocation::from_swings(ctx.n_tx, ctx.n_rx, x),
            f,
            iters,
            evals,
        )
    }

    /// Analytic gradient of `Σ_i ln(B·log2(1+SINR_i))` with respect to each
    /// swing `I_sw^{j,k}` (see module docs; verified against finite
    /// differences in the tests).
    fn gradient(&self, model: &SystemModel, x: &Allocation) -> Vec<f64> {
        let n_tx = x.n_tx();
        let n_rx = x.n_rx();
        let r = model.dyn_resistance();
        let scale = model.responsivity * model.led.wall_plug_efficiency * r;
        let noise = model.noise.noise_power();
        let ln2 = std::f64::consts::LN_2;

        // stream_at[k][i]: amplitude of stream k measured at RX i.
        let mut stream_at = vec![vec![0.0f64; n_rx]; n_rx];
        for (k, row) in stream_at.iter_mut().enumerate() {
            for (i, slot) in row.iter_mut().enumerate() {
                let mut sum = 0.0;
                for t in 0..n_tx {
                    let half = x.swing(t, k) / 2.0;
                    sum += model.channel.gain(t, i) * half * half;
                }
                *slot = scale * sum;
            }
        }
        // Per-RX denominators, SINR, throughput factor.
        let mut denom = vec![0.0f64; n_rx];
        let mut sinr = vec![0.0f64; n_rx];
        let mut tfac = vec![0.0f64; n_rx]; // 1/(T_i·(1+SINR_i)·ln2)
        for i in 0..n_rx {
            let interference: f64 = (0..n_rx)
                .filter(|&k| k != i)
                .map(|k| stream_at[k][i].powi(2))
                .sum();
            denom[i] = noise + interference;
            let a = stream_at[i][i];
            sinr[i] = a * a / denom[i];
            let t = (1.0 + sinr[i]).log2();
            tfac[i] = if t > 0.0 {
                1.0 / (t * (1.0 + sinr[i]) * ln2)
            } else {
                0.0
            };
        }

        let mut grad = vec![0.0f64; n_tx * n_rx];
        for j in 0..n_tx {
            for k in 0..n_rx {
                let dq = x.swing(j, k) / 2.0; // d(half²)/dI = I/2
                if dq == 0.0 {
                    // Zero swing has zero analytic gradient; leave a small
                    // ascent direction toward the serving gain so inactive
                    // TXs can activate when beneficial. One-sided derivative
                    // of the objective at 0 is 0, so use the curvature cue.
                    let signal_cue =
                        model.channel.gain(j, k) * tfac[k] * 2.0 * stream_at[k][k] / denom[k];
                    let jam_cue: f64 = (0..n_rx)
                        .filter(|&i| i != k)
                        .map(|i| {
                            model.channel.gain(j, i) * tfac[i] * 2.0 * sinr[i] * stream_at[k][i]
                                / denom[i]
                        })
                        .sum();
                    grad[j * n_rx + k] = 1e-3 * scale * (signal_cue - jam_cue).max(0.0);
                    continue;
                }
                // Signal term at RX k.
                let signal = model.channel.gain(j, k) * tfac[k] * 2.0 * stream_at[k][k] / denom[k];
                // Interference terms at every other RX i.
                let jam: f64 = (0..n_rx)
                    .filter(|&i| i != k)
                    .map(|i| {
                        model.channel.gain(j, i) * tfac[i] * 2.0 * sinr[i] * stream_at[k][i]
                            / denom[i]
                    })
                    .sum();
                grad[j * n_rx + k] = dq * scale * (signal - jam);
            }
        }
        grad
    }

    /// Projects an allocation onto the feasible set (see module docs).
    fn project(&self, model: &SystemModel, x: &mut Allocation, budget_w: f64) {
        let n_tx = x.n_tx();
        let n_rx = x.n_rx();
        project_slice(
            x.as_mut_slice(),
            n_tx,
            n_rx,
            model.led.max_swing,
            model.dyn_resistance(),
            budget_w,
        );
    }
}

/// Tick-to-tick replan cache around [`OptimalSolver`].
///
/// Remembers the channel, budget, and report of the previous solve. When
/// the channel is *unchanged* (exact [`ChannelMatrix`] equality — the
/// incremental engine reproduces bitwise-identical matrices for a static
/// world, so this hits every quiet tick) the replan is skipped entirely
/// and the previous report returned. Otherwise the solver runs seeded with
/// the previous allocation via [`OptimalSolver::solve_warm`].
///
/// State is per-run: create one `WarmOptimal` per simulation run so replays
/// start cold and stay reproducible.
#[derive(Debug, Clone, Default)]
pub struct WarmOptimal {
    last: Option<(vlc_channel::ChannelMatrix, f64, SolveReport)>,
}

impl WarmOptimal {
    /// An empty cache: the first solve is cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the cache holds a previous solve.
    pub fn is_warm(&self) -> bool {
        self.last.is_some()
    }

    /// Drops the cached solve; the next one runs cold.
    pub fn invalidate(&mut self) {
        self.last = None;
    }

    /// Solves `model` under `budget_w`, reusing or seeding from the
    /// previous solve when possible.
    pub fn solve(
        &mut self,
        solver: &OptimalSolver,
        model: &SystemModel,
        budget_w: f64,
    ) -> SolveReport {
        self.solve_traced_jobs(
            solver,
            model,
            budget_w,
            &Registry::noop(),
            Jobs::from_env(),
            &Span::noop(),
        )
    }

    /// [`Self::solve`] with telemetry, an explicit worker count, and
    /// tracing. An unchanged channel bumps `alloc.optimal.replan_hits`
    /// and records an `alloc.optimal.cached` span instead of a solve; a
    /// changed one runs [`OptimalSolver::solve_warm_traced_jobs`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_traced_jobs(
        &mut self,
        solver: &OptimalSolver,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        jobs: Jobs,
        parent: &Span,
    ) -> SolveReport {
        if let Some((channel, budget, report)) = &self.last {
            if *channel == model.channel && *budget == budget_w {
                telemetry.counter("alloc.optimal.replan_hits").inc();
                let span = parent.child("alloc.optimal.cached");
                span.attr("budget_w", &format!("{budget_w}"));
                return report.clone();
            }
        }
        let warm = self.last.as_ref().map(|(_, _, r)| r.allocation.clone());
        let report =
            solver.solve_warm_traced_jobs(model, budget_w, warm.as_ref(), telemetry, jobs, parent);
        self.last = Some((model.channel.clone(), budget_w, report.clone()));
        report
    }

    /// [`Self::solve_traced_jobs`] on a caller-supplied pool (see
    /// [`OptimalSolver::solve_traced_pooled`]).
    #[allow(clippy::too_many_arguments)]
    pub fn solve_traced_pooled(
        &mut self,
        solver: &OptimalSolver,
        model: &SystemModel,
        budget_w: f64,
        telemetry: &Registry,
        pool: &Pool,
        parent: &Span,
    ) -> SolveReport {
        if let Some((channel, budget, report)) = &self.last {
            if *channel == model.channel && *budget == budget_w {
                telemetry.counter("alloc.optimal.replan_hits").inc();
                let span = parent.child("alloc.optimal.cached");
                span.attr("budget_w", &format!("{budget_w}"));
                return report.clone();
            }
        }
        let warm = self.last.as_ref().map(|(_, _, r)| r.allocation.clone());
        let report = solver.solve_warm_traced_pooled(
            model,
            budget_w,
            warm.as_ref(),
            telemetry,
            pool,
            parent,
        );
        self.last = Some((model.channel.clone(), budget_w, report.clone()));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::{ChannelMatrix, RxOptics};
    use vlc_geom::{Pose, Room, TxGrid};
    use vlc_led::power::dynamic_resistance;

    fn scenario2_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    fn two_rx_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::centered(&room, 3, 3, 1.0);
        let rxs = vec![Pose::face_up(0.5, 0.5, 0.8), Pose::face_up(2.5, 2.5, 0.8)];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn solution_is_feasible() {
        let m = scenario2_model();
        let budget = 0.5;
        let report = OptimalSolver::quick().solve(&m, budget);
        assert!(m.is_feasible(&report.allocation, budget));
        assert!(report.power_w <= budget + 1e-9);
        assert!(report.objective.is_finite());
    }

    #[test]
    fn every_rx_is_served() {
        // Proportional fairness: a starved RX makes the objective −∞, so the
        // optimum serves everyone.
        let m = scenario2_model();
        let report = OptimalSolver::quick().solve(&m, 0.5);
        for (i, t) in m.throughput(&report.allocation).iter().enumerate() {
            assert!(*t > 0.0, "RX{} starved", i + 1);
        }
    }

    #[test]
    fn objective_beats_heuristic() {
        // The solver must be at least as good as its own warm start.
        let m = scenario2_model();
        let budget = 0.5;
        let report = OptimalSolver::quick().solve(&m, budget);
        let h = heuristic_allocation(
            &m.channel,
            &m.led,
            budget,
            &HeuristicConfig {
                allow_partial_last: true,
                ..HeuristicConfig::paper()
            },
        );
        let obj_h = m.sum_log_throughput(&h);
        assert!(
            report.objective >= obj_h - 1e-9,
            "solver {} < heuristic {}",
            report.objective,
            obj_h
        );
    }

    #[test]
    fn infeasible_model_is_counted_and_evented_before_unwinding() {
        // A dead channel (every gain zero) starves every receiver: no start
        // can produce a finite objective, so the solver records the
        // infeasibility and panics.
        let m = SystemModel::paper(ChannelMatrix::from_gains(4, 2, vec![0.0; 8]));
        let telemetry = Registry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            OptimalSolver::quick().solve_instrumented(&m, 0.5, &telemetry)
        }));
        assert!(result.is_err(), "dead channel must not yield a solution");
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.optimal.infeasible"), Some(1));
        let event = snap
            .events_of_kind("infeasible_round")
            .next()
            .expect("infeasible event recorded");
        assert_eq!(event.target, "alloc.optimal");
        assert!(event
            .fields
            .iter()
            .any(|(k, v)| k == "budget_w" && v == "0.5"));
    }

    #[test]
    fn feasible_solve_records_work_but_no_infeasible_signal() {
        let m = two_rx_model();
        let telemetry = Registry::new();
        let report = OptimalSolver::quick().solve_instrumented(&m, 0.4, &telemetry);
        assert!(report.allocation.active_tx_count() > 0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.optimal.infeasible"), None);
        assert_eq!(snap.events_of_kind("infeasible_round").count(), 0);
        assert_eq!(snap.counter("alloc.optimal.solves"), Some(1));
        assert_eq!(
            snap.counter("alloc.optimal.iterations"),
            Some(report.iterations as u64)
        );
        // Every start costs one initial evaluation, plus at least one per
        // ascent iteration.
        let evals = snap.counter("alloc.optimal.obj_evals").expect("obj evals");
        let starts = snap.counter("alloc.optimal.starts").expect("starts");
        assert!(starts >= 1);
        assert!(evals >= starts + report.iterations as u64);
        assert!(snap
            .histogram("alloc.optimal.solve_s")
            .is_some_and(|h| h.count == 1 && h.max > 0.0));
    }

    #[test]
    fn more_budget_never_hurts() {
        let m = two_rx_model();
        let solver = OptimalSolver::quick();
        let lo = solver.solve(&m, 0.1);
        let hi = solver.solve(&m, 0.4);
        assert!(
            hi.objective >= lo.objective - 1e-6,
            "lo {} hi {}",
            lo.objective,
            hi.objective
        );
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let m = two_rx_model();
        let solver = OptimalSolver::default();
        // A strictly interior point with all streams active.
        let n_tx = m.n_tx();
        let n_rx = m.n_rx();
        let mut x = Allocation::zeros(n_tx, n_rx);
        for t in 0..n_tx {
            for r in 0..n_rx {
                x.set_swing(t, r, 0.05 + 0.01 * ((t * n_rx + r) % 7) as f64);
            }
        }
        let grad = solver.gradient(&m, &x);
        let eps = 1e-6;
        for idx in [0usize, 3, 7, n_tx * n_rx - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (m.sum_log_throughput(&xp) - m.sum_log_throughput(&xm)) / (2.0 * eps);
            let an = grad[idx];
            let denom = fd.abs().max(an.abs()).max(1e-9);
            assert!(
                ((fd - an) / denom).abs() < 1e-3,
                "idx {idx}: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn projection_restores_feasibility() {
        let m = two_rx_model();
        let solver = OptimalSolver::default();
        let n = m.n_tx() * m.n_rx();
        let mut x = Allocation::from_swings(m.n_tx(), m.n_rx(), vec![0.9; n]);
        let budget = 0.2;
        solver.project(&m, &mut x, budget);
        assert!(m.is_feasible(&x, budget));
    }

    #[test]
    fn solver_spends_most_of_a_small_budget() {
        // With a budget below one full-swing TX, the optimum transmits at
        // whatever swing the budget allows — power should not be left idle.
        let m = two_rx_model();
        let r = dynamic_resistance(&m.led);
        let budget = 0.5 * r * (m.led.max_swing / 2.0).powi(2);
        let report = OptimalSolver::quick().solve(&m, budget);
        assert!(
            report.power_w > 0.8 * budget,
            "spent {} of {}",
            report.power_w,
            budget
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let m = two_rx_model();
        OptimalSolver::quick().solve(&m, 0.0);
    }

    #[test]
    fn warm_none_is_bitwise_identical_to_cold() {
        let m = scenario2_model();
        let solver = OptimalSolver::quick();
        let cold = solver.solve(&m, 0.5);
        let warm = solver.solve_warm(&m, 0.5, None);
        assert_eq!(warm, cold);
    }

    #[test]
    fn warm_seed_never_loses_to_cold() {
        // The previous solution is one extra start: the warm solve's
        // objective can only match or beat the cold one.
        let m = scenario2_model();
        let solver = OptimalSolver::quick();
        let cold = solver.solve(&m, 0.5);
        let warm = solver.solve_warm(&m, 0.5, Some(&cold.allocation));
        assert!(
            warm.objective >= cold.objective - 1e-12,
            "warm {} < cold {}",
            warm.objective,
            cold.objective
        );
        assert!(m.is_feasible(&warm.allocation, 0.5));
    }

    #[test]
    fn warm_seed_with_wrong_shape_is_ignored() {
        let m = two_rx_model();
        let solver = OptimalSolver::quick();
        let foreign = Allocation::zeros(3, 3);
        let telemetry = Registry::new();
        solver.solve_warm_traced_jobs(
            &m,
            0.4,
            Some(&foreign),
            &telemetry,
            Jobs::serial(),
            &Span::noop(),
        );
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.optimal.warm_starts"), None);
    }

    #[test]
    fn warm_optimal_skips_replan_on_unchanged_channel() {
        let m = two_rx_model();
        let solver = OptimalSolver::quick();
        let telemetry = Registry::new();
        let mut cache = WarmOptimal::new();
        let first =
            cache.solve_traced_jobs(&solver, &m, 0.4, &telemetry, Jobs::serial(), &Span::noop());
        let second =
            cache.solve_traced_jobs(&solver, &m, 0.4, &telemetry, Jobs::serial(), &Span::noop());
        assert_eq!(second, first, "cached replan returns the same report");
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.optimal.replan_hits"), Some(1));
        assert_eq!(snap.counter("alloc.optimal.solves"), Some(1));
    }

    #[test]
    fn warm_optimal_resolves_on_channel_or_budget_change() {
        let solver = OptimalSolver::quick();
        let telemetry = Registry::new();
        let mut cache = WarmOptimal::new();
        let m = two_rx_model();
        cache.solve_traced_jobs(&solver, &m, 0.4, &telemetry, Jobs::serial(), &Span::noop());
        // A different budget re-solves (seeded by the previous allocation).
        cache.solve_traced_jobs(&solver, &m, 0.3, &telemetry, Jobs::serial(), &Span::noop());
        // A perturbed channel re-solves too.
        let bumped = SystemModel::paper(m.channel.map(|g| g * 1.01));
        cache.solve_traced_jobs(
            &solver,
            &bumped,
            0.3,
            &telemetry,
            Jobs::serial(),
            &Span::noop(),
        );
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.optimal.solves"), Some(3));
        assert_eq!(snap.counter("alloc.optimal.warm_starts"), Some(2));
        assert_eq!(snap.counter("alloc.optimal.replan_hits"), None);
        // Invalidation forces the next solve cold.
        cache.invalidate();
        assert!(!cache.is_warm());
    }
}
