//! Exhaustive binary-assignment search for small instances.
//!
//! Insight 2 says the practical optimum is (nearly) binary: each TX is
//! either dark or at full swing toward one receiver. For small deployments
//! the binary space is enumerable — `(M+1)^N` assignments — giving a
//! ground-truth optimum to validate the continuous gradient solver and the
//! SJR heuristic against. This is a test/validation tool, not a production
//! allocator: the paper's 36-TX instance has `5³⁶ ≈ 10²⁵` assignments.

use crate::model::{Allocation, SystemModel};
use serde::{Deserialize, Serialize};
use vlc_par::{Jobs, Pool, DEFAULT_CHUNK};

/// The exhaustive-search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// The best binary allocation found.
    pub allocation: Allocation,
    /// Its sum-log objective.
    pub objective: f64,
    /// Its system throughput in bit/s.
    pub system_bps: f64,
    /// Assignments evaluated.
    pub evaluated: u64,
}

/// Enumerates every binary assignment (each TX off or full-swing toward one
/// RX) within the power budget and returns the best by sum-log objective,
/// falling back to system throughput while some receiver is still unserved.
///
/// The candidate space partitions across `DENSEVLC_JOBS` workers
/// (sequential when that resolves to 1); the result is bitwise identical
/// for any worker count — see [`exhaustive_binary_jobs`].
///
/// # Panics
/// Panics when the search space exceeds `max_assignments` (guard against
/// accidentally exhausting a 36-TX instance) or the budget is not positive.
pub fn exhaustive_binary(
    model: &SystemModel,
    budget_w: f64,
    max_assignments: u64,
) -> ExhaustiveResult {
    exhaustive_binary_jobs(model, budget_w, max_assignments, Jobs::from_env())
}

/// [`exhaustive_binary`] with an explicit worker count.
///
/// Every assignment has an explicit index `i ∈ 0..(M+1)^N`, decoded as a
/// mixed-radix code with TX 0 the least-significant digit — the same order
/// the historic sequential counter visited. The winner is the
/// lowest-index assignment among those maximal under the ranking
/// predicate (finite objectives first, throughput among the unserved):
/// candidates are scanned in index order within fixed-size chunks and the
/// chunk bests merged in chunk order, with only a *strictly better*
/// candidate displacing the incumbent. Ties therefore always break to the
/// lowest assignment index, on one worker or many.
pub fn exhaustive_binary_jobs(
    model: &SystemModel,
    budget_w: f64,
    max_assignments: u64,
    jobs: Jobs,
) -> ExhaustiveResult {
    assert!(budget_w > 0.0, "budget must be positive");
    let n_tx = model.n_tx();
    let n_rx = model.n_rx();
    let choices = (n_rx + 1) as u64;
    let space: u64 = choices
        .checked_pow(n_tx as u32)
        .expect("search space fits in u64");
    assert!(
        space <= max_assignments,
        "search space {space} exceeds the {max_assignments} guard"
    );

    let full = model.led.max_swing;
    let full_power = model.dyn_resistance() * (full / 2.0) * (full / 2.0);
    let max_active = (budget_w / full_power).floor() as usize;

    // Score one assignment index; `None` = over the activation budget.
    let score = |index: usize| -> Option<(Allocation, f64, f64)> {
        let mut rest = index as u64;
        let mut alloc = Allocation::zeros(n_tx, n_rx);
        let mut active = 0usize;
        for tx in 0..n_tx {
            let c = (rest % choices) as usize; // 0 = off, 1..=n_rx = serve RX c-1
            rest /= choices;
            if c > 0 {
                active += 1;
                alloc.set_swing(tx, c - 1, full);
            }
        }
        if active > max_active {
            return None;
        }
        let obj = model.sum_log_throughput(&alloc);
        let bps = model.system_throughput(&alloc);
        Some((alloc, obj, bps))
    };
    // Rank finite objectives first; among −∞ (some RX unserved), prefer
    // higher raw throughput so tiny budgets still return a sensible
    // allocation. Strict, so equal candidates keep the earlier index.
    let better = |new: &(Allocation, f64, f64), cur: &(Allocation, f64, f64)| {
        if new.1.is_finite() || cur.1.is_finite() {
            new.1 > cur.1
        } else {
            new.2 > cur.2
        }
    };

    let best = Pool::new(jobs).argmax_by(space as usize, DEFAULT_CHUNK, score, better);
    let (_, (allocation, objective, system_bps)) =
        best.expect("the all-off assignment (index 0) is always within budget");
    ExhaustiveResult {
        allocation,
        objective,
        system_bps,
        evaluated: space,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{heuristic_allocation, HeuristicConfig};
    use crate::optimal::OptimalSolver;
    use vlc_channel::{ChannelMatrix, RxOptics};
    use vlc_geom::{Pose, Room, TxGrid};

    /// A 3 × 3 grid with two receivers: 3⁹ ≈ 20k assignments.
    fn tiny_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::centered(&room, 3, 3, 1.0);
        let rxs = vec![Pose::face_up(0.6, 0.6, 0.8), Pose::face_up(2.4, 2.4, 0.8)];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn exhaustive_respects_the_budget() {
        let m = tiny_model();
        let budget = 0.2;
        let res = exhaustive_binary(&m, budget, 1 << 20);
        assert!(m.is_feasible(&res.allocation, budget));
        assert_eq!(res.evaluated, 3u64.pow(9));
    }

    #[test]
    fn continuous_solver_matches_or_beats_the_binary_ground_truth() {
        // The continuous relaxation can only do at least as well as the
        // best binary point (up to solver tolerance).
        let m = tiny_model();
        let budget = 0.3;
        let truth = exhaustive_binary(&m, budget, 1 << 21);
        let report = OptimalSolver::default().solve(&m, budget);
        assert!(
            report.objective >= truth.objective - 0.02 * truth.objective.abs(),
            "solver {} far below binary truth {}",
            report.objective,
            truth.objective
        );
    }

    #[test]
    fn heuristic_lands_near_the_binary_ground_truth() {
        let m = tiny_model();
        let budget = 0.3;
        let truth = exhaustive_binary(&m, budget, 1 << 21);
        let h = heuristic_allocation(&m.channel, &m.led, budget, &HeuristicConfig::paper());
        let h_bps = m.system_throughput(&h);
        assert!(
            h_bps > 0.85 * truth.system_bps,
            "heuristic {} vs ground truth {}",
            h_bps,
            truth.system_bps
        );
    }

    #[test]
    fn tiny_budget_returns_the_best_single_tx() {
        let m = tiny_model();
        let full_power = m.dyn_resistance() * (m.led.max_swing / 2.0_f64).powi(2);
        let res = exhaustive_binary(&m, full_power * 1.01, 1 << 21);
        assert_eq!(res.allocation.active_tx_count(), 1);
        assert!(res.system_bps > 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_search_space_panics() {
        let m = tiny_model();
        exhaustive_binary(&m, 0.3, 100);
    }

    #[test]
    fn ties_break_to_the_lowest_assignment_index() {
        // Two TXs with bitwise-identical gains toward one RX: activating
        // either yields the exact same objective, so the ranking alone
        // cannot pick a winner. The contract is lowest assignment index —
        // TX0 serving RX0 (index 1) beats TX1 serving RX0 (index 2) — on
        // one worker or many.
        let m = SystemModel::paper(ChannelMatrix::from_gains(2, 1, vec![1e-6, 1e-6]));
        let full_power = m.dyn_resistance() * (m.led.max_swing / 2.0_f64).powi(2);
        for jobs in [1usize, 2, 7] {
            let res = exhaustive_binary_jobs(&m, full_power * 1.5, 1 << 10, Jobs::of(jobs));
            assert_eq!(res.allocation.active_tx_count(), 1, "jobs={jobs}");
            assert!(
                res.allocation.swing(0, 0) > 0.0,
                "jobs={jobs}: the tie must go to TX0"
            );
            assert_eq!(res.allocation.swing(1, 0), 0.0, "jobs={jobs}");
        }
    }

    #[test]
    fn worker_count_never_changes_the_result() {
        let m = tiny_model();
        let reference = exhaustive_binary_jobs(&m, 0.3, 1 << 21, Jobs::serial());
        for jobs in [2usize, 7] {
            let res = exhaustive_binary_jobs(&m, 0.3, 1 << 21, Jobs::of(jobs));
            assert_eq!(res, reference, "jobs={jobs}");
        }
    }
}
