//! Exhaustive binary-assignment search for small instances.
//!
//! Insight 2 says the practical optimum is (nearly) binary: each TX is
//! either dark or at full swing toward one receiver. For small deployments
//! the binary space is enumerable — `(M+1)^N` assignments — giving a
//! ground-truth optimum to validate the continuous gradient solver and the
//! SJR heuristic against. This is a test/validation tool, not a production
//! allocator: the paper's 36-TX instance has `5³⁶ ≈ 10²⁵` assignments.

use crate::model::{Allocation, SystemModel};
use serde::{Deserialize, Serialize};

/// The exhaustive-search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// The best binary allocation found.
    pub allocation: Allocation,
    /// Its sum-log objective.
    pub objective: f64,
    /// Its system throughput in bit/s.
    pub system_bps: f64,
    /// Assignments evaluated.
    pub evaluated: u64,
}

/// Enumerates every binary assignment (each TX off or full-swing toward one
/// RX) within the power budget and returns the best by sum-log objective,
/// falling back to system throughput while some receiver is still unserved.
///
/// # Panics
/// Panics when the search space exceeds `max_assignments` (guard against
/// accidentally exhausting a 36-TX instance) or the budget is not positive.
pub fn exhaustive_binary(
    model: &SystemModel,
    budget_w: f64,
    max_assignments: u64,
) -> ExhaustiveResult {
    assert!(budget_w > 0.0, "budget must be positive");
    let n_tx = model.n_tx();
    let n_rx = model.n_rx();
    let choices = (n_rx + 1) as u64;
    let space: u64 = choices
        .checked_pow(n_tx as u32)
        .expect("search space fits in u64");
    assert!(
        space <= max_assignments,
        "search space {space} exceeds the {max_assignments} guard"
    );

    let full = model.led.max_swing;
    let full_power = model.dyn_resistance() * (full / 2.0) * (full / 2.0);
    let max_active = (budget_w / full_power).floor() as usize;

    let mut best: Option<(Allocation, f64, f64)> = None;
    let mut evaluated = 0u64;
    let mut code = vec![0usize; n_tx]; // 0 = off, 1..=n_rx = serve RX-1
    loop {
        evaluated += 1;
        let active = code.iter().filter(|&&c| c > 0).count();
        if active <= max_active {
            let mut alloc = Allocation::zeros(n_tx, n_rx);
            for (tx, &c) in code.iter().enumerate() {
                if c > 0 {
                    alloc.set_swing(tx, c - 1, full);
                }
            }
            let obj = model.sum_log_throughput(&alloc);
            let bps = model.system_throughput(&alloc);
            // Rank finite objectives first; among −∞ (some RX unserved),
            // prefer higher raw throughput so tiny budgets still return a
            // sensible allocation.
            let better = match &best {
                None => true,
                Some((_, b_obj, b_bps)) => {
                    if obj.is_finite() || b_obj.is_finite() {
                        obj > *b_obj
                    } else {
                        bps > *b_bps
                    }
                }
            };
            if better {
                best = Some((alloc, obj, bps));
            }
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n_tx {
                let (allocation, objective, system_bps) =
                    best.expect("at least the all-off assignment was evaluated");
                return ExhaustiveResult {
                    allocation,
                    objective,
                    system_bps,
                    evaluated,
                };
            }
            code[i] += 1;
            if code[i] <= n_rx {
                break;
            }
            code[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{heuristic_allocation, HeuristicConfig};
    use crate::optimal::OptimalSolver;
    use vlc_channel::{ChannelMatrix, RxOptics};
    use vlc_geom::{Pose, Room, TxGrid};

    /// A 3 × 3 grid with two receivers: 3⁹ ≈ 20k assignments.
    fn tiny_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::centered(&room, 3, 3, 1.0);
        let rxs = vec![Pose::face_up(0.6, 0.6, 0.8), Pose::face_up(2.4, 2.4, 0.8)];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn exhaustive_respects_the_budget() {
        let m = tiny_model();
        let budget = 0.2;
        let res = exhaustive_binary(&m, budget, 1 << 20);
        assert!(m.is_feasible(&res.allocation, budget));
        assert_eq!(res.evaluated, 3u64.pow(9));
    }

    #[test]
    fn continuous_solver_matches_or_beats_the_binary_ground_truth() {
        // The continuous relaxation can only do at least as well as the
        // best binary point (up to solver tolerance).
        let m = tiny_model();
        let budget = 0.3;
        let truth = exhaustive_binary(&m, budget, 1 << 21);
        let report = OptimalSolver::default().solve(&m, budget);
        assert!(
            report.objective >= truth.objective - 0.02 * truth.objective.abs(),
            "solver {} far below binary truth {}",
            report.objective,
            truth.objective
        );
    }

    #[test]
    fn heuristic_lands_near_the_binary_ground_truth() {
        let m = tiny_model();
        let budget = 0.3;
        let truth = exhaustive_binary(&m, budget, 1 << 21);
        let h = heuristic_allocation(&m.channel, &m.led, budget, &HeuristicConfig::paper());
        let h_bps = m.system_throughput(&h);
        assert!(
            h_bps > 0.85 * truth.system_bps,
            "heuristic {} vs ground truth {}",
            h_bps,
            truth.system_bps
        );
    }

    #[test]
    fn tiny_budget_returns_the_best_single_tx() {
        let m = tiny_model();
        let full_power = m.dyn_resistance() * (m.led.max_swing / 2.0_f64).powi(2);
        let res = exhaustive_binary(&m, full_power * 1.01, 1 << 21);
        assert_eq!(res.allocation.active_tx_count(), 1);
        assert!(res.system_bps > 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_search_space_panics() {
        let m = tiny_model();
        exhaustive_binary(&m, 0.3, 100);
    }
}
