//! Personalized, adaptive per-TX κ (paper §9, "Personalized and adaptive κ").
//!
//! The paper's heuristic uses one κ for all TXs and observes that "properly
//! personalized and adaptive κs can boost the system performance towards
//! the optimal result". This module implements that extension: a coordinate
//! ascent over per-TX κ values, evaluating candidate rankings on the system
//! model. Each pass perturbs one TX's κ up and down and keeps whatever
//! improves the planned sum-log throughput; a handful of passes converges
//! because only TXs near decision boundaries (serve RX A vs RX B vs stay
//! dark) react to their κ at all.

use crate::heuristic::{heuristic_allocation, HeuristicConfig};
use crate::model::SystemModel;
use serde::{Deserialize, Serialize};

/// Configuration of the κ adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KappaAdaptConfig {
    /// Number of full coordinate-ascent passes over the TXs.
    pub passes: usize,
    /// Multiplicative perturbation step per trial (e.g. 0.1 → ±10 %).
    pub step: f64,
    /// Lower bound on any per-TX κ.
    pub kappa_min: f64,
    /// Upper bound on any per-TX κ.
    pub kappa_max: f64,
}

impl Default for KappaAdaptConfig {
    fn default() -> Self {
        KappaAdaptConfig {
            passes: 2,
            step: 0.15,
            kappa_min: 0.8,
            kappa_max: 2.5,
        }
    }
}

/// Result of the adaptation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KappaAdaptResult {
    /// The adapted heuristic configuration (with `per_tx_kappa` set).
    pub config: HeuristicConfig,
    /// Sum-log objective with the uniform starting κ.
    pub baseline_objective: f64,
    /// Sum-log objective after adaptation.
    pub adapted_objective: f64,
    /// Number of accepted per-TX changes.
    pub accepted_moves: usize,
}

impl KappaAdaptResult {
    /// System-throughput-style improvement as a fraction of the baseline
    /// objective gap (positive = adaptation helped).
    pub fn improved(&self) -> bool {
        self.adapted_objective > self.baseline_objective + 1e-12
    }
}

/// Runs the coordinate ascent for a model and budget, starting from a
/// uniform-κ configuration.
///
/// # Panics
/// Panics if the starting configuration already has `per_tx_kappa` set with
/// the wrong length, or if the budget is not positive.
pub fn adapt_per_tx_kappa(
    model: &SystemModel,
    budget_w: f64,
    start: &HeuristicConfig,
    adapt: &KappaAdaptConfig,
) -> KappaAdaptResult {
    assert!(budget_w > 0.0, "budget must be positive");
    assert!(
        adapt.passes > 0 && adapt.step > 0.0,
        "degenerate adaptation config"
    );
    let n_tx = model.n_tx();
    let mut kappas = match &start.per_tx_kappa {
        Some(v) => {
            assert_eq!(v.len(), n_tx, "per-TX κ vector has the wrong length");
            v.clone()
        }
        None => vec![start.kappa; n_tx],
    };

    let evaluate = |kappas: &[f64]| -> f64 {
        let cfg = HeuristicConfig {
            kappa: start.kappa,
            per_tx_kappa: Some(kappas.to_vec()),
            allow_partial_last: start.allow_partial_last,
        };
        let alloc = heuristic_allocation(&model.channel, &model.led, budget_w, &cfg);
        // Sum-log is −∞ while some RX is unserved (tiny budgets); fall back
        // to plain system throughput so the ascent still has a signal.
        let obj = model.sum_log_throughput(&alloc);
        if obj.is_finite() {
            obj
        } else {
            model.system_throughput(&alloc) / model.noise.bandwidth_hz - 1e6
        }
    };

    let baseline_objective = evaluate(&kappas);
    let mut best = baseline_objective;
    let mut accepted_moves = 0;
    for _ in 0..adapt.passes {
        for tx in 0..n_tx {
            let original = kappas[tx];
            let mut improved_here = false;
            for factor in [1.0 + adapt.step, 1.0 - adapt.step] {
                let candidate = (original * factor).clamp(adapt.kappa_min, adapt.kappa_max);
                if (candidate - original).abs() < 1e-12 {
                    continue;
                }
                kappas[tx] = candidate;
                let obj = evaluate(&kappas);
                if obj > best + 1e-12 {
                    best = obj;
                    accepted_moves += 1;
                    improved_here = true;
                    break;
                }
            }
            if !improved_here {
                kappas[tx] = original;
            }
        }
    }

    KappaAdaptResult {
        config: HeuristicConfig {
            kappa: start.kappa,
            per_tx_kappa: Some(kappas),
            allow_partial_last: start.allow_partial_last,
        },
        baseline_objective,
        adapted_objective: best,
        accepted_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::{ChannelMatrix, RxOptics};
    use vlc_geom::{Pose, Room, TxGrid};

    fn scenario2_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn adaptation_never_degrades_the_objective() {
        let model = scenario2_model();
        let res = adapt_per_tx_kappa(
            &model,
            1.2,
            &HeuristicConfig::paper(),
            &KappaAdaptConfig::default(),
        );
        assert!(res.adapted_objective >= res.baseline_objective);
    }

    #[test]
    fn adaptation_finds_improvements_from_a_bad_start() {
        // Starting from the paper's known-bad κ = 1.0, adaptation must
        // claw back a meaningful share of the gap to κ = 1.3.
        let model = scenario2_model();
        let res = adapt_per_tx_kappa(
            &model,
            0.9,
            &HeuristicConfig::with_kappa(1.0),
            &KappaAdaptConfig::default(),
        );
        assert!(res.improved(), "no improvement from κ = 1.0");
        assert!(res.accepted_moves > 0);
    }

    #[test]
    fn adapted_kappas_stay_within_bounds() {
        let model = scenario2_model();
        let adapt = KappaAdaptConfig {
            passes: 3,
            step: 0.5,
            kappa_min: 1.0,
            kappa_max: 1.6,
        };
        let res = adapt_per_tx_kappa(&model, 1.2, &HeuristicConfig::with_kappa(1.3), &adapt);
        for &k in res.config.per_tx_kappa.as_ref().expect("set") {
            assert!((1.0..=1.6).contains(&k), "κ {k} escaped the bounds");
        }
    }

    #[test]
    fn result_config_is_usable_by_the_heuristic() {
        let model = scenario2_model();
        let res = adapt_per_tx_kappa(
            &model,
            1.2,
            &HeuristicConfig::paper(),
            &KappaAdaptConfig {
                passes: 1,
                ..KappaAdaptConfig::default()
            },
        );
        let alloc = heuristic_allocation(&model.channel, &model.led, 1.2, &res.config);
        assert!(model.is_feasible(&alloc, 1.2));
        assert!(model.system_throughput(&alloc) > 0.0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_panics() {
        let model = scenario2_model();
        adapt_per_tx_kappa(
            &model,
            0.0,
            &HeuristicConfig::paper(),
            &KappaAdaptConfig::default(),
        );
    }
}
