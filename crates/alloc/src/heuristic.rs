//! The Signal-to-Jamming-Ratio ranking heuristic (paper §5, Algorithm 1).
//!
//! Solving the full nonlinear program takes minutes; the heuristic reduces
//! the complexity by ~99.96 % at a throughput loss of only ~1.8 % (κ = 1.3).
//! It ranks every TX by its custom Signal-to-Jamming Ratio
//! `SJR_{i,j} = H_{i,j}^κ / Σ_{j'} H_{i,j'}` — how good TX `i`'s channel to
//! RX `j` is relative to the interference TX `i` would create at everybody —
//! then assigns TXs in rank order at full swing (Insight 2) until the power
//! budget is exhausted.

use crate::model::Allocation;
use serde::{Deserialize, Serialize};
use vlc_channel::ChannelMatrix;
use vlc_led::{power::dynamic_resistance, LedParams};
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// Configuration of the ranking heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// The exponent κ weighting the desired channel against generated
    /// interference. The paper sweeps {1.0, 1.2, 1.3, 1.5} and finds 1.3
    /// best for its setup.
    pub kappa: f64,
    /// Optional per-TX κ override (paper §9, "personalized and adaptive κ").
    /// When set, entry `i` replaces `kappa` for TX `i`.
    pub per_tx_kappa: Option<Vec<f64>>,
    /// When true, the last TX that does not fit at full swing is assigned
    /// the partial swing the remaining budget affords. When false (strict
    /// Insight-2 operation) the leftover budget is simply unused.
    pub allow_partial_last: bool,
}

impl HeuristicConfig {
    /// The paper's best configuration: κ = 1.3, full-swing only.
    pub fn paper() -> Self {
        HeuristicConfig {
            kappa: 1.3,
            per_tx_kappa: None,
            allow_partial_last: false,
        }
    }

    /// A configuration with a specific κ.
    pub fn with_kappa(kappa: f64) -> Self {
        HeuristicConfig {
            kappa,
            ..HeuristicConfig::paper()
        }
    }

    fn kappa_for(&self, tx: usize) -> f64 {
        match &self.per_tx_kappa {
            Some(v) => v[tx],
            None => self.kappa,
        }
    }
}

/// One entry of the heuristic's output ranking: TX `tx` is assigned to RX
/// `rx` with the given SJR score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedTx {
    /// Zero-based TX index.
    pub tx: usize,
    /// Zero-based RX index this TX would serve.
    pub rx: usize,
    /// The SJR score at selection time.
    pub sjr: f64,
}

/// Algorithm 1: computes the SJR matrix and greedily ranks all TXs.
///
/// Returns a vector of length `n_tx`: the k-th element is the k-th best
/// (TX, RX) assignment. TXs whose channel is zero toward every RX receive an
/// SJR of zero and sink to the end of the ranking.
///
/// ```
/// use vlc_alloc::heuristic::{rank_by_sjr, HeuristicConfig};
/// use vlc_channel::ChannelMatrix;
///
/// // Two TXs, two RXs: TX0 is great for RX0, TX1 for RX1.
/// let h = ChannelMatrix::from_gains(2, 2, vec![1e-6, 1e-8, 1e-8, 1e-6]);
/// let ranking = rank_by_sjr(&h, &HeuristicConfig::paper());
/// assert_eq!(ranking.len(), 2);
/// assert_eq!(ranking[0].tx, ranking[0].rx); // each TX serves its receiver
/// ```
pub fn rank_by_sjr(channel: &ChannelMatrix, config: &HeuristicConfig) -> Vec<RankedTx> {
    if let Some(v) = &config.per_tx_kappa {
        assert_eq!(
            v.len(),
            channel.n_tx(),
            "per-TX κ vector has the wrong length"
        );
    }
    let n_tx = channel.n_tx();

    // Per-TX row best, computed once. The greedy extraction only ever
    // selects a row's best entry, and the reference scan keeps the
    // lexicographically-first entry attaining each maximum (strictly-greater
    // comparisons in ascending order), so precomputing (lowest-RX row best,
    // score) and scanning those in ascending TX order selects the exact
    // same sequence — collapsing the O(n_tx²·n_rx) rescan to O(n_tx²).
    // `tests/sparse_solver_identity.rs` property-tests the equivalence with
    // [`rank_by_sjr_scalar`].
    let mut best_rx = vec![0usize; n_tx];
    let mut best_sjr = vec![0.0f64; n_tx];
    for i in 0..n_tx {
        let row = channel.tx_row(i);
        let denom: f64 = row.iter().sum();
        if denom <= 0.0 {
            // All-zero SJR row: the reference selects its RX 0 entry.
            continue;
        }
        let kappa = config.kappa_for(i);
        let mut bj = 0usize;
        let mut bs = row[0].powf(kappa) / denom;
        for (j, &g) in row.iter().enumerate().skip(1) {
            let s = g.powf(kappa) / denom;
            if s > bs {
                bj = j;
                bs = s;
            }
        }
        best_rx[i] = bj;
        best_sjr[i] = bs;
    }

    // Greedy extraction over the row bests: take the global maximum,
    // record it, remove the TX, repeat until every TX is ranked.
    let mut ranked = Vec::with_capacity(n_tx);
    let mut tx_taken = vec![false; n_tx];
    for _ in 0..n_tx {
        let mut best: Option<(usize, f64)> = None;
        for (i, &s) in best_sjr.iter().enumerate() {
            if tx_taken[i] {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, b)) => s > b,
            };
            if better {
                best = Some((i, s));
            }
        }
        let (i, s) = best.expect("at least one unranked TX remains");
        tx_taken[i] = true;
        ranked.push(RankedTx {
            tx: i,
            rx: best_rx[i],
            sjr: s,
        });
    }
    ranked
}

/// The historical reference implementation of [`rank_by_sjr`]: materialize
/// the full SJR matrix, then rescan every unranked entry per round. Kept as
/// the bit-identity oracle for the fast row-best extraction above.
pub fn rank_by_sjr_scalar(channel: &ChannelMatrix, config: &HeuristicConfig) -> Vec<RankedTx> {
    if let Some(v) = &config.per_tx_kappa {
        assert_eq!(
            v.len(),
            channel.n_tx(),
            "per-TX κ vector has the wrong length"
        );
    }
    let n_tx = channel.n_tx();
    let n_rx = channel.n_rx();

    // SJR_{i,j} = H_{i,j}^κ / Σ_{j'} H_{i,j'} (zero when the TX reaches
    // no receiver at all).
    let mut sjr = vec![0.0f64; n_tx * n_rx];
    for i in 0..n_tx {
        let denom: f64 = (0..n_rx).map(|j| channel.gain(i, j)).sum();
        if denom <= 0.0 {
            continue;
        }
        let kappa = config.kappa_for(i);
        for j in 0..n_rx {
            sjr[i * n_rx + j] = channel.gain(i, j).powf(kappa) / denom;
        }
    }

    // Greedy extraction: take the global maximum, record it, remove the
    // whole TX row, repeat until every TX is ranked.
    let mut ranked = Vec::with_capacity(n_tx);
    let mut tx_taken = vec![false; n_tx];
    for _ in 0..n_tx {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n_tx {
            if tx_taken[i] {
                continue;
            }
            for j in 0..n_rx {
                let s = sjr[i * n_rx + j];
                let better = match best {
                    None => true,
                    Some((_, _, b)) => s > b,
                };
                if better {
                    best = Some((i, j, s));
                }
            }
        }
        let (i, j, s) = best.expect("at least one unranked TX remains");
        tx_taken[i] = true;
        ranked.push(RankedTx {
            tx: i,
            rx: j,
            sjr: s,
        });
    }
    ranked
}

/// Turns a ranking into an allocation under a power budget: TXs are switched
/// to full swing in rank order while the budget allows (Insight 1 + 2).
///
/// TXs with zero SJR are never activated — they reach no receiver (or, with
/// the paper's Insight 3, would only cause harm).
pub fn allocate_by_ranking(
    ranking: &[RankedTx],
    n_tx: usize,
    n_rx: usize,
    led: &LedParams,
    budget_w: f64,
    config: &HeuristicConfig,
) -> Allocation {
    let r = dynamic_resistance(led);
    let full = led.max_swing;
    let full_power = r * (full / 2.0) * (full / 2.0);
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    let mut spent = 0.0;
    for entry in ranking {
        if entry.sjr <= 0.0 {
            break;
        }
        if spent + full_power <= budget_w + 1e-12 {
            alloc.set_swing(entry.tx, entry.rx, full);
            spent += full_power;
        } else if config.allow_partial_last {
            let remaining = (budget_w - spent).max(0.0);
            if remaining > 0.0 {
                let swing = 2.0 * (remaining / r).sqrt();
                alloc.set_swing(entry.tx, entry.rx, swing.min(full));
            }
            break;
        } else {
            break;
        }
    }
    alloc
}

/// Convenience: rank and allocate in one call.
pub fn heuristic_allocation(
    channel: &ChannelMatrix,
    led: &LedParams,
    budget_w: f64,
    config: &HeuristicConfig,
) -> Allocation {
    heuristic_allocation_instrumented(channel, led, budget_w, config, &Registry::noop())
}

/// [`heuristic_allocation`] with telemetry: wall-time into the
/// `alloc.heuristic.solve_s` histogram (Fig. 11's cheap side), the number of
/// scored (TX, RX) candidates into `alloc.heuristic.candidates`, and — when
/// the budget activates no TX at all — an `alloc.heuristic.infeasible`
/// count plus an `infeasible_round` event.
pub fn heuristic_allocation_instrumented(
    channel: &ChannelMatrix,
    led: &LedParams,
    budget_w: f64,
    config: &HeuristicConfig,
    telemetry: &Registry,
) -> Allocation {
    heuristic_allocation_traced(channel, led, budget_w, config, telemetry, &Span::noop())
}

/// [`heuristic_allocation_instrumented`] recording an
/// `alloc.heuristic.solve` span under `parent`, with `alloc.heuristic.rank`
/// and `alloc.heuristic.allocate` children for the two phases of
/// Algorithm 1. With a noop parent this is the instrumented path plus one
/// branch per span site.
pub fn heuristic_allocation_traced(
    channel: &ChannelMatrix,
    led: &LedParams,
    budget_w: f64,
    config: &HeuristicConfig,
    telemetry: &Registry,
    parent: &Span,
) -> Allocation {
    let solve = parent.child("alloc.heuristic.solve");
    solve.attr("kappa", &format!("{}", config.kappa));
    solve.attr("budget_w", &format!("{budget_w}"));
    let _solve_span = telemetry.span("alloc.heuristic.solve_s");
    telemetry.counter("alloc.heuristic.solves").inc();
    telemetry
        .counter("alloc.heuristic.candidates")
        .add((channel.n_tx() * channel.n_rx()) as u64);
    let ranking = {
        let _rank = solve.child("alloc.heuristic.rank");
        rank_by_sjr(channel, config)
    };
    let alloc = {
        let _allocate = solve.child("alloc.heuristic.allocate");
        allocate_by_ranking(
            &ranking,
            channel.n_tx(),
            channel.n_rx(),
            led,
            budget_w,
            config,
        )
    };
    if alloc.active_tx_count() == 0 {
        telemetry.counter("alloc.heuristic.infeasible").inc();
        telemetry.event(
            "alloc.heuristic",
            "infeasible_round",
            &[("budget_w", &format!("{budget_w}"))],
        );
    }
    alloc
}

/// An allocation that activates exactly the first `k` ranked TXs at full
/// swing — used by the experimental §8.2 sweeps that "assign the TXs from
/// the ranked list one by one".
pub fn allocate_first_k(
    ranking: &[RankedTx],
    k: usize,
    n_tx: usize,
    n_rx: usize,
    led: &LedParams,
) -> Allocation {
    let mut alloc = Allocation::zeros(n_tx, n_rx);
    for entry in ranking.iter().take(k) {
        if entry.sjr <= 0.0 {
            break;
        }
        alloc.set_swing(entry.tx, entry.rx, led.max_swing);
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::RxOptics;
    use vlc_geom::{Pose, Room, TxGrid};

    fn scenario2_channel() -> ChannelMatrix {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper())
    }

    #[test]
    fn ranking_is_a_permutation_of_txs() {
        let ch = scenario2_channel();
        let ranking = rank_by_sjr(&ch, &HeuristicConfig::paper());
        assert_eq!(ranking.len(), 36);
        let mut seen = [false; 36];
        for e in &ranking {
            assert!(!seen[e.tx], "TX {} ranked twice", e.tx);
            seen[e.tx] = true;
            assert!(e.rx < 4);
        }
    }

    #[test]
    fn ranking_scores_are_non_increasing() {
        let ch = scenario2_channel();
        let ranking = rank_by_sjr(&ch, &HeuristicConfig::paper());
        for w in ranking.windows(2) {
            assert!(w[0].sjr >= w[1].sjr);
        }
    }

    #[test]
    fn top_ranked_tx_is_near_a_receiver() {
        let ch = scenario2_channel();
        let ranking = rank_by_sjr(&ch, &HeuristicConfig::paper());
        let top = ranking[0];
        // SJR trades signal for interference, so the winner need not be the
        // single strongest channel — but it must be in the same league as
        // the best TX of the RX it serves.
        let best = ch.gain(ch.best_tx_for(top.rx), top.rx);
        assert!(ch.gain(top.tx, top.rx) > best / 3.0);
    }

    #[test]
    fn budget_controls_active_tx_count() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let cfg = HeuristicConfig::paper();
        let full_power = dynamic_resistance(&led) * (led.max_swing / 2.0).powi(2);
        for n in [1usize, 4, 10] {
            let alloc = heuristic_allocation(&ch, &led, full_power * n as f64 + 1e-6, &cfg);
            assert_eq!(alloc.active_tx_count(), n, "budget for {n} TXs");
        }
    }

    #[test]
    fn partial_last_uses_leftover_budget() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let full_power = dynamic_resistance(&led) * (led.max_swing / 2.0).powi(2);
        let budget = full_power * 1.5;
        let strict = heuristic_allocation(&ch, &led, budget, &HeuristicConfig::paper());
        let partial = heuristic_allocation(
            &ch,
            &led,
            budget,
            &HeuristicConfig {
                allow_partial_last: true,
                ..HeuristicConfig::paper()
            },
        );
        assert_eq!(strict.active_tx_count(), 1);
        assert_eq!(partial.active_tx_count(), 2);
        // The partial TX's swing realizes exactly the leftover power.
        let r = dynamic_resistance(&led);
        let spent: f64 = (0..partial.n_tx())
            .map(|t| r * (partial.tx_total_swing(t) / 2.0).powi(2))
            .sum();
        assert!((spent - budget).abs() < 1e-9);
    }

    #[test]
    fn every_tx_serves_exactly_one_rx() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let alloc = heuristic_allocation(&ch, &led, 1.0, &HeuristicConfig::paper());
        for t in 0..alloc.n_tx() {
            if alloc.tx_total_swing(t) > 0.0 {
                assert!(alloc.dedicated_rx(t).is_some(), "TX {t} splits its swing");
            }
        }
    }

    #[test]
    fn zero_budget_activates_nothing() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let alloc = heuristic_allocation(&ch, &led, 0.0, &HeuristicConfig::paper());
        assert_eq!(alloc.active_tx_count(), 0);
    }

    #[test]
    fn infeasible_budget_is_counted_and_evented() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let telemetry = Registry::new();
        let alloc = heuristic_allocation_instrumented(
            &ch,
            &led,
            0.0,
            &HeuristicConfig::paper(),
            &telemetry,
        );
        assert_eq!(alloc.active_tx_count(), 0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.heuristic.infeasible"), Some(1));
        let event = snap
            .events_of_kind("infeasible_round")
            .next()
            .expect("infeasible event recorded");
        assert_eq!(event.target, "alloc.heuristic");
        assert!(event
            .fields
            .iter()
            .any(|(k, v)| k == "budget_w" && v == "0"));
    }

    #[test]
    fn feasible_budget_raises_no_infeasible_signal() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let telemetry = Registry::new();
        let alloc = heuristic_allocation_instrumented(
            &ch,
            &led,
            1.0,
            &HeuristicConfig::paper(),
            &telemetry,
        );
        assert!(alloc.active_tx_count() > 0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("alloc.heuristic.infeasible"), None);
        assert_eq!(snap.events_of_kind("infeasible_round").count(), 0);
        assert_eq!(snap.counter("alloc.heuristic.solves"), Some(1));
        assert!(snap
            .histogram("alloc.heuristic.solve_s")
            .is_some_and(|h| h.count == 1));
    }

    #[test]
    fn ranking_matches_scalar_reference_bitwise() {
        let ch = scenario2_channel();
        for kappa in [1.0, 1.2, 1.3, 1.5] {
            let cfg = HeuristicConfig::with_kappa(kappa);
            let fast = rank_by_sjr(&ch, &cfg);
            let scalar = rank_by_sjr_scalar(&ch, &cfg);
            assert_eq!(fast.len(), scalar.len());
            for (f, s) in fast.iter().zip(&scalar) {
                assert_eq!((f.tx, f.rx), (s.tx, s.rx), "κ={kappa}");
                assert_eq!(f.sjr.to_bits(), s.sjr.to_bits(), "κ={kappa}");
            }
        }
    }

    #[test]
    fn kappa_changes_the_ranking() {
        let ch = scenario2_channel();
        let low = rank_by_sjr(&ch, &HeuristicConfig::with_kappa(1.0));
        let high = rank_by_sjr(&ch, &HeuristicConfig::with_kappa(1.5));
        let order_low: Vec<usize> = low.iter().map(|e| e.tx).collect();
        let order_high: Vec<usize> = high.iter().map(|e| e.tx).collect();
        assert_ne!(order_low, order_high, "κ had no effect on the ranking");
    }

    #[test]
    fn per_tx_kappa_is_respected() {
        let ch = scenario2_channel();
        let uniform = rank_by_sjr(&ch, &HeuristicConfig::with_kappa(1.3));
        let per_tx = HeuristicConfig {
            kappa: 1.3,
            per_tx_kappa: Some(vec![1.3; 36]),
            allow_partial_last: false,
        };
        let same = rank_by_sjr(&ch, &per_tx);
        assert_eq!(
            uniform.iter().map(|e| (e.tx, e.rx)).collect::<Vec<_>>(),
            same.iter().map(|e| (e.tx, e.rx)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn allocate_first_k_matches_count() {
        let ch = scenario2_channel();
        let led = LedParams::cree_xte_paper();
        let ranking = rank_by_sjr(&ch, &HeuristicConfig::paper());
        for k in [0usize, 1, 5, 36] {
            let alloc = allocate_first_k(&ranking, k, 36, 4, &led);
            assert!(alloc.active_tx_count() <= k);
        }
        let all = allocate_first_k(&ranking, 36, 36, 4, &led);
        // Some corner TXs may have zero SJR; everyone activated is full swing.
        for t in 0..36 {
            let s = all.tx_total_swing(t);
            assert!(s == 0.0 || (s - led.max_swing).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn per_tx_kappa_wrong_length_panics() {
        let ch = scenario2_channel();
        let cfg = HeuristicConfig {
            kappa: 1.3,
            per_tx_kappa: Some(vec![1.3; 4]),
            allow_partial_last: false,
        };
        rank_by_sjr(&ch, &cfg);
    }
}
