//! Evaluation helpers: budget sweeps and power-efficiency comparisons.
//!
//! These drive the paper's evaluation figures: throughput-vs-power curves
//! (Fig. 8, 11, 18–20) and the SISO/D-MISO power-efficiency comparison
//! (Fig. 21).

use crate::heuristic::{allocate_first_k, rank_by_sjr, HeuristicConfig};
use crate::model::{Allocation, SystemModel};
use serde::{Deserialize, Serialize};

/// One point of a throughput-vs-power curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Total communication power of the allocation, in watts.
    pub power_w: f64,
    /// Per-receiver throughput in bit/s.
    pub per_rx_bps: Vec<f64>,
    /// System throughput in bit/s.
    pub system_bps: f64,
    /// Sum-log objective value.
    pub objective: f64,
    /// Number of communicating TXs.
    pub active_txs: usize,
}

impl SweepPoint {
    /// Evaluates an allocation under a model into a sweep point.
    pub fn evaluate(model: &SystemModel, alloc: &Allocation) -> Self {
        let per_rx_bps = model.throughput(alloc);
        SweepPoint {
            power_w: model.comm_power(alloc),
            system_bps: per_rx_bps.iter().sum(),
            objective: per_rx_bps.iter().map(|t| t.ln()).sum(),
            per_rx_bps,
            active_txs: alloc.active_tx_count(),
        }
    }
}

/// Sweeps the heuristic by activating the ranked TXs one at a time
/// (the §8.2 experimental procedure): point `k` has the top-`k` TXs at full
/// swing. Returns `n_tx + 1` points (including the empty allocation).
pub fn heuristic_sweep(model: &SystemModel, config: &HeuristicConfig) -> Vec<SweepPoint> {
    let ranking = rank_by_sjr(&model.channel, config);
    (0..=model.n_tx())
        .map(|k| {
            let alloc = allocate_first_k(&ranking, k, model.n_tx(), model.n_rx(), &model.led);
            SweepPoint::evaluate(model, &alloc)
        })
        .collect()
}

/// Result of comparing DenseVLC with a baseline at matched throughput or
/// matched power (Fig. 21's two headline numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyComparison {
    /// The baseline's operating power in watts.
    pub baseline_power_w: f64,
    /// The baseline's system throughput in bit/s.
    pub baseline_bps: f64,
    /// DenseVLC's power to match the baseline's throughput, in watts.
    pub densevlc_power_at_match_w: f64,
    /// Power-efficiency factor: baseline power / DenseVLC power at equal
    /// throughput (the paper's 2.3×).
    pub power_efficiency_gain: f64,
    /// DenseVLC's throughput at the baseline's *power* (bit/s), for
    /// throughput-gain comparisons (the paper's +45 % vs SISO).
    pub densevlc_bps_at_same_power: f64,
}

/// Finds, on a (power, throughput) curve sorted by power, the smallest power
/// that reaches `target_bps` (linear interpolation between points). Returns
/// `None` when the curve never reaches the target.
pub fn power_to_reach(curve: &[SweepPoint], target_bps: f64) -> Option<f64> {
    let mut prev: Option<&SweepPoint> = None;
    for p in curve {
        if p.system_bps >= target_bps {
            return Some(match prev {
                Some(q) if p.system_bps > q.system_bps => {
                    let t = (target_bps - q.system_bps) / (p.system_bps - q.system_bps);
                    q.power_w + t * (p.power_w - q.power_w)
                }
                _ => p.power_w,
            });
        }
        prev = Some(p);
    }
    None
}

/// Interpolates a curve's throughput at a given power.
pub fn throughput_at_power(curve: &[SweepPoint], power_w: f64) -> f64 {
    let mut prev: Option<&SweepPoint> = None;
    for p in curve {
        if p.power_w >= power_w {
            return match prev {
                Some(q) if p.power_w > q.power_w => {
                    let t = (power_w - q.power_w) / (p.power_w - q.power_w);
                    q.system_bps + t * (p.system_bps - q.system_bps)
                }
                _ => p.system_bps,
            };
        }
        prev = Some(p);
    }
    curve.last().map_or(0.0, |p| p.system_bps)
}

/// Finds the power-efficiency knee of a sweep curve: the smallest power at
/// which the marginal throughput per watt drops below `fraction` of the
/// curve's initial slope. The paper's §4.1 observes this knee at ≈ 1.2 W
/// ("the system throughput increases more slowly with the same extra power
/// consumption when `PC,tot` exceeds 1.2 W").
///
/// Returns `None` for curves with fewer than three points or no positive
/// initial slope.
pub fn knee_budget(curve: &[SweepPoint], fraction: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    if curve.len() < 3 {
        return None;
    }
    let initial_slope =
        (curve[1].system_bps - curve[0].system_bps) / (curve[1].power_w - curve[0].power_w);
    if !(initial_slope.is_finite() && initial_slope > 0.0) {
        return None;
    }
    for w in curve.windows(2).skip(1) {
        let dp = w[1].power_w - w[0].power_w;
        if dp <= 0.0 {
            continue;
        }
        let slope = (w[1].system_bps - w[0].system_bps) / dp;
        if slope < fraction * initial_slope {
            return Some(w[0].power_w);
        }
    }
    None
}

/// Jain's fairness index over per-receiver throughputs: `(Σx)² / (n·Σx²)`,
/// 1.0 for perfectly equal service, `1/n` when one receiver hogs it all.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "fairness of an empty set is undefined");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Compares a DenseVLC heuristic curve against a fixed baseline allocation.
pub fn compare_efficiency(
    model: &SystemModel,
    densevlc_curve: &[SweepPoint],
    baseline: &Allocation,
) -> EfficiencyComparison {
    let baseline_power_w = model.comm_power(baseline);
    let baseline_bps = model.system_throughput(baseline);
    let densevlc_power_at_match_w =
        power_to_reach(densevlc_curve, baseline_bps).unwrap_or(f64::INFINITY);
    EfficiencyComparison {
        baseline_power_w,
        baseline_bps,
        densevlc_power_at_match_w,
        power_efficiency_gain: baseline_power_w / densevlc_power_at_match_w,
        densevlc_bps_at_same_power: throughput_at_power(densevlc_curve, baseline_power_w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dmiso_nearest_geometric, siso_allocation};
    use vlc_channel::{ChannelMatrix, RxOptics};
    use vlc_geom::{Pose, Room, TxGrid};

    fn scenario2() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        SystemModel::paper(ChannelMatrix::compute(
            &grid,
            &rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
        ))
    }

    #[test]
    fn sweep_has_monotone_power() {
        let m = scenario2();
        let curve = heuristic_sweep(&m, &HeuristicConfig::paper());
        assert_eq!(curve.len(), 37);
        for w in curve.windows(2) {
            assert!(w[1].power_w >= w[0].power_w - 1e-12);
        }
        assert_eq!(curve[0].power_w, 0.0);
    }

    #[test]
    fn early_sweep_points_grow_throughput() {
        // Adding the first few well-chosen TXs must increase system
        // throughput (interference only bites much later).
        let m = scenario2();
        let curve = heuristic_sweep(&m, &HeuristicConfig::paper());
        for k in 1..=4 {
            assert!(
                curve[k].system_bps > curve[k - 1].system_bps,
                "adding ranked TX {k} did not help"
            );
        }
    }

    #[test]
    fn power_to_reach_interpolates() {
        let mk = |power_w: f64, system_bps: f64| SweepPoint {
            power_w,
            per_rx_bps: vec![],
            system_bps,
            objective: 0.0,
            active_txs: 0,
        };
        let curve = vec![mk(0.0, 0.0), mk(1.0, 10.0), mk(2.0, 14.0)];
        assert_eq!(power_to_reach(&curve, 5.0), Some(0.5));
        assert_eq!(power_to_reach(&curve, 12.0), Some(1.5));
        assert_eq!(power_to_reach(&curve, 20.0), None);
        assert_eq!(throughput_at_power(&curve, 0.25), 2.5);
        assert_eq!(throughput_at_power(&curve, 5.0), 14.0);
    }

    #[test]
    fn knee_sits_near_the_papers_1_2_w() {
        // §4.1 observes diminishing returns beyond ≈ 1.2 W. With a 25 %
        // marginal-slope threshold, the knee of the Scenario-2 curve lands
        // in that neighbourhood.
        let m = scenario2();
        let curve = heuristic_sweep(&m, &HeuristicConfig::paper());
        let knee = knee_budget(&curve, 0.25).expect("a knee exists");
        assert!(
            (0.7..=2.0).contains(&knee),
            "knee at {knee} W (paper: ≈ 1.2 W)"
        );
    }

    #[test]
    fn knee_handles_degenerate_curves() {
        assert_eq!(knee_budget(&[], 0.2), None);
        let flat = vec![
            SweepPoint {
                power_w: 0.0,
                per_rx_bps: vec![],
                system_bps: 5.0,
                objective: 0.0,
                active_txs: 0,
            };
            4
        ];
        assert_eq!(knee_budget(&flat, 0.2), None);
    }

    #[test]
    fn jain_index_properties() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn jain_of_empty_panics() {
        jain_fairness(&[]);
    }

    #[test]
    fn throughput_at_power_handles_degenerate_curves() {
        // Empty curve → 0; single point → its value beyond its power.
        assert_eq!(throughput_at_power(&[], 1.0), 0.0);
        let one = vec![SweepPoint {
            power_w: 0.5,
            per_rx_bps: vec![],
            system_bps: 7.0,
            objective: 0.0,
            active_txs: 1,
        }];
        assert_eq!(throughput_at_power(&one, 0.1), 7.0);
        assert_eq!(throughput_at_power(&one, 2.0), 7.0);
        assert_eq!(power_to_reach(&one, 8.0), None);
    }

    #[test]
    fn sweep_points_report_active_tx_counts() {
        let m = scenario2();
        let curve = heuristic_sweep(&m, &HeuristicConfig::paper());
        for (k, p) in curve.iter().enumerate() {
            assert!(
                p.active_txs <= k,
                "point {k} claims {} active TXs",
                p.active_txs
            );
        }
    }

    #[test]
    fn densevlc_matches_siso_efficiency_and_beats_dmiso() {
        // The Fig. 21 structure: DenseVLC reaches D-MISO's throughput at a
        // fraction of its power, and at SISO's power it does at least as
        // well as SISO.
        let m = scenario2();
        let curve = heuristic_sweep(&m, &HeuristicConfig::paper());
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rx_positions = vec![
            vlc_geom::Vec3::new(0.92, 0.92, 0.8),
            vlc_geom::Vec3::new(1.65, 0.65, 0.8),
            vlc_geom::Vec3::new(0.72, 1.93, 0.8),
            vlc_geom::Vec3::new(1.99, 1.69, 0.8),
        ];
        let dmiso = dmiso_nearest_geometric(&grid, &rx_positions, &m.led);
        let cmp_dmiso = compare_efficiency(&m, &curve, &dmiso);
        assert!(
            cmp_dmiso.power_efficiency_gain > 1.4,
            "efficiency gain over D-MISO was only {}",
            cmp_dmiso.power_efficiency_gain
        );

        let siso = siso_allocation(&m.channel, &m.led);
        let cmp_siso = compare_efficiency(&m, &curve, &siso);
        assert!(
            cmp_siso.densevlc_bps_at_same_power >= 0.95 * cmp_siso.baseline_bps,
            "DenseVLC at SISO power: {} vs SISO {}",
            cmp_siso.densevlc_bps_at_same_power,
            cmp_siso.baseline_bps
        );
    }
}
