//! The DenseVLC system model: allocations, SINR, throughput, power.
//!
//! An [`Allocation`] assigns each (TX, RX) pair a swing current
//! `I_sw^{j,k}`; the paper's Eq. 12 gives each receiver's SINR, Eq. 10–11
//! the extra electrical power spent on communication, and Eq. 5 the
//! proportional-fair sum-log-throughput objective the controller maximizes.

use serde::{Deserialize, Serialize};
use vlc_channel::{ChannelMatrix, NoiseParams};
use vlc_led::{power::dynamic_resistance, LedParams};

/// A per-TX, per-RX assignment of swing currents, in amperes.
///
/// Row `j` holds TX `j`'s swings toward each RX. A TX that serves nobody has
/// an all-zero row and stays in pure illumination mode. The per-TX *total*
/// swing `Σ_k I_sw^{j,k}` is what the hardware realizes and what both the
/// swing bound (Eq. 6) and the power model (Eq. 7) constrain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    n_tx: usize,
    n_rx: usize,
    swings: Vec<f64>,
}

impl Allocation {
    /// The all-zero (pure illumination) allocation.
    pub fn zeros(n_tx: usize, n_rx: usize) -> Self {
        assert!(
            n_tx > 0 && n_rx > 0,
            "allocation must have at least one TX and RX"
        );
        Allocation {
            n_tx,
            n_rx,
            swings: vec![0.0; n_tx * n_rx],
        }
    }

    /// Builds an allocation from a row-major swing vector.
    ///
    /// # Panics
    /// Panics if the vector shape is wrong or any swing is negative or
    /// non-finite.
    pub fn from_swings(n_tx: usize, n_rx: usize, swings: Vec<f64>) -> Self {
        assert_eq!(
            swings.len(),
            n_tx * n_rx,
            "swing vector has the wrong shape"
        );
        assert!(
            swings.iter().all(|s| s.is_finite() && *s >= 0.0),
            "swings must be finite and non-negative"
        );
        Allocation { n_tx, n_rx, swings }
    }

    /// Number of transmitters.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receivers.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// The swing of TX `tx` toward RX `rx`, in amperes.
    #[inline]
    pub fn swing(&self, tx: usize, rx: usize) -> f64 {
        assert!(tx < self.n_tx && rx < self.n_rx, "index out of range");
        self.swings[tx * self.n_rx + rx]
    }

    /// Sets the swing of TX `tx` toward RX `rx`.
    pub fn set_swing(&mut self, tx: usize, rx: usize, swing: f64) {
        assert!(tx < self.n_tx && rx < self.n_rx, "index out of range");
        assert!(
            swing.is_finite() && swing >= 0.0,
            "swing must be finite and non-negative"
        );
        self.swings[tx * self.n_rx + rx] = swing;
    }

    /// The total swing realized by TX `tx` across all receivers (Eq. 6's
    /// bounded quantity).
    pub fn tx_total_swing(&self, tx: usize) -> f64 {
        (0..self.n_rx).map(|r| self.swing(tx, r)).sum()
    }

    /// The receiver served by TX `tx` with a strictly positive swing, if the
    /// TX serves exactly one (the practical DenseVLC configuration).
    pub fn dedicated_rx(&self, tx: usize) -> Option<usize> {
        let mut found = None;
        for r in 0..self.n_rx {
            if self.swing(tx, r) > 0.0 {
                if found.is_some() {
                    return None;
                }
                found = Some(r);
            }
        }
        found
    }

    /// Number of TXs with any positive swing (communicating TXs).
    pub fn active_tx_count(&self) -> usize {
        (0..self.n_tx)
            .filter(|&t| self.tx_total_swing(t) > 0.0)
            .count()
    }

    /// Raw swings, row-major (`n_tx × n_rx`). Used by the solver.
    pub fn as_slice(&self) -> &[f64] {
        &self.swings
    }

    /// Mutable raw swings. Used by the solver's projection step.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.swings
    }
}

/// The complete system model tying channel, device, and noise together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Line-of-sight channel gains between every TX and RX.
    pub channel: ChannelMatrix,
    /// LED electrical parameters (shared by all TXs).
    pub led: LedParams,
    /// Receiver noise parameters.
    pub noise: NoiseParams,
    /// Photodiode responsivity `R` in A/W.
    pub responsivity: f64,
}

impl SystemModel {
    /// Builds a model with the paper's device and noise parameters.
    pub fn paper(channel: ChannelMatrix) -> Self {
        SystemModel {
            channel,
            led: LedParams::cree_xte_paper(),
            noise: NoiseParams::paper(),
            responsivity: 0.40,
        }
    }

    /// Number of transmitters.
    pub fn n_tx(&self) -> usize {
        self.channel.n_tx()
    }

    /// Number of receivers.
    pub fn n_rx(&self) -> usize {
        self.channel.n_rx()
    }

    /// The LED dynamic resistance `r` at the bias point.
    pub fn dyn_resistance(&self) -> f64 {
        dynamic_resistance(&self.led)
    }

    /// Total extra electrical power spent on communication (Eq. 7/11):
    /// `Σ_j r · (Σ_k I_sw^{j,k} / 2)²`, in watts.
    pub fn comm_power(&self, alloc: &Allocation) -> f64 {
        self.check_shape(alloc);
        let r = self.dyn_resistance();
        (0..alloc.n_tx())
            .map(|t| {
                let half = alloc.tx_total_swing(t) / 2.0;
                r * half * half
            })
            .sum()
    }

    /// The received signal amplitude term of Eq. 12 for stream `stream`
    /// measured at RX `at_rx`: `R·η·r · Σ_j H_{j,at_rx} · (I_sw^{j,stream}/2)²`
    /// in amperes.
    fn stream_current(&self, alloc: &Allocation, stream: usize, at_rx: usize) -> f64 {
        let r = self.dyn_resistance();
        let scale = self.responsivity * self.led.wall_plug_efficiency * r;
        let mut sum = 0.0;
        for t in 0..alloc.n_tx() {
            let half = alloc.swing(t, stream) / 2.0;
            sum += self.channel.gain(t, at_rx) * half * half;
        }
        scale * sum
    }

    /// Per-receiver SINR (Eq. 12), dimensionless.
    pub fn sinr(&self, alloc: &Allocation) -> Vec<f64> {
        self.check_shape(alloc);
        let n_rx = alloc.n_rx();
        let noise = self.noise.noise_power();
        (0..n_rx)
            .map(|i| {
                let sig = self.stream_current(alloc, i, i);
                let interference: f64 = (0..n_rx)
                    .filter(|&k| k != i)
                    .map(|k| {
                        let b = self.stream_current(alloc, k, i);
                        b * b
                    })
                    .sum();
                sig * sig / (noise + interference)
            })
            .collect()
    }

    /// Per-receiver Shannon throughput `B·log2(1 + SINR)` in bit/s.
    pub fn throughput(&self, alloc: &Allocation) -> Vec<f64> {
        self.sinr(alloc)
            .into_iter()
            .map(|s| self.noise.bandwidth_hz * (1.0 + s).log2())
            .collect()
    }

    /// Total system throughput in bit/s.
    pub fn system_throughput(&self, alloc: &Allocation) -> f64 {
        self.throughput(alloc).into_iter().sum()
    }

    /// The paper's objective (Eq. 5): `Σ_i ln(B·log2(1 + SINR_i))`.
    ///
    /// Returns `-inf` when any receiver has zero SINR — proportional
    /// fairness forbids starving a user entirely.
    pub fn sum_log_throughput(&self, alloc: &Allocation) -> f64 {
        self.throughput(alloc).into_iter().map(f64::ln).sum()
    }

    /// Checks the allocation against the constraints (Eq. 6–7): per-TX total
    /// swing within `[0, Isw,max]` and total communication power within
    /// `budget_w` (with a small numerical tolerance).
    pub fn is_feasible(&self, alloc: &Allocation, budget_w: f64) -> bool {
        self.check_shape(alloc);
        let tol = 1e-9;
        let swing_ok =
            (0..alloc.n_tx()).all(|t| alloc.tx_total_swing(t) <= self.led.max_swing + tol);
        swing_ok && self.comm_power(alloc) <= budget_w + tol
    }

    fn check_shape(&self, alloc: &Allocation) {
        assert_eq!(alloc.n_tx(), self.n_tx(), "allocation TX count mismatch");
        assert_eq!(alloc.n_rx(), self.n_rx(), "allocation RX count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::RxOptics;
    use vlc_geom::{Pose, Room, TxGrid};

    /// The Fig. 7 instance: 4 RXs at the Scenario-2 positions (Table 6).
    pub(crate) fn paper_model() -> SystemModel {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        let channel = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
        SystemModel::paper(channel)
    }

    #[test]
    fn zero_allocation_has_zero_power_and_sinr() {
        let m = paper_model();
        let alloc = Allocation::zeros(m.n_tx(), m.n_rx());
        assert_eq!(m.comm_power(&alloc), 0.0);
        assert!(m.sinr(&alloc).iter().all(|&s| s == 0.0));
        assert_eq!(m.system_throughput(&alloc), 0.0);
        assert_eq!(m.sum_log_throughput(&alloc), f64::NEG_INFINITY);
    }

    #[test]
    fn one_full_swing_tx_costs_74_mw() {
        let m = paper_model();
        let mut alloc = Allocation::zeros(m.n_tx(), m.n_rx());
        alloc.set_swing(m.channel.best_tx_for(0), 0, m.led.max_swing);
        let p = m.comm_power(&alloc);
        assert!((p - 0.07442).abs() < 2e-4, "P = {p} W");
    }

    #[test]
    fn single_serving_tx_gives_mbps_scale_throughput() {
        // A full-swing TX directly over an RX should put the link in the
        // Mbit/s regime (the scale of the paper's Fig. 8).
        let m = paper_model();
        let mut alloc = Allocation::zeros(m.n_tx(), m.n_rx());
        alloc.set_swing(m.channel.best_tx_for(0), 0, m.led.max_swing);
        let t = m.throughput(&alloc)[0];
        assert!(t > 0.2e6 && t < 10e6, "throughput = {t} bit/s");
    }

    #[test]
    fn interference_reduces_victim_sinr() {
        let m = paper_model();
        let mut clean = Allocation::zeros(m.n_tx(), m.n_rx());
        clean.set_swing(m.channel.best_tx_for(0), 0, m.led.max_swing);
        let sinr_clean = m.sinr(&clean)[0];

        // Now let a TX near RX1 transmit a *different* stream (to RX2).
        let mut jammed = clean.clone();
        let neighbor = m.channel.best_tx_for(0) + 1; // adjacent TX, same row
        jammed.set_swing(neighbor, 1, m.led.max_swing);
        let sinr_jammed = m.sinr(&jammed)[0];
        assert!(sinr_jammed < sinr_clean, "{sinr_jammed} !< {sinr_clean}");
    }

    #[test]
    fn joint_transmission_beats_single_tx() {
        // Two synchronized TXs carrying the same stream add optical power.
        let m = paper_model();
        let best = m.channel.best_tx_for(0);
        let mut single = Allocation::zeros(m.n_tx(), m.n_rx());
        single.set_swing(best, 0, m.led.max_swing);
        let mut joint = single.clone();
        joint.set_swing(best + 1, 0, m.led.max_swing);
        assert!(m.sinr(&joint)[0] > m.sinr(&single)[0]);
    }

    #[test]
    fn comm_power_uses_total_tx_swing() {
        // A TX splitting its swing across two RXs pays for the *sum* (Eq. 7).
        let m = paper_model();
        let mut split = Allocation::zeros(m.n_tx(), m.n_rx());
        split.set_swing(0, 0, 0.4);
        split.set_swing(0, 1, 0.4);
        let mut lumped = Allocation::zeros(m.n_tx(), m.n_rx());
        lumped.set_swing(0, 0, 0.8);
        assert!((m.comm_power(&split) - m.comm_power(&lumped)).abs() < 1e-15);
    }

    #[test]
    fn feasibility_checks_swing_and_power() {
        let m = paper_model();
        let mut alloc = Allocation::zeros(m.n_tx(), m.n_rx());
        alloc.set_swing(0, 0, m.led.max_swing);
        assert!(m.is_feasible(&alloc, 0.1));
        assert!(!m.is_feasible(&alloc, 0.01)); // power over budget
        let mut over = Allocation::zeros(m.n_tx(), m.n_rx());
        over.set_swing(0, 0, 0.6);
        over.set_swing(0, 1, 0.6); // total 1.2 > 0.9
        assert!(!m.is_feasible(&over, 10.0));
    }

    #[test]
    fn dedicated_rx_detection() {
        let mut a = Allocation::zeros(4, 2);
        assert_eq!(a.dedicated_rx(0), None);
        a.set_swing(0, 1, 0.5);
        assert_eq!(a.dedicated_rx(0), Some(1));
        a.set_swing(0, 0, 0.1);
        assert_eq!(a.dedicated_rx(0), None); // serves two RXs
    }

    #[test]
    fn active_tx_count_counts_positive_rows() {
        let mut a = Allocation::zeros(4, 2);
        assert_eq!(a.active_tx_count(), 0);
        a.set_swing(1, 0, 0.9);
        a.set_swing(3, 1, 0.2);
        assert_eq!(a.active_tx_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_swing_rejected() {
        Allocation::from_swings(1, 1, vec![-0.1]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let m = paper_model();
        let alloc = Allocation::zeros(2, 2);
        m.comm_power(&alloc);
    }
}
