//! Power allocation for the DenseVLC reproduction.
//!
//! This crate is the paper's scientific core: given the measured channel
//! matrix `H`, a power budget `P_C,tot` for communication, and the LED
//! electrical model, decide the per-TX swing currents that maximize
//! proportional-fair system throughput (paper Eq. 5–7). It provides:
//!
//! * [`model`] — the system model: per-receiver SINR (Eq. 12), throughput,
//!   the sum-log objective, and communication-power accounting (Eq. 10–11)
//!   over a [`model::Allocation`] of per-TX/per-RX swings.
//! * [`optimal`] — a multi-start projected-gradient solver for the nonlinear
//!   program (the role `fmincon` plays in the paper's §5).
//! * [`heuristic`] — the Signal-to-Jamming-Ratio ranking heuristic
//!   (Algorithm 1) with tunable κ, plus the §9 "personalized κ" extension.
//! * [`baselines`] — the SISO (nearest-TX) and D-MISO (all-neighbors)
//!   comparison schemes of §8.3.
//! * [`analysis`] — throughput-vs-power sweeps and power-efficiency
//!   comparisons used by the evaluation figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analysis;
pub mod baselines;
pub mod exhaustive;
pub mod heuristic;
pub mod model;
pub mod optimal;

pub use adaptive::{adapt_per_tx_kappa, KappaAdaptConfig};
pub use baselines::{dmiso_allocation, siso_allocation};
pub use exhaustive::exhaustive_binary;
pub use heuristic::{rank_by_sjr, rank_by_sjr_scalar, HeuristicConfig, RankedTx};
pub use model::{Allocation, SystemModel};
pub use optimal::{OptimalSolver, SolveReport, WarmOptimal};
