//! The standard timed workloads behind BENCH.json and the profiler.
//!
//! `run_all` runs these after the experiment job set whenever timing is
//! on; the trace→profile determinism tests (`tests/prof_determinism.rs`
//! at the workspace root) run the *same* probes under a `ManualClock`
//! tracer to pin that the span structure — and therefore the profile and
//! its folded rendering — is byte-identical at any `DENSEVLC_JOBS`.
//! Keeping them in the library is what lets both callers share one
//! definition of "the standard phase probe".

use densevlc::{Simulation, System};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vlc_alloc::heuristic::heuristic_allocation_traced;
use vlc_alloc::model::SystemModel;
use vlc_alloc::{HeuristicConfig, OptimalSolver, WarmOptimal};
use vlc_cell::{BuildingConfig, BuildingEngine, Command};
use vlc_channel::nlos::NlosConfig;
use vlc_channel::{
    lambertian_order, ChannelMatrix, FovMask, NlosTxCache, RxOptics, SparseChannelView,
};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_led::LedParams;
use vlc_par::Pool;
use vlc_phy::manchester::{manchester_decode, manchester_encode};
use vlc_phy::packed::PackedChips;
use vlc_phy::rs::RsCodec;
use vlc_phy::waveform::{
    render, render_packed_into, slice_chips, slice_chips_packed_into, WaveformConfig,
};
use vlc_phy::{Frame, FrameHeader, ReedSolomon};
use vlc_sync::NlosSyncLink;
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::{Span, Tracer};

/// Times the library's standard phases once under a `bench.phase_probe`
/// root, so BENCH.json carries comparable per-phase rows (`channel.sound`,
/// `alloc.heuristic.solve`, `alloc.optimal.solve`, `sim.adapt`, `sim.run`,
/// `sync.link_build`, `sync.pilot_detect`, …) next to the whole-experiment
/// rows. Scenario 2 at the paper's 1.2 W budget is the reference workload.
pub fn phase_probe(tracer: &Tracer, pool: &Pool) {
    let probe = tracer.root("bench.phase_probe");
    let quiet = Registry::noop();
    let dep = Deployment::scenario(Scenario::Two);
    ChannelMatrix::compute_with_blockage_pooled(
        &dep.grid,
        &dep.receivers,
        dep.half_power_semi_angle,
        &dep.optics,
        &[],
        pool,
        &probe,
    );
    heuristic_allocation_traced(
        &dep.model.channel,
        &LedParams::cree_xte_paper(),
        1.2,
        &HeuristicConfig::paper(),
        &quiet,
        &probe,
    );
    OptimalSolver::quick().solve_traced_pooled(&dep.model, 1.2, &quiet, pool, &probe);
    System::scenario(Scenario::Two, 1.2).adapt_traced(&quiet, &probe);
    Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.25).run_traced(0.6, &quiet, &probe);
    let link = NlosSyncLink::between_traced(
        &dep.grid.pose(1),
        &dep.grid.pose(2),
        &dep.room,
        dep.half_power_semi_angle,
        &dep.optics,
        &probe,
    );
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    for frame in 0..4 {
        let round = probe.child_indexed("sync.pilot_round", frame);
        link.detect_traced(&mut rng, &quiet, &round);
    }

    // Incremental-engine probes under their own root: they add *new* span
    // names only (`channel.nlos.cache_build`, `channel.nlos.floor.cached`,
    // `alloc.optimal.cached`, …) and sit outside `bench.phase_probe`, so
    // pre-cache BENCH baselines stay comparable row for row.
    drop(probe);
    let probe = tracer.root("bench.incremental_probe");
    let m = lambertian_order(dep.half_power_semi_angle);
    let cache = NlosTxCache::new_pooled(
        &dep.grid.pose(1),
        m,
        &dep.room,
        &NlosConfig::default(),
        pool,
        &probe,
    );
    for follower in [2usize, 7, 8] {
        cache.floor_gain_pooled(&dep.grid.pose(follower), &dep.optics, pool, &probe);
    }
    let mut warm = WarmOptimal::new();
    let solver = OptimalSolver::quick();
    warm.solve_traced_pooled(&solver, &dep.model, 1.2, &quiet, pool, &probe);
    // Unchanged channel: the replan is skipped (`alloc.optimal.cached`).
    warm.solve_traced_pooled(&solver, &dep.model, 1.2, &quiet, pool, &probe);
}

/// Times the SoA/sparse channel machinery under a `bench.sparse_probe`
/// root: FOV-mask construction, masked vs dense channel sounding, CSR view
/// builds, and the fast vs historical dense solver engines — once at the
/// paper's 36 × 4 geometry (90° receivers: nothing culls, the fused lane
/// kernels carry the win) and once at a synthetic 144 × 16 building floor
/// with 35° receivers (the regime where culling drops most links). Every
/// row is a *new* span name (`sparse.*`), and each timed workload calls an
/// untraced entry point inside the timing span, so all pre-existing BENCH
/// rows keep their historical meaning and stay gate-comparable.
pub fn sparse_probe(tracer: &Tracer, pool: &Pool) {
    let probe = tracer.root("bench.sparse_probe");

    // Paper geometry: Scenario 2, 36 TX / 4 RX, wide-open receivers.
    let dep = Deployment::scenario(Scenario::Two);
    let mask = {
        let span = probe.child("sparse.fov.build.paper");
        let mask = FovMask::compute(&dep.grid, &dep.receivers, &dep.optics.profile());
        span.attr("live", &mask.live_count().to_string());
        span.attr("culled", &mask.culled_count().to_string());
        mask
    };
    let matrix = {
        let _span = probe.child("sparse.channel.masked.paper");
        ChannelMatrix::compute_masked_pooled(
            &dep.grid,
            &dep.receivers,
            dep.half_power_semi_angle,
            &dep.optics,
            &[],
            Some(&mask),
            pool,
            &Span::noop(),
        )
    };
    {
        let span = probe.child("sparse.view.build.paper");
        let view = SparseChannelView::from_matrix(&matrix);
        span.attr("live_links", &view.live_links().to_string());
    }
    let solver = OptimalSolver::quick();
    {
        let _span = probe.child("sparse.solve.paper");
        solver.solve_traced_pooled(&dep.model, 1.2, &Registry::noop(), pool, &Span::noop());
    }
    {
        let _span = probe.child("sparse.solve.dense.paper");
        solver.solve_dense_pooled(&dep.model, 1.2, pool);
    }

    // Synthetic building floor: 144 TX / 16 narrow-FOV RX.
    let room = Room {
        width: 6.0,
        depth: 6.0,
        height: 3.0,
        floor_reflectance: 0.6,
    };
    let grid = TxGrid::centered(&room, 12, 12, 0.5);
    let optics = RxOptics {
        fov_half_angle: 35f64.to_radians(),
        ..RxOptics::paper()
    };
    let receivers: Vec<Pose> = (0..16)
        .map(|i| {
            let (ix, iy) = (i % 4, i / 4);
            Pose::face_up((ix as f64 + 0.5) * 1.5, (iy as f64 + 0.5) * 1.5, 0.8)
        })
        .collect();
    let mask = {
        let span = probe.child("sparse.fov.build.building");
        let mask = FovMask::compute(&grid, &receivers, &optics.profile());
        span.attr("live", &mask.live_count().to_string());
        span.attr("culled", &mask.culled_count().to_string());
        mask
    };
    let hpsa = dep.half_power_semi_angle;
    let dense_matrix = {
        let _span = probe.child("sparse.channel.dense.building");
        ChannelMatrix::compute_with_blockage_pooled(
            &grid,
            &receivers,
            hpsa,
            &optics,
            &[],
            pool,
            &Span::noop(),
        )
    };
    let masked_matrix = {
        let _span = probe.child("sparse.channel.masked.building");
        ChannelMatrix::compute_masked_pooled(
            &grid,
            &receivers,
            hpsa,
            &optics,
            &[],
            Some(&mask),
            pool,
            &Span::noop(),
        )
    };
    assert_eq!(masked_matrix, dense_matrix, "conservative culling identity");
    {
        let span = probe.child("sparse.view.build.building");
        let view = SparseChannelView::from_mask(&masked_matrix, &mask);
        span.attr("live_links", &view.live_links().to_string());
    }
    let model = SystemModel::paper(masked_matrix);
    let building_solver = OptimalSolver {
        max_iters: 40,
        random_starts: 1,
        tol: 1e-7,
        seed: 0x5eed,
    };
    {
        let _span = probe.child("sparse.solve.building");
        building_solver.solve_traced_pooled(&model, 1.2, &Registry::noop(), pool, &Span::noop());
    }
    {
        let _span = probe.child("sparse.solve.dense.building");
        building_solver.solve_dense_pooled(&model, 1.2, pool);
    }
}

/// Times the sharded building control plane under a `bench.shard_probe`
/// root at the acceptance geometry — a 10 × 10 building (N = 100 cells),
/// one session per room, heuristic policy. Three repeated rows:
/// `shard.tick.steady` (no shard dirty — the O(1) bookkeeping path),
/// `shard.tick.one_dirty` (one session moved, one shard replanned), and
/// `shard.tick.all_dirty` (every session moved, every shard replanned).
/// The sharding win is the gap between the last two: the dirty-set batch
/// only pays for rooms that changed, so the one-dirty median sits an
/// order of magnitude under all-dirty at this N. Commands are applied
/// outside the spans — each row times `control_tick` alone.
pub fn shard_probe(tracer: &Tracer, pool: &Pool) {
    const REPS: usize = 9;
    let probe = tracer.root("bench.shard_probe");
    let cfg = BuildingConfig::paper(10, 10);
    let map = cfg.map();
    let cells = map.cells();
    probe.attr("cells", &cells.to_string());
    let registry = Registry::noop();
    let mut engine = BuildingEngine::new(&cfg, &registry);
    let quiet = Span::noop();
    let global = |cell: usize, lx: f64, ly: f64| {
        let (ox, oy) = map.origin(cell);
        (ox + lx, oy + ly)
    };
    for cell in 0..cells {
        let (x, y) = global(cell, 1.0, 1.0);
        let session = cell as u64;
        engine.apply(&Command::Arrive { session, x, y });
    }
    engine.control_tick(pool, &quiet);

    for rep in 0..REPS {
        let span = probe.child("shard.tick.steady");
        engine.control_tick(pool, &quiet);
        drop(span);

        // Alternate between two in-room poses so every rep's move really
        // changes the channel (no replan-cache hits inside the rows).
        let lx = if rep % 2 == 0 { 1.3 } else { 1.0 };
        let (x, y) = global(0, lx, 1.1);
        engine.apply(&Command::Move { session: 0, x, y });
        let span = probe.child("shard.tick.one_dirty");
        engine.control_tick(pool, &quiet);
        drop(span);

        for cell in 0..cells {
            let (x, y) = global(cell, lx, 1.2);
            let session = cell as u64;
            engine.apply(&Command::Move { session, x, y });
        }
        let span = probe.child("shard.tick.all_dirty");
        engine.control_tick(pool, &quiet);
        drop(span);
    }
}

/// Times the PHY fast path against its scalar reference under a
/// `bench.phy_probe` root. `phy.roundtrip.scalar` and
/// `phy.roundtrip.packed` each run the same per-frame cycle — frame encode
/// → Manchester chips → waveform render → mid-chip slice → Manchester
/// decode → Reed–Solomon frame decode, no channel noise so the workload is
/// deterministic — through the `Vec<Chip>` reference path and the
/// bit-packed zero-alloc path respectively. `phy.packed.encode`,
/// `phy.packed.decode`, and `phy.rs.block` isolate the packed Manchester
/// LUT encode, the word-wise decode, and a full t = 8 RS correction.
pub fn phy_probe(tracer: &Tracer) {
    const REPS: usize = 5;
    const FRAMES: usize = 16;
    let cfg = WaveformConfig::paper();
    let rs = ReedSolomon::paper();
    let header = FrameHeader {
        dst: 1,
        src: 0,
        protocol: 1,
    };
    let mut rng = StdRng::seed_from_u64(0x9A7);
    let payloads: Vec<Vec<u8>> = (0..FRAMES)
        .map(|_| (0..200).map(|_| rng.gen()).collect())
        .collect();
    let probe = tracer.root("bench.phy_probe");

    // Scalar reference: fresh Vec<Chip> streams and per-call RS buffers.
    for _ in 0..REPS {
        let span = probe.child("phy.roundtrip.scalar");
        let mut sink = 0usize;
        for payload in &payloads {
            let frame = Frame::new(u64::MAX, header, payload.clone());
            let bytes = frame.to_bytes(&rs);
            let chips = manchester_encode(&bytes);
            let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
            let wave = render(&chips, &cfg, 1.0, 0.0, n_samples);
            let sliced = slice_chips(&wave, &cfg, 0, chips.len()).expect("clean waveform");
            let decoded = manchester_decode(&sliced).expect("valid stream");
            let (out, _) = Frame::from_bytes(&decoded, &rs).expect("clean frame");
            sink += out.payload.len();
        }
        assert_eq!(sink, FRAMES * 200);
        drop(span);
    }

    // Packed fast path: reusable buffers, warmed before the timed reps so
    // the rows reflect the steady state the e2e pipeline runs in.
    let mut codec = RsCodec::paper();
    let mut wire = Vec::new();
    let mut chips = PackedChips::new();
    let mut wave = Vec::new();
    let mut sliced = PackedChips::new();
    let mut rx_bytes = Vec::new();
    let mut coded = Vec::new();
    let mut payload_rx = Vec::new();
    let mut packed_cycle = |payload: &[u8]| -> usize {
        wire.clear();
        Frame::encode_parts_into(u64::MAX, &header, payload, &mut codec, &mut wire);
        chips.clear();
        chips.encode_bytes(&wire);
        let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
        render_packed_into(&chips, &cfg, 1.0, 0.0, n_samples, &mut wave);
        assert!(slice_chips_packed_into(
            &wave,
            &cfg,
            0,
            chips.len(),
            &mut sliced
        ));
        assert!(sliced.decode_bytes_into(&mut rx_bytes));
        Frame::decode_parts_into(&rx_bytes, &mut codec, &mut coded, &mut payload_rx)
            .expect("clean frame");
        payload_rx.len()
    };
    packed_cycle(&payloads[0]);
    for _ in 0..REPS {
        let span = probe.child("phy.roundtrip.packed");
        let mut sink = 0usize;
        for payload in &payloads {
            sink += packed_cycle(payload);
        }
        assert_eq!(sink, FRAMES * 200);
        drop(span);
    }

    // Isolated packed Manchester encode and decode.
    for _ in 0..REPS {
        let span = probe.child("phy.packed.encode");
        for payload in &payloads {
            chips.clear();
            chips.encode_bytes(payload);
        }
        drop(span);
    }
    chips.clear();
    chips.encode_bytes(&payloads[0]);
    for _ in 0..REPS {
        let span = probe.child("phy.packed.decode");
        for _ in 0..FRAMES {
            assert!(chips.decode_bytes_into(&mut rx_bytes));
        }
        drop(span);
    }

    // A full Reed–Solomon block correction at capacity (t = 8 errors).
    let block_payload = &payloads[0];
    for _ in 0..REPS {
        let span = probe.child("phy.rs.block");
        for f in 0..FRAMES {
            coded.clear();
            codec.encode_into(block_payload, &mut coded);
            for e in 0..codec.correction_capacity() {
                let pos = (f * 31 + e * 17) % coded.len();
                coded[pos] ^= 0x5a;
            }
            codec.decode_in_place(&mut coded).expect("correctable");
        }
        drop(span);
    }
}
