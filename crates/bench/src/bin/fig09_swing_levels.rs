//! Regenerates Fig. 9: optimal swing levels vs communication power.

use densevlc::experiments::fig09_swing_levels;
use vlc_bench::budget_sweep;

fn main() {
    let fig = fig09_swing_levels::run(&budget_sweep());
    print!("{}", fig.report());
}
