//! Regenerates Fig. 18: heuristic evaluation in Scenario 1.

use densevlc::experiments::fig18_20_scenarios;
use vlc_testbed::Scenario;

fn main() {
    let res = fig18_20_scenarios::run(Scenario::One);
    print!("{}", res.report());
}
