//! Extension (§9): receiver orientation sweep.

use densevlc::experiments::ext_orientation;

fn main() {
    let ext = ext_orientation::run(&[0.0, 10.0, 20.0, 30.0, 45.0, 60.0], 1.2);
    print!("{}", ext.report());
}
