//! Regenerates Table 5: iperf-style goodput and PER for three scenarios.

use densevlc::experiments::tab05_iperf;

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let tab = tab05_iperf::run(frames, 0x7AB5);
    print!("{}", tab.report());
}
