//! Compares two BENCH.json files (written by `run_all --bench-out`) and
//! exits nonzero when the new run regresses past the noise band — the CI
//! perf-regression gate.
//!
//! A phase regresses when its new median exceeds the old median by more
//! than `max(rel·old_median, mad_k·old_MAD, abs_floor)`; phases present in
//! only one file are skipped, and improvements never flag. Exit status:
//! 0 = no regression, 1 = at least one phase regressed, 2 = usage or
//! parse error.
//!
//! With `--explain --new-profile FILE` (and optionally `--old-profile`),
//! a failed gate additionally cross-references each flagged phase against
//! the `densevlc-prof/1` self-time profile of the new run and prints the
//! call paths that own the regression — see `docs/BENCHMARKING.md`
//! §Explaining a gate failure.

use vlc_prof::{explain_regressions, Profile};
use vlc_trace::{format_regressions, BenchReport, CompareTolerance};

const USAGE: &str = "\
bench_compare — BENCH.json perf-regression gate

USAGE:
    bench_compare OLD.json NEW.json [--rel F] [--mad-k F] [--abs-floor S]
                  [--explain --new-profile FILE [--old-profile FILE] [--top N]]

ARGS:
    OLD.json        Baseline BENCH.json (e.g. from the main branch).
    NEW.json        Candidate BENCH.json to gate.

OPTIONS:
    --rel F         Relative tolerance on the old median (default 0.2).
    --mad-k F       Multiples of the old MAD tolerated (default 5.0).
    --abs-floor S   Absolute noise floor in seconds (default 0.002);
                    shields micro-phases from flagging on scheduler noise.
    --explain       On failure, name the call paths that own each flagged
                    phase, using the new run's self-time profile.
    --new-profile FILE  densevlc-prof/1 profile of the NEW run (from
                    `run_all --profile-out`); required by --explain.
    --old-profile FILE  Profile of the OLD run; with it, --explain ranks
                    paths by self-time *delta* instead of absolute self.
    --top N         Call paths printed per regressed phase (default 5).
    -h, --help      Print this help.

EXIT STATUS:
    0  no phase regressed beyond the noise band
    1  at least one phase regressed (each is printed)
    2  usage error or unreadable/invalid BENCH.json
";

struct Options {
    old_path: String,
    new_path: String,
    tol: CompareTolerance,
    explain: bool,
    new_profile: Option<String>,
    old_profile: Option<String>,
    top: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut tol = CompareTolerance::default();
    let mut explain = false;
    let mut new_profile: Option<String> = None;
    let mut old_profile: Option<String> = None;
    let mut top = 5usize;
    let mut args = std::env::args().skip(1);
    let float = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<f64, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .ok_or(format!("bad {flag} value `{v}`"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--rel" => tol.rel = float(&mut args, "--rel")?,
            "--mad-k" => tol.mad_k = float(&mut args, "--mad-k")?,
            "--abs-floor" => tol.abs_floor_s = float(&mut args, "--abs-floor")?,
            "--explain" => explain = true,
            "--new-profile" => {
                new_profile = Some(args.next().ok_or("--new-profile needs a file")?);
            }
            "--old-profile" => {
                old_profile = Some(args.next().ok_or("--old-profile needs a file")?);
            }
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --top value `{v}`"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            _ => paths.push(arg),
        }
    }
    if explain && new_profile.is_none() {
        return Err("--explain needs --new-profile FILE (from run_all --profile-out)".to_string());
    }
    match <[String; 2]>::try_from(paths) {
        Ok([old_path, new_path]) => Ok(Options {
            old_path,
            new_path,
            tol,
            explain,
            new_profile,
            old_profile,
            top,
        }),
        Err(_) => Err("expected exactly two BENCH.json paths".to_string()),
    }
}

fn load_profile(path: &str) -> Profile {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match Profile::from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {path} is not a valid profile: {e}");
            std::process::exit(2);
        }
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (old, new) = match (load(&opts.old_path), load(&opts.new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let regressions = old.compare(&new, &opts.tol);
    if regressions.is_empty() {
        println!(
            "bench_compare: OK — no phase regressed ({} vs {})",
            opts.old_path, opts.new_path
        );
        return;
    }
    println!(
        "bench_compare: {} phase(s) regressed ({} vs {}):",
        regressions.len(),
        opts.old_path,
        opts.new_path
    );
    print!("{}", format_regressions(&regressions));
    if opts.explain {
        let new_profile = load_profile(opts.new_profile.as_deref().expect("validated in parse"));
        let old_profile = opts.old_profile.as_deref().map(load_profile);
        print!(
            "{}",
            explain_regressions(&regressions, &new_profile, old_profile.as_ref(), opts.top)
        );
    }
    std::process::exit(1);
}
