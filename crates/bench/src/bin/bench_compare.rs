//! Compares two BENCH.json files (written by `run_all --bench-out`) and
//! exits nonzero when the new run regresses past the noise band — the CI
//! perf-regression gate.
//!
//! A phase regresses when its new median exceeds the old median by more
//! than `max(rel·old_median, mad_k·old_MAD, abs_floor)`; phases present in
//! only one file are skipped, and improvements never flag. Exit status:
//! 0 = no regression, 1 = at least one phase regressed, 2 = usage or
//! parse error.

use vlc_trace::{BenchReport, CompareTolerance};

const USAGE: &str = "\
bench_compare — BENCH.json perf-regression gate

USAGE:
    bench_compare OLD.json NEW.json [--rel F] [--mad-k F] [--abs-floor S]

ARGS:
    OLD.json        Baseline BENCH.json (e.g. from the main branch).
    NEW.json        Candidate BENCH.json to gate.

OPTIONS:
    --rel F         Relative tolerance on the old median (default 0.2).
    --mad-k F       Multiples of the old MAD tolerated (default 5.0).
    --abs-floor S   Absolute noise floor in seconds (default 0.002);
                    shields micro-phases from flagging on scheduler noise.
    -h, --help      Print this help.

EXIT STATUS:
    0  no phase regressed beyond the noise band
    1  at least one phase regressed (each is printed)
    2  usage error or unreadable/invalid BENCH.json
";

struct Options {
    old_path: String,
    new_path: String,
    tol: CompareTolerance,
}

fn parse_args() -> Result<Options, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut tol = CompareTolerance::default();
    let mut args = std::env::args().skip(1);
    let float = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<f64, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .ok_or(format!("bad {flag} value `{v}`"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--rel" => tol.rel = float(&mut args, "--rel")?,
            "--mad-k" => tol.mad_k = float(&mut args, "--mad-k")?,
            "--abs-floor" => tol.abs_floor_s = float(&mut args, "--abs-floor")?,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            _ => paths.push(arg),
        }
    }
    match <[String; 2]>::try_from(paths) {
        Ok([old_path, new_path]) => Ok(Options {
            old_path,
            new_path,
            tol,
        }),
        Err(_) => Err("expected exactly two BENCH.json paths".to_string()),
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (old, new) = match (load(&opts.old_path), load(&opts.new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let regressions = old.compare(&new, &opts.tol);
    if regressions.is_empty() {
        println!(
            "bench_compare: OK — no phase regressed ({} vs {})",
            opts.old_path, opts.new_path
        );
        return;
    }
    println!(
        "bench_compare: {} phase(s) regressed ({} vs {}):",
        regressions.len(),
        opts.old_path,
        opts.new_path
    );
    for r in &regressions {
        println!(
            "  {:<32} {:>12.6}s -> {:>12.6}s (threshold {:+.6}s)",
            r.name, r.old_median_s, r.new_median_s, r.threshold_s
        );
    }
    std::process::exit(1);
}
