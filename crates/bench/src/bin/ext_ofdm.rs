//! Extension (§9): OFDM headroom over the paper's Manchester-OOK PHY.

use densevlc::experiments::ext_ofdm;

fn main() {
    let ext = ext_ofdm::run(100_000, 0xE0FD);
    print!("{}", ext.report());
}
