//! Extension (§9): blockage sweep — where a standing person helps or hurts.

use densevlc::experiments::ext_blockage;
use vlc_testbed::Scenario;

fn main() {
    for s in [Scenario::One, Scenario::Two, Scenario::Three] {
        println!("{}", s.label());
        print!("{}", ext_blockage::run(s, 8, 1.2).report());
        println!();
    }
}
