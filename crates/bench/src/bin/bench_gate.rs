//! One-command perf-regression gate: benchmark the current tree and
//! compare it against the committed `BENCH.json` baseline.
//!
//! `cargo bench-gate` (aliased in `.cargo/config.toml`) spawns
//! `run_all --bench-out` in release mode to produce a fresh BENCH.json,
//! then applies the same tolerance test as `bench_compare`: a phase
//! regresses when its new median exceeds the old median by more than
//! `max(rel·old_median, mad_k·old_MAD, abs_floor)`. Phases present in
//! only one file are skipped, and improvements never flag. Exit status:
//! 0 = no regression, 1 = at least one phase regressed, 2 = usage,
//! spawn, or parse error.

use std::process::Command;

use vlc_prof::{explain_regressions, Profile};
use vlc_trace::{format_regressions, BenchReport, CompareTolerance};

const USAGE: &str = "\
bench_gate — benchmark the working tree and gate it against a baseline

USAGE:
    bench_gate [BASELINE.json] [--bench-repeat N] [--rel F] [--mad-k F] [--abs-floor S]
               [--explain [--top N]]

ARGS:
    BASELINE.json   Baseline to gate against (default: BENCH.json at the
                    workspace root — the committed baseline).

OPTIONS:
    --bench-repeat N  Samples per phase for the fresh run (default 5).
    --rel F           Relative tolerance on the old median (default 0.2).
    --mad-k F         Multiples of the old MAD tolerated (default 5.0).
    --abs-floor S     Absolute noise floor in seconds (default 0.002).
    --explain         Also profile the fresh run (`--profile-out`); on
                      failure, print the call paths that own each flagged
                      phase instead of a bare phase name.
    --top N           Call paths printed per regressed phase (default 5).
    -h, --help        Print this help.

EXIT STATUS:
    0  no phase regressed beyond the noise band
    1  at least one phase regressed (each is printed)
    2  usage error, spawn failure, or unreadable/invalid BENCH.json
";

struct Options {
    baseline: String,
    repeat: u32,
    tol: CompareTolerance,
    explain: bool,
    top: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut baseline: Option<String> = None;
    let mut repeat = 5u32;
    let mut explain = false;
    let mut top = 5usize;
    let mut tol = CompareTolerance::default();
    let mut args = std::env::args().skip(1);
    let float = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<f64, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .ok_or(format!("bad {flag} value `{v}`"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--bench-repeat" => {
                let v = args.next().ok_or("--bench-repeat needs a value")?;
                repeat = v
                    .parse::<u32>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or(format!("bad --bench-repeat value `{v}`"))?;
            }
            "--rel" => tol.rel = float(&mut args, "--rel")?,
            "--mad-k" => tol.mad_k = float(&mut args, "--mad-k")?,
            "--abs-floor" => tol.abs_floor_s = float(&mut args, "--abs-floor")?,
            "--explain" => explain = true,
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --top value `{v}`"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            _ if baseline.is_none() => baseline = Some(arg),
            _ => return Err("expected at most one baseline path".to_string()),
        }
    }
    Ok(Options {
        baseline: baseline.unwrap_or_else(|| "BENCH.json".to_string()),
        repeat,
        tol,
        explain,
        top,
    })
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let fresh = std::env::temp_dir().join(format!("bench_gate_{}.json", std::process::id()));
    let fresh_path = fresh.to_string_lossy().to_string();
    let fresh_profile =
        std::env::temp_dir().join(format!("bench_gate_{}.profile.json", std::process::id()));
    let fresh_profile_path = fresh_profile.to_string_lossy().to_string();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    println!(
        "==== bench_gate: benchmarking working tree ({} samples/phase{}) ====",
        opts.repeat,
        if opts.explain { ", profiled" } else { "" }
    );
    let mut cmd = Command::new(&cargo);
    cmd.args([
        "run",
        "--release",
        "-p",
        "vlc-bench",
        "--bin",
        "run_all",
        "--",
    ])
    .args(["--bench-out", &fresh_path])
    .args(["--bench-repeat", &opts.repeat.to_string()]);
    if opts.explain {
        cmd.args(["--profile-out", &fresh_profile_path]);
    }
    let status = cmd.status().expect("failed to spawn cargo run");
    if !status.success() {
        eprintln!("error: run_all --bench-out failed");
        std::process::exit(2);
    }
    let (old, new) = match (load(&opts.baseline), load(&fresh_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let _ = std::fs::remove_file(&fresh);
    let profile = if opts.explain {
        let p = std::fs::read_to_string(&fresh_profile)
            .map_err(|e| e.to_string())
            .and_then(|t| Profile::from_json(&t));
        let _ = std::fs::remove_file(&fresh_profile);
        match p {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("error: fresh profile unreadable: {e}");
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    let regressions = old.compare(&new, &opts.tol);
    if regressions.is_empty() {
        println!("bench_gate: OK — no phase regressed vs {}", opts.baseline);
        return;
    }
    println!(
        "bench_gate: {} phase(s) regressed vs {}:",
        regressions.len(),
        opts.baseline
    );
    print!("{}", format_regressions(&regressions));
    if let Some(profile) = &profile {
        // No baseline profile here (the committed baseline carries only
        // BENCH.json), so paths rank by absolute self time.
        print!(
            "{}",
            explain_regressions(&regressions, profile, None, opts.top)
        );
    }
    std::process::exit(1);
}
