//! `obs_check` — validate an observability NDJSON stream.
//!
//! ```text
//! obs_check <stream.ndjson> [--expect-summary] [--expect-panic]
//!           [--expect-profile] [--lenient]
//! ```
//!
//! Parses every line with the bundled `vlc_obs` parser (the same one the
//! round-trip tests and the monitor run on) and exits nonzero on the
//! first invalid line, naming it. `--expect-summary` additionally
//! requires the stream to end with a `summary` record (a completed run);
//! `--expect-panic` requires a `panic` record (a flight-recorder dump);
//! `--expect-profile` requires a `profile` digest (a profiled run).
//! `--lenient` tolerates a trailing unterminated line, for validating a
//! stream still being written. CI runs this against both a streamed
//! simulation and an injected-panic flight dump.

use vlc_obs::{parse_stream, parse_stream_strict, ObsRecord};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let expect_summary = args.iter().any(|a| a == "--expect-summary");
    let expect_panic = args.iter().any(|a| a == "--expect-panic");
    let expect_profile = args.iter().any(|a| a == "--expect-profile");
    let lenient = args.iter().any(|a| a == "--lenient");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: obs_check <stream.ndjson> [--expect-summary] [--expect-panic] [--expect-profile] [--lenient]"
        );
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let parsed = if lenient {
        parse_stream(&text)
    } else {
        parse_stream_strict(&text)
    };
    let records = match parsed {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path} is not a valid observability stream: {e}");
            std::process::exit(1);
        }
    };

    let count = |f: fn(&ObsRecord) -> bool| records.iter().filter(|r| f(r)).count();
    let metas = count(|r| matches!(r, ObsRecord::Meta { .. }));
    let ticks = count(|r| matches!(r, ObsRecord::Tick { .. }));
    let windows = count(|r| matches!(r, ObsRecord::Window { .. }));
    let alerts = count(|r| matches!(r, ObsRecord::Alert { .. }));
    let events = count(|r| matches!(r, ObsRecord::Event(_)));
    let jobs = count(|r| matches!(r, ObsRecord::Job { .. }));
    let panics = count(|r| matches!(r, ObsRecord::Panic { .. }));
    let profiles = count(|r| matches!(r, ObsRecord::Profile { .. }));
    let summaries = count(|r| matches!(r, ObsRecord::Summary { .. }));
    println!(
        "{path}: {} records — {metas} meta, {ticks} ticks, {windows} windows, {alerts} alerts, {events} events, {jobs} jobs, {panics} panics, {profiles} profiles, {summaries} summaries",
        records.len()
    );

    if records.is_empty() {
        eprintln!("error: {path} contains no records");
        std::process::exit(1);
    }
    if metas != 1 {
        eprintln!("error: expected exactly one meta record, found {metas}");
        std::process::exit(1);
    }
    if !matches!(records.first(), Some(ObsRecord::Meta { .. })) {
        eprintln!("error: the stream must start with its meta record");
        std::process::exit(1);
    }
    if expect_summary && !matches!(records.last(), Some(ObsRecord::Summary { .. })) {
        eprintln!("error: expected the stream to end with a summary record");
        std::process::exit(1);
    }
    if expect_panic && panics == 0 {
        eprintln!("error: expected a panic record (flight-recorder dump)");
        std::process::exit(1);
    }
    if expect_profile && profiles == 0 {
        eprintln!("error: expected a profile record (profiled run)");
        std::process::exit(1);
    }
    println!("{path}: OK");
}
