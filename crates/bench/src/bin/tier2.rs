//! Tier-2 gate: the workspace test suite at both ends of the jobs knob.
//!
//! `cargo tier2` (aliased in `.cargo/config.toml`) runs `cargo test -q`
//! twice — once with `DENSEVLC_JOBS=1` (the exact sequential legacy path)
//! and once with `DENSEVLC_JOBS=max` (full fan-out) — so a change that is
//! only correct on one side of the determinism contract cannot land. The
//! workspace suite includes the incremental-engine identity tests
//! (`crates/channel/tests/cache_identity.rs`, `tests/sim_incremental.rs`),
//! so cached-vs-cold bitwise equality is checked at both ends of the knob.

use std::process::Command;

fn main() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for jobs in ["1", "max"] {
        println!("==== tier2: cargo test -q --workspace (DENSEVLC_JOBS={jobs}) ====");
        let status = Command::new(&cargo)
            .args(["test", "-q", "--workspace"])
            .env("DENSEVLC_JOBS", jobs)
            .status()
            .expect("failed to spawn cargo test");
        if !status.success() {
            eprintln!("tier2 FAILED at DENSEVLC_JOBS={jobs}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
    println!("tier2 OK: suite green at jobs=1 and jobs=max");
}
