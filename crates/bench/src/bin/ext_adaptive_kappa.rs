//! Extension (§9): adaptive per-TX κ vs uniform κ vs the optimum.

use densevlc::experiments::ext_adaptive_kappa;

fn main() {
    let ext = ext_adaptive_kappa::run(&[0.3, 0.6, 0.9, 1.2, 1.8], 1.0);
    print!("{}", ext.report());
    let ext13 = ext_adaptive_kappa::run(&[0.3, 0.6, 0.9, 1.2, 1.8], 1.3);
    print!("{}", ext13.report());
}
