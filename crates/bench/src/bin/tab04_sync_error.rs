//! Regenerates Table 4: median synchronization error per scheme.

use densevlc::experiments::tab04_sync_error;

fn main() {
    let tab = tab04_sync_error::run(200, 0x7AB4);
    print!("{}", tab.report());
}
