//! Extension (§3.4): the bias/dimming operating point trade-off.

use densevlc::experiments::ext_dimming;

fn main() {
    let ext = ext_dimming::run(&[0.10, 0.15, 0.225, 0.30, 0.45, 0.60, 0.75, 0.85], 0.6);
    print!("{}", ext.report());
}
