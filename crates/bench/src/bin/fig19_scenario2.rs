//! Regenerates Fig. 19: heuristic evaluation in Scenario 2.

use densevlc::experiments::fig18_20_scenarios;
use vlc_testbed::Scenario;

fn main() {
    let res = fig18_20_scenarios::run(Scenario::Two);
    print!("{}", res.report());
}
