//! Extension (§9): TX density vs throughput and fairness.

use densevlc::experiments::ext_density;

fn main() {
    let ext = ext_density::run(&[2, 3, 4, 5, 6, 8], 1.2);
    print!("{}", ext.report());
}
