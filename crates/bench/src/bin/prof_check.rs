//! `prof_check` — validate a self-time profile document.
//!
//! ```text
//! prof_check <profile.json> [--folded FILE]
//! ```
//!
//! Checks that the file is a well-formed `densevlc-prof/1` document and
//! that the profiler's core invariant holds: Σ self-time over all paths
//! equals Σ inclusive over root paths (to float tolerance — the two are
//! the same telescoping sum computed two ways). With `--folded FILE` it
//! additionally re-derives the folded rendering from the profile and
//! requires FILE to match byte for byte, which is how CI pins that the
//! exported artifacts agree with each other. Exit codes: 0 valid,
//! 1 invalid, 2 usage/IO errors.

use vlc_prof::{parse_folded, to_folded, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut folded_path: Option<&String> = None;
    let mut profile_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--folded" => {
                folded_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("error: --folded needs a file");
                    std::process::exit(2);
                }));
            }
            other if !other.starts_with("--") => profile_path = Some(arg),
            other => {
                eprintln!("error: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = profile_path else {
        eprintln!("usage: prof_check <profile.json> [--folded FILE]");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let profile = match Profile::from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {path} is not a valid profile: {e}");
            std::process::exit(1);
        }
    };

    let self_s = profile.total_self_s();
    let root_s = profile.total_root_s();
    // The invariant is exact arithmetic re-grouped; allow only float
    // noise proportional to the magnitude involved.
    let tol = 1e-9 * root_s.abs().max(1.0);
    println!(
        "{path}: {} paths, {} calls, sum(self) {self_s:.9}s vs sum(roots) {root_s:.9}s",
        profile.nodes.len(),
        profile.nodes.iter().map(|n| n.calls).sum::<u64>()
    );
    if (self_s - root_s).abs() > tol {
        eprintln!(
            "error: self-time invariant violated: |{self_s} - {root_s}| > {tol} \
             (parallel child overlap cannot break the *sum*, only per-path signs)"
        );
        std::process::exit(1);
    }

    if let Some(fpath) = folded_path {
        let folded = match std::fs::read_to_string(fpath) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {fpath}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = parse_folded(&folded) {
            eprintln!("error: {fpath} is not valid folded-stack data: {e}");
            std::process::exit(1);
        }
        let expected = to_folded(&profile);
        if folded != expected {
            eprintln!(
                "error: {fpath} does not match the folded rendering of {path} \
                 ({} vs {} bytes)",
                folded.len(),
                expected.len()
            );
            std::process::exit(1);
        }
        println!("{fpath}: matches the profile's folded rendering byte for byte");
    }
    println!("{path}: OK");
}
