//! Regenerates Fig. 10: empirical CDFs of optimal swings toward RX2.

use densevlc::experiments::fig10_swing_cdf;

fn main() {
    let instances: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    // The paper's representative TXs: TX3, TX5, TX10, TX15 (zero-based).
    let fig = fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, instances, 0xF1610);
    print!("{}", fig.report());
}
