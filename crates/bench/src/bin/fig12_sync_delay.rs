//! Regenerates Fig. 12: synchronization delay vs symbol rate.

use densevlc::experiments::fig12_sync_delay;
use vlc_bench::rate_sweep;

fn main() {
    let fig = fig12_sync_delay::run(&rate_sweep(), 20_001, 0xF1612);
    print!("{}", fig.report());
}
