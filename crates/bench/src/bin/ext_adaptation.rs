//! Extension: mobility-tracking retention across receiver speeds and
//! decision times.

use densevlc::experiments::ext_adaptation;

fn main() {
    let ext = ext_adaptation::run(&[0.25, 0.5, 1.0, 2.0, 4.0], &[0.07, 0.5, 2.0, 10.0], 0xADA7);
    print!("{}", ext.report());
}
