//! Regenerates Fig. 8: optimal throughput vs power over random instances.
//!
//! Pass an instance count as the first argument (default 100, the paper's
//! setting; expect a couple of minutes of solver time).

use densevlc::experiments::fig08_throughput_vs_power;
use vlc_bench::budget_sweep;

fn main() {
    let instances: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let fig = fig08_throughput_vs_power::run(&budget_sweep(), instances, 0xF168);
    print!("{}", fig.report());
}
