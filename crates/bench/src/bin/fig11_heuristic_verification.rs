//! Regenerates Fig. 11: heuristic vs optimal across κ.

use densevlc::experiments::fig11_heuristic_verification;
use vlc_bench::budget_sweep;

fn main() {
    let instances: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let fig = fig11_heuristic_verification::run(&budget_sweep(), instances, 1.2, 0xF1611);
    print!("{}", fig.report());
}
