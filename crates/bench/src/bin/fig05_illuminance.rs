//! Regenerates Fig. 5 / §8: illuminance distribution and ISO compliance.

use densevlc::experiments::fig05_illuminance;
use vlc_led::LedParams;

fn main() {
    let fig = fig05_illuminance::run(&LedParams::cree_xte_paper(), 0xF165);
    print!("{}", fig.report());
}
