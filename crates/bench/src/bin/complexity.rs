//! Regenerates the §5 complexity comparison: optimal vs heuristic runtime.

use densevlc::experiments::complexity;

fn main() {
    let c = complexity::run(1.2, 5, 20_000);
    print!("{}", c.report());
}
