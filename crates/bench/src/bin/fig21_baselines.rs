//! Regenerates Fig. 21: DenseVLC vs SISO and D-MISO power efficiency.

use densevlc::experiments::fig21_baselines;
use vlc_testbed::Scenario;

fn main() {
    let fig = fig21_baselines::run(Scenario::Two);
    print!("{}", fig.report());
}
