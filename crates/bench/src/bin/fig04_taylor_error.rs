//! Regenerates Fig. 4: Taylor power-model error vs swing level.

use densevlc::experiments::fig04_taylor_error;
use vlc_led::LedParams;

fn main() {
    let fig = fig04_taylor_error::run(&LedParams::cree_xte_paper(), 90);
    print!("{}", fig.report());
}
