//! Runs every experiment at a reduced scale and prints the full report —
//! a one-shot reproduction of the paper's evaluation section.
//!
//! Experiments execute as a parallel job set on the `vlc-par` pool:
//! reports are collected and printed in the fixed experiment order, so the
//! output is byte-identical for any worker count (`--jobs 1` is the exact
//! legacy sequential run). `--telemetry summary` appends the per-job span
//! table (`bench.<name>.run_s`) and the pool's per-worker metrics.
//!
//! `--bench-out FILE` additionally times the run with `vlc-trace` spans and
//! writes a `densevlc-bench/1` BENCH.json (per-phase median/MAD/min/max,
//! see `docs/BENCHMARKING.md`); `--bench-repeat N` repeats the workload to
//! tighten the medians. `--trace FILE` writes the same spans as a Chrome
//! Trace Event file loadable in Perfetto. Neither flag changes the printed
//! reports: repeats beyond the first only feed the timing statistics.
//!
//! All observability flags (including `--obs-stream FILE`, which records
//! each completed experiment job as an NDJSON stream, and `--watch`, which
//! renders the monitor dashboard after the run) are parsed by the shared
//! `vlc_obs::ObsOptions` — the exact flag set `densevlc-cli` takes.

use densevlc::experiments::*;
use densevlc::{Simulation, System};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vlc_alloc::heuristic::heuristic_allocation_traced;
use vlc_alloc::{HeuristicConfig, OptimalSolver, WarmOptimal};
use vlc_bench::{budget_sweep, rate_sweep};
use vlc_channel::nlos::NlosConfig;
use vlc_channel::{lambertian_order, ChannelMatrix, NlosTxCache};
use vlc_led::LedParams;
use vlc_obs::{
    monitor, parse_stream, FileSink, MemorySink, ObsOptions, ObsRecord, ObsSink, TelemetryFormat,
    OBS_SCHEMA,
};
use vlc_par::{Jobs, Pool, JOBS_ENV};
use vlc_phy::manchester::{manchester_decode, manchester_encode};
use vlc_phy::packed::PackedChips;
use vlc_phy::rs::RsCodec;
use vlc_phy::waveform::{
    render, render_packed_into, slice_chips, slice_chips_packed_into, WaveformConfig,
};
use vlc_phy::{Frame, FrameHeader, ReedSolomon};
use vlc_sync::NlosSyncLink;
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::{BenchReport, Tracer};

const USAGE: &str = "\
run_all — regenerate the full DenseVLC evaluation (every table and figure)

USAGE:
    run_all [--jobs N] [--telemetry FORMAT] [--trace FILE]
            [--bench-out FILE] [--bench-repeat N]
            [--obs-stream FILE] [--watch]

OPTIONS:
    --jobs N            Worker count for the experiment job set and the
                        parallel layers underneath it (channel sounding,
                        allocator search). N = a positive integer, or
                        `max`/`0` for all available cores. Defaults to the
                        DENSEVLC_JOBS environment variable, then to all
                        cores. `--jobs 1` is the exact sequential path;
                        reports are byte-identical for every worker count.
    --telemetry FORMAT  Append run telemetry: `summary` (per-job span and
                        per-worker tables), `json`, or `csv`.
    --trace FILE        Record causal spans for the whole run and write
                        them as Chrome Trace Event JSON (open in Perfetto
                        or chrome://tracing).
    --bench-out FILE    Write per-phase timing statistics (median/MAD/
                        min/max over repeats) as BENCH.json; compare two
                        such files with `bench_compare`.
    --bench-repeat N    Repeat the workload N times (default 1) to tighten
                        the BENCH medians. Reports print once; repeats
                        beyond the first only feed the statistics.
    --obs-stream FILE   Write an NDJSON observability stream: one `job`
                        record per completed experiment (in the fixed
                        presentation order) plus a run summary, validated
                        by `obs_check` and rendered by `densevlc-cli
                        monitor`.
    --watch             Render the monitor dashboard from the stream after
                        the run (with or without --obs-stream).
    -h, --help          Print this help.
";

/// One experiment: its span label and the closure that produces its report.
type Job = (&'static str, Box<dyn Fn() -> String + Send + Sync>);

/// The evaluation job set, in the paper's presentation order.
/// Returns the jobs plus the index where the §9 extensions begin.
fn job_set() -> (Vec<Job>, usize) {
    let mut jobs: Vec<Job> = vec![
        (
            "fig04_taylor_error",
            Box::new(|| fig04_taylor_error::run(&LedParams::cree_xte_paper(), 90).report()),
        ),
        (
            "fig05_illuminance",
            Box::new(|| fig05_illuminance::run(&LedParams::cree_xte_paper(), 1).report()),
        ),
        (
            "fig08_throughput_vs_power",
            Box::new(|| fig08_throughput_vs_power::run(&budget_sweep(), 20, 8).report()),
        ),
        (
            "fig09_swing_levels",
            Box::new(|| fig09_swing_levels::run(&budget_sweep()).report()),
        ),
        (
            "fig10_swing_cdf",
            Box::new(|| fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, 20, 10).report()),
        ),
        (
            "fig11_heuristic_verification",
            Box::new(|| fig11_heuristic_verification::run(&budget_sweep(), 20, 1.2, 11).report()),
        ),
        (
            "fig12_sync_delay",
            Box::new(|| fig12_sync_delay::run(&rate_sweep(), 10_001, 12).report()),
        ),
        (
            "tab04_sync_error",
            Box::new(|| tab04_sync_error::run(100, 4).report()),
        ),
        ("tab05_iperf", Box::new(|| tab05_iperf::run(50, 5).report())),
        (
            "fig18_scenario1",
            Box::new(|| fig18_20_scenarios::run(Scenario::One).report()),
        ),
        (
            "fig19_scenario2",
            Box::new(|| fig18_20_scenarios::run(Scenario::Two).report()),
        ),
        (
            "fig20_scenario3",
            Box::new(|| fig18_20_scenarios::run(Scenario::Three).report()),
        ),
        (
            "fig21_baselines",
            Box::new(|| fig21_baselines::run(Scenario::Two).report()),
        ),
        (
            "complexity",
            Box::new(|| complexity::run(1.2, 3, 5_000).report()),
        ),
    ];
    let extensions_at = jobs.len();
    let extensions: Vec<Job> = vec![
        (
            "ext_adaptive_kappa",
            Box::new(|| ext_adaptive_kappa::run(&[0.6, 1.2], 1.0).report()),
        ),
        (
            "ext_density",
            Box::new(|| ext_density::run(&[3, 4, 6], 1.2).report()),
        ),
        (
            "ext_orientation",
            Box::new(|| ext_orientation::run(&[0.0, 20.0, 45.0], 1.2).report()),
        ),
        (
            "ext_ofdm",
            Box::new(|| ext_ofdm::run(50_000, 0xE0FD).report()),
        ),
        (
            "ext_dimming",
            Box::new(|| ext_dimming::run(&[0.15, 0.3, 0.45, 0.6, 0.75], 0.6).report()),
        ),
        (
            "ext_blockage",
            Box::new(|| ext_blockage::run(Scenario::Three, 6, 1.2).report()),
        ),
        (
            "ext_adaptation",
            Box::new(|| ext_adaptation::run(&[0.5, 2.0], &[0.07, 2.0], 0xADA7).report()),
        ),
        (
            "ext_concurrent",
            Box::new(|| ext_concurrent::run(Scenario::Two, 1.2, 15, 0xC0C).report()),
        ),
        (
            "ext_arq",
            Box::new(|| ext_arq::run_study(&[1.0, 0.05, 0.04], 20, 0xA2).report()),
        ),
    ];
    jobs.extend(extensions);
    (jobs, extensions_at)
}

struct Options {
    jobs: Jobs,
    obs: ObsOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        std::process::exit(0);
    }
    // The shared observability parser consumes its flags; only run_all's
    // own arguments may remain.
    let obs = ObsOptions::parse(&mut argv)?;
    let mut jobs: Option<Jobs> = None;
    let mut rest = argv.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = rest.next().ok_or("--jobs needs a value (N or `max`)")?;
                jobs = Some(Jobs::parse(&v).ok_or(format!("bad --jobs value `{v}`"))?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        jobs: jobs.unwrap_or_else(Jobs::from_env),
        obs,
    })
}

/// Times the library's standard phases once under a `bench.phase_probe`
/// root, so BENCH.json carries comparable per-phase rows (`channel.sound`,
/// `alloc.heuristic.solve`, `alloc.optimal.solve`, `sim.adapt`, `sim.run`,
/// `sync.link_build`, `sync.pilot_detect`, …) next to the whole-experiment
/// rows. Scenario 2 at the paper's 1.2 W budget is the reference workload.
fn phase_probe(tracer: &Tracer, jobs: Jobs) {
    let probe = tracer.root("bench.phase_probe");
    let quiet = Registry::noop();
    let dep = Deployment::scenario(Scenario::Two);
    ChannelMatrix::compute_with_blockage_traced(
        &dep.grid,
        &dep.receivers,
        dep.half_power_semi_angle,
        &dep.optics,
        &[],
        jobs,
        &probe,
    );
    heuristic_allocation_traced(
        &dep.model.channel,
        &LedParams::cree_xte_paper(),
        1.2,
        &HeuristicConfig::paper(),
        &quiet,
        &probe,
    );
    OptimalSolver::quick().solve_traced_jobs(&dep.model, 1.2, &quiet, jobs, &probe);
    System::scenario(Scenario::Two, 1.2).adapt_traced(&quiet, &probe);
    Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.25).run_traced(0.6, &quiet, &probe);
    let link = NlosSyncLink::between_traced(
        &dep.grid.pose(1),
        &dep.grid.pose(2),
        &dep.room,
        dep.half_power_semi_angle,
        &dep.optics,
        &probe,
    );
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    for frame in 0..4 {
        let round = probe.child_indexed("sync.pilot_round", frame);
        link.detect_traced(&mut rng, &quiet, &round);
    }

    // Incremental-engine probes under their own root: they add *new* span
    // names only (`channel.nlos.cache_build`, `channel.nlos.floor.cached`,
    // `alloc.optimal.cached`, …) and sit outside `bench.phase_probe`, so
    // pre-cache BENCH baselines stay comparable row for row.
    drop(probe);
    let probe = tracer.root("bench.incremental_probe");
    let m = lambertian_order(dep.half_power_semi_angle);
    let nlos_pool = Pool::new(jobs);
    let cache = NlosTxCache::new_pooled(
        &dep.grid.pose(1),
        m,
        &dep.room,
        &NlosConfig::default(),
        &nlos_pool,
        &probe,
    );
    for follower in [2usize, 7, 8] {
        cache.floor_gain_pooled(&dep.grid.pose(follower), &dep.optics, &nlos_pool, &probe);
    }
    let mut warm = WarmOptimal::new();
    let solver = OptimalSolver::quick();
    warm.solve_traced_jobs(&solver, &dep.model, 1.2, &quiet, jobs, &probe);
    // Unchanged channel: the replan is skipped (`alloc.optimal.cached`).
    warm.solve_traced_jobs(&solver, &dep.model, 1.2, &quiet, jobs, &probe);
}

/// Times the PHY fast path against its scalar reference under a
/// `bench.phy_probe` root. `phy.roundtrip.scalar` and
/// `phy.roundtrip.packed` each run the same per-frame cycle — frame encode
/// → Manchester chips → waveform render → mid-chip slice → Manchester
/// decode → Reed–Solomon frame decode, no channel noise so the workload is
/// deterministic — through the `Vec<Chip>` reference path and the
/// bit-packed zero-alloc path respectively. `phy.packed.encode`,
/// `phy.packed.decode`, and `phy.rs.block` isolate the packed Manchester
/// LUT encode, the word-wise decode, and a full t = 8 RS correction.
fn phy_probe(tracer: &Tracer) {
    const REPS: usize = 5;
    const FRAMES: usize = 16;
    let cfg = WaveformConfig::paper();
    let rs = ReedSolomon::paper();
    let header = FrameHeader {
        dst: 1,
        src: 0,
        protocol: 1,
    };
    let mut rng = StdRng::seed_from_u64(0x9A7);
    let payloads: Vec<Vec<u8>> = (0..FRAMES)
        .map(|_| (0..200).map(|_| rng.gen()).collect())
        .collect();
    let probe = tracer.root("bench.phy_probe");

    // Scalar reference: fresh Vec<Chip> streams and per-call RS buffers.
    for _ in 0..REPS {
        let span = probe.child("phy.roundtrip.scalar");
        let mut sink = 0usize;
        for payload in &payloads {
            let frame = Frame::new(u64::MAX, header, payload.clone());
            let bytes = frame.to_bytes(&rs);
            let chips = manchester_encode(&bytes);
            let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
            let wave = render(&chips, &cfg, 1.0, 0.0, n_samples);
            let sliced = slice_chips(&wave, &cfg, 0, chips.len()).expect("clean waveform");
            let decoded = manchester_decode(&sliced).expect("valid stream");
            let (out, _) = Frame::from_bytes(&decoded, &rs).expect("clean frame");
            sink += out.payload.len();
        }
        assert_eq!(sink, FRAMES * 200);
        drop(span);
    }

    // Packed fast path: reusable buffers, warmed before the timed reps so
    // the rows reflect the steady state the e2e pipeline runs in.
    let mut codec = RsCodec::paper();
    let mut wire = Vec::new();
    let mut chips = PackedChips::new();
    let mut wave = Vec::new();
    let mut sliced = PackedChips::new();
    let mut rx_bytes = Vec::new();
    let mut coded = Vec::new();
    let mut payload_rx = Vec::new();
    let mut packed_cycle = |payload: &[u8]| -> usize {
        wire.clear();
        Frame::encode_parts_into(u64::MAX, &header, payload, &mut codec, &mut wire);
        chips.clear();
        chips.encode_bytes(&wire);
        let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
        render_packed_into(&chips, &cfg, 1.0, 0.0, n_samples, &mut wave);
        assert!(slice_chips_packed_into(
            &wave,
            &cfg,
            0,
            chips.len(),
            &mut sliced
        ));
        assert!(sliced.decode_bytes_into(&mut rx_bytes));
        Frame::decode_parts_into(&rx_bytes, &mut codec, &mut coded, &mut payload_rx)
            .expect("clean frame");
        payload_rx.len()
    };
    packed_cycle(&payloads[0]);
    for _ in 0..REPS {
        let span = probe.child("phy.roundtrip.packed");
        let mut sink = 0usize;
        for payload in &payloads {
            sink += packed_cycle(payload);
        }
        assert_eq!(sink, FRAMES * 200);
        drop(span);
    }

    // Isolated packed Manchester encode and decode.
    for _ in 0..REPS {
        let span = probe.child("phy.packed.encode");
        for payload in &payloads {
            chips.clear();
            chips.encode_bytes(payload);
        }
        drop(span);
    }
    chips.clear();
    chips.encode_bytes(&payloads[0]);
    for _ in 0..REPS {
        let span = probe.child("phy.packed.decode");
        for _ in 0..FRAMES {
            assert!(chips.decode_bytes_into(&mut rx_bytes));
        }
        drop(span);
    }

    // A full Reed–Solomon block correction at capacity (t = 8 errors).
    let block_payload = &payloads[0];
    for _ in 0..REPS {
        let span = probe.child("phy.rs.block");
        for f in 0..FRAMES {
            coded.clear();
            codec.encode_into(block_payload, &mut coded);
            for e in 0..codec.correction_capacity() {
                let pos = (f * 31 + e * 17) % coded.len();
                coded[pos] ^= 0x5a;
            }
            codec.decode_in_place(&mut coded).expect("correctable");
        }
        drop(span);
    }
}

fn write_file(path: &str, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => {
            eprintln!("error: cannot write {what} to {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Propagate the job count to the parallel layers underneath the
    // experiments (channel sounding, allocator candidate search).
    std::env::set_var(JOBS_ENV, opts.jobs.get().to_string());

    let (set, extensions_at) = job_set();
    let registry = Registry::new();
    let pool = Pool::new(opts.jobs).with_telemetry(&registry);
    let timing = opts.obs.wants_tracer();
    let tracer = if timing {
        Tracer::new()
    } else {
        Tracer::noop()
    };
    let repeats = if timing { opts.obs.bench_repeat } else { 1 };

    println!(
        "==== DenseVLC (CoNEXT '18) — full evaluation reproduction ({} jobs, {} workers) ====\n",
        set.len(),
        opts.jobs
    );
    let _wall = registry.span("bench.run_all_s");
    let mut first_reports: Option<Vec<String>> = None;
    for _rep in 0..repeats {
        let root = tracer.root("bench.run_all");
        root.attr("jobs", &opts.jobs.get().to_string());
        let reports = pool.map_indexed(set.len(), |i| {
            let (name, run) = &set[i];
            let trace_span = root.child_indexed(&format!("experiment.{name}"), i);
            let _span = registry.span(&format!("bench.{name}.run_s"));
            let report = run();
            registry.counter("bench.jobs_done").inc();
            drop(trace_span);
            report
        });
        drop(root);
        if timing {
            phase_probe(&tracer, opts.jobs);
            phy_probe(&tracer);
        }
        first_reports.get_or_insert(reports);
    }
    drop(_wall);

    let reports = first_reports.expect("at least one repeat ran");
    for (i, report) in reports.iter().enumerate() {
        if i == extensions_at {
            println!("---- extensions (paper §9 future work) ----\n");
        }
        println!("{report}");
    }

    // Surface span-ring health before snapshotting, so the summary
    // exporter's rings line can report it (see export::summary).
    if timing {
        registry
            .counter("trace.spans_dropped")
            .add(tracer.snapshot().dropped);
    }

    if let Some(format) = opts.obs.telemetry {
        let snap = registry.snapshot();
        match format {
            TelemetryFormat::Json => println!("{}", snap.to_json()),
            TelemetryFormat::Csv => println!("{}", snap.to_csv()),
            TelemetryFormat::Summary => println!("{}", snap.summary_table()),
        }
    }

    // Observability stream: jobs complete in pool order, but records are
    // emitted in the fixed presentation order after collection, so the
    // stream is byte-identical for any worker count (the same contract
    // the printed reports honor).
    if opts.obs.wants_stream() {
        let snap = registry.snapshot();
        let mut records = vec![ObsRecord::Meta {
            schema: OBS_SCHEMA.into(),
            run: "run_all".into(),
            tick_s: 0.0,
            n_rx: 0,
            every: opts.obs.obs_every,
        }];
        for (i, (name, _)) in set.iter().enumerate() {
            records.push(ObsRecord::Job {
                index: i as u64,
                name: (*name).to_string(),
            });
        }
        records.push(ObsRecord::Summary {
            ticks: 0,
            mean_system_bps: 0.0,
            alerts_fired: 0,
            alerts_cleared: 0,
            events_dropped: snap.events_dropped,
            spans_dropped: if timing { tracer.snapshot().dropped } else { 0 },
        });
        let mem = MemorySink::new();
        let mut sink: Box<dyn ObsSink> = match &opts.obs.obs_stream {
            Some(path) => match FileSink::create(std::path::Path::new(path)) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot create stream file {path}: {e}");
                    std::process::exit(2);
                }
            },
            None => Box::new(mem.clone()),
        };
        for r in &records {
            let _ = sink.write_line(&r.to_line());
        }
        let _ = sink.flush();
        drop(sink);
        if let Some(path) = &opts.obs.obs_stream {
            eprintln!("wrote observability stream to {path}");
        }
        if opts.obs.watch {
            let text = match &opts.obs.obs_stream {
                Some(path) => std::fs::read_to_string(path).unwrap_or_default(),
                None => mem.text(),
            };
            match parse_stream(&text) {
                Ok(parsed) => print!("\n{}", monitor::render(&parsed)),
                Err(e) => eprintln!("error: stream failed validation: {e}"),
            }
        }
    }

    if timing {
        let snapshot = tracer.snapshot();
        if let Some(path) = &opts.obs.bench_out {
            let report = BenchReport::from_snapshot(&snapshot, opts.jobs.get(), repeats);
            write_file(path, &report.to_json(), "BENCH.json");
        }
        if let Some(path) = &opts.obs.trace {
            write_file(path, &snapshot.to_chrome_json(), "Chrome trace");
        }
    }
}
