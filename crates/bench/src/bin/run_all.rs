//! Runs every experiment at a reduced scale and prints the full report —
//! a one-shot reproduction of the paper's evaluation section.
//!
//! Experiments execute as a parallel job set on the `vlc-par` pool:
//! reports are collected and printed in the fixed experiment order, so the
//! output is byte-identical for any worker count (`--jobs 1` is the exact
//! legacy sequential run). `--telemetry summary` appends the per-job span
//! table (`bench.<name>.run_s`) and the pool's per-worker metrics.

use densevlc::experiments::*;
use vlc_bench::{budget_sweep, rate_sweep};
use vlc_led::LedParams;
use vlc_par::{Jobs, Pool, JOBS_ENV};
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;

const USAGE: &str = "\
run_all — regenerate the full DenseVLC evaluation (every table and figure)

USAGE:
    run_all [--jobs N] [--telemetry FORMAT]

OPTIONS:
    --jobs N            Worker count for the experiment job set and the
                        parallel layers underneath it (channel sounding,
                        allocator search). N = a positive integer, or
                        `max`/`0` for all available cores. Defaults to the
                        DENSEVLC_JOBS environment variable, then to all
                        cores. `--jobs 1` is the exact sequential path;
                        reports are byte-identical for every worker count.
    --telemetry FORMAT  Append run telemetry: `summary` (per-job span and
                        per-worker tables), `json`, or `csv`.
    -h, --help          Print this help.
";

/// One experiment: its span label and the closure that produces its report.
type Job = (&'static str, Box<dyn Fn() -> String + Send + Sync>);

/// The evaluation job set, in the paper's presentation order.
/// Returns the jobs plus the index where the §9 extensions begin.
fn job_set() -> (Vec<Job>, usize) {
    let mut jobs: Vec<Job> = vec![
        (
            "fig04_taylor_error",
            Box::new(|| fig04_taylor_error::run(&LedParams::cree_xte_paper(), 90).report()),
        ),
        (
            "fig05_illuminance",
            Box::new(|| fig05_illuminance::run(&LedParams::cree_xte_paper(), 1).report()),
        ),
        (
            "fig08_throughput_vs_power",
            Box::new(|| fig08_throughput_vs_power::run(&budget_sweep(), 20, 8).report()),
        ),
        (
            "fig09_swing_levels",
            Box::new(|| fig09_swing_levels::run(&budget_sweep()).report()),
        ),
        (
            "fig10_swing_cdf",
            Box::new(|| fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, 20, 10).report()),
        ),
        (
            "fig11_heuristic_verification",
            Box::new(|| fig11_heuristic_verification::run(&budget_sweep(), 20, 1.2, 11).report()),
        ),
        (
            "fig12_sync_delay",
            Box::new(|| fig12_sync_delay::run(&rate_sweep(), 10_001, 12).report()),
        ),
        (
            "tab04_sync_error",
            Box::new(|| tab04_sync_error::run(100, 4).report()),
        ),
        ("tab05_iperf", Box::new(|| tab05_iperf::run(50, 5).report())),
        (
            "fig18_scenario1",
            Box::new(|| fig18_20_scenarios::run(Scenario::One).report()),
        ),
        (
            "fig19_scenario2",
            Box::new(|| fig18_20_scenarios::run(Scenario::Two).report()),
        ),
        (
            "fig20_scenario3",
            Box::new(|| fig18_20_scenarios::run(Scenario::Three).report()),
        ),
        (
            "fig21_baselines",
            Box::new(|| fig21_baselines::run(Scenario::Two).report()),
        ),
        (
            "complexity",
            Box::new(|| complexity::run(1.2, 3, 5_000).report()),
        ),
    ];
    let extensions_at = jobs.len();
    let extensions: Vec<Job> = vec![
        (
            "ext_adaptive_kappa",
            Box::new(|| ext_adaptive_kappa::run(&[0.6, 1.2], 1.0).report()),
        ),
        (
            "ext_density",
            Box::new(|| ext_density::run(&[3, 4, 6], 1.2).report()),
        ),
        (
            "ext_orientation",
            Box::new(|| ext_orientation::run(&[0.0, 20.0, 45.0], 1.2).report()),
        ),
        (
            "ext_ofdm",
            Box::new(|| ext_ofdm::run(50_000, 0xE0FD).report()),
        ),
        (
            "ext_dimming",
            Box::new(|| ext_dimming::run(&[0.15, 0.3, 0.45, 0.6, 0.75], 0.6).report()),
        ),
        (
            "ext_blockage",
            Box::new(|| ext_blockage::run(Scenario::Three, 6, 1.2).report()),
        ),
        (
            "ext_adaptation",
            Box::new(|| ext_adaptation::run(&[0.5, 2.0], &[0.07, 2.0], 0xADA7).report()),
        ),
        (
            "ext_concurrent",
            Box::new(|| ext_concurrent::run(Scenario::Two, 1.2, 15, 0xC0C).report()),
        ),
        (
            "ext_arq",
            Box::new(|| ext_arq::run_study(&[1.0, 0.05, 0.04], 20, 0xA2).report()),
        ),
    ];
    jobs.extend(extensions);
    (jobs, extensions_at)
}

#[derive(Clone, Copy, PartialEq)]
enum TelemetryFormat {
    Json,
    Csv,
    Summary,
}

struct Options {
    jobs: Jobs,
    telemetry: Option<TelemetryFormat>,
}

fn parse_args() -> Result<Options, String> {
    let mut jobs: Option<Jobs> = None;
    let mut telemetry = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value (N or `max`)")?;
                jobs = Some(Jobs::parse(&v).ok_or(format!("bad --jobs value `{v}`"))?);
            }
            "--telemetry" => {
                let v = args.next().ok_or("--telemetry needs a format")?;
                telemetry = Some(match v.as_str() {
                    "json" => TelemetryFormat::Json,
                    "csv" => TelemetryFormat::Csv,
                    "summary" => TelemetryFormat::Summary,
                    other => return Err(format!("bad --telemetry format `{other}`")),
                });
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        jobs: jobs.unwrap_or_else(Jobs::from_env),
        telemetry,
    })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Propagate the job count to the parallel layers underneath the
    // experiments (channel sounding, allocator candidate search).
    std::env::set_var(JOBS_ENV, opts.jobs.get().to_string());

    let (set, extensions_at) = job_set();
    let registry = Registry::new();
    let pool = Pool::new(opts.jobs).with_telemetry(&registry);

    println!(
        "==== DenseVLC (CoNEXT '18) — full evaluation reproduction ({} jobs, {} workers) ====\n",
        set.len(),
        opts.jobs
    );
    let _wall = registry.span("bench.run_all_s");
    let reports = pool.map_indexed(set.len(), |i| {
        let (name, run) = &set[i];
        let _span = registry.span(&format!("bench.{name}.run_s"));
        let report = run();
        registry.counter("bench.jobs_done").inc();
        report
    });
    drop(_wall);

    for (i, report) in reports.iter().enumerate() {
        if i == extensions_at {
            println!("---- extensions (paper §9 future work) ----\n");
        }
        println!("{report}");
    }

    if let Some(format) = opts.telemetry {
        let snap = registry.snapshot();
        match format {
            TelemetryFormat::Json => println!("{}", snap.to_json()),
            TelemetryFormat::Csv => println!("{}", snap.to_csv()),
            TelemetryFormat::Summary => println!("{}", snap.summary_table()),
        }
    }
}
