//! Runs every experiment at a reduced scale and prints the full report —
//! a one-shot reproduction of the paper's evaluation section.

use densevlc::experiments::*;
use vlc_bench::{budget_sweep, rate_sweep};
use vlc_led::LedParams;
use vlc_testbed::Scenario;

fn main() {
    let led = LedParams::cree_xte_paper();
    println!("==== DenseVLC (CoNEXT '18) — full evaluation reproduction ====\n");
    println!("{}", fig04_taylor_error::run(&led, 90).report());
    println!("{}", fig05_illuminance::run(&led, 1).report());
    println!(
        "{}",
        fig08_throughput_vs_power::run(&budget_sweep(), 20, 8).report()
    );
    println!("{}", fig09_swing_levels::run(&budget_sweep()).report());
    println!(
        "{}",
        fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, 20, 10).report()
    );
    println!(
        "{}",
        fig11_heuristic_verification::run(&budget_sweep(), 20, 1.2, 11).report()
    );
    println!(
        "{}",
        fig12_sync_delay::run(&rate_sweep(), 10_001, 12).report()
    );
    println!("{}", tab04_sync_error::run(100, 4).report());
    println!("{}", tab05_iperf::run(50, 5).report());
    for s in [Scenario::One, Scenario::Two, Scenario::Three] {
        println!("{}", fig18_20_scenarios::run(s).report());
    }
    println!("{}", fig21_baselines::run(Scenario::Two).report());
    println!("{}", complexity::run(1.2, 3, 5_000).report());
    println!("---- extensions (paper §9 future work) ----\n");
    println!("{}", ext_adaptive_kappa::run(&[0.6, 1.2], 1.0).report());
    println!("{}", ext_density::run(&[3, 4, 6], 1.2).report());
    println!("{}", ext_orientation::run(&[0.0, 20.0, 45.0], 1.2).report());
    println!("{}", ext_ofdm::run(50_000, 0xE0FD).report());
    println!(
        "{}",
        ext_dimming::run(&[0.15, 0.3, 0.45, 0.6, 0.75], 0.6).report()
    );
    println!("{}", ext_blockage::run(Scenario::Three, 6, 1.2).report());
    println!(
        "{}",
        ext_adaptation::run(&[0.5, 2.0], &[0.07, 2.0], 0xADA7).report()
    );
    println!(
        "{}",
        ext_concurrent::run(Scenario::Two, 1.2, 15, 0xC0C).report()
    );
    println!(
        "{}",
        ext_arq::run_study(&[1.0, 0.05, 0.04], 20, 0xA2).report()
    );
}
