//! Runs every experiment at a reduced scale and prints the full report —
//! a one-shot reproduction of the paper's evaluation section.
//!
//! Experiments execute as a parallel job set on the `vlc-par` pool:
//! reports are collected and printed in the fixed experiment order, so the
//! output is byte-identical for any worker count (`--jobs 1` is the exact
//! legacy sequential run). `--telemetry summary` appends the per-job span
//! table (`bench.<name>.run_s`) and the pool's per-worker metrics.
//!
//! `--bench-out FILE` additionally times the run with `vlc-trace` spans and
//! writes a `densevlc-bench/1` BENCH.json (per-phase median/MAD/min/max,
//! see `docs/BENCHMARKING.md`); `--bench-repeat N` repeats the workload to
//! tighten the medians. `--trace FILE` writes the same spans as a Chrome
//! Trace Event file loadable in Perfetto. Neither flag changes the printed
//! reports: repeats beyond the first only feed the timing statistics.
//!
//! All observability flags (including `--obs-stream FILE`, which records
//! each completed experiment job as an NDJSON stream, and `--watch`, which
//! renders the monitor dashboard after the run) are parsed by the shared
//! `vlc_obs::ObsOptions` — the exact flag set `densevlc-cli` takes.

use densevlc::experiments::*;
use vlc_bench::probes::{phase_probe, phy_probe, shard_probe, sparse_probe};
use vlc_bench::{budget_sweep, rate_sweep};
use vlc_led::LedParams;
use vlc_obs::{
    monitor, parse_stream, FileSink, MemorySink, ObsOptions, ObsRecord, ObsSink, TelemetryFormat,
    OBS_SCHEMA,
};
use vlc_par::{Jobs, Pool, JOBS_ENV};
use vlc_prof::{flamegraph_from_profile, to_folded, Profile};
use vlc_telemetry::Registry;
use vlc_testbed::Scenario;
use vlc_trace::{BenchReport, Tracer};

const USAGE: &str = "\
run_all — regenerate the full DenseVLC evaluation (every table and figure)

USAGE:
    run_all [--jobs N] [--telemetry FORMAT] [--trace FILE]
            [--bench-out FILE] [--bench-repeat N]
            [--profile-out FILE] [--folded-out FILE] [--flame-out FILE]
            [--obs-stream FILE] [--watch]

OPTIONS:
    --jobs N            Worker count for the experiment job set and the
                        parallel layers underneath it (channel sounding,
                        allocator search). N = a positive integer, or
                        `max`/`0` for all available cores. Defaults to the
                        DENSEVLC_JOBS environment variable, then to all
                        cores. `--jobs 1` is the exact sequential path;
                        reports are byte-identical for every worker count.
    --telemetry FORMAT  Append run telemetry: `summary` (per-job span and
                        per-worker tables), `json`, or `csv`.
    --trace FILE        Record causal spans for the whole run and write
                        them as Chrome Trace Event JSON (open in Perfetto
                        or chrome://tracing).
    --bench-out FILE    Write per-phase timing statistics (median/MAD/
                        min/max over repeats) as BENCH.json; compare two
                        such files with `bench_compare`.
    --bench-repeat N    Repeat the workload N times (default 1) to tighten
                        the BENCH medians. Reports print once; repeats
                        beyond the first only feed the statistics.
    --profile-out FILE  Build a densevlc-prof/1 self-time profile from the
                        run's spans and write it as JSON; diff two with
                        `prof_diff`, validate with `prof_check`.
    --folded-out FILE   Write the profile as folded stacks (Brendan Gregg
                        format, loadable by any flamegraph tool).
    --flame-out FILE    Write a self-contained SVG flamegraph.
    --obs-stream FILE   Write an NDJSON observability stream: one `job`
                        record per completed experiment (in the fixed
                        presentation order) plus a run summary, validated
                        by `obs_check` and rendered by `densevlc-cli
                        monitor`.
    --watch             Render the monitor dashboard from the stream after
                        the run (with or without --obs-stream).
    -h, --help          Print this help.
";

/// One experiment: its span label and the closure that produces its report.
type Job = (&'static str, Box<dyn Fn() -> String + Send + Sync>);

/// The evaluation job set, in the paper's presentation order.
/// Returns the jobs plus the index where the §9 extensions begin.
fn job_set() -> (Vec<Job>, usize) {
    let mut jobs: Vec<Job> = vec![
        (
            "fig04_taylor_error",
            Box::new(|| fig04_taylor_error::run(&LedParams::cree_xte_paper(), 90).report()),
        ),
        (
            "fig05_illuminance",
            Box::new(|| fig05_illuminance::run(&LedParams::cree_xte_paper(), 1).report()),
        ),
        (
            "fig08_throughput_vs_power",
            Box::new(|| fig08_throughput_vs_power::run(&budget_sweep(), 20, 8).report()),
        ),
        (
            "fig09_swing_levels",
            Box::new(|| fig09_swing_levels::run(&budget_sweep()).report()),
        ),
        (
            "fig10_swing_cdf",
            Box::new(|| fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, 20, 10).report()),
        ),
        (
            "fig11_heuristic_verification",
            Box::new(|| fig11_heuristic_verification::run(&budget_sweep(), 20, 1.2, 11).report()),
        ),
        (
            "fig12_sync_delay",
            Box::new(|| fig12_sync_delay::run(&rate_sweep(), 10_001, 12).report()),
        ),
        (
            "tab04_sync_error",
            Box::new(|| tab04_sync_error::run(100, 4).report()),
        ),
        ("tab05_iperf", Box::new(|| tab05_iperf::run(50, 5).report())),
        (
            "fig18_scenario1",
            Box::new(|| fig18_20_scenarios::run(Scenario::One).report()),
        ),
        (
            "fig19_scenario2",
            Box::new(|| fig18_20_scenarios::run(Scenario::Two).report()),
        ),
        (
            "fig20_scenario3",
            Box::new(|| fig18_20_scenarios::run(Scenario::Three).report()),
        ),
        (
            "fig21_baselines",
            Box::new(|| fig21_baselines::run(Scenario::Two).report()),
        ),
        (
            "complexity",
            Box::new(|| complexity::run(1.2, 3, 5_000).report()),
        ),
    ];
    let extensions_at = jobs.len();
    let extensions: Vec<Job> = vec![
        (
            "ext_adaptive_kappa",
            Box::new(|| ext_adaptive_kappa::run(&[0.6, 1.2], 1.0).report()),
        ),
        (
            "ext_density",
            Box::new(|| ext_density::run(&[3, 4, 6], 1.2).report()),
        ),
        (
            "ext_orientation",
            Box::new(|| ext_orientation::run(&[0.0, 20.0, 45.0], 1.2).report()),
        ),
        (
            "ext_ofdm",
            Box::new(|| ext_ofdm::run(50_000, 0xE0FD).report()),
        ),
        (
            "ext_dimming",
            Box::new(|| ext_dimming::run(&[0.15, 0.3, 0.45, 0.6, 0.75], 0.6).report()),
        ),
        (
            "ext_blockage",
            Box::new(|| ext_blockage::run(Scenario::Three, 6, 1.2).report()),
        ),
        (
            "ext_adaptation",
            Box::new(|| ext_adaptation::run(&[0.5, 2.0], &[0.07, 2.0], 0xADA7).report()),
        ),
        (
            "ext_concurrent",
            Box::new(|| ext_concurrent::run(Scenario::Two, 1.2, 15, 0xC0C).report()),
        ),
        (
            "ext_arq",
            Box::new(|| ext_arq::run_study(&[1.0, 0.05, 0.04], 20, 0xA2).report()),
        ),
    ];
    jobs.extend(extensions);
    (jobs, extensions_at)
}

struct Options {
    jobs: Jobs,
    obs: ObsOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        std::process::exit(0);
    }
    // The shared observability parser consumes its flags; only run_all's
    // own arguments may remain.
    let obs = ObsOptions::parse(&mut argv)?;
    let mut jobs: Option<Jobs> = None;
    let mut rest = argv.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = rest.next().ok_or("--jobs needs a value (N or `max`)")?;
                jobs = Some(Jobs::parse(&v).ok_or(format!("bad --jobs value `{v}`"))?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        jobs: jobs.unwrap_or_else(Jobs::from_env),
        obs,
    })
}

fn write_file(path: &str, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => {
            eprintln!("error: cannot write {what} to {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Propagate the job count to the parallel layers underneath the
    // experiments (channel sounding, allocator candidate search).
    std::env::set_var(JOBS_ENV, opts.jobs.get().to_string());

    let (set, extensions_at) = job_set();
    let registry = Registry::new();
    let pool = Pool::new(opts.jobs).with_telemetry(&registry);
    let timing = opts.obs.wants_tracer();
    let tracer = if timing {
        Tracer::new()
    } else {
        Tracer::noop()
    };
    let repeats = if timing { opts.obs.bench_repeat } else { 1 };

    println!(
        "==== DenseVLC (CoNEXT '18) — full evaluation reproduction ({} jobs, {} workers) ====\n",
        set.len(),
        opts.jobs
    );
    let _wall = registry.span("bench.run_all_s");
    let mut first_reports: Option<Vec<String>> = None;
    for _rep in 0..repeats {
        let root = tracer.root("bench.run_all");
        root.attr("jobs", &opts.jobs.get().to_string());
        let reports = pool.map_indexed(set.len(), |i| {
            let (name, run) = &set[i];
            let trace_span = root.child_indexed(&format!("experiment.{name}"), i);
            let _span = registry.span(&format!("bench.{name}.run_s"));
            let report = run();
            registry.counter("bench.jobs_done").inc();
            drop(trace_span);
            report
        });
        drop(root);
        if timing {
            // The probes share the experiment pool — one `par.pool.created`
            // for the whole run (pinned by `tests/pool_hoist.rs`).
            phase_probe(&tracer, &pool);
            phy_probe(&tracer);
            sparse_probe(&tracer, &pool);
            shard_probe(&tracer, &pool);
        }
        first_reports.get_or_insert(reports);
    }
    drop(_wall);

    let reports = first_reports.expect("at least one repeat ran");
    for (i, report) in reports.iter().enumerate() {
        if i == extensions_at {
            println!("---- extensions (paper §9 future work) ----\n");
        }
        println!("{report}");
    }

    // Surface span-ring health before snapshotting, so the summary
    // exporter's rings line can report it (see export::summary).
    if timing {
        registry
            .counter("trace.spans_dropped")
            .add(tracer.snapshot().dropped);
    }

    if let Some(format) = opts.obs.telemetry {
        let snap = registry.snapshot();
        match format {
            TelemetryFormat::Json => println!("{}", snap.to_json()),
            TelemetryFormat::Csv => println!("{}", snap.to_csv()),
            TelemetryFormat::Summary => println!("{}", snap.summary_table()),
        }
    }

    // Observability stream: jobs complete in pool order, but records are
    // emitted in the fixed presentation order after collection, so the
    // stream is byte-identical for any worker count (the same contract
    // the printed reports honor).
    if opts.obs.wants_stream() {
        let snap = registry.snapshot();
        let mut records = vec![ObsRecord::Meta {
            schema: OBS_SCHEMA.into(),
            run: "run_all".into(),
            tick_s: 0.0,
            n_rx: 0,
            every: opts.obs.obs_every,
        }];
        for (i, (name, _)) in set.iter().enumerate() {
            records.push(ObsRecord::Job {
                index: i as u64,
                name: (*name).to_string(),
            });
        }
        // A profiled run digests its profile into the stream, ahead of
        // the summary trailer (obs_check requires summary-last).
        if timing && opts.obs.wants_profile() {
            let profile = Profile::from_snapshot(&tracer.snapshot(), opts.jobs.get());
            records.push(ObsRecord::profile_summary(&profile));
        }
        records.push(ObsRecord::Summary {
            ticks: 0,
            mean_system_bps: 0.0,
            alerts_fired: 0,
            alerts_cleared: 0,
            events_dropped: snap.events_dropped,
            spans_dropped: if timing { tracer.snapshot().dropped } else { 0 },
        });
        let mem = MemorySink::new();
        let mut sink: Box<dyn ObsSink> = match &opts.obs.obs_stream {
            Some(path) => match FileSink::create(std::path::Path::new(path)) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot create stream file {path}: {e}");
                    std::process::exit(2);
                }
            },
            None => Box::new(mem.clone()),
        };
        for r in &records {
            let _ = sink.write_line(&r.to_line());
        }
        let _ = sink.flush();
        drop(sink);
        if let Some(path) = &opts.obs.obs_stream {
            eprintln!("wrote observability stream to {path}");
        }
        if opts.obs.watch {
            let text = match &opts.obs.obs_stream {
                Some(path) => std::fs::read_to_string(path).unwrap_or_default(),
                None => mem.text(),
            };
            match parse_stream(&text) {
                Ok(parsed) => print!("\n{}", monitor::render(&parsed)),
                Err(e) => eprintln!("error: stream failed validation: {e}"),
            }
        }
    }

    if timing {
        let snapshot = tracer.snapshot();
        if let Some(path) = &opts.obs.bench_out {
            let report = BenchReport::from_snapshot(&snapshot, opts.jobs.get(), repeats);
            write_file(path, &report.to_json(), "BENCH.json");
        }
        if let Some(path) = &opts.obs.trace {
            write_file(path, &snapshot.to_chrome_json(), "Chrome trace");
        }
        if opts.obs.wants_profile() {
            let profile = Profile::from_snapshot(&snapshot, opts.jobs.get());
            if let Some(path) = &opts.obs.profile_out {
                write_file(path, &profile.to_json(), "self-time profile");
            }
            if let Some(path) = &opts.obs.folded_out {
                write_file(path, &to_folded(&profile), "folded stacks");
            }
            if let Some(path) = &opts.obs.flame_out {
                match flamegraph_from_profile("run_all", &profile) {
                    Ok(svg) => write_file(path, &svg, "flamegraph"),
                    Err(e) => {
                        eprintln!("error: flamegraph rendering failed: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
    }
}
