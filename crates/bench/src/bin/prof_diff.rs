//! `prof_diff` — ranked self-time deltas between two profiles.
//!
//! ```text
//! prof_diff <old.profile.json> <new.profile.json> [--top N] [--regressed-only]
//! ```
//!
//! Both inputs are `densevlc-prof/1` documents (from `run_all
//! --profile-out` or `densevlc-cli profile`). Prints the outer join of
//! the two profiles' call paths ranked by |self-time delta| — the
//! "where did the time go" view `bench_gate --explain` builds on. Exit
//! codes: 0 on success (even with regressions; this is an analysis tool,
//! not a gate), 2 on usage or input errors.

use vlc_prof::{Profile, ProfileDiff};

const USAGE: &str = "\
usage: prof_diff <old.profile.json> <new.profile.json> [--top N] [--regressed-only]
";

fn load(path: &str) -> Profile {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match Profile::from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {path} is not a valid profile: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut top = 20usize;
    let mut regressed_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: --top needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--regressed-only" => regressed_only = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other if !other.starts_with("--") => paths.push(arg),
            other => {
                eprintln!("error: unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };

    let old = load(old_path);
    let new = load(new_path);
    let diff = ProfileDiff::between(&old, &new);
    println!(
        "prof_diff: {} paths old, {} new, {} joined ({} vs {})",
        old.nodes.len(),
        new.nodes.len(),
        diff.entries.len(),
        old_path,
        new_path
    );
    if regressed_only {
        let mut out = String::new();
        let mut shown = 0usize;
        for e in diff.regressed().take(top) {
            out.push_str(&format!(
                "  {:>+12.6}s self ({:.6}s -> {:.6}s, allocs {:+})  {}\n",
                e.delta_s(),
                e.old_self_s,
                e.new_self_s,
                e.alloc_delta,
                e.path
            ));
            shown += 1;
        }
        if shown == 0 {
            println!("  no path got slower");
        } else {
            print!("{out}");
        }
    } else {
        print!("{}", diff.table(top));
    }
}
