//! Extension: all beamspots transmitting concurrently, per-RX goodput/PER.

use densevlc::experiments::ext_concurrent;
use vlc_testbed::Scenario;

fn main() {
    for s in [Scenario::One, Scenario::Two, Scenario::Three] {
        print!("{}", ext_concurrent::run(s, 1.2, 30, 0xC0C).report());
        println!();
    }
}
