//! Extension: ARQ delivery/goodput across link attenuations.

use densevlc::experiments::ext_arq;

fn main() {
    let ext = ext_arq::run_study(&[1.0, 0.2, 0.08, 0.05, 0.045, 0.04], 40, 0xA2);
    print!("{}", ext.report());
}
