//! PHY fast-path micro-benchmark: the scalar `Vec<Chip>` reference against
//! the bit-packed zero-alloc pipeline, stage by stage.
//!
//! Runs the same deterministic frame roundtrip — frame encode → Manchester
//! chips → waveform render → mid-chip slice → Manchester decode →
//! Reed–Solomon frame decode — through both paths and prints median
//! per-frame times plus the overall speedup. `cargo phy-bench` is the
//! release-mode alias. `--min-speedup X` exits non-zero when the packed
//! roundtrip is less than X times faster than the scalar one (the PR gate
//! uses 2.0); `run_all --bench-out` records the same workload as
//! `bench.phy_probe` rows for the BENCH.json history.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlc_phy::manchester::{manchester_decode, manchester_encode};
use vlc_phy::packed::PackedChips;
use vlc_phy::rs::RsCodec;
use vlc_phy::waveform::{
    render, render_packed_into, slice_chips, slice_chips_packed_into, WaveformConfig,
};
use vlc_phy::{Frame, FrameHeader, ReedSolomon};

const USAGE: &str = "\
phy_bench — packed-vs-scalar PHY fast-path micro-benchmark

USAGE:
    phy_bench [--frames N] [--reps N] [--min-speedup X]

OPTIONS:
    --frames N       Frames per timed repetition (default 32).
    --reps N         Timed repetitions per row; medians are reported
                     (default 15).
    --min-speedup X  Exit non-zero unless packed roundtrip is at least X
                     times faster than scalar (default: report only).
    -h, --help       Print this help.
";

struct Options {
    frames: usize,
    reps: usize,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Options, String> {
    let mut frames = 32usize;
    let mut reps = 15usize;
    let mut min_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--frames" => {
                let v = args.next().ok_or("--frames needs a count")?;
                frames = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --frames value `{v}`"))?;
            }
            "--reps" => {
                let v = args.next().ok_or("--reps needs a count")?;
                reps = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --reps value `{v}`"))?;
            }
            "--min-speedup" => {
                let v = args.next().ok_or("--min-speedup needs a ratio")?;
                min_speedup = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|&x| x > 0.0)
                        .ok_or(format!("bad --min-speedup value `{v}`"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        frames,
        reps,
        min_speedup,
    })
}

/// Median of the per-rep times, in seconds.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Times `reps` repetitions of `work` and returns the median seconds.
fn time_reps(reps: usize, mut work: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        work();
        samples.push(t0.elapsed().as_secs_f64());
    }
    median(&mut samples)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let cfg = WaveformConfig::paper();
    let rs = ReedSolomon::paper();
    let header = FrameHeader {
        dst: 1,
        src: 0,
        protocol: 1,
    };
    let mut rng = StdRng::seed_from_u64(0x9A7);
    let payloads: Vec<Vec<u8>> = (0..opts.frames)
        .map(|_| (0..200).map(|_| rng.gen()).collect())
        .collect();

    // Scalar reference roundtrip.
    let scalar_s = time_reps(opts.reps, || {
        for payload in &payloads {
            let frame = Frame::new(u64::MAX, header, payload.clone());
            let bytes = frame.to_bytes(&rs);
            let chips = manchester_encode(&bytes);
            let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
            let wave = render(&chips, &cfg, 1.0, 0.0, n_samples);
            let sliced = slice_chips(&wave, &cfg, 0, chips.len()).expect("clean waveform");
            let decoded = manchester_decode(&sliced).expect("valid stream");
            Frame::from_bytes(&decoded, &rs).expect("clean frame");
        }
    });

    // Packed roundtrip through warmed reusable buffers.
    let mut codec = RsCodec::paper();
    let mut wire = Vec::new();
    let mut chips = PackedChips::new();
    let mut wave = Vec::new();
    let mut sliced = PackedChips::new();
    let mut rx_bytes = Vec::new();
    let mut coded = Vec::new();
    let mut payload_rx = Vec::new();
    let mut packed_cycle = |payload: &[u8]| {
        wire.clear();
        Frame::encode_parts_into(u64::MAX, &header, payload, &mut codec, &mut wire);
        chips.clear();
        chips.encode_bytes(&wire);
        let n_samples = (chips.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
        render_packed_into(&chips, &cfg, 1.0, 0.0, n_samples, &mut wave);
        assert!(slice_chips_packed_into(
            &wave,
            &cfg,
            0,
            chips.len(),
            &mut sliced
        ));
        assert!(sliced.decode_bytes_into(&mut rx_bytes));
        Frame::decode_parts_into(&rx_bytes, &mut codec, &mut coded, &mut payload_rx)
            .expect("clean frame");
    };
    packed_cycle(&payloads[0]);
    let packed_s = time_reps(opts.reps, || {
        for payload in &payloads {
            packed_cycle(payload);
        }
    });

    // Isolated render/slice stages (the waveform half of the roundtrip).
    let bytes0 = {
        let frame = Frame::new(u64::MAX, header, payloads[0].clone());
        frame.to_bytes(&rs)
    };
    let chips0 = manchester_encode(&bytes0);
    let n_samples0 = (chips0.len() as f64 * cfg.samples_per_chip()).ceil() as usize;
    let scalar_render_s = time_reps(opts.reps, || {
        for _ in 0..opts.frames {
            let w = render(&chips0, &cfg, 1.0, 0.0, n_samples0);
            std::hint::black_box(&w);
        }
    });
    let mut packed0 = PackedChips::new();
    packed0.encode_bytes(&bytes0);
    let packed_render_s = time_reps(opts.reps, || {
        for _ in 0..opts.frames {
            render_packed_into(&packed0, &cfg, 1.0, 0.0, n_samples0, &mut wave);
            std::hint::black_box(&wave);
        }
    });
    render_packed_into(&packed0, &cfg, 1.0, 0.0, n_samples0, &mut wave);
    let scalar_slice_s = time_reps(opts.reps, || {
        for _ in 0..opts.frames {
            let s = slice_chips(&wave, &cfg, 0, chips0.len()).expect("clean waveform");
            std::hint::black_box(&s);
        }
    });
    let packed_slice_s = time_reps(opts.reps, || {
        for _ in 0..opts.frames {
            assert!(slice_chips_packed_into(
                &wave,
                &cfg,
                0,
                chips0.len(),
                &mut sliced
            ));
        }
    });

    // Isolated packed stages over the same frame count.
    let manchester_encode_s = time_reps(opts.reps, || {
        for payload in &payloads {
            chips.clear();
            chips.encode_bytes(payload);
        }
    });
    chips.clear();
    chips.encode_bytes(&payloads[0]);
    let manchester_decode_s = time_reps(opts.reps, || {
        for _ in 0..opts.frames {
            assert!(chips.decode_bytes_into(&mut rx_bytes));
        }
    });
    let rs_block_s = time_reps(opts.reps, || {
        for (f, payload) in payloads.iter().enumerate() {
            coded.clear();
            codec.encode_into(payload, &mut coded);
            for e in 0..codec.correction_capacity() {
                let pos = (f * 31 + e * 17) % coded.len();
                coded[pos] ^= 0x5a;
            }
            codec.decode_in_place(&mut coded).expect("correctable");
        }
    });

    let per_frame = |s: f64| 1e6 * s / opts.frames as f64;
    let speedup = scalar_s / packed_s;
    println!("==== PHY fast path: packed vs scalar ====");
    println!(
        "workload: {} frames x 200-byte payload, {} reps, medians\n",
        opts.frames, opts.reps
    );
    println!("{:<28} {:>12}", "row", "us/frame");
    println!("{:<28} {:>12.2}", "roundtrip scalar", per_frame(scalar_s));
    println!("{:<28} {:>12.2}", "roundtrip packed", per_frame(packed_s));
    println!(
        "{:<28} {:>12.2}",
        "render scalar",
        per_frame(scalar_render_s)
    );
    println!(
        "{:<28} {:>12.2}",
        "render packed",
        per_frame(packed_render_s)
    );
    println!("{:<28} {:>12.2}", "slice scalar", per_frame(scalar_slice_s));
    println!("{:<28} {:>12.2}", "slice packed", per_frame(packed_slice_s));
    println!(
        "{:<28} {:>12.2}",
        "packed manchester encode",
        per_frame(manchester_encode_s)
    );
    println!(
        "{:<28} {:>12.2}",
        "packed manchester decode",
        per_frame(manchester_decode_s)
    );
    println!(
        "{:<28} {:>12.2}",
        "rs block (t=8 correction)",
        per_frame(rs_block_s)
    );
    println!("\nroundtrip speedup: {speedup:.2}x");

    if let Some(min) = opts.min_speedup {
        if speedup < min {
            eprintln!("FAIL: packed roundtrip speedup {speedup:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        println!("OK: speedup {speedup:.2}x >= required {min:.2}x");
    }
}
