//! Regenerates Fig. 20: heuristic evaluation in Scenario 3.

use densevlc::experiments::fig18_20_scenarios;
use vlc_testbed::Scenario;

fn main() {
    let res = fig18_20_scenarios::run(Scenario::Three);
    print!("{}", res.report());
}
