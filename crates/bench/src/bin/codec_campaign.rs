//! Sweeps every registered codec stack across payload scenarios and
//! calibrated noise profiles, reporting a PER-vs-overhead frontier.
//!
//! Cells run as a parallel job set on the `vlc-par` pool; the report is
//! assembled in fixed cell order, so the emitted JSON is byte-identical
//! for any `--jobs` value (`--jobs 1` is the exact sequential run). The
//! reduced sweep (`--reduced`) is what CI runs and what the golden
//! snapshot `tests/golden/codec_campaign.json` pins.
//!
//! All observability flags are parsed by the shared `vlc_obs::ObsOptions`;
//! `--obs-stream FILE` records one `job` record per sweep cell (in cell
//! order) plus a run summary, validated by `obs_check`.

use vlc_bench::codec_lab::{CampaignConfig, CampaignReport};
use vlc_obs::{
    monitor, parse_stream, FileSink, MemorySink, ObsOptions, ObsRecord, ObsSink, OBS_SCHEMA,
};
use vlc_par::{Jobs, Pool, JOBS_ENV};

const USAGE: &str = "\
codec_campaign — sweep FEC codec stacks across noise profiles

USAGE:
    codec_campaign [--jobs N] [--frames N] [--reduced] [--out FILE]
                   [--obs-stream FILE] [--watch]

OPTIONS:
    --jobs N            Worker count for the sweep cells. N = a positive
                        integer, or `max`/`0` for all available cores.
                        Defaults to the DENSEVLC_JOBS environment variable,
                        then to all cores. The report is byte-identical for
                        every worker count.
    --frames N          Frames per sweep cell (overrides the campaign's
                        default).
    --reduced           Run the reduced CI sweep (one scenario, five
                        profiles) instead of the full campaign.
    --out FILE          Write the JSON report to FILE instead of stdout.
    --obs-stream FILE   Write an NDJSON observability stream: one `job`
                        record per sweep cell plus a run summary, validated
                        by `obs_check`.
    --watch             Render the monitor dashboard from the stream after
                        the run.
    -h, --help          Print this help.
";

struct Options {
    jobs: Jobs,
    frames: Option<usize>,
    reduced: bool,
    out: Option<String>,
    obs: ObsOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        std::process::exit(0);
    }
    let obs = ObsOptions::parse(&mut argv)?;
    let mut opts = Options {
        jobs: Jobs::from_env(),
        frames: None,
        reduced: false,
        out: None,
        obs,
    };
    let mut rest = argv.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = rest.next().ok_or("--jobs needs a value (N or `max`)")?;
                opts.jobs = Jobs::parse(&v).ok_or(format!("bad --jobs value `{v}`"))?;
            }
            "--frames" => {
                let v = rest.next().ok_or("--frames needs a value")?;
                opts.frames = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or(format!("bad --frames value `{v}`"))?,
                );
            }
            "--reduced" => opts.reduced = true,
            "--out" => {
                opts.out = Some(rest.next().ok_or("--out needs a file path")?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    std::env::set_var(JOBS_ENV, opts.jobs.get().to_string());

    let mut cfg = if opts.reduced {
        CampaignConfig::reduced()
    } else {
        CampaignConfig::paper()
    };
    if let Some(frames) = opts.frames {
        cfg.frames = frames;
    }

    let pool = Pool::new(opts.jobs);
    let report = CampaignReport::run(&cfg, &pool);
    let json = report.to_json();

    match &opts.out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote campaign report to {path}"),
            Err(e) => {
                eprintln!("error: cannot write report to {path}: {e}");
                std::process::exit(2);
            }
        },
        None => print!("{json}"),
    }

    // Observability stream: one `job` record per sweep cell, in the fixed
    // cell order — byte-identical for any worker count.
    if opts.obs.wants_stream() {
        let mut records = vec![ObsRecord::Meta {
            schema: OBS_SCHEMA.into(),
            run: "codec_campaign".into(),
            tick_s: 0.0,
            n_rx: 0,
            every: opts.obs.obs_every,
        }];
        for idx in 0..cfg.n_cells() {
            records.push(ObsRecord::Job {
                index: idx as u64,
                name: cfg.cell_label(idx),
            });
        }
        records.push(ObsRecord::Summary {
            ticks: 0,
            mean_system_bps: 0.0,
            alerts_fired: 0,
            alerts_cleared: 0,
            events_dropped: 0,
            spans_dropped: 0,
        });
        let mem = MemorySink::new();
        let mut sink: Box<dyn ObsSink> = match &opts.obs.obs_stream {
            Some(path) => match FileSink::create(std::path::Path::new(path)) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot create stream file {path}: {e}");
                    std::process::exit(2);
                }
            },
            None => Box::new(mem.clone()),
        };
        for r in &records {
            let _ = sink.write_line(&r.to_line());
        }
        let _ = sink.flush();
        drop(sink);
        if let Some(path) = &opts.obs.obs_stream {
            eprintln!("wrote observability stream to {path}");
        }
        if opts.obs.watch {
            let text = match &opts.obs.obs_stream {
                Some(path) => std::fs::read_to_string(path).unwrap_or_default(),
                None => mem.text(),
            };
            match parse_stream(&text) {
                Ok(parsed) => print!("\n{}", monitor::render(&parsed)),
                Err(e) => eprintln!("error: stream failed validation: {e}"),
            }
        }
    }
}
