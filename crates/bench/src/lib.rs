//! Shared plumbing for the DenseVLC benchmark harness.
//!
//! Each paper artifact (table or figure) has a binary under `src/bin/` that
//! regenerates it and prints paper-comparable rows; the Criterion benches
//! under `benches/` time the hot paths (allocators, PHY, channel) and run
//! scaled-down experiment sweeps plus the design-choice ablations called
//! out in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec_lab;
pub mod probes;

/// Standard sweep of power budgets used by the figure binaries, in watts:
/// 0.15 W steps up to the full-array 2.7 W.
pub fn budget_sweep() -> Vec<f64> {
    (1..=18).map(|i| 0.15 * i as f64).collect()
}

/// Symbol-rate sweep for the Fig. 12 binary, in symbols/s.
pub fn rate_sweep() -> Vec<f64> {
    vec![1e3, 2.5e3, 5e3, 10e3, 14.28e3, 20e3, 30e3, 40e3, 50e3, 60e3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_spans_the_paper_axis() {
        let b = budget_sweep();
        assert_eq!(b.len(), 18);
        assert!((b[0] - 0.15).abs() < 1e-12);
        assert!((b.last().unwrap() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn rate_sweep_covers_fig12_range() {
        let r = rate_sweep();
        assert_eq!(r.first().copied(), Some(1e3));
        assert_eq!(r.last().copied(), Some(60e3));
        assert!(r.contains(&14.28e3));
    }
}
