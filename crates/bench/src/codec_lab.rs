//! The FEC codec lab: calibrated noise injectors and the campaign engine
//! behind the `codec_campaign` binary.
//!
//! The lab sweeps every stack in [`vlc_phy::codec::registry`] across
//! payload scenarios and noise profiles, measuring packet error rate
//! against coding overhead. Three injector families model the channel
//! impairments the paper's PHY faces:
//!
//! * **AWGN** — independent bit flips at probability `Q(√(2·SNR))`, the
//!   hard-decision OOK error rate at a given per-bit SNR (the Q-function
//!   uses the Abramowitz–Stegun 7.1.26 erfc approximation, calibrated by
//!   the tests below);
//! * **burst erasures** — runs of consecutive corrupted bytes (an occluder
//!   sweeping the beam, a mains impulse), with configurable start rate and
//!   burst length, non-overlapping;
//! * **truncation** — chip deletion at the slicer: the tail of the coded
//!   stream goes missing, which every stack must turn into a *detected*
//!   loss.
//!
//! Every cell of the sweep runs as one `vlc-par` job whose result is a
//! pure function of the cell index (own RNG, own stack set), so the
//! campaign report is byte-identical for any `DENSEVLC_JOBS` — the PR 2
//! determinism contract. The report renders with exact (`{:?}`) float
//! formatting and a fixed key order, making it golden-snapshot stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use vlc_par::Pool;
use vlc_phy::codec::registry;

/// The Gaussian tail function Q(x) = P(N(0,1) > x), via the
/// Abramowitz–Stegun 7.1.26 polynomial approximation of erfc (absolute
/// error < 1.5e-7 — see the calibration tests).
pub fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    // erfc(z) for z ≥ 0, A&S 7.1.26.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc = poly * (-z * z).exp();
    0.5 * erfc
}

/// Hard-decision OOK bit-error probability at `snr_db` per-bit SNR:
/// `Q(√(2·snr))`.
pub fn awgn_flip_probability(snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    q_function((2.0 * snr).sqrt())
}

/// A calibrated channel impairment applied to a coded byte stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseProfile {
    /// No impairment — the floor of every PER curve.
    Clean,
    /// Independent bit flips at the hard-decision OOK error rate for the
    /// given per-bit SNR.
    Awgn {
        /// Per-bit SNR in dB.
        snr_db: f64,
    },
    /// Non-overlapping byte bursts: each byte position starts a burst with
    /// probability `rate`; a burst XORs `len` consecutive bytes with
    /// fresh nonzero patterns, then the scan skips past it.
    Burst {
        /// Per-byte burst start probability.
        rate: f64,
        /// Burst length in bytes.
        len: usize,
    },
    /// Chip deletion at the slicer: with probability `prob` the stream
    /// loses its tail, keeping a uniform fraction in
    /// `[min_keep, 1)` of its bytes.
    Truncate {
        /// Per-frame truncation probability.
        prob: f64,
        /// Minimum kept fraction of the coded stream.
        min_keep: f64,
    },
}

impl NoiseProfile {
    /// Stable identifier used in reports and obs streams.
    pub fn label(&self) -> String {
        match self {
            NoiseProfile::Clean => "clean".to_string(),
            NoiseProfile::Awgn { snr_db } => format!("awgn_snr{snr_db:?}dB"),
            NoiseProfile::Burst { rate, len } => format!("burst_p{rate:?}_l{len}"),
            NoiseProfile::Truncate { prob, min_keep } => {
                format!("trunc_p{prob:?}_k{min_keep:?}")
            }
        }
    }

    /// Applies the impairment to `coded` in place, drawing from `rng`.
    pub fn apply(&self, coded: &mut Vec<u8>, rng: &mut StdRng) {
        match *self {
            NoiseProfile::Clean => {}
            NoiseProfile::Awgn { snr_db } => {
                let p = awgn_flip_probability(snr_db);
                for byte in coded.iter_mut() {
                    for bit in 0..8 {
                        if rng.gen_bool(p) {
                            *byte ^= 1 << bit;
                        }
                    }
                }
            }
            NoiseProfile::Burst { rate, len } => {
                let mut i = 0;
                while i < coded.len() {
                    if rng.gen_bool(rate) {
                        let end = (i + len).min(coded.len());
                        for b in &mut coded[i..end] {
                            *b ^= rng.gen_range(1..=255u8);
                        }
                        i = end;
                    } else {
                        i += 1;
                    }
                }
            }
            NoiseProfile::Truncate { prob, min_keep } => {
                if !coded.is_empty() && rng.gen_bool(prob) {
                    let floor = (coded.len() as f64 * min_keep) as usize;
                    let keep = rng.gen_range(floor..coded.len());
                    coded.truncate(keep);
                }
            }
        }
    }
}

/// One payload regime of the sweep.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable identifier used in reports and obs streams.
    pub name: &'static str,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// The full sweep definition. Cell order is fixed — stacks outermost, then
/// scenarios, then profiles — and every derived artifact (report rows, obs
/// `job` records, frontier groups) follows it.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed; each cell derives its own stream from it.
    pub seed: u64,
    /// Frames per cell.
    pub frames: usize,
    /// Payload regimes.
    pub scenarios: Vec<ScenarioSpec>,
    /// Channel impairments.
    pub profiles: Vec<NoiseProfile>,
}

impl CampaignConfig {
    /// The full campaign: three payload regimes spanning the paper's frame
    /// sizes, an SNR sweep around the OOK waterfall, burst and truncation
    /// arms.
    pub fn paper() -> Self {
        CampaignConfig {
            seed: 0xC0DEC,
            frames: 64,
            scenarios: vec![
                ScenarioSpec {
                    name: "short",
                    payload_len: 40,
                },
                ScenarioSpec {
                    name: "paper",
                    payload_len: 200,
                },
                ScenarioSpec {
                    name: "jumbo",
                    payload_len: 480,
                },
            ],
            profiles: vec![
                NoiseProfile::Clean,
                NoiseProfile::Awgn { snr_db: 8.0 },
                NoiseProfile::Awgn { snr_db: 6.0 },
                NoiseProfile::Awgn { snr_db: 5.0 },
                NoiseProfile::Awgn { snr_db: 4.0 },
                NoiseProfile::Burst {
                    rate: 0.002,
                    len: 12,
                },
                NoiseProfile::Burst {
                    rate: 0.004,
                    len: 40,
                },
                NoiseProfile::Truncate {
                    prob: 0.25,
                    min_keep: 0.9,
                },
            ],
        }
    }

    /// The reduced sweep used by CI and the golden snapshot: one scenario,
    /// five profiles, 20 frames per cell.
    pub fn reduced() -> Self {
        CampaignConfig {
            seed: 0xC0DEC,
            frames: 20,
            scenarios: vec![ScenarioSpec {
                name: "paper",
                payload_len: 120,
            }],
            profiles: vec![
                NoiseProfile::Clean,
                NoiseProfile::Awgn { snr_db: 6.0 },
                NoiseProfile::Awgn { snr_db: 4.0 },
                NoiseProfile::Burst {
                    rate: 0.004,
                    len: 12,
                },
                NoiseProfile::Truncate {
                    prob: 0.25,
                    min_keep: 0.9,
                },
            ],
        }
    }

    /// Total number of sweep cells.
    pub fn n_cells(&self) -> usize {
        registry().len() * self.scenarios.len() * self.profiles.len()
    }

    /// The `(stack, scenario, profile)` index triple of cell `idx`.
    fn cell_coords(&self, idx: usize) -> (usize, usize, usize) {
        let per_stack = self.scenarios.len() * self.profiles.len();
        (
            idx / per_stack,
            (idx % per_stack) / self.profiles.len(),
            idx % self.profiles.len(),
        )
    }

    /// Stable label of cell `idx` (`stack/scenario/profile`), used for the
    /// obs stream's `job` records.
    pub fn cell_label(&self, idx: usize) -> String {
        let (s, sc, p) = self.cell_coords(idx);
        format!(
            "{}/{}/{}",
            registry()[s].name(),
            self.scenarios[sc].name,
            self.profiles[p].label()
        )
    }
}

/// Measured outcome of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Stack name (from the registry).
    pub stack: String,
    /// Scenario name.
    pub scenario: String,
    /// Noise profile label.
    pub profile: String,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Coding overhead as extra bytes per payload byte.
    pub overhead: f64,
    /// Frames attempted.
    pub frames: usize,
    /// Frames recovered exactly.
    pub frames_ok: usize,
    /// Frames rejected by the stack (detected losses).
    pub detected: usize,
    /// Frames decoded to a *wrong* payload (silent corruption — the
    /// failure mode the CRC layers exist to eliminate).
    pub wrong_payload: usize,
    /// Total corrected symbols across ok frames, in the stack's native
    /// unit (bytes for RS, channel bits for convolutional).
    pub corrected: u64,
    /// Packet error rate: `1 - frames_ok / frames`.
    pub per: f64,
}

/// Runs one cell: `frames` random payloads through one stack under one
/// noise profile. Pure function of `(cfg, idx)` — the determinism contract
/// rests on this.
fn run_cell(cfg: &CampaignConfig, idx: usize) -> CellReport {
    let (s, sc, p) = cfg.cell_coords(idx);
    let mut stack = registry().swap_remove(s);
    let scenario = &cfg.scenarios[sc];
    let profile = &cfg.profiles[p];
    let mut rng = StdRng::seed_from_u64(vlc_par::cell_seed(cfg.seed, idx as u64));

    let payload_len = scenario.payload_len;
    let mut payload = vec![0u8; payload_len];
    let mut coded = Vec::new();
    let mut out = Vec::new();
    let (mut ok, mut detected, mut wrong, mut corrected_total) = (0usize, 0usize, 0usize, 0u64);
    for _ in 0..cfg.frames {
        for b in payload.iter_mut() {
            *b = rng.gen();
        }
        coded.clear();
        stack.encode_into(&payload, &mut coded);
        profile.apply(&mut coded, &mut rng);
        out.clear();
        match stack.decode_into(&coded, payload_len, &mut out) {
            Ok(corrected) if out == payload => {
                ok += 1;
                corrected_total += corrected as u64;
            }
            Ok(_) => wrong += 1,
            Err(_) => detected += 1,
        }
    }
    CellReport {
        stack: stack.name().to_string(),
        scenario: scenario.name.to_string(),
        profile: profile.label(),
        payload_len,
        overhead: (stack.encoded_len(payload_len) - payload_len) as f64 / payload_len as f64,
        frames: cfg.frames,
        frames_ok: ok,
        detected,
        wrong_payload: wrong,
        corrected: corrected_total,
        per: 1.0 - ok as f64 / cfg.frames as f64,
    }
}

/// The completed sweep, in fixed cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Base seed the sweep ran with.
    pub seed: u64,
    /// Frames per cell.
    pub frames: usize,
    /// One row per sweep cell, stacks outermost.
    pub cells: Vec<CellReport>,
}

/// One point on a PER-vs-overhead frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Stack name.
    pub stack: String,
    /// Extra bytes per payload byte.
    pub overhead: f64,
    /// Packet error rate at that overhead.
    pub per: f64,
}

impl CampaignReport {
    /// Runs the whole sweep on `pool`. Cells execute in parallel but the
    /// report is assembled in cell-index order, so the result — and its
    /// JSON rendering — is byte-identical for any worker count.
    pub fn run(cfg: &CampaignConfig, pool: &Pool) -> Self {
        let cells = pool.map_indexed(cfg.n_cells(), |idx| run_cell(cfg, idx));
        CampaignReport {
            seed: cfg.seed,
            frames: cfg.frames,
            cells,
        }
    }

    /// The Pareto frontier of `(overhead, per)` for one
    /// `(scenario, profile)` slice: stacks sorted by overhead, keeping
    /// each point that strictly improves PER over everything cheaper. A
    /// stack that pays more overhead for no PER gain is dominated and
    /// dropped.
    pub fn frontier(&self, scenario: &str, profile: &str) -> Vec<FrontierPoint> {
        let mut slice: Vec<&CellReport> = self
            .cells
            .iter()
            .filter(|c| c.scenario == scenario && c.profile == profile)
            .collect();
        slice.sort_by(|a, b| {
            a.overhead
                .partial_cmp(&b.overhead)
                .unwrap()
                .then(a.per.partial_cmp(&b.per).unwrap())
                .then(a.stack.cmp(&b.stack))
        });
        let mut points = Vec::new();
        let mut best_per = f64::INFINITY;
        for c in slice {
            if c.per < best_per {
                best_per = c.per;
                points.push(FrontierPoint {
                    stack: c.stack.clone(),
                    overhead: c.overhead,
                    per: c.per,
                });
            }
        }
        points
    }

    /// Every `(scenario, profile)` pair present, in cell order.
    pub fn groups(&self) -> Vec<(String, String)> {
        let mut groups = Vec::new();
        for c in &self.cells {
            let g = (c.scenario.clone(), c.profile.clone());
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        groups
    }

    /// Renders the report as `densevlc-codec-campaign/1` JSON: fixed key
    /// order, exact (`{:?}`) float formatting, trailing newline — suitable
    /// for byte comparison and golden snapshots. The worker count is
    /// deliberately absent: the rendering must not depend on it.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "{{\"schema\":\"densevlc-codec-campaign/1\",\"seed\":{},\"frames\":{},\"cells\":[",
            self.seed, self.frames
        )
        .unwrap();
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"stack\":\"{}\",\"scenario\":\"{}\",\"profile\":\"{}\",\
                 \"payload_len\":{},\"overhead\":{},\"frames\":{},\"frames_ok\":{},\
                 \"detected\":{},\"wrong_payload\":{},\"corrected\":{},\"per\":{}}}",
                c.stack,
                c.scenario,
                c.profile,
                c.payload_len,
                jnum(c.overhead),
                c.frames,
                c.frames_ok,
                c.detected,
                c.wrong_payload,
                c.corrected,
                jnum(c.per)
            )
            .unwrap();
        }
        s.push_str("],\"frontier\":[");
        for (i, (scenario, profile)) in self.groups().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"scenario\":\"{scenario}\",\"profile\":\"{profile}\",\"points\":["
            )
            .unwrap();
            for (j, p) in self.frontier(scenario, profile).iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                write!(
                    s,
                    "{{\"stack\":\"{}\",\"overhead\":{},\"per\":{}}}",
                    p.stack,
                    jnum(p.overhead),
                    jnum(p.per)
                )
                .unwrap();
            }
            s.push_str("]}");
        }
        s.push_str("]}\n");
        s
    }
}

/// Exact JSON rendering of an f64: `{:?}` prints the shortest decimal that
/// round-trips the bit pattern (the same convention as the golden traces).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        format!("\"{v:?}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_par::Jobs;

    #[test]
    fn q_function_matches_tabulated_values() {
        // Standard normal tail probabilities (tables / high-precision
        // references); A&S 7.1.26 is good to ~1.5e-7 absolute.
        for (x, expected) in [
            (0.0, 0.5),
            (1.0, 0.158655_2539),
            (2.0, 0.022750_1319),
            (3.0, 0.001349_8980),
            (-1.0, 0.841344_7461),
        ] {
            let got = q_function(x);
            assert!(
                (got - expected).abs() < 2e-7,
                "Q({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn awgn_flip_probability_is_calibrated() {
        // 0 dB: Q(√2) ≈ 0.0786; higher SNR must monotonically clean up.
        let p0 = awgn_flip_probability(0.0);
        assert!((p0 - 0.078649).abs() < 1e-5, "p(0 dB) = {p0}");
        let mut prev = p0;
        for snr in [2.0, 4.0, 6.0, 8.0, 10.0] {
            let p = awgn_flip_probability(snr);
            assert!(p < prev, "flip probability must fall with SNR");
            prev = p;
        }
        assert!(awgn_flip_probability(10.0) < 5e-6);
    }

    #[test]
    fn awgn_injector_hits_its_calibrated_rate() {
        // Empirical flip fraction over ~10^6 bits tracks the analytic rate.
        let profile = NoiseProfile::Awgn { snr_db: 3.0 };
        let p = awgn_flip_probability(3.0);
        let mut rng = StdRng::seed_from_u64(7);
        let clean = vec![0u8; 125_000];
        let mut noisy = clean.clone();
        profile.apply(&mut noisy, &mut rng);
        let flips: u32 = noisy.iter().map(|b| b.count_ones()).sum();
        let got = flips as f64 / (clean.len() * 8) as f64;
        assert!(
            (got - p).abs() / p < 0.05,
            "empirical flip rate {got} vs analytic {p}"
        );
    }

    #[test]
    fn burst_injector_produces_nonoverlapping_runs() {
        let profile = NoiseProfile::Burst { rate: 0.01, len: 8 };
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = vec![0u8; 20_000];
        profile.apply(&mut data, &mut rng);
        // Bursts never overlap: the scan skips past each one, so a maximal
        // corrupted run is a whole number of bursts (occasionally two or
        // three land back-to-back) — never a partial extension.
        let mut run = 0usize;
        let mut corrupted = 0usize;
        for (i, &b) in data.iter().chain(std::iter::once(&0)).enumerate() {
            if b != 0 {
                run += 1;
                corrupted += 1;
            } else {
                // A run ending at the stream tail may be a truncated burst;
                // every interior run is a whole number of bursts.
                if i < data.len() {
                    assert_eq!(run % 8, 0, "run of {run} is not a whole number of bursts");
                }
                assert!(run <= 3 * 8, "implausibly long burst chain: {run}");
                run = 0;
            }
        }
        // ~1% start rate × 8-byte bursts ≈ 7.4% of bytes corrupted.
        let frac = corrupted as f64 / data.len() as f64;
        assert!((0.04..0.12).contains(&frac), "corrupted fraction {frac}");
    }

    #[test]
    fn truncate_injector_respects_its_floor() {
        let profile = NoiseProfile::Truncate {
            prob: 1.0,
            min_keep: 0.8,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut data = vec![1u8; 1000];
            profile.apply(&mut data, &mut rng);
            assert!(
                data.len() >= 800 && data.len() < 1000,
                "kept {}",
                data.len()
            );
        }
    }

    #[test]
    fn cell_labels_cover_the_grid_in_fixed_order() {
        let cfg = CampaignConfig::reduced();
        assert_eq!(cfg.n_cells(), 4 * 5); // 4 stacks × 1 scenario × 5 profiles
        assert_eq!(cfg.cell_label(0), "rs/paper/clean");
        assert_eq!(cfg.cell_label(5), "rs+il16/paper/clean");
        assert_eq!(
            cfg.cell_label(cfg.n_cells() - 1),
            "crc32/paper/trunc_p0.25_k0.9"
        );
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let cfg = CampaignConfig::reduced();
        let serial = CampaignReport::run(&cfg, &Pool::new(Jobs::of(1)));
        let parallel = CampaignReport::run(&cfg, &Pool::new(Jobs::of(8)));
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn fec_beats_the_uncoded_baseline_under_noise() {
        let cfg = CampaignConfig::reduced();
        let report = CampaignReport::run(&cfg, &Pool::new(Jobs::of(1)));
        let per_of = |stack: &str, profile: &str| {
            report
                .cells
                .iter()
                .find(|c| c.stack == stack && c.profile == profile)
                .map(|c| c.per)
                .unwrap()
        };
        // Everything is clean on the clean channel.
        for c in report.cells.iter().filter(|c| c.profile == "clean") {
            assert_eq!(c.per, 0.0, "stack {} lost clean frames", c.stack);
        }
        // At 6 dB the RS stacks and the convolutional stack must beat the
        // uncoded baseline, which loses most frames (~0.24% bit flips over
        // a 992-bit frame ≈ 0.91 analytic PER; 20 frames leave slack).
        let base = per_of("crc32", "awgn_snr6.0dB");
        assert!(base > 0.6, "uncoded PER at 6 dB: {base}");
        for stack in ["rs", "rs+il16", "conv_k7+crc32"] {
            assert!(
                per_of(stack, "awgn_snr6.0dB") < base,
                "{stack} must beat uncoded at 6 dB"
            );
        }
        // No stack ever silently delivers a wrong payload in this sweep.
        for c in &report.cells {
            assert_eq!(
                c.wrong_payload, 0,
                "{}/{} silent corruption",
                c.stack, c.profile
            );
        }
    }

    #[test]
    fn frontier_points_are_pareto_optimal() {
        let cfg = CampaignConfig::reduced();
        let report = CampaignReport::run(&cfg, &Pool::new(Jobs::of(1)));
        for (scenario, profile) in report.groups() {
            let points = report.frontier(&scenario, &profile);
            assert!(!points.is_empty());
            for w in points.windows(2) {
                assert!(w[0].overhead <= w[1].overhead);
                assert!(
                    w[1].per < w[0].per,
                    "{scenario}/{profile}: non-improving frontier point"
                );
            }
        }
    }
}
