//! End-to-end tests of the `codec_campaign` binary: the report is
//! byte-identical at any `DENSEVLC_JOBS`, and the obs stream it writes
//! passes `obs_check --expect-summary`.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("densevlc-codec-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn campaign(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_codec_campaign"))
        .args(args)
        .env_remove("DENSEVLC_JOBS")
        .output()
        .expect("codec_campaign runs")
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let serial = campaign(&["--reduced", "--jobs", "1"]);
    assert!(serial.status.success(), "{serial:?}");
    let max = campaign(&["--reduced", "--jobs", "max"]);
    assert!(max.status.success(), "{max:?}");
    assert_eq!(
        serial.stdout, max.stdout,
        "campaign report must not depend on the worker count"
    );
    // Sanity: it is the campaign schema and covers the full reduced grid.
    let text = String::from_utf8(serial.stdout).unwrap();
    assert!(text.starts_with("{\"schema\":\"densevlc-codec-campaign/1\""));
    assert_eq!(
        text.matches("\"payload_len\":").count(),
        20,
        "4 stacks × 5 profiles"
    );
    assert!(text.ends_with("]}\n"));
}

#[test]
fn out_file_matches_stdout_and_obs_stream_validates() {
    let report = tmp("frontier.json");
    let stream = tmp("codec.ndjson");
    let out = campaign(&[
        "--reduced",
        "--jobs",
        "2",
        "--out",
        report.to_str().unwrap(),
        "--obs-stream",
        stream.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let via_file = std::fs::read(&report).expect("report written");
    let via_stdout = campaign(&["--reduced", "--jobs", "2"]).stdout;
    assert_eq!(
        via_file, via_stdout,
        "--out must write the exact stdout bytes"
    );

    let check = Command::new(env!("CARGO_BIN_EXE_obs_check"))
        .arg(&stream)
        .arg("--expect-summary")
        .output()
        .expect("obs_check runs");
    assert!(
        check.status.success(),
        "obs stream failed validation: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    // One job record per sweep cell, in cell order.
    let text = std::fs::read_to_string(&stream).unwrap();
    assert_eq!(text.matches("\"type\":\"job\"").count(), 20);
    assert!(text.contains("rs/paper/clean"));
    assert!(text.contains("crc32/paper/trunc_p0.25_k0.9"));
}

#[test]
fn rejects_unknown_arguments() {
    let out = campaign(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}
