//! End-to-end tests of the perf-regression gate: `run_all --bench-out`
//! writes a parseable `densevlc-bench/1` report and `bench_compare` exits
//! 0 / 1 / 2 for pass / regression / usage error.

use std::path::PathBuf;
use std::process::Command;
use vlc_telemetry::ManualClock;
use vlc_trace::{parse_chrome_json, BenchReport, Tracer};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("densevlc-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A synthetic two-phase BENCH.json where `phase.a` takes `a_s` seconds.
fn synthetic_bench(a_s: f64) -> String {
    let clock = ManualClock::new();
    let tracer = Tracer::with_clock(clock.clone());
    let a = tracer.root("phase.a");
    clock.advance(a_s);
    drop(a);
    let b = tracer.root("phase.b");
    clock.advance(0.05);
    drop(b);
    BenchReport::from_snapshot(&tracer.snapshot(), 1, 1).to_json()
}

fn compare(old: &PathBuf, new: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(old)
        .arg(new)
        .output()
        .expect("bench_compare runs")
}

#[test]
fn same_file_passes_the_gate() {
    let path = tmp("same.json");
    std::fs::write(&path, synthetic_bench(0.1)).unwrap();
    let out = compare(&path, &path);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
}

#[test]
fn synthetic_regression_fails_the_gate() {
    let old = tmp("old.json");
    let new = tmp("new.json");
    std::fs::write(&old, synthetic_bench(0.1)).unwrap();
    std::fs::write(&new, synthetic_bench(1.0)).unwrap();
    let out = compare(&old, &new);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("phase.a"),
        "regressed phase named: {stdout}"
    );
    assert!(!stdout.contains("phase.b"), "unchanged phase not flagged");
}

#[test]
fn improvements_never_flag() {
    let old = tmp("imp_old.json");
    let new = tmp("imp_new.json");
    std::fs::write(&old, synthetic_bench(1.0)).unwrap();
    std::fs::write(&new, synthetic_bench(0.1)).unwrap();
    assert_eq!(compare(&old, &new).status.code(), Some(0));
}

#[test]
fn usage_and_parse_errors_exit_2() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .output()
        .unwrap();
    assert_eq!(no_args.status.code(), Some(2));

    let garbage = tmp("garbage.json");
    std::fs::write(&garbage, "{\"schema\": \"wrong/9\"}").unwrap();
    let out = compare(&garbage, &garbage);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let missing = tmp("does-not-exist.json");
    let ok = tmp("ok.json");
    std::fs::write(&ok, synthetic_bench(0.1)).unwrap();
    assert_eq!(compare(&missing, &ok).status.code(), Some(2));
}

#[test]
fn run_all_bench_out_is_parseable_and_gates_itself() {
    let bench = tmp("run_all_bench.json");
    let trace = tmp("run_all_trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--jobs", "1", "--bench-out"])
        .arg(&bench)
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("run_all runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The printed reports stay on stdout, untouched by the bench flags.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("full evaluation reproduction"));
    assert!(
        !stdout.contains("densevlc-bench/1"),
        "BENCH goes to the file"
    );

    let report = BenchReport::from_json(&std::fs::read_to_string(&bench).unwrap())
        .expect("BENCH.json parses");
    // Whole-run, per-experiment, and probe phases are all present.
    for phase in [
        "bench.run_all",
        "bench.phase_probe",
        "experiment.complexity",
        "channel.sound",
        "alloc.heuristic.solve",
        "alloc.optimal.solve",
        "sim.adapt",
        "sync.pilot_detect",
    ] {
        assert!(report.stats(phase).is_some(), "missing phase {phase}");
    }

    let events = parse_chrome_json(&std::fs::read_to_string(&trace).unwrap())
        .expect("trace is valid Chrome Trace JSON");
    assert!(events.iter().any(|e| e.name == "mac.plan"));

    // A report always passes the gate against itself.
    assert_eq!(compare(&bench, &bench).status.code(), Some(0));
}
