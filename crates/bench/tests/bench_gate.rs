//! End-to-end tests of the perf-regression gate: `run_all --bench-out`
//! writes a parseable `densevlc-bench/1` report, `bench_compare` exits
//! 0 / 1 / 2 for pass / regression / usage error, and `--explain` names
//! the call paths that own a flagged phase from a profile sidecar.

use std::path::PathBuf;
use std::process::Command;
use vlc_prof::Profile;
use vlc_telemetry::ManualClock;
use vlc_trace::{parse_chrome_json, BenchReport, Tracer};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("densevlc-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A synthetic two-phase BENCH.json where `phase.a` takes `a_s` seconds.
fn synthetic_bench(a_s: f64) -> String {
    let clock = ManualClock::new();
    let tracer = Tracer::with_clock(clock.clone());
    let a = tracer.root("phase.a");
    clock.advance(a_s);
    drop(a);
    let b = tracer.root("phase.b");
    clock.advance(0.05);
    drop(b);
    BenchReport::from_snapshot(&tracer.snapshot(), 1, 1).to_json()
}

fn compare(old: &PathBuf, new: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(old)
        .arg(new)
        .output()
        .expect("bench_compare runs")
}

#[test]
fn same_file_passes_the_gate() {
    let path = tmp("same.json");
    std::fs::write(&path, synthetic_bench(0.1)).unwrap();
    let out = compare(&path, &path);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
}

#[test]
fn synthetic_regression_fails_the_gate() {
    let old = tmp("old.json");
    let new = tmp("new.json");
    std::fs::write(&old, synthetic_bench(0.1)).unwrap();
    std::fs::write(&new, synthetic_bench(1.0)).unwrap();
    let out = compare(&old, &new);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("phase.a"),
        "regressed phase named: {stdout}"
    );
    assert!(!stdout.contains("phase.b"), "unchanged phase not flagged");
}

#[test]
fn improvements_never_flag() {
    let old = tmp("imp_old.json");
    let new = tmp("imp_new.json");
    std::fs::write(&old, synthetic_bench(1.0)).unwrap();
    std::fs::write(&new, synthetic_bench(0.1)).unwrap();
    assert_eq!(compare(&old, &new).status.code(), Some(0));
}

#[test]
fn usage_and_parse_errors_exit_2() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .output()
        .unwrap();
    assert_eq!(no_args.status.code(), Some(2));

    let garbage = tmp("garbage.json");
    std::fs::write(&garbage, "{\"schema\": \"wrong/9\"}").unwrap();
    let out = compare(&garbage, &garbage);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let missing = tmp("does-not-exist.json");
    let ok = tmp("ok.json");
    std::fs::write(&ok, synthetic_bench(0.1)).unwrap();
    assert_eq!(compare(&missing, &ok).status.code(), Some(2));
}

/// A synthetic profile matching [`synthetic_bench`]'s phases: `phase.a`
/// spends most of its time in a `solver.inner` child (the guilty path an
/// explanation should name), `phase.b` is flat.
fn synthetic_profile(a_s: f64) -> String {
    let clock = ManualClock::new();
    let tracer = Tracer::with_clock(clock.clone());
    let a = tracer.root("phase.a");
    {
        let hot = a.child("solver.inner");
        clock.advance(a_s * 0.75);
        drop(hot);
    }
    clock.advance(a_s * 0.25);
    drop(a);
    let b = tracer.root("phase.b");
    clock.advance(0.05);
    drop(b);
    Profile::from_snapshot(&tracer.snapshot(), 1).to_json()
}

#[test]
fn explain_without_a_profile_is_a_usage_error() {
    let path = tmp("explain_usage.json");
    std::fs::write(&path, synthetic_bench(0.1)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&path)
        .arg(&path)
        .arg("--explain")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--new-profile"));
}

#[test]
fn explain_names_the_guilty_call_path() {
    let old = tmp("explain_old.json");
    let new = tmp("explain_new.json");
    let prof = tmp("explain_new_profile.json");
    std::fs::write(&old, synthetic_bench(0.1)).unwrap();
    std::fs::write(&new, synthetic_bench(1.0)).unwrap();
    std::fs::write(&prof, synthetic_profile(1.0)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&old)
        .arg(&new)
        .args(["--explain", "--new-profile"])
        .arg(&prof)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Shape: the regression table row, then the explanation header, then
    // the guilty call path ranked first with calls/allocs columns.
    assert!(
        stdout.contains("explain: phase.a regressed +0.9"),
        "{stdout}"
    );
    let hot = stdout
        .find("phase.a;solver.inner")
        .expect("guilty path named");
    let own = stdout.rfind("s self").expect("self-time rows present");
    assert!(own > 0, "{stdout}");
    assert!(
        stdout.contains("calls"),
        "no-baseline rows carry calls: {stdout}"
    );
    // The unregressed phase must not be explained.
    assert!(!stdout.contains("explain: phase.b"), "{stdout}");
    let _ = hot;
}

#[test]
fn explain_with_a_baseline_ranks_by_delta() {
    let old = tmp("delta_old.json");
    let new = tmp("delta_new.json");
    let old_prof = tmp("delta_old_profile.json");
    let new_prof = tmp("delta_new_profile.json");
    std::fs::write(&old, synthetic_bench(0.1)).unwrap();
    std::fs::write(&new, synthetic_bench(1.0)).unwrap();
    std::fs::write(&old_prof, synthetic_profile(0.1)).unwrap();
    std::fs::write(&new_prof, synthetic_profile(1.0)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&old)
        .arg(&new)
        .args(["--explain", "--new-profile"])
        .arg(&new_prof)
        .arg("--old-profile")
        .arg(&old_prof)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Baseline rows show old -> new self times and the alloc delta.
    assert!(stdout.contains("s self (0.0"), "delta row shape: {stdout}");
    assert!(stdout.contains("allocs +0"), "{stdout}");
    assert!(stdout.contains("phase.a;solver.inner"), "{stdout}");
}

#[test]
fn explain_reports_phases_missing_from_the_profile() {
    let old = tmp("missing_old.json");
    let new = tmp("missing_new.json");
    let prof = tmp("missing_profile.json");
    std::fs::write(&old, synthetic_bench(0.1)).unwrap();
    std::fs::write(&new, synthetic_bench(1.0)).unwrap();
    // A profile that never traced phase.a at all.
    let clock = ManualClock::new();
    let tracer = Tracer::with_clock(clock.clone());
    let other = tracer.root("unrelated");
    clock.advance(0.2);
    drop(other);
    std::fs::write(
        &prof,
        Profile::from_snapshot(&tracer.snapshot(), 1).to_json(),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&old)
        .arg(&new)
        .args(["--explain", "--new-profile"])
        .arg(&prof)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no span named `phase.a`"),
        "{out:?}"
    );
}

#[test]
fn run_all_bench_out_is_parseable_and_gates_itself() {
    let bench = tmp("run_all_bench.json");
    let trace = tmp("run_all_trace.json");
    let prof = tmp("run_all_profile.json");
    let folded = tmp("run_all_profile.folded");
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--jobs", "1", "--bench-out"])
        .arg(&bench)
        .arg("--trace")
        .arg(&trace)
        .arg("--profile-out")
        .arg(&prof)
        .arg("--folded-out")
        .arg(&folded)
        .output()
        .expect("run_all runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The printed reports stay on stdout, untouched by the bench flags.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("full evaluation reproduction"));
    assert!(
        !stdout.contains("densevlc-bench/1"),
        "BENCH goes to the file"
    );

    let report = BenchReport::from_json(&std::fs::read_to_string(&bench).unwrap())
        .expect("BENCH.json parses");
    // Whole-run, per-experiment, and probe phases are all present.
    for phase in [
        "bench.run_all",
        "bench.phase_probe",
        "experiment.complexity",
        "channel.sound",
        "alloc.heuristic.solve",
        "alloc.optimal.solve",
        "sim.adapt",
        "sync.pilot_detect",
    ] {
        assert!(report.stats(phase).is_some(), "missing phase {phase}");
    }

    let events = parse_chrome_json(&std::fs::read_to_string(&trace).unwrap())
        .expect("trace is valid Chrome Trace JSON");
    assert!(events.iter().any(|e| e.name == "mac.plan"));

    // A report always passes the gate against itself.
    assert_eq!(compare(&bench, &bench).status.code(), Some(0));

    // The profile artifacts validate: schema, the Σ self == Σ roots
    // invariant, and the byte-level folded cross-check.
    let profile =
        Profile::from_json(&std::fs::read_to_string(&prof).unwrap()).expect("profile parses");
    assert!(
        profile.node("bench.phase_probe").is_some(),
        "probe root profiled"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_prof_check"))
        .arg(&prof)
        .arg("--folded")
        .arg(&folded)
        .output()
        .expect("prof_check runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("byte for byte"),
        "{out:?}"
    );
}
