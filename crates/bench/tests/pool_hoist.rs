//! The pool-hoist contract: one timed probe pass — phase, sparse, and
//! shard probes, the exact workloads `run_all` times per `--bench-repeat`
//! iteration — runs every tracked parallel dispatch on ONE caller-supplied
//! worker pool. `Pool::with_telemetry` bumps `par.pool.created`, so the
//! registry watching the harness pool must see exactly one creation no
//! matter how many matrix builds, solves, and control ticks execute.

use vlc_bench::probes::{phase_probe, shard_probe, sparse_probe};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Tracer;

#[test]
fn probes_share_one_worker_pool() {
    let registry = Registry::new();
    let pool = Pool::new(Jobs::of(2)).with_telemetry(&registry);
    let tracer = Tracer::new();
    phase_probe(&tracer, &pool);
    sparse_probe(&tracer, &pool);
    shard_probe(&tracer, &pool);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("par.pool.created"),
        Some(1),
        "a probe built its own tracked pool instead of reusing the harness's"
    );
    assert!(
        snap.counter("par.map_calls").unwrap_or(0) > 10,
        "the shared pool never dispatched the probe work"
    );
}
