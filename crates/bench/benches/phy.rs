//! Criterion benches for the PHY hot paths: Reed–Solomon coding,
//! Manchester coding, the analog front-end chain, and preamble correlation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlc_phy::frontend::FrontEnd;
use vlc_phy::interleave::Interleaver;
use vlc_phy::manchester::{manchester_decode, manchester_encode};
use vlc_phy::ofdm::OfdmModem;
use vlc_phy::rs::ReedSolomon;
use vlc_phy::waveform::{correlate_pattern, render, WaveformConfig};

fn bench_phy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let rs = ReedSolomon::paper();
    let data: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
    let clean = rs.encode(&data);

    let mut group = c.benchmark_group("phy");

    group.bench_function("rs_encode_200B", |b| b.iter(|| rs.encode(&data)));

    group.bench_function("rs_decode_clean_200B", |b| {
        b.iter(|| {
            let mut block = clean.clone();
            rs.decode(&mut block).expect("clean block")
        })
    });

    let mut corrupted = clean.clone();
    for i in 0..8 {
        corrupted[i * 25] ^= 0x5a;
    }
    group.bench_function("rs_decode_8_errors_200B", |b| {
        b.iter(|| {
            let mut block = corrupted.clone();
            rs.decode(&mut block).expect("correctable")
        })
    });

    let chips = manchester_encode(&data);
    group.bench_function("manchester_encode_200B", |b| {
        b.iter(|| manchester_encode(&data))
    });
    group.bench_function("manchester_decode_200B", |b| {
        b.iter(|| manchester_decode(&chips).expect("valid chips"))
    });

    let cfg = WaveformConfig::paper();
    let preamble = manchester_encode(&[0xAA, 0xAA, 0xAA, 0x55]);
    let wave = render(&preamble, &cfg, 1e-6, 37e-6, 2_000);
    group.bench_function("preamble_correlation_2k_samples", |b| {
        b.iter(|| correlate_pattern(&wave, &cfg, &preamble, 0, 500).expect("found"))
    });

    let modem = OfdmModem::vlc_default();
    let ofdm_bits: Vec<bool> = (0..modem.bits_per_ofdm_symbol() * 8)
        .map(|i| i % 3 == 0)
        .collect();
    let ofdm_wave = modem.modulate(&ofdm_bits).expect("whole symbols");
    group.bench_function("ofdm_modulate_8_symbols", |b| {
        b.iter(|| modem.modulate(&ofdm_bits).expect("whole symbols"))
    });
    group.bench_function("ofdm_demodulate_8_symbols", |b| {
        b.iter(|| modem.demodulate(&ofdm_wave, 1.0).expect("aligned"))
    });

    let il = Interleaver::new(16);
    let coded = rs.encode_payload(&data);
    group.bench_function("interleave_432B_depth16", |b| {
        b.iter(|| il.interleave(&coded))
    });

    let fe = FrontEnd::paper();
    let raw = render(&chips, &cfg, 1e-6, 0.0, chips.len() * 10);
    group.bench_function("frontend_chain_32k_samples", |b| {
        b.iter(|| {
            let mut s = raw.clone();
            fe.process(&mut s);
            s
        })
    });

    group.finish();
}

criterion_group!(benches, bench_phy);
criterion_main!(benches);
