//! Criterion benches for the optical channel: LOS matrix assembly,
//! illuminance maps, and the NLOS floor-bounce integral.

use criterion::{criterion_group, criterion_main, Criterion};
use vlc_channel::lambertian::lambertian_order;
use vlc_channel::nlos::{floor_bounce_gain, NlosConfig};
use vlc_channel::{ChannelMatrix, IlluminanceMap, RxOptics};
use vlc_geom::{AreaOfInterest, Pose, Room, TxGrid};

fn bench_channel(c: &mut Criterion) {
    let room = Room::paper_simulation();
    let grid = TxGrid::paper(&room);
    let optics = RxOptics::paper();
    let semi = 15f64.to_radians();
    let rxs = vec![
        Pose::face_up(0.92, 0.92, 0.8),
        Pose::face_up(1.65, 0.65, 0.8),
        Pose::face_up(0.72, 1.93, 0.8),
        Pose::face_up(1.99, 1.69, 0.8),
    ];

    let mut group = c.benchmark_group("channel");

    group.bench_function("los_matrix_36x4", |b| {
        b.iter(|| ChannelMatrix::compute(&grid, &rxs, semi, &optics))
    });

    let area = AreaOfInterest::paper(&room);
    let poses = grid.poses();
    group.bench_function("illuminance_map_0p1m", |b| {
        b.iter(|| IlluminanceMap::compute(&poses, 153.3, semi, &area, 0.8, 0.1))
    });

    let m = lambertian_order(semi);
    let tb = Room::paper_testbed();
    let tb_grid = TxGrid::paper(&tb);
    let leader = tb_grid.pose(1);
    let follower = tb_grid.pose(2);
    group.sample_size(10);
    group.bench_function("nlos_floor_bounce_5cm", |b| {
        b.iter(|| floor_bounce_gain(&leader, &follower, m, &optics, &tb, &NlosConfig::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
