//! Criterion benches timing one reduced-scale run of each experiment
//! driver — this is the per-table/figure regeneration harness. (The
//! binaries under `src/bin/` run the full-scale versions and print the
//! paper-comparable rows.)

use criterion::{criterion_group, criterion_main, Criterion};
use densevlc::experiments::*;
use vlc_led::LedParams;
use vlc_testbed::Scenario;

fn bench_experiments(c: &mut Criterion) {
    let led = LedParams::cree_xte_paper();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("fig04_taylor_error", |b| {
        b.iter(|| fig04_taylor_error::run(&led, 90))
    });

    group.bench_function("fig05_illuminance", |b| {
        b.iter(|| fig05_illuminance::run(&led, 1))
    });

    group.bench_function("fig08_throughput_vs_power_3inst", |b| {
        b.iter(|| fig08_throughput_vs_power::run(&[0.6, 1.2], 3, 8))
    });

    group.bench_function("fig09_swing_levels_4budgets", |b| {
        b.iter(|| fig09_swing_levels::run(&[0.4, 0.8, 1.2, 1.6]))
    });

    group.bench_function("fig10_swing_cdf_3inst", |b| {
        b.iter(|| fig10_swing_cdf::run(&[2, 4, 9, 14], 1.2, 3, 10))
    });

    group.bench_function("fig11_heuristic_verification_3inst", |b| {
        b.iter(|| fig11_heuristic_verification::run(&[0.6, 1.2], 3, 1.2, 11))
    });

    group.bench_function("fig12_sync_delay", |b| {
        b.iter(|| fig12_sync_delay::run(&[5e3, 20e3, 60e3], 2_001, 12))
    });

    group.bench_function("tab04_sync_error", |b| {
        b.iter(|| tab04_sync_error::run(20, 4))
    });

    group.bench_function("tab05_iperf_10frames", |b| {
        b.iter(|| tab05_iperf::run(10, 5))
    });

    for (name, s) in [
        ("fig18_scenario1", Scenario::One),
        ("fig19_scenario2", Scenario::Two),
        ("fig20_scenario3", Scenario::Three),
    ] {
        group.bench_function(name, |b| b.iter(|| fig18_20_scenarios::run(s)));
    }

    group.bench_function("fig21_baselines", |b| {
        b.iter(|| fig21_baselines::run(Scenario::Two))
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
