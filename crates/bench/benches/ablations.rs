//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * **Binary swings (Insight 2):** what throughput does discretizing the
//!   continuous optimum to {0, Isw,max} cost?
//! * **κ sensitivity:** heuristic throughput across κ at the paper's
//!   comparison budget.
//! * **Partial-last budget usage:** the heuristic with and without a
//!   fractional final TX.
//!
//! Criterion times the computations; the ablation *deltas* are printed once
//! at bench start-up so the run log doubles as the ablation report.

use criterion::{criterion_group, criterion_main, Criterion};
use vlc_alloc::analysis::{heuristic_sweep, throughput_at_power};
use vlc_alloc::heuristic::heuristic_allocation;
use vlc_alloc::model::Allocation;
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_testbed::{Deployment, Scenario};

/// Discretizes an allocation: per (TX, RX) stream, snap to full swing when
/// above half, zero otherwise, then rescale rows into the swing bound.
fn binarize(alloc: &Allocation, max_swing: f64) -> Allocation {
    let mut out = Allocation::zeros(alloc.n_tx(), alloc.n_rx());
    for t in 0..alloc.n_tx() {
        // Snap the dominant stream of each TX.
        let mut best_rx = None;
        let mut best = 0.0;
        for r in 0..alloc.n_rx() {
            let s = alloc.swing(t, r);
            if s > best {
                best = s;
                best_rx = Some(r);
            }
        }
        if let Some(r) = best_rx {
            if best >= 0.5 * max_swing {
                out.set_swing(t, r, max_swing);
            }
        }
    }
    out
}

fn print_ablation_report() {
    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let budget = 1.2;

    // Ablation 1: binary vs continuous optimum.
    let solver = OptimalSolver::quick();
    let report = solver.solve(&model, budget);
    let continuous = model.system_throughput(&report.allocation);
    let binary_alloc = binarize(&report.allocation, model.led.max_swing);
    let binary = model.system_throughput(&binary_alloc);
    println!(
        "[ablation] binary-swing discretization: continuous {:.3} Mb/s -> binary {:.3} Mb/s ({:+.2} %)",
        continuous / 1e6,
        binary / 1e6,
        (binary / continuous - 1.0) * 100.0
    );

    // Ablation 2: κ sensitivity at the comparison budget.
    for kappa in [1.0, 1.2, 1.3, 1.5] {
        let curve = heuristic_sweep(&model, &HeuristicConfig::with_kappa(kappa));
        let t = throughput_at_power(&curve, budget);
        println!(
            "[ablation] kappa {kappa}: {:.3} Mb/s at {budget} W ({:+.2} % vs optimal)",
            t / 1e6,
            (t / continuous - 1.0) * 100.0
        );
    }

    // Ablation 3: partial-last budget usage.
    let strict = heuristic_allocation(
        &model.channel,
        &model.led,
        budget,
        &HeuristicConfig::paper(),
    );
    let partial = heuristic_allocation(
        &model.channel,
        &model.led,
        budget,
        &HeuristicConfig {
            allow_partial_last: true,
            ..HeuristicConfig::paper()
        },
    );
    println!(
        "[ablation] partial-last TX: strict {:.3} Mb/s vs partial {:.3} Mb/s",
        model.system_throughput(&strict) / 1e6,
        model.system_throughput(&partial) / 1e6
    );
}

fn bench_ablations(c: &mut Criterion) {
    print_ablation_report();

    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("binarize_optimal_solution", |b| {
        let report = OptimalSolver::quick().solve(&model, 1.2);
        b.iter(|| binarize(&report.allocation, model.led.max_swing))
    });

    group.bench_function("kappa_sweep_4_values", |b| {
        b.iter(|| {
            [1.0, 1.2, 1.3, 1.5]
                .iter()
                .map(|&k| heuristic_sweep(&model, &HeuristicConfig::with_kappa(k)).len())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
