//! Criterion benches for the allocation algorithms — the §5 complexity
//! claim measured rigorously: SJR ranking + budget assignment vs one
//! optimal projected-gradient solve on the 36 × 4 Fig. 7 instance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vlc_alloc::heuristic::{heuristic_allocation, rank_by_sjr};
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_testbed::{Deployment, Scenario};

fn bench_allocators(c: &mut Criterion) {
    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let cfg = HeuristicConfig::paper();

    let mut group = c.benchmark_group("allocators");

    group.bench_function("sjr_ranking_only", |b| {
        b.iter(|| rank_by_sjr(&model.channel, &cfg))
    });

    group.bench_function("heuristic_full", |b| {
        b.iter(|| heuristic_allocation(&model.channel, &model.led, 1.2, &cfg))
    });

    group.sample_size(10);
    group.bench_function("optimal_solver_quick", |b| {
        b.iter_batched(
            OptimalSolver::quick,
            |solver| solver.solve(&model, 1.2),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
