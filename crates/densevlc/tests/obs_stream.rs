//! The observability plane against the real simulation: byte-identical
//! timelines, valid NDJSON streams, SLO fire/clear on a deterministic
//! blockage scenario, worker-count determinism, and the injected-panic
//! flight-recorder dump.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use densevlc::Simulation;
use vlc_obs::{
    parse_stream_strict, AlertState, Cmp, FlightRecorder, MemorySink, ObsConfig, ObsPlane,
    ObsRecord, SloRule, Stat, WindowConfig,
};
use vlc_par::JOBS_ENV;
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::Span;

fn sim() -> Simulation {
    Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("densevlc-obs-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A plane with a 5-tick flush cadence and single-bucket windows, so each
/// SLO evaluation sees exactly the last 5 ticks.
fn plane(sink: MemorySink, rules: Vec<SloRule>) -> ObsPlane {
    ObsPlane::new(
        Box::new(sink),
        ObsConfig {
            run: "test".into(),
            every: 5,
            window: WindowConfig {
                bucket_ticks: 5,
                buckets: 1,
                max_samples_per_bucket: 4096,
            },
            rules,
            panic_at_tick: None,
        },
    )
}

fn rx0_rule() -> SloRule {
    SloRule {
        name: "rx0.throughput".into(),
        signal: "rx0.bps".into(),
        stat: Stat::Mean,
        cmp: Cmp::Below,
        threshold: 3e6,
        for_windows: 2,
        clear_windows: 2,
    }
}

#[test]
fn streamed_run_is_byte_identical_to_the_plain_run() {
    let tl_plain = sim().run(2.0);

    let mem = MemorySink::new();
    let mut p = plane(mem.clone(), Vec::new());
    let tl_streamed = sim().run_observed(2.0, &Registry::noop(), &Span::noop(), &mut p);
    p.finish(&Registry::noop(), 0);

    // Bit-for-bit identity of the recorded timelines: the plane only
    // reads, never perturbs.
    assert_eq!(tl_plain.ticks.len(), tl_streamed.ticks.len());
    for (a, b) in tl_plain.ticks.iter().zip(&tl_streamed.ticks) {
        assert_eq!(a.t_s.to_bits(), b.t_s.to_bits());
        assert_eq!(a.replanned, b.replanned);
        assert_eq!(a.blocked_links, b.blocked_links);
        assert_eq!(a.per_rx_bps.len(), b.per_rx_bps.len());
        for (x, y) in a.per_rx_bps.iter().zip(&b.per_rx_bps) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // And the stream itself validates line by line, with the documented
    // structure: meta first, one tick record per tick, summary last.
    let records = parse_stream_strict(&mem.text()).expect("every line valid");
    assert!(matches!(records[0], ObsRecord::Meta { n_rx: 4, .. }));
    let ticks = records
        .iter()
        .filter(|r| matches!(r, ObsRecord::Tick { .. }))
        .count();
    assert_eq!(ticks, tl_plain.ticks.len());
    match records.last().unwrap() {
        ObsRecord::Summary {
            ticks,
            mean_system_bps,
            ..
        } => {
            assert_eq!(*ticks as usize, tl_plain.ticks.len());
            assert_eq!(
                mean_system_bps.to_bits(),
                tl_plain.mean_system_bps().to_bits(),
                "stream summary agrees with the timeline exactly"
            );
        }
        other => panic!("stream must end in a summary, got {other:?}"),
    }
    // Tick records carry the timeline values bit-exactly.
    let first_tick = records
        .iter()
        .find_map(|r| match r {
            ObsRecord::Tick { per_rx_bps, .. } => Some(per_rx_bps),
            _ => None,
        })
        .unwrap();
    for (x, y) in first_tick.iter().zip(&tl_plain.ticks[0].per_rx_bps) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn slo_fires_and_clears_on_a_blockage_scenario_at_expected_ticks() {
    let run = || {
        let mut s = sim();
        // A person starts on top of RX1 (total shadow — see sim.rs's
        // blockage tests) and walks away up the room at 0.5 m/s, so RX1
        // is starved early and recovers mid-run. Fully deterministic:
        // waypoint motion, no RNG.
        s.add_person(0.92, 0.92, 0.5, &[(0.92, 4.5)]);
        let mem = MemorySink::new();
        let mut p = plane(mem.clone(), vec![rx0_rule()]);
        s.run_observed(3.0, &Registry::noop(), &Span::noop(), &mut p);
        p.finish(&Registry::noop(), 0);
        mem.text()
    };

    let text = run();
    let records = parse_stream_strict(&text).unwrap();
    let alerts: Vec<(u64, AlertState)> = records
        .iter()
        .filter_map(|r| match r {
            ObsRecord::Alert {
                tick, state, rule, ..
            } if rule == "rx0.throughput" => Some((*tick, *state)),
            _ => None,
        })
        .collect();
    // Hysteresis: evaluations run at ticks 4, 9, 14, … — RX1's windowed
    // mean is ~0.5 Mb/s while shadowed (tick 4) and ~2.4 Mb/s while the
    // controller is still routing around the receding shadow (tick 9),
    // both breaching the 3 Mb/s floor, so the rule fires at tick 9; fully
    // recovered windows (~3.6+ Mb/s) then clear it at tick 19.
    assert_eq!(
        alerts,
        [(9, AlertState::Firing), (19, AlertState::Cleared)],
        "fire/clear ticks"
    );
    match records.last().unwrap() {
        ObsRecord::Summary {
            alerts_fired,
            alerts_cleared,
            ..
        } => assert_eq!((*alerts_fired, *alerts_cleared), (1, 1)),
        other => panic!("expected summary, got {other:?}"),
    }

    // The whole stream — alert ticks included — is reproducible.
    assert_eq!(run(), text, "blockage stream must be deterministic");
}

#[test]
fn streamed_runs_are_identical_for_any_worker_count() {
    // Wall-time-derived signals (`alloc.solve_s`) are the one documented
    // nondeterministic stream content; with a noop registry the stream
    // carries only simulation-derived records, which the `vlc-par`
    // contract requires to be byte-identical at any worker count.
    let stream = || {
        let mut s = sim();
        s.send_receiver(0, 2.4, 2.4);
        let mem = MemorySink::new();
        let mut p = plane(mem.clone(), vec![rx0_rule()]);
        s.run_observed(2.0, &Registry::noop(), &Span::noop(), &mut p);
        p.finish(&Registry::noop(), 0);
        mem.text()
    };
    // Env mutation is process-global: probe each setting sequentially
    // inside this one test (same pattern as tests/par_determinism.rs).
    std::env::set_var(JOBS_ENV, "1");
    let reference = stream();
    assert!(reference.ends_with('\n'));
    for setting in ["2", "3", "max"] {
        std::env::set_var(JOBS_ENV, setting);
        assert_eq!(
            stream(),
            reference,
            "stream differs at {JOBS_ENV}={setting}"
        );
    }
    std::env::remove_var(JOBS_ENV);
    assert_eq!(stream(), reference, "stream differs at {JOBS_ENV} unset");
}

#[test]
fn injected_panic_dumps_a_parseable_flight_recording() {
    let path = tmp("flight.ndjson");
    let _ = std::fs::remove_file(&path);
    let flight = FlightRecorder::new(&path, 5);
    let mem = MemorySink::new();
    let mut p = ObsPlane::new(
        Box::new(mem),
        ObsConfig {
            run: "crash test".into(),
            every: 5,
            window: WindowConfig::default(),
            rules: Vec::new(),
            panic_at_tick: Some(7),
        },
    )
    .with_flight(flight);

    let result = catch_unwind(AssertUnwindSafe(|| {
        sim().run_observed(2.0, &Registry::noop(), &Span::noop(), &mut p)
    }));
    assert!(result.is_err(), "the injected panic must propagate");

    // The panic hook dumped the ring: meta context first, then the last
    // K stream lines (window snapshots included) ending at the panicking
    // tick, then the marker.
    let text = std::fs::read_to_string(&path).expect("flight dump written");
    let records = parse_stream_strict(&text).expect("dump is a valid stream");
    assert!(matches!(records[0], ObsRecord::Meta { .. }));
    let tick_ids: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            ObsRecord::Tick { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect();
    assert_eq!(
        tick_ids,
        [5, 6, 7],
        "ticks after the tick-4 flush survive in the 5-line ring, ending at the crash"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r, ObsRecord::Window { .. })),
        "the ring also retains the last pre-crash window snapshots"
    );
    match records.last().unwrap() {
        ObsRecord::Panic {
            message,
            retained,
            dropped,
        } => {
            assert!(message.contains("injected panic at tick 7"), "{message}");
            assert_eq!(*retained, 5);
            assert!(*dropped > 0, "earlier lines were evicted from the ring");
        }
        other => panic!("dump must end with the panic marker, got {other:?}"),
    }
}

#[test]
fn live_registry_streams_derived_signals_and_embeds_snapshots() {
    let registry = Registry::new();
    let mem = MemorySink::new();
    let mut p = plane(mem.clone(), Vec::new());
    let tl = sim().run_observed(2.0, &registry, &Span::noop(), &mut p);
    p.finish(&registry, 0);
    assert!(tl.telemetry.is_some(), "live registry embeds the snapshot");
    let records = parse_stream_strict(&mem.text()).unwrap();
    let signals: Vec<&str> = records
        .iter()
        .filter_map(|r| match r {
            ObsRecord::Window { signal, .. } => Some(signal.as_str()),
            _ => None,
        })
        .collect();
    // Registry-delta signals appear next to the per-RX ones: the plan
    // cache is exercised by the static run, the solver histograms feed
    // alloc.solve_s, and phy.rs_uncorrectable always reports its delta.
    assert!(signals.contains(&"rx0.bps"));
    assert!(signals.contains(&"rx0.sinr"));
    assert!(signals.contains(&"mac.plan.cache_hit_rate"));
    assert!(signals.contains(&"alloc.solve_s"));
    assert!(signals.contains(&"phy.rs_uncorrectable"));
}
