//! Steady-state allocation audit for the end-to-end packed pipeline: after
//! one warm-up run establishes every buffer's capacity, further frames —
//! including ARQ-style single-frame retries — must perform zero heap
//! allocations. (Bit-identity of the pipeline against the scalar reference
//! is pinned by the `e2e` module tests; this file guards the other half of
//! the fast-path contract.) The counting allocator is the shared
//! `vlc_prof::alloc_counter` implementation; its thread-local counters
//! make each test's window immune to harness-thread noise.

use densevlc::e2e::{run_scalar, E2eConfig, E2eTx, FramePipeline};
use vlc_prof::alloc_counter::{allocations_during, CountingAlloc};
use vlc_sync::SyncScheme;
use vlc_telemetry::Registry;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn txs() -> Vec<E2eTx> {
    // Two same-host TXs with healthy gains (the Table 5 row-1 regime) —
    // frames decode, so the whole encode→render→slice→RS cycle runs.
    vec![
        E2eTx {
            gain: 2.4e-5,
            host: 0,
        },
        E2eTx {
            gain: 2.4e-5,
            host: 0,
        },
    ]
}

#[test]
fn warmed_pipeline_runs_frames_with_zero_allocations() {
    let cfg = E2eConfig::default();
    let txs = txs();
    let noop = Registry::noop();
    let mut pipeline = FramePipeline::new(&cfg);

    // Warm-up: first run sizes every scratch buffer.
    let warm = pipeline.run(&txs, &SyncScheme::SyncOff, &cfg, 2, 40, &noop);
    assert_eq!(warm.frames_ok, 2, "warm-up link must be clean");

    let mut results = Vec::with_capacity(4);
    let n = allocations_during(|| {
        for seed in 41..45u64 {
            results.push(pipeline.run(&txs, &SyncScheme::SyncOff, &cfg, 3, seed, &noop));
        }
    });
    assert_eq!(n, 0, "warmed pipeline made {n} heap allocations");

    // The alloc-free runs still produce the reference results.
    for (seed, got) in (41..45u64).zip(results) {
        assert_eq!(got, run_scalar(&txs, &SyncScheme::SyncOff, &cfg, 3, seed));
    }
}

#[test]
fn pipeline_results_are_pinned_to_pre_codec_stack_values() {
    // Exact values captured from the pipeline BEFORE the CodecStack trait
    // refactor routed it through `Frame::encode_parts_with` /
    // `Frame::decode_parts_with`: the paper's Manchester+RS path behind the
    // trait must stay bit-identical to the historical code, not just
    // statistically close. Any drift in RNG draw order, RS behavior, or
    // float arithmetic shows up here as an exact-value mismatch.
    use densevlc::e2e::{run, E2eResult};
    use vlc_testbed::{BbbHostMap, Deployment};

    let cfg = E2eConfig::default();
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    let g7 = d.model.channel.gain(7, 0);
    let hosts = BbbHostMap::paper();
    let two = txs();
    let marginal = vec![E2eTx {
        gain: g7 * 0.040,
        host: hosts.host_of(7),
    }];
    let cliff = vec![E2eTx {
        gain: g7 * 0.042,
        host: hosts.host_of(7),
    }];
    let weak = vec![E2eTx {
        gain: 1e-12,
        host: 0,
    }];
    let cases: [(&str, &[E2eTx], u64, usize, E2eResult); 4] = [
        (
            "clean",
            &two,
            40,
            8,
            E2eResult {
                frames_total: 8,
                frames_ok: 8,
                per: 0.0,
                goodput_bps: 33698.39932603201,
                rs_corrections: 0,
            },
        ),
        (
            "marginal",
            &marginal,
            202,
            16,
            E2eResult {
                frames_total: 16,
                frames_ok: 11,
                per: 0.3125,
                goodput_bps: 23167.649536647008,
                rs_corrections: 0,
            },
        ),
        (
            "cliff",
            &cliff,
            202,
            16,
            E2eResult {
                frames_total: 16,
                frames_ok: 12,
                per: 0.25,
                goodput_bps: 25273.79949452401,
                rs_corrections: 0,
            },
        ),
        (
            "weak",
            &weak,
            6,
            4,
            E2eResult {
                frames_total: 4,
                frames_ok: 0,
                per: 1.0,
                goodput_bps: 0.0,
                rs_corrections: 0,
            },
        ),
    ];
    for (name, txs, seed, frames, expected) in cases {
        let got = run(txs, &SyncScheme::SyncOff, &cfg, frames, seed);
        assert_eq!(
            got, expected,
            "case {name} drifted from pre-refactor output"
        );
    }
}

#[test]
fn warmed_pipeline_single_frame_retries_are_zero_alloc() {
    // The ARQ pattern: many one-frame runs through one pipeline.
    let cfg = E2eConfig::default();
    let txs = txs();
    let noop = Registry::noop();
    let mut pipeline = FramePipeline::new(&cfg);
    pipeline.run(&txs, &SyncScheme::SyncOff, &cfg, 1, 50, &noop);

    let n = allocations_during(|| {
        for seed in 51..61u64 {
            pipeline.run(&txs, &SyncScheme::SyncOff, &cfg, 1, seed, &noop);
        }
    });
    assert_eq!(
        n, 0,
        "warmed single-frame retries made {n} heap allocations"
    );
}
