//! The assembled DenseVLC system: testbed + controller + adaptation loop.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::SweepPoint;
use vlc_mac::{BeamspotPlan, Controller, ControllerConfig};
use vlc_telemetry::Registry;
use vlc_testbed::{Deployment, Scenario};
use vlc_trace::Span;

/// The outcome of one adaptation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationRound {
    /// The beamspot plan the controller produced.
    pub plan: BeamspotPlan,
    /// Per-receiver throughput in bit/s under the plan.
    pub per_rx_bps: Vec<f64>,
    /// Total system throughput in bit/s.
    pub system_throughput_bps: f64,
    /// Communication power actually spent, in watts.
    pub power_w: f64,
}

/// A complete DenseVLC system instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    /// The physical deployment (room, grid, receivers, channel).
    pub deployment: Deployment,
    /// The controller (decision logic + configuration).
    pub controller: Controller,
}

impl System {
    /// Assembles a system on a deployment with a power budget in watts.
    pub fn new(deployment: Deployment, budget_w: f64) -> Self {
        let n_tx = deployment.grid.len();
        let n_rx = deployment.receivers.len();
        let controller = Controller::new(ControllerConfig::paper(budget_w), n_tx, n_rx);
        System {
            deployment,
            controller,
        }
    }

    /// A system on one of the paper's Table 6 scenarios.
    pub fn scenario(s: Scenario, budget_w: f64) -> Self {
        System::new(Deployment::scenario(s), budget_w)
    }

    /// Runs one adaptation round on the current (true) channel: the
    /// controller plans beamspots and the model evaluates the result.
    pub fn adapt(&mut self) -> AdaptationRound {
        self.adapt_instrumented(&Registry::noop())
    }

    /// [`Self::adapt`] with telemetry: times the full round under
    /// `sim.adapt_s`, forwards the registry to the controller's planning
    /// phases, and publishes `sim.system_bps`, `sim.power_w`, and one
    /// `sim.rx{i}.bps` gauge per receiver.
    pub fn adapt_instrumented(&mut self, telemetry: &Registry) -> AdaptationRound {
        self.adapt_traced(telemetry, &Span::noop())
    }

    /// [`Self::adapt_instrumented`] recording a `sim.adapt` span under
    /// `parent`, with the controller's `mac.plan` tree nested inside. With
    /// a noop parent this is the instrumented path plus one branch per
    /// span site.
    pub fn adapt_traced(&mut self, telemetry: &Registry, parent: &Span) -> AdaptationRound {
        let adapt = parent.child("sim.adapt");
        let _adapt_span = telemetry.span("sim.adapt_s");
        let plan = self
            .controller
            .plan_traced(&self.deployment.model.channel, telemetry, &adapt);
        let per_rx_bps = self.deployment.model.throughput(&plan.allocation);
        let round = AdaptationRound {
            power_w: self.deployment.model.comm_power(&plan.allocation),
            system_throughput_bps: per_rx_bps.iter().sum(),
            per_rx_bps,
            plan,
        };
        telemetry
            .gauge("sim.system_bps")
            .set(round.system_throughput_bps);
        telemetry.gauge("sim.power_w").set(round.power_w);
        for (i, &bps) in round.per_rx_bps.iter().enumerate() {
            telemetry.gauge(&format!("sim.rx{i}.bps")).set(bps);
        }
        adapt.attr("system_bps", &format!("{:.3}", round.system_throughput_bps));
        adapt.attr("power_w", &format!("{:.6}", round.power_w));
        round
    }

    /// Evaluates the current plan as a sweep point (for curves).
    pub fn evaluate(&self, plan: &BeamspotPlan) -> SweepPoint {
        SweepPoint::evaluate(&self.deployment.model, &plan.allocation)
    }

    /// Moves the receivers and recomputes the channel (mobility loop).
    pub fn move_receivers(&mut self, positions: &[(f64, f64)]) {
        let height = self.deployment.receivers[0].position.z;
        let poses = positions
            .iter()
            .map(|&(x, y)| vlc_geom::Pose::face_up(x, y, height))
            .collect();
        self.deployment.update_receivers(poses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapt_serves_all_receivers_with_enough_budget() {
        let mut sys = System::scenario(Scenario::Two, 1.2);
        let round = sys.adapt();
        assert_eq!(round.plan.beamspots.len(), 4);
        assert!(round.per_rx_bps.iter().all(|&t| t > 0.0));
        assert!(round.power_w <= 1.2 + 1e-9);
    }

    #[test]
    fn tiny_budget_serves_fewer_receivers() {
        let mut sys = System::scenario(Scenario::Two, 0.08); // one TX's worth
        let round = sys.adapt();
        assert_eq!(round.plan.active_txs().len(), 1);
    }

    #[test]
    fn moving_a_receiver_changes_the_plan() {
        let mut sys = System::scenario(Scenario::Two, 1.2);
        let before = sys.adapt();
        // RX1 walks toward the far corner.
        sys.move_receivers(&[(2.6, 2.6), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)]);
        let after = sys.adapt();
        assert_ne!(before.plan.active_txs(), after.plan.active_txs());
        // The moved receiver is still served (cell-free mobility!).
        assert!(after.plan.beamspot_for(0).is_some());
        assert!(after.per_rx_bps[0] > 0.0);
    }

    #[test]
    fn throughput_grows_with_budget() {
        let mut lo = System::scenario(Scenario::Two, 0.3);
        let mut hi = System::scenario(Scenario::Two, 1.2);
        assert!(hi.adapt().system_throughput_bps > lo.adapt().system_throughput_bps);
    }

    #[test]
    fn evaluate_agrees_with_adapt() {
        let mut sys = System::scenario(Scenario::Three, 0.9);
        let round = sys.adapt();
        let point = sys.evaluate(&round.plan);
        assert!((point.system_bps - round.system_throughput_bps).abs() < 1.0);
        assert!((point.power_w - round.power_w).abs() < 1e-9);
        assert_eq!(point.active_txs, round.plan.active_txs().len());
    }

    #[test]
    fn custom_deployment_is_supported() {
        // The builder accepts any deployment, not just the Table 6 ones.
        let d = vlc_testbed::Deployment::simulation(&[(1.0, 1.0), (2.0, 2.0)]);
        let mut sys = System::new(d, 0.6);
        let round = sys.adapt();
        assert_eq!(round.per_rx_bps.len(), 2);
        assert!(round.per_rx_bps.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn per_rx_throughput_sums_to_system() {
        let mut sys = System::scenario(Scenario::One, 1.0);
        let round = sys.adapt();
        let sum: f64 = round.per_rx_bps.iter().sum();
        assert!((sum - round.system_throughput_bps).abs() < 1e-6);
    }
}
