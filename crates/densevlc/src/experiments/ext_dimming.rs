//! Extension (paper §3.4): the bias operating point under dimming.
//!
//! §3.4 observes that centering the bias in the LED's linear region allows
//! the largest maximum swing, and that smaller or larger bias values shrink
//! the usable swing. In a real lighting system the bias *is* the dimming
//! control, so this experiment makes the trade-off concrete: sweeping the
//! bias, it reports the delivered illuminance (lighting quality), the
//! per-TX swing headroom, and the system throughput the heuristic achieves
//! within that headroom.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{heuristic_sweep, throughput_at_power};
use vlc_alloc::HeuristicConfig;
use vlc_channel::IlluminanceMap;
use vlc_geom::AreaOfInterest;
use vlc_led::LedParams;
use vlc_testbed::{Deployment, Scenario};

/// One dimming point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DimmingPoint {
    /// Bias current in amperes.
    pub bias_a: f64,
    /// Maximum per-TX swing at this bias, in amperes.
    pub max_swing_a: f64,
    /// Average illuminance over the area of interest, in lux.
    pub average_lux: f64,
    /// Whether ISO 8995-1 still holds (≥ 500 lux, ≥ 70 %).
    pub iso_pass: bool,
    /// System throughput at the comparison budget, bit/s.
    pub system_bps: f64,
}

/// The dimming-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtDimming {
    /// Comparison power budget in watts.
    pub budget_w: f64,
    /// One entry per bias point.
    pub points: Vec<DimmingPoint>,
}

/// Sweeps the bias across the linear region in the Fig. 7 scenario.
pub fn run(biases_a: &[f64], budget_w: f64) -> ExtDimming {
    assert!(!biases_a.is_empty() && budget_w > 0.0);
    let nominal = LedParams::cree_xte_paper();
    let base = Deployment::simulation(&Scenario::Two.rx_positions());
    let area = AreaOfInterest::paper(&base.room);
    let points = biases_a
        .iter()
        .map(|&bias_a| {
            let led = nominal.rebias(bias_a);
            let mut model = base.model.clone();
            model.led = led;
            let curve = heuristic_sweep(&model, &HeuristicConfig::paper());
            let system_bps = throughput_at_power(&curve, budget_w);
            let map = IlluminanceMap::compute(
                &base.grid.poses(),
                led.luminous_flux_lm,
                base.half_power_semi_angle,
                &area,
                0.8,
                0.1,
            );
            let stats = map.stats();
            DimmingPoint {
                bias_a,
                max_swing_a: led.max_swing,
                average_lux: stats.average_lux,
                iso_pass: stats.meets_iso_8995(),
                system_bps,
            }
        })
        .collect();
    ExtDimming { budget_w, points }
}

impl ExtDimming {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Extension (§3.4) — bias/dimming operating point at {} W\n  bias[mA]   max swing[mA]   avg lux   ISO   system[Mb/s]\n",
            self.budget_w
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>7.0}   {:>12.0}   {:>7.0}   {}   {:>9.3}\n",
                p.bias_a * 1e3,
                p.max_swing_a * 1e3,
                p.average_lux,
                if p.iso_pass { "pass" } else { "FAIL" },
                p.system_bps / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_bias_dominates_throughput() {
        // §3.4: the centered bias allows the largest swing, hence the
        // highest throughput at a given budget.
        let ext = run(&[0.15, 0.45, 0.75], 0.6);
        let t = |i: usize| ext.points[i].system_bps;
        assert!(t(1) >= t(0), "nominal {} < dim {}", t(1), t(0));
        assert!(t(1) >= t(2), "nominal {} < bright {}", t(1), t(2));
    }

    #[test]
    fn deep_dimming_fails_iso_but_keeps_communicating() {
        let ext = run(&[0.1, 0.45], 0.3);
        assert!(
            !ext.points[0].iso_pass,
            "100 lux-scale light cannot pass ISO"
        );
        assert!(ext.points[0].system_bps > 0.0, "dimmed system went silent");
        assert!(ext.points[1].iso_pass);
    }

    #[test]
    fn swing_headroom_peaks_at_the_center() {
        let ext = run(&[0.2, 0.45, 0.7], 0.3);
        assert!(ext.points[1].max_swing_a > ext.points[0].max_swing_a);
        assert!(ext.points[1].max_swing_a > ext.points[2].max_swing_a);
    }

    #[test]
    fn lux_scales_with_bias() {
        let ext = run(&[0.225, 0.45], 0.3);
        let ratio = ext.points[1].average_lux / ext.points[0].average_lux;
        assert!((ratio - 2.0).abs() < 0.05, "lux ratio {ratio}");
    }

    #[test]
    fn report_flags_iso() {
        let rep = run(&[0.1, 0.45], 0.3).report();
        assert!(rep.contains("FAIL") && rep.contains("pass"));
    }
}
