//! Extension: mobility tracking — what the fast heuristic buys end to end.
//!
//! The paper motivates the heuristic with "fast adaptation" (§2.1) and
//! §5's 0.07 s runtime, but never closes the loop to throughput under
//! motion. This experiment does: a receiver crosses the room at a sweep of
//! speeds while the controller re-plans once per adaptation round (whose
//! duration comes from the full §3.2 timeline: TDM sounding, WiFi reports,
//! decision, multicast reconfiguration). Between rounds the plan is
//! stale. We report the moving receiver's throughput retention vs an
//! always-fresh oracle, for the heuristic's decision time and for a
//! hypothetical solver that needs seconds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_geom::Pose;
use vlc_mac::{simulate_round, EthernetMulticast, PilotSchedule, WifiUplink};
use vlc_testbed::{Deployment, Scenario};

/// One (speed, decision-time) cell of the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackingPoint {
    /// Receiver speed in m/s.
    pub speed_mps: f64,
    /// Decision time of the allocation algorithm in seconds.
    pub decision_s: f64,
    /// Adaptation round duration in seconds.
    pub round_s: f64,
    /// Mean throughput of the moving receiver relative to an oracle that
    /// re-plans continuously, in `[0, 1]`.
    pub retention: f64,
}

/// The mobility-tracking result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtAdaptation {
    /// All sweep cells.
    pub points: Vec<TrackingPoint>,
}

/// Runs the study: for each (speed, decision time), RX1 walks a 2 m
/// straight line while the other receivers hold still.
pub fn run(speeds_mps: &[f64], decision_times_s: &[f64], seed: u64) -> ExtAdaptation {
    assert!(!speeds_mps.is_empty() && !decision_times_s.is_empty());
    let schedule = PilotSchedule::full_sweep(36, 1e-3);
    let wifi = WifiUplink::paper();
    let eth = EthernetMulticast::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let budget_w = 1.2;

    let mut points = Vec::new();
    for &decision_s in decision_times_s {
        // One representative round duration per decision time.
        let round_s = simulate_round(&schedule, 4, 9, decision_s, &wifi, &eth, &mut rng).total_s();
        for &speed_mps in speeds_mps {
            let mut deployment = Deployment::scenario(Scenario::Two);
            let controller =
                vlc_mac::Controller::new(vlc_mac::ControllerConfig::paper(budget_w), 36, 4);

            // RX1 walks from (0.6, 0.9) to (2.6, 0.9): 2 m.
            let path_len = 2.0;
            let steps = 100usize;
            let dt = path_len / speed_mps / steps as f64;
            let mut plan = controller.plan(&deployment.model.channel);
            let mut since_replan = 0.0;
            let mut got = 0.0;
            let mut oracle = 0.0;
            for step in 0..steps {
                let x = 0.6 + path_len * step as f64 / steps as f64;
                let rxs = vec![
                    Pose::face_up(x, 0.9, 0.0),
                    Pose::face_up(1.65, 0.65, 0.0),
                    Pose::face_up(0.72, 1.93, 0.0),
                    Pose::face_up(1.99, 1.69, 0.0),
                ];
                deployment.update_receivers(rxs);
                since_replan += dt;
                if since_replan >= round_s {
                    plan = controller.plan(&deployment.model.channel);
                    since_replan = 0.0;
                }
                let fresh = controller.plan(&deployment.model.channel);
                got += deployment.model.throughput(&plan.allocation)[0];
                oracle += deployment.model.throughput(&fresh.allocation)[0];
            }
            points.push(TrackingPoint {
                speed_mps,
                decision_s,
                round_s,
                retention: if oracle > 0.0 { got / oracle } else { 1.0 },
            });
        }
    }
    ExtAdaptation { points }
}

impl ExtAdaptation {
    /// The retention for a (speed, decision-time) pair.
    pub fn retention(&self, speed_mps: f64, decision_s: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| {
                (p.speed_mps - speed_mps).abs() < 1e-9 && (p.decision_s - decision_s).abs() < 1e-12
            })
            .map(|p| p.retention)
    }

    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "Extension — mobility tracking: moving-RX throughput retention vs an always-fresh oracle\n  speed[m/s]   decision[s]   round[s]   retention\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>8.2}   {:>9.3}   {:>8.3}   {:>7.1} %\n",
                p.speed_mps,
                p.decision_s,
                p.round_s,
                p.retention * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_rounds_track_walking_speed() {
        let ext = run(&[1.0], &[0.07], 1);
        let r = ext.retention(1.0, 0.07).expect("cell exists");
        assert!(r > 0.9, "retention {r} at walking speed with the heuristic");
    }

    #[test]
    fn slow_solvers_lose_throughput_under_motion() {
        // A 5 s decision time (still 30× faster than fmincon!) visibly
        // hurts a walking receiver.
        let ext = run(&[1.0], &[0.07, 5.0], 2);
        let fast = ext.retention(1.0, 0.07).expect("cell");
        let slow = ext.retention(1.0, 5.0).expect("cell");
        assert!(slow < fast, "slow {slow} !< fast {fast}");
        assert!(slow < 0.9, "slow solver retained {slow}");
    }

    #[test]
    fn faster_receivers_are_harder_to_track() {
        let ext = run(&[0.5, 4.0], &[0.3], 3);
        let slow_rx = ext.retention(0.5, 0.3).expect("cell");
        let fast_rx = ext.retention(4.0, 0.3).expect("cell");
        assert!(
            fast_rx <= slow_rx + 1e-9,
            "fast {fast_rx} vs slow {slow_rx}"
        );
    }

    #[test]
    fn report_has_a_row_per_cell() {
        let ext = run(&[1.0, 2.0], &[0.07], 4);
        assert_eq!(ext.report().lines().count(), 2 + 2);
    }
}
