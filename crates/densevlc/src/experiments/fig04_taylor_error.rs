//! Fig. 4: Taylor-approximation error on LED power consumption vs swing.
//!
//! The paper validates its second-order power model by plotting the
//! relative error against the exact Shockley model across swing levels,
//! finding 0.45 % at the 900 mA maximum.

use crate::experiments::format_series;
use serde::{Deserialize, Serialize};
use vlc_led::power::taylor_relative_error_total;
use vlc_led::LedParams;

/// Result of the Fig. 4 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04 {
    /// `(swing in mA, relative error in %)` pairs.
    pub points: Vec<(f64, f64)>,
    /// The error at the device's maximum swing, in %.
    pub error_at_max_pct: f64,
}

/// Sweeps the swing from 0 to `Isw,max` in `steps` points.
pub fn run(led: &LedParams, steps: usize) -> Fig04 {
    assert!(steps >= 2, "need at least two sweep points");
    let points: Vec<(f64, f64)> = (0..=steps)
        .map(|i| {
            let swing = led.max_swing * i as f64 / steps as f64;
            (swing * 1e3, taylor_relative_error_total(led, swing) * 100.0)
        })
        .collect();
    let error_at_max_pct = points.last().expect("non-empty sweep").1;
    Fig04 {
        points,
        error_at_max_pct,
    }
}

impl Fig04 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut s = format_series(
            "Fig. 4 — Taylor power-model error vs swing (paper: 0.45 % @ 900 mA)\n  swing [mA]    error",
            &self.points,
            "%",
        );
        s.push_str(&format!(
            "  error at max swing: {:.3} % (paper: 0.45 %)\n",
            self.error_at_max_pct
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_anchor() {
        let fig = run(&LedParams::cree_xte_paper(), 90);
        assert!(
            (fig.error_at_max_pct - 0.45).abs() < 0.15,
            "{}",
            fig.error_at_max_pct
        );
    }

    #[test]
    fn error_curve_is_monotone() {
        let fig = run(&LedParams::cree_xte_paper(), 45);
        for w in fig.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        assert_eq!(fig.points[0].1, 0.0);
    }

    #[test]
    fn report_mentions_anchor() {
        let fig = run(&LedParams::cree_xte_paper(), 10);
        assert!(fig.report().contains("0.45"));
    }
}
