//! Extension (paper §9): receiver orientation.
//!
//! The paper notes that "both the optimization problem and the heuristic
//! are not limited to facing up receivers, and work for all receiver
//! orientation", without evaluating it. This experiment tilts the Fig. 7
//! receivers away from the vertical by a sweep of angles (each receiver
//! tilted toward the room center, the worst realistic pose for ceiling
//! light) and re-runs the heuristic to quantify the throughput cost and
//! confirm the pipeline keeps working.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{heuristic_sweep, throughput_at_power};
use vlc_alloc::model::SystemModel;
use vlc_alloc::HeuristicConfig;
use vlc_channel::{ChannelMatrix, RxOptics};
use vlc_geom::{Pose, Room, TxGrid};

/// One tilt point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiltPoint {
    /// Tilt away from vertical, in degrees.
    pub tilt_deg: f64,
    /// System throughput at the comparison budget, bit/s.
    pub system_bps: f64,
    /// Number of receivers still served (positive throughput).
    pub served: usize,
}

/// The orientation-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtOrientation {
    /// Comparison budget in watts.
    pub budget_w: f64,
    /// One entry per tilt.
    pub points: Vec<TiltPoint>,
}

/// Runs the tilt sweep on the Fig. 7 receiver positions.
pub fn run(tilts_deg: &[f64], budget_w: f64) -> ExtOrientation {
    assert!(!tilts_deg.is_empty() && budget_w > 0.0);
    let room = Room::paper_simulation();
    let grid = TxGrid::paper(&room);
    let center = room.floor_center();
    let rx_xy = [(0.92, 0.92), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)];
    let points = tilts_deg
        .iter()
        .map(|&tilt_deg| {
            let tilt = tilt_deg.to_radians();
            let receivers: Vec<Pose> = rx_xy
                .iter()
                .map(|&(x, y)| {
                    // Tilt toward the room center (azimuth of the center as
                    // seen from the receiver).
                    let azimuth = (center.y - y).atan2(center.x - x) + std::f64::consts::PI;
                    Pose::tilted(x, y, 0.8, tilt, azimuth)
                })
                .collect();
            let channel =
                ChannelMatrix::compute(&grid, &receivers, 15f64.to_radians(), &RxOptics::paper());
            let model = SystemModel::paper(channel);
            let curve = heuristic_sweep(&model, &HeuristicConfig::paper());
            let system_bps = throughput_at_power(&curve, budget_w);
            let point = curve
                .iter()
                .min_by(|a, b| {
                    (a.power_w - budget_w)
                        .abs()
                        .partial_cmp(&(b.power_w - budget_w).abs())
                        .expect("finite")
                })
                .expect("non-empty");
            TiltPoint {
                tilt_deg,
                system_bps,
                served: point.per_rx_bps.iter().filter(|&&t| t > 0.0).count(),
            }
        })
        .collect();
    ExtOrientation { budget_w, points }
}

impl ExtOrientation {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Extension (§9) — receiver tilt (away from room center) at {} W\n  tilt[°]   system[Mb/s]   RXs served\n",
            self.budget_w
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6.0}   {:>10.3}   {:>6}/4\n",
                p.tilt_deg,
                p.system_bps / 1e6,
                p.served
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upright_matches_the_standard_pipeline() {
        let ext = run(&[0.0], 1.2);
        assert_eq!(ext.points[0].served, 4);
        assert!(ext.points[0].system_bps > 1e6);
    }

    #[test]
    fn moderate_tilts_degrade_gracefully() {
        // The pipeline must keep all four receivers served at office-like
        // tilts, with throughput falling monotonically-ish.
        let ext = run(&[0.0, 15.0, 30.0], 1.2);
        for p in &ext.points {
            assert_eq!(p.served, 4, "tilt {}° lost a receiver", p.tilt_deg);
        }
        assert!(ext.points[2].system_bps < ext.points[0].system_bps);
    }

    #[test]
    fn extreme_tilt_costs_real_throughput() {
        let ext = run(&[0.0, 60.0], 1.2);
        assert!(
            ext.points[1].system_bps < 0.8 * ext.points[0].system_bps,
            "60° tilt barely hurt: {} vs {}",
            ext.points[1].system_bps,
            ext.points[0].system_bps
        );
    }

    #[test]
    fn report_has_row_per_tilt() {
        let rep = run(&[0.0, 45.0], 0.9).report();
        assert_eq!(rep.lines().count(), 2 + 2);
    }

    #[test]
    fn vec3_center_is_room_center() {
        // Guard: the azimuth math above assumes floor_center at (1.5, 1.5).
        let c = Room::paper_simulation().floor_center();
        assert_eq!((c.x, c.y), (1.5, 1.5));
    }
}
