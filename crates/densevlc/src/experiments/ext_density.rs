//! Extension (paper §9): impact of TX and RX density.
//!
//! The paper's §9 argues: "The lower the TX density, the less degrees of
//! freedom we have to serve the users. This results in both a lower system
//! throughput and user fairness", and defers the evaluation. This
//! experiment sweeps the ceiling-grid density (keeping the same room and
//! illumination-normalized flux) and the receiver count, and reports system
//! throughput plus Jain's fairness index.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{heuristic_sweep, jain_fairness, throughput_at_power};
use vlc_alloc::model::SystemModel;
use vlc_alloc::HeuristicConfig;
use vlc_channel::{ChannelMatrix, NoiseParams, RxOptics};
use vlc_geom::{Pose, Room, TxGrid};

/// One grid-density point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityPoint {
    /// Grid side (the grid is `side × side`).
    pub side: usize,
    /// System throughput at the comparison budget, bit/s.
    pub system_bps: f64,
    /// Jain's fairness index over per-RX throughputs, in `(0, 1]`.
    pub fairness: f64,
}

/// The density-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtDensity {
    /// Budget the comparison runs at, in watts.
    pub budget_w: f64,
    /// One entry per grid side.
    pub points: Vec<DensityPoint>,
}

/// Sweeps `side × side` grids (the same 3 m × 3 m room, pitch scaled to
/// keep the grid centered and spanning) at one budget.
pub fn run(sides: &[usize], budget_w: f64) -> ExtDensity {
    assert!(!sides.is_empty() && budget_w > 0.0);
    let room = Room::paper_simulation();
    let rxs: Vec<Pose> = [(0.92, 0.92), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)]
        .iter()
        .map(|&(x, y)| Pose::face_up(x, y, 0.8))
        .collect();
    let points = sides
        .iter()
        .map(|&side| {
            assert!(side >= 2, "grid side must be ≥ 2");
            // Keep the outermost TXs at the paper's 0.25 m margin.
            let pitch = 2.5 / (side - 1) as f64;
            let grid = TxGrid::centered(&room, side, side, pitch);
            let channel =
                ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
            let mut model = SystemModel::paper(channel);
            model.noise = NoiseParams::paper();
            let curve = heuristic_sweep(&model, &HeuristicConfig::paper());
            let system_bps = throughput_at_power(&curve, budget_w);
            // Fairness at the closest sweep point to the budget.
            let point = curve
                .iter()
                .min_by(|a, b| {
                    (a.power_w - budget_w)
                        .abs()
                        .partial_cmp(&(b.power_w - budget_w).abs())
                        .expect("finite")
                })
                .expect("non-empty curve");
            DensityPoint {
                side,
                system_bps,
                fairness: jain_fairness(&point.per_rx_bps),
            }
        })
        .collect();
    ExtDensity { budget_w, points }
}

impl ExtDensity {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Extension (§9) — TX density at {} W (κ = 1.3 heuristic)\n  grid     TXs   system[Mb/s]   Jain fairness\n",
            self.budget_w
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {0}×{0}   {1:>5}   {2:>10.3}   {3:>10.3}\n",
                p.side,
                p.side * p.side,
                p.system_bps / 1e6,
                p.fairness
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_grids_win_throughput_and_fairness() {
        // §9's claim: lower TX density → lower throughput *and* fairness.
        let ext = run(&[3, 6], 1.2);
        let sparse = &ext.points[0];
        let dense = &ext.points[1];
        assert!(
            dense.system_bps > sparse.system_bps,
            "dense {} vs sparse {}",
            dense.system_bps,
            sparse.system_bps
        );
        assert!(
            dense.fairness >= sparse.fairness - 0.02,
            "dense fairness {} vs sparse {}",
            dense.fairness,
            sparse.fairness
        );
    }

    #[test]
    fn report_lists_every_grid() {
        let rep = run(&[4, 6], 0.9).report();
        assert!(rep.contains("4×4") && rep.contains("6×6"));
    }
}
