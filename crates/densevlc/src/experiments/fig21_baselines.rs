//! Fig. 21: DenseVLC vs SISO and D-MISO power efficiency.
//!
//! The paper compares the κ = 1.3 heuristic curve against the two fixed
//! baselines in Scenario 2: SISO (nearest TX per RX, 298 mW) crosses the
//! DenseVLC curve — same power efficiency but no headroom — while D-MISO
//! needs 2.68 W for throughput DenseVLC reaches at 1.19 W. Headlines:
//! 2.3× better power efficiency than D-MISO and +45 % throughput over
//! SISO's operating point.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{compare_efficiency, heuristic_sweep, power_to_reach, SweepPoint};
use vlc_alloc::baselines::{dmiso_nearest_geometric, siso_allocation};
use vlc_alloc::HeuristicConfig;
use vlc_testbed::{Deployment, Scenario};

/// The Fig. 21 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig21 {
    /// The κ = 1.3 DenseVLC sweep curve.
    pub densevlc_curve: Vec<SweepPoint>,
    /// SISO operating point `(power W, system bit/s)`.
    pub siso: (f64, f64),
    /// D-MISO operating point `(power W, system bit/s)`.
    pub dmiso: (f64, f64),
    /// Power DenseVLC needs to match D-MISO's throughput, in watts.
    pub densevlc_power_at_dmiso_w: f64,
    /// The power-efficiency gain over D-MISO (paper: 2.3×).
    pub efficiency_gain: f64,
    /// Throughput gain of DenseVLC's D-MISO-matching point over SISO's
    /// operating point (paper: +45 %).
    pub throughput_gain_vs_siso: f64,
}

/// Runs the comparison on a scenario (the paper plots Scenario 2).
pub fn run(scenario: Scenario) -> Fig21 {
    let d = Deployment::scenario(scenario);
    let model = &d.model;
    let curve = heuristic_sweep(model, &HeuristicConfig::paper());

    let siso_alloc = siso_allocation(&model.channel, &model.led);
    let siso = (
        model.comm_power(&siso_alloc),
        model.system_throughput(&siso_alloc),
    );

    let dmiso_alloc = dmiso_nearest_geometric(&d.grid, &d.rx_positions(), &model.led);
    let cmp = compare_efficiency(model, &curve, &dmiso_alloc);

    let densevlc_power_at_dmiso_w =
        power_to_reach(&curve, cmp.baseline_bps).unwrap_or(f64::INFINITY);
    Fig21 {
        densevlc_curve: curve,
        siso,
        dmiso: (cmp.baseline_power_w, cmp.baseline_bps),
        densevlc_power_at_dmiso_w,
        efficiency_gain: cmp.power_efficiency_gain,
        throughput_gain_vs_siso: cmp.baseline_bps / siso.1 - 1.0,
    }
}

impl Fig21 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let max = self
            .densevlc_curve
            .iter()
            .map(|p| p.system_bps)
            .fold(0.0, f64::max);
        let mut out = String::from(
            "Fig. 21 — DenseVLC (κ=1.3) vs SISO and D-MISO, normalized system throughput\n  P[W]   normalized\n",
        );
        for p in self.densevlc_curve.iter().step_by(3) {
            out.push_str(&format!(
                "  {:>5.2}  {:>6.3}\n",
                p.power_w,
                p.system_bps / max
            ));
        }
        out.push_str(&format!(
            "  SISO point:   {:.3} W → {:.3} normalized (paper: 0.298 W → 0.63)\n",
            self.siso.0,
            self.siso.1 / max
        ));
        out.push_str(&format!(
            "  D-MISO point: {:.3} W → {:.3} normalized (paper: 2.68 W → 0.94)\n",
            self.dmiso.0,
            self.dmiso.1 / max
        ));
        out.push_str(&format!(
            "  DenseVLC matches D-MISO at {:.3} W → {:.2}× power efficiency (paper: 1.19 W, 2.3×)\n",
            self.densevlc_power_at_dmiso_w, self.efficiency_gain
        ));
        out.push_str(&format!(
            "  throughput gain at that point vs SISO: {:+.1} % (paper: +45 %)\n",
            self.throughput_gain_vs_siso * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_points_match_paper_power() {
        let fig = run(Scenario::Two);
        assert!(
            (fig.siso.0 - 0.298).abs() < 0.005,
            "SISO power {}",
            fig.siso.0
        );
        assert!(
            (fig.dmiso.0 - 2.68).abs() < 0.01,
            "D-MISO power {}",
            fig.dmiso.0
        );
    }

    #[test]
    fn densevlc_beats_dmiso_efficiency() {
        let fig = run(Scenario::Two);
        assert!(
            fig.efficiency_gain > 1.4,
            "efficiency gain {} (paper: 2.3)",
            fig.efficiency_gain
        );
        assert!(fig.densevlc_power_at_dmiso_w < fig.dmiso.0);
    }

    #[test]
    fn densevlc_beats_siso_throughput() {
        let fig = run(Scenario::Two);
        assert!(
            fig.throughput_gain_vs_siso > 0.2,
            "throughput gain {} (paper: 0.45)",
            fig.throughput_gain_vs_siso
        );
    }

    #[test]
    fn conclusion_holds_in_scenario3_too() {
        // §8.3: "the conclusion is also valid for the other scenarios".
        let fig = run(Scenario::Three);
        assert!(fig.efficiency_gain > 1.2, "gain {}", fig.efficiency_gain);
    }

    #[test]
    fn report_mentions_both_baselines() {
        let rep = run(Scenario::Two).report();
        assert!(rep.contains("SISO") && rep.contains("D-MISO"));
    }
}
