//! Extension (paper §9): personalized, adaptive per-TX κ.
//!
//! The paper leaves as future work the observation that per-TX κ values
//! "can boost the system performance towards the optimal result". This
//! experiment quantifies the boost: for several budgets on the Fig. 7
//! instance, it compares the uniform-κ heuristic, the adapted per-TX-κ
//! heuristic, and the optimal solver.

use serde::{Deserialize, Serialize};
use vlc_alloc::adaptive::{adapt_per_tx_kappa, KappaAdaptConfig};
use vlc_alloc::heuristic::heuristic_allocation;
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_testbed::{Deployment, Scenario};

/// One budget point of the extension study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtKappaPoint {
    /// Budget in watts.
    pub budget_w: f64,
    /// Uniform-κ heuristic system throughput, bit/s.
    pub uniform_bps: f64,
    /// Adapted per-TX-κ heuristic system throughput, bit/s.
    pub adapted_bps: f64,
    /// Optimal system throughput, bit/s.
    pub optimal_bps: f64,
}

impl ExtKappaPoint {
    /// Fraction of the uniform-to-optimal gap the adaptation recovers
    /// (1.0 = reaches the optimum, 0.0 = no help).
    pub fn gap_recovered(&self) -> f64 {
        let gap = self.optimal_bps - self.uniform_bps;
        if gap <= 0.0 {
            return 1.0;
        }
        ((self.adapted_bps - self.uniform_bps) / gap).clamp(-1.0, 1.0)
    }
}

/// The extension-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtKappa {
    /// One entry per budget.
    pub points: Vec<ExtKappaPoint>,
}

/// Runs the study on the Fig. 7 instance starting from uniform κ.
pub fn run(budgets_w: &[f64], start_kappa: f64) -> ExtKappa {
    assert!(!budgets_w.is_empty());
    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let solver = OptimalSolver::quick();
    let adapt_cfg = KappaAdaptConfig::default();
    let points = budgets_w
        .iter()
        .map(|&budget_w| {
            let start = HeuristicConfig::with_kappa(start_kappa);
            let uniform = heuristic_allocation(&model.channel, &model.led, budget_w, &start);
            let adapted_cfg = adapt_per_tx_kappa(&model, budget_w, &start, &adapt_cfg);
            let adapted =
                heuristic_allocation(&model.channel, &model.led, budget_w, &adapted_cfg.config);
            ExtKappaPoint {
                budget_w,
                uniform_bps: model.system_throughput(&uniform),
                adapted_bps: model.system_throughput(&adapted),
                optimal_bps: model.system_throughput(&solver.solve(&model, budget_w).allocation),
            }
        })
        .collect();
    ExtKappa { points }
}

impl ExtKappa {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "Extension (§9) — adaptive per-TX κ vs uniform κ vs optimal\n  budget[W]   uniform[Mb/s]   adapted[Mb/s]   optimal[Mb/s]   gap recovered\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>7.2}   {:>11.3}   {:>11.3}   {:>11.3}   {:>10.0} %\n",
                p.budget_w,
                p.uniform_bps / 1e6,
                p.adapted_bps / 1e6,
                p.optimal_bps / 1e6,
                p.gap_recovered() * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_recovers_gap_from_kappa_one() {
        // κ = 1.0 leaves a big gap to the optimum (paper: 40 % loss);
        // per-TX adaptation must recover a large share of it.
        let ext = run(&[0.9], 1.0);
        let p = &ext.points[0];
        assert!(p.adapted_bps >= p.uniform_bps);
        assert!(
            p.gap_recovered() > 0.5,
            "recovered only {:.0} % of the gap",
            p.gap_recovered() * 100.0
        );
    }

    #[test]
    fn adaptation_is_harmless_from_a_good_start() {
        let ext = run(&[1.2], 1.3);
        let p = &ext.points[0];
        assert!(p.adapted_bps >= p.uniform_bps * 0.999);
    }

    #[test]
    fn report_has_one_row_per_budget() {
        let ext = run(&[0.6, 1.2], 1.3);
        assert_eq!(ext.report().lines().count(), 2 + 2);
    }
}
