//! Fig. 9: optimal swing levels vs communication power (the Fig. 7
//! instance).
//!
//! The paper plots, for TX1–TX18, the optimal swing toward RX1 and RX2 as
//! the power budget grows. The observations that drive the whole practical
//! design: the optimum assigns power *sequentially* to each receiver's
//! preferred TXs (Insight 1), and each TX's swing snaps from zero to full
//! quickly (Insight 2), so gray (partial-swing) regions are rare.

use serde::{Deserialize, Serialize};
use vlc_alloc::model::SystemModel;
use vlc_alloc::OptimalSolver;
use vlc_testbed::{Deployment, Scenario};

/// The Fig. 9 result: swing maps for two receivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig09 {
    /// The swept budgets in watts.
    pub budgets_w: Vec<f64>,
    /// `swings_rx1[b][tx]`: optimal swing of TX `tx` toward RX1 at budget
    /// index `b` (TXs 0..n_tx, amperes).
    pub swings_rx1: Vec<Vec<f64>>,
    /// Same toward RX2.
    pub swings_rx2: Vec<Vec<f64>>,
    /// Fraction of (budget, active-TX) cells at neither zero nor full swing
    /// — the paper's "gray area" share, which should be small.
    pub partial_fraction: f64,
}

/// Solves the optimal allocation across budgets on the Fig. 7 instance.
pub fn run(budgets_w: &[f64]) -> Fig09 {
    assert!(!budgets_w.is_empty());
    let model: SystemModel = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let solver = OptimalSolver::quick();
    let mut swings_rx1 = Vec::with_capacity(budgets_w.len());
    let mut swings_rx2 = Vec::with_capacity(budgets_w.len());
    let mut partial = 0usize;
    let mut active = 0usize;
    let full = model.led.max_swing;
    for &b in budgets_w {
        let report = solver.solve(&model, b);
        let a = &report.allocation;
        swings_rx1.push((0..model.n_tx()).map(|t| a.swing(t, 0)).collect());
        swings_rx2.push((0..model.n_tx()).map(|t| a.swing(t, 1)).collect());
        for t in 0..model.n_tx() {
            for r in 0..model.n_rx() {
                let s = a.swing(t, r);
                if s > 0.02 * full {
                    active += 1;
                    if s < 0.9 * full {
                        partial += 1;
                    }
                }
            }
        }
    }
    Fig09 {
        budgets_w: budgets_w.to_vec(),
        swings_rx1,
        swings_rx2,
        partial_fraction: if active == 0 {
            0.0
        } else {
            partial as f64 / active as f64
        },
    }
}

impl Fig09 {
    /// Paper-style text rendering: one row per TX1–TX18, one column per
    /// budget, `.` = off, `o` = partial, `#` = full swing.
    pub fn report(&self) -> String {
        let glyph = |s: f64| {
            if s < 0.018 {
                '.'
            } else if s < 0.81 {
                'o'
            } else {
                '#'
            }
        };
        let mut out = String::from(
            "Fig. 9 — optimal swing maps (rows TX1-TX18, cols = rising budget; . off, o partial, # full)\n",
        );
        for (label, map) in [("RX1", &self.swings_rx1), ("RX2", &self.swings_rx2)] {
            out.push_str(&format!("  stream to {label}:\n"));
            for tx in 0..18.min(map[0].len()) {
                out.push_str(&format!("   TX{:>2} ", tx + 1));
                for budget_map in map.iter() {
                    out.push(glyph(budget_map[tx]));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "  partial-swing share of active cells: {:.1} % (paper: negligible)\n",
            self.partial_fraction * 100.0
        ));
        out
    }

    /// Insight 1 check: the budget at which each TX first activates toward
    /// a receiver, in ranked order (lower = earlier).
    pub fn activation_budget(&self, rx1: bool, tx: usize) -> Option<f64> {
        let map = if rx1 {
            &self.swings_rx1
        } else {
            &self.swings_rx2
        };
        (0..self.budgets_w.len())
            .find(|&b| map[b][tx] > 0.02)
            .map(|b| self.budgets_w[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> Vec<f64> {
        (1..=10).map(|i| 0.2 * i as f64).collect()
    }

    #[test]
    fn best_txs_activate_first() {
        let fig = run(&budgets());
        let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
        let best_rx1 = model.channel.best_tx_for(0);
        // RX1's best TX activates at the smallest budget in the sweep.
        let b_best = fig.activation_budget(true, best_rx1).expect("activates");
        assert!(b_best <= 0.4, "best TX activated only at {b_best} W");
    }

    #[test]
    fn partial_swing_cells_are_minority() {
        // Insight 2: the optimum is (mostly) binary.
        let fig = run(&budgets());
        assert!(
            fig.partial_fraction < 0.5,
            "partial fraction {}",
            fig.partial_fraction
        );
    }

    #[test]
    fn more_budget_activates_more_txs() {
        let fig = run(&[0.2, 1.6]);
        let active = |m: &Vec<f64>| m.iter().filter(|&&s| s > 0.02).count();
        let lo = active(&fig.swings_rx1[0]) + active(&fig.swings_rx2[0]);
        let hi = active(&fig.swings_rx1[1]) + active(&fig.swings_rx2[1]);
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn report_draws_18_tx_rows_per_stream() {
        let fig = run(&[0.4, 0.8]);
        let rep = fig.report();
        // 18 TX rows per stream × 2 streams, plus the two header mentions.
        assert_eq!(rep.matches("TX").count(), 38);
    }
}
