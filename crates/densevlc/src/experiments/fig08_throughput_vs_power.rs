//! Fig. 8: average throughput vs communication power under the optimal
//! policy, over random receiver placements with 95 % confidence intervals.
//!
//! The paper gradually raises the power budget, solves the optimization
//! problem for 100 random placements (Fig. 6), and plots system and per-RX
//! throughput. The headline shapes: throughput rises with the budget;
//! user fairness keeps per-RX curves balanced; the marginal gain drops
//! beyond ≈ 1.2 W; RX3 and RX4 edge out RX1 and RX2 at high budgets thanks
//! to more non-interfering TXs.

use crate::experiments::mean_ci95;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_alloc::OptimalSolver;
use vlc_testbed::{random_instances, Deployment};

/// One budget point of the Fig. 8 curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig08Point {
    /// Power budget in watts.
    pub budget_w: f64,
    /// Mean system throughput in bit/s and its 95 % CI half-width.
    pub system_bps: (f64, f64),
    /// Per-RX mean throughput and CI half-width.
    pub per_rx_bps: Vec<(f64, f64)>,
}

/// The Fig. 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig08 {
    /// One entry per budget.
    pub points: Vec<Fig08Point>,
    /// Number of random instances averaged.
    pub instances: usize,
}

/// Runs the sweep: `instances` random placements × the given budgets.
pub fn run(budgets_w: &[f64], instances: usize, seed: u64) -> Fig08 {
    assert!(!budgets_w.is_empty() && instances > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let placements = random_instances(instances, 0.35, &mut rng);
    let solver = OptimalSolver::quick();
    let models: Vec<_> = placements
        .iter()
        .map(|p| Deployment::simulation(p).model)
        .collect();

    let points = budgets_w
        .iter()
        .map(|&budget_w| {
            let mut sys = Vec::with_capacity(instances);
            let mut per_rx: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(instances)).collect();
            for model in &models {
                let report = solver.solve(model, budget_w);
                let t = model.throughput(&report.allocation);
                sys.push(t.iter().sum());
                for (k, &v) in t.iter().enumerate() {
                    per_rx[k].push(v);
                }
            }
            Fig08Point {
                budget_w,
                system_bps: mean_ci95(&sys),
                per_rx_bps: per_rx.iter().map(|v| mean_ci95(v)).collect(),
            }
        })
        .collect();
    Fig08 { points, instances }
}

impl Fig08 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut s = format!(
            "Fig. 8 — optimal throughput vs power budget ({} instances, 95 % CI)\n\
             budget[W]   system[Mb/s]          RX1          RX2          RX3          RX4\n",
            self.instances
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:>6.2}   {:>6.3}±{:<5.3}",
                p.budget_w,
                p.system_bps.0 / 1e6,
                p.system_bps.1 / 1e6
            ));
            for (m, ci) in &p.per_rx_bps {
                s.push_str(&format!("  {:>5.3}±{:<4.3}", m / 1e6, ci / 1e6));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_with_budget() {
        let fig = run(&[0.3, 1.2], 4, 7);
        assert!(fig.points[1].system_bps.0 > fig.points[0].system_bps.0);
    }

    #[test]
    fn fairness_keeps_rx_curves_balanced() {
        // Sum-log fairness: no receiver may be starved relative to the rest.
        let fig = run(&[0.9], 4, 8);
        let means: Vec<f64> = fig.points[0].per_rx_bps.iter().map(|(m, _)| *m).collect();
        let max = means.iter().copied().fold(f64::MIN, f64::max);
        let min = means.iter().copied().fold(f64::MAX, f64::min);
        assert!(min > 0.25 * max, "per-RX means unbalanced: {means:?}");
    }

    #[test]
    fn marginal_gain_drops_at_high_budget() {
        // The paper: the efficiency falls beyond ≈ 1.2 W. Slope(0.3→1.2)
        // must exceed slope(1.2→2.4).
        let fig = run(&[0.3, 1.2, 2.4], 4, 9);
        let s01 = (fig.points[1].system_bps.0 - fig.points[0].system_bps.0) / 0.9;
        let s12 = (fig.points[2].system_bps.0 - fig.points[1].system_bps.0) / 1.2;
        assert!(s01 > 1.5 * s12, "slopes {s01} vs {s12}");
    }

    #[test]
    fn report_has_one_row_per_budget() {
        let fig = run(&[0.3, 0.6], 2, 10);
        assert_eq!(fig.report().lines().count(), 2 + 2);
    }
}
