//! Extension (paper §9): blockage in a cell-free VLC system.
//!
//! §9 hypothesizes that "blockage could bring benefit to the system since
//! it can reduce the interference from other TXs" and defers the study.
//! This experiment sweeps a standing-person occluder over a grid of floor
//! positions, lets the controller re-plan on each blocked channel (to the
//! controller, blockage is just another measured channel), and reports the
//! distribution of throughput changes.

use serde::{Deserialize, Serialize};
use vlc_alloc::heuristic::heuristic_allocation;
use vlc_alloc::model::SystemModel;
use vlc_alloc::HeuristicConfig;
use vlc_channel::{ChannelMatrix, CylinderBlocker};
use vlc_testbed::{Deployment, Scenario};

/// One occluder position's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockagePoint {
    /// Occluder XY position in meters.
    pub x: f64,
    /// Occluder XY position in meters.
    pub y: f64,
    /// System throughput relative to the clear room (1.0 = unchanged).
    pub relative_throughput: f64,
}

/// The blockage-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtBlockage {
    /// Clear-room system throughput in bit/s.
    pub clear_bps: f64,
    /// One entry per tested occluder position.
    pub points: Vec<BlockagePoint>,
}

fn throughput_with(d: &Deployment, blockers: &[CylinderBlocker], budget_w: f64) -> f64 {
    let channel = ChannelMatrix::compute_with_blockage(
        &d.grid,
        &d.receivers,
        d.half_power_semi_angle,
        &d.optics,
        blockers,
    );
    let mut model: SystemModel = d.model.clone();
    model.channel = channel;
    let alloc = heuristic_allocation(
        &model.channel,
        &model.led,
        budget_w,
        &HeuristicConfig::paper(),
    );
    model.system_throughput(&alloc)
}

/// Sweeps a person-sized occluder over an `n × n` grid of positions in the
/// given scenario.
pub fn run(scenario: Scenario, n: usize, budget_w: f64) -> ExtBlockage {
    assert!(n >= 2 && budget_w > 0.0);
    let d = Deployment::scenario(scenario);
    let clear_bps = throughput_with(&d, &[], budget_w);
    let mut points = Vec::with_capacity(n * n);
    for iy in 0..n {
        for ix in 0..n {
            let x = d.room.width * (ix as f64 + 0.5) / n as f64;
            let y = d.room.depth * (iy as f64 + 0.5) / n as f64;
            let t = throughput_with(&d, &[CylinderBlocker::person(x, y)], budget_w);
            points.push(BlockagePoint {
                x,
                y,
                relative_throughput: t / clear_bps,
            });
        }
    }
    ExtBlockage { clear_bps, points }
}

impl ExtBlockage {
    /// Number of positions where blockage *helped* (> +0.5 %).
    pub fn helped(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.relative_throughput > 1.005)
            .count()
    }

    /// Number of positions where blockage hurt (< −0.5 %).
    pub fn hurt(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.relative_throughput < 0.995)
            .count()
    }

    /// The best (most helpful) position.
    pub fn best(&self) -> &BlockagePoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.relative_throughput
                    .partial_cmp(&b.relative_throughput)
                    .expect("finite")
            })
            .expect("non-empty sweep")
    }

    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let best = self.best();
        let verdict = if self.helped() > 0 {
            "blockage *can* help by cutting interference"
        } else {
            "without interference, blockage never helps"
        };
        format!(
            "Extension (§9) — standing-person blockage sweep ({} positions)\n\
             \x20 clear room: {:.2} Mb/s; helped at {} positions, hurt at {}\n\
             \x20 best position ({:.2}, {:.2}): {:+.1} % — {verdict}\n",
            self.points.len(),
            self.clear_bps / 1e6,
            self.helped(),
            self.hurt(),
            best.x,
            best.y,
            (best.relative_throughput - 1.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockage_can_help_somewhere() {
        // The §9 hypothesis: at least one occluder position raises system
        // throughput by shadowing interference.
        let ext = run(Scenario::Three, 6, 1.2);
        assert!(
            ext.best().relative_throughput > 1.0,
            "no helpful position found (best {:.4})",
            ext.best().relative_throughput
        );
    }

    #[test]
    fn blockage_mostly_hurts_or_is_neutral() {
        // Sanity: light blockers are not free lunch — positions that hurt
        // (over serving TXs) must also exist.
        let ext = run(Scenario::Three, 6, 1.2);
        assert!(ext.hurt() > 0, "no position hurt throughput");
    }

    #[test]
    fn relative_throughput_is_finite_everywhere() {
        let ext = run(Scenario::One, 4, 0.9);
        for p in &ext.points {
            assert!(p.relative_throughput.is_finite() && p.relative_throughput >= 0.0);
        }
    }

    #[test]
    fn report_counts_positions() {
        let ext = run(Scenario::Two, 3, 1.2);
        assert!(ext.report().contains("9 positions"));
    }
}
