//! Substrate validation: simulated OOK bit error rate vs closed-form
//! theory.
//!
//! Not a paper artifact — a self-check that the waveform + AWGN + slicing
//! substrate behind the Table-5 experiment is statistically sound. For
//! bipolar OOK with mid-chip averaging over `k` samples, the decision
//! statistic is Gaussian with mean `±A` and deviation `σ/√k`, so
//! `BER = Q(A·√k / σ)`. The Monte-Carlo measurement must track that curve
//! across SNRs, which pins amplitude scaling, the Box–Muller sampler, and
//! the slicer all at once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vlc_channel::AwgnChannel;

/// One SNR point of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerPoint {
    /// Per-sample SNR `A²/σ²` in dB.
    pub snr_db: f64,
    /// Monte-Carlo measured BER.
    pub measured: f64,
    /// Closed-form `Q(√(k·SNR))` prediction.
    pub theory: f64,
}

/// The validation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationBer {
    /// Samples averaged per decision (mid-chip window).
    pub samples_per_decision: usize,
    /// The sweep.
    pub points: Vec<BerPoint>,
}

/// The Gaussian tail function `Q(x) = 0.5·erfc(x/√2)`, via an
/// Abramowitz–Stegun style erfc approximation (7.1.26, |ε| < 1.5e-7 —
/// plenty for BER comparisons).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Runs the sweep: `bits` decisions per SNR with `k` samples per decision.
pub fn run(snrs_db: &[f64], k: usize, bits: usize, seed: u64) -> ValidationBer {
    assert!(!snrs_db.is_empty() && k > 0 && bits >= 1_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = 1.0;
    let mut awgn = AwgnChannel::with_sigma(sigma);
    let points = snrs_db
        .iter()
        .map(|&snr_db| {
            let amp = sigma * 10f64.powf(snr_db / 20.0);
            let mut errors = 0usize;
            for _ in 0..bits {
                let bit: bool = rng.gen();
                let level = if bit { amp } else { -amp };
                let mut acc = 0.0;
                for _ in 0..k {
                    acc += level + awgn.sample(&mut rng);
                }
                if (acc > 0.0) != bit {
                    errors += 1;
                }
            }
            BerPoint {
                snr_db,
                measured: errors as f64 / bits as f64,
                theory: q_function((k as f64).sqrt() * amp / sigma),
            }
        })
        .collect();
    ValidationBer {
        samples_per_decision: k,
        points,
    }
}

impl ValidationBer {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Substrate validation — OOK BER vs theory (k = {} samples/decision)\n  SNR[dB]    measured      Q-theory\n",
            self.samples_per_decision
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6.1}   {:>9.2e}   {:>9.2e}\n",
                p.snr_db, p.measured, p.theory
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-4);
        assert!((q_function(3.0) - 1.349_90e-3).abs() < 1e-5);
        assert!((q_function(-1.0) - (1.0 - 0.158_655)).abs() < 1e-4);
    }

    #[test]
    fn measured_ber_tracks_theory() {
        // Mid-SNR points where both statistics are well-resolved.
        let v = run(&[-6.0, -3.0, 0.0], 1, 60_000, 1);
        for p in &v.points {
            let ratio = p.measured / p.theory;
            assert!(
                (0.85..1.18).contains(&ratio),
                "SNR {} dB: measured {} vs theory {}",
                p.snr_db,
                p.measured,
                p.theory
            );
        }
    }

    #[test]
    fn averaging_gain_matches_sqrt_k() {
        // k = 4 buys 6 dB: BER(k=4, SNR) ≈ BER(k=1, SNR + 6 dB).
        let one = run(&[-2.0], 1, 80_000, 2).points[0].measured;
        let four = run(&[-8.0], 4, 80_000, 3).points[0].measured;
        let ratio = one / four.max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "k-gain mismatch: {one} vs {four}"
        );
    }

    #[test]
    fn ber_decreases_with_snr() {
        let v = run(&[-6.0, 0.0, 4.0], 2, 20_000, 4);
        assert!(v.points[0].measured > v.points[1].measured);
        assert!(v.points[1].measured >= v.points[2].measured);
    }

    #[test]
    fn report_has_row_per_snr() {
        let v = run(&[-3.0, 0.0], 1, 2_000, 5);
        assert_eq!(v.report().lines().count(), 2 + 2);
    }
}
