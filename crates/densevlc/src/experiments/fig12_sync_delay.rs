//! Fig. 12: synchronization delay vs symbol rate for no-sync and NTP/PTP.
//!
//! The paper measures the delay between two TXs' "synchronized" symbols at
//! several symbol rates and shows NTP/PTP improving over no-sync by at
//! least 2×, with a fundamental limit of ~14.28 Ksymbols/s at a 10 %
//! symbol-overlap tolerance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_sync::SyncScheme;

/// The Fig. 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12 {
    /// The swept symbol rates in symbols/s.
    pub rates_hz: Vec<f64>,
    /// Median delay per rate with synchronization off, in seconds.
    pub sync_off_s: Vec<f64>,
    /// Median delay per rate with NTP/PTP, in seconds.
    pub ntp_ptp_s: Vec<f64>,
    /// The maximum NTP/PTP symbol rate at 10 % overlap tolerance.
    pub ntp_max_rate_hz: f64,
}

/// Runs the Monte-Carlo delay measurement at each symbol rate.
pub fn run(rates_hz: &[f64], trials: usize, seed: u64) -> Fig12 {
    assert!(!rates_hz.is_empty() && trials > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let sync_off_s = rates_hz
        .iter()
        .map(|&r| SyncScheme::SyncOff.median_pairwise_delay(r, trials, &mut rng))
        .collect();
    let ntp_ptp_s = rates_hz
        .iter()
        .map(|&r| SyncScheme::NtpPtp.median_pairwise_delay(r, trials, &mut rng))
        .collect();
    let ntp_max_rate_hz = SyncScheme::NtpPtp.max_symbol_rate(0.10, &mut rng);
    Fig12 {
        rates_hz: rates_hz.to_vec(),
        sync_off_s,
        ntp_ptp_s,
        ntp_max_rate_hz,
    }
}

impl Fig12 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "Fig. 12 — sync delay vs symbol rate\n  rate[Ksym/s]   sync-off[µs]   NTP/PTP[µs]\n",
        );
        for (i, &r) in self.rates_hz.iter().enumerate() {
            out.push_str(&format!(
                "  {:>10.2}   {:>10.2}   {:>10.2}\n",
                r / 1e3,
                self.sync_off_s[i] * 1e6,
                self.ntp_ptp_s[i] * 1e6
            ));
        }
        out.push_str(&format!(
            "  NTP/PTP max rate @10 %% overlap: {:.2} Ksym/s (paper: 14.28)\n",
            self.ntp_max_rate_hz / 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntp_ptp_improves_at_every_rate() {
        let fig = run(&[2e3, 10e3, 40e3], 4001, 31);
        for i in 0..fig.rates_hz.len() {
            assert!(
                fig.sync_off_s[i] > 1.7 * fig.ntp_ptp_s[i],
                "rate {}: off {} ptp {}",
                fig.rates_hz[i],
                fig.sync_off_s[i],
                fig.ntp_ptp_s[i]
            );
        }
    }

    #[test]
    fn max_rate_matches_paper_anchor() {
        let fig = run(&[10e3], 2001, 32);
        assert!(
            (10_000.0..20_000.0).contains(&fig.ntp_max_rate_hz),
            "max rate {}",
            fig.ntp_max_rate_hz
        );
    }

    #[test]
    fn delays_span_the_papers_log_range() {
        // Fig. 12's y-axis runs 10¹–10³ µs over 1–60 Ksym/s.
        let fig = run(&[1e3, 60e3], 4001, 33);
        assert!(
            fig.sync_off_s[0] > 100e-6,
            "low-rate delay {}",
            fig.sync_off_s[0]
        );
        assert!(
            fig.ntp_ptp_s[1] < 10e-6,
            "high-rate delay {}",
            fig.ntp_ptp_s[1]
        );
    }

    #[test]
    fn report_has_row_per_rate() {
        let fig = run(&[5e3, 25e3], 501, 34);
        assert_eq!(fig.report().lines().count(), 2 + 2 + 1);
    }
}
