//! Table 4: median synchronization error for the three schemes, measured
//! scope-style on two neighboring TXs (TX2 leading, TX3 following) at
//! 100 Ksymbols/s.
//!
//! Paper anchors: 10.040 µs without synchronization, 4.565 µs with NTP/PTP,
//! 0.575 µs with the NLOS-VLC method.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_channel::RxOptics;
use vlc_geom::{Room, TxGrid};
use vlc_phy::manchester::manchester_encode;
use vlc_sync::{ClockModel, NlosSyncLink, SyncScheme};
use vlc_telemetry::Registry;
use vlc_testbed::Scope;
use vlc_trace::Span;

/// The Table 4 result, all values in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tab04 {
    /// Median error without synchronization (paper: 10.040 µs).
    pub no_sync_s: f64,
    /// Median error with NTP/PTP (paper: 4.565 µs).
    pub ntp_ptp_s: f64,
    /// Median error with NLOS VLC (paper: 0.575 µs).
    pub nlos_vlc_s: f64,
}

/// Runs the scope measurement for each scheme over `frames` frames.
pub fn run(frames: usize, seed: u64) -> Tab04 {
    assert!(frames > 0);
    let scope = Scope::paper();
    let chips = manchester_encode(&[0xA5, 0x5A, 0xC3, 0x3C, 0x0F, 0xF0, 0x99, 0x66]);
    let measure = |scheme: &SyncScheme, salt: u64| {
        let mut rng = StdRng::seed_from_u64(seed ^ salt);
        scope
            .measure_sync_delay(&chips, 100e3, scheme, frames, &mut rng)
            .expect("both TXs transmit")
    };
    // The clock-based schemes are measured between two peer TXs; the
    // NLOS-VLC row probes the leading TX against a follower, matching the
    // paper's setup (TX2 appointed leader, TX3 following).
    let nlos = {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3);
        scope
            .measure_leader_follower_delay(
                &chips,
                100e3,
                &SyncScheme::nlos_paper(),
                frames,
                &mut rng,
            )
            .expect("both TXs transmit")
    };
    Tab04 {
        no_sync_s: measure(&SyncScheme::SyncOff, 0x1),
        ntp_ptp_s: measure(&SyncScheme::NtpPtp, 0x2),
        nlos_vlc_s: nlos,
    }
}

/// [`run`] with telemetry: alongside the scope medians, probes the paper's
/// TX2→TX3 pilot link with the instrumented detector (`sync.pilot_snr`,
/// `sync.pilot_detections` / `sync.pilot_misses`) and publishes the state
/// of a representative follower clock (`sync.offset_s`, `sync.drift_ppm`).
pub fn run_instrumented(frames: usize, seed: u64, telemetry: &Registry) -> Tab04 {
    run_traced(frames, seed, telemetry, &Span::noop())
}

/// [`run_instrumented`] recording the pilot probe under `parent`: a
/// `sync.link_build` span for the floor-bounce link construction, then one
/// `sync.pilot_round` child per frame (indexed by frame) wrapping the
/// traced detector. With a noop parent this is the instrumented path plus
/// one branch per span site.
pub fn run_traced(frames: usize, seed: u64, telemetry: &Registry, parent: &Span) -> Tab04 {
    let result = run(frames, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4);
    ClockModel::beaglebone(&mut rng).observe(telemetry);
    let room = Room::paper_testbed();
    let grid = TxGrid::paper(&room);
    let link = NlosSyncLink::between_traced(
        &grid.pose(1),
        &grid.pose(2),
        &room,
        15f64.to_radians(),
        &RxOptics::paper(),
        parent,
    );
    for frame in 0..frames {
        let round = parent.child_indexed("sync.pilot_round", frame);
        link.detect_traced(&mut rng, telemetry, &round);
    }
    result
}

impl Tab04 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        format!(
            "Table 4 — median synchronization error (paper values in parentheses)\n\
             \x20 no synchronization: {:>7.3} µs (10.040 µs)\n\
             \x20 NTP/PTP:            {:>7.3} µs (4.565 µs)\n\
             \x20 NLOS VLC:           {:>7.3} µs (0.575 µs)\n",
            self.no_sync_s * 1e6,
            self.ntp_ptp_s * 1e6,
            self.nlos_vlc_s * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_track_paper_anchors() {
        let t = run(120, 41);
        // Scope edge-pairing clips large offsets to the nearest edge, so
        // compare with generous bands around the paper's medians.
        assert!(
            (t.no_sync_s - 10.04e-6).abs() < 4e-6,
            "no-sync {}",
            t.no_sync_s
        );
        assert!((t.ntp_ptp_s - 4.565e-6).abs() < 2e-6, "ntp {}", t.ntp_ptp_s);
        assert!(
            (t.nlos_vlc_s - 0.575e-6).abs() < 0.3e-6,
            "nlos {}",
            t.nlos_vlc_s
        );
    }

    #[test]
    fn ordering_matches_paper() {
        let t = run(80, 42);
        assert!(t.no_sync_s > t.ntp_ptp_s);
        assert!(t.ntp_ptp_s > t.nlos_vlc_s);
        // NLOS improves on NTP/PTP by nearly an order of magnitude.
        assert!(t.ntp_ptp_s > 4.0 * t.nlos_vlc_s);
    }

    #[test]
    fn report_contains_all_rows() {
        let rep = run(20, 43).report();
        assert!(rep.contains("NTP/PTP") && rep.contains("NLOS VLC"));
    }
}
