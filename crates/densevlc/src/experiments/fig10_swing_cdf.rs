//! Fig. 10: empirical CDF of the optimal swing levels of representative TXs
//! toward RX2, across random instances.
//!
//! The paper examines TX3, TX5, TX10 and TX15: TX10 (RX2's strongest
//! channel) has a steep CDF edge at full swing; TX5 follows with an offset;
//! TX3's CDF rises smoothly (it often sits at partial swings, but dropping
//! it costs only ~0.5 % of system throughput); TX15 is never used because
//! it would interfere too much.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_alloc::OptimalSolver;
use vlc_testbed::{random_instances, Deployment};

/// Empirical CDF of one TX's optimal swing toward RX2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwingCdf {
    /// Zero-based TX index.
    pub tx: usize,
    /// Sorted swing samples in amperes (one per instance).
    pub samples: Vec<f64>,
}

impl SwingCdf {
    /// The empirical CDF evaluated at `swing`.
    pub fn cdf(&self, swing: f64) -> f64 {
        let below = self.samples.partition_point(|&s| s <= swing);
        below as f64 / self.samples.len() as f64
    }

    /// Fraction of instances where this TX runs at ≥ 90 % of full swing.
    pub fn full_swing_share(&self, max_swing: f64) -> f64 {
        1.0 - self.cdf(0.9 * max_swing)
    }

    /// Fraction of instances where this TX is essentially off (< 2 %).
    pub fn off_share(&self, max_swing: f64) -> f64 {
        self.cdf(0.02 * max_swing)
    }
}

/// The Fig. 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// CDFs for the representative TXs.
    pub cdfs: Vec<SwingCdf>,
    /// Budget at which the instances were solved, in watts.
    pub budget_w: f64,
}

/// Solves `instances` random placements at one budget and collects the
/// swing samples of the requested TXs toward RX2.
pub fn run(txs: &[usize], budget_w: f64, instances: usize, seed: u64) -> Fig10 {
    assert!(!txs.is_empty() && instances > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let placements = random_instances(instances, 0.35, &mut rng);
    let solver = OptimalSolver::quick();
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(instances); txs.len()];
    for placement in &placements {
        let model = Deployment::simulation(placement).model;
        let report = solver.solve(&model, budget_w);
        for (k, &tx) in txs.iter().enumerate() {
            samples[k].push(report.allocation.swing(tx, 1));
        }
    }
    let cdfs = txs
        .iter()
        .zip(samples)
        .map(|(&tx, mut s)| {
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite swings"));
            SwingCdf { tx, samples: s }
        })
        .collect();
    Fig10 { cdfs, budget_w }
}

impl Fig10 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Fig. 10 — empirical CDF of optimal swings toward RX2 (budget {} W)\n",
            self.budget_w
        );
        for cdf in &self.cdfs {
            out.push_str(&format!(
                "  TX{:<3} off {:>5.1} %  partial {:>5.1} %  full {:>5.1} %\n",
                cdf.tx + 1,
                cdf.off_share(0.9) * 100.0,
                (1.0 - cdf.off_share(0.9) - cdf.full_swing_share(0.9)) * 100.0,
                cdf.full_swing_share(0.9) * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's representative TXs (zero-based): TX3, TX5, TX10, TX15.
    const PAPER_TXS: [usize; 4] = [2, 4, 9, 14];

    #[test]
    fn tx10_is_mostly_full_swing_and_tx15_mostly_off() {
        let fig = run(&PAPER_TXS, 1.2, 6, 11);
        let tx10 = &fig.cdfs[2];
        let tx15 = &fig.cdfs[3];
        assert!(
            tx10.full_swing_share(0.9) > tx15.full_swing_share(0.9),
            "TX10 {} vs TX15 {}",
            tx10.full_swing_share(0.9),
            tx15.full_swing_share(0.9)
        );
        assert!(
            tx15.off_share(0.9) > 0.5,
            "TX15 off share {}",
            tx15.off_share(0.9)
        );
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let fig = run(&[9], 1.0, 5, 12);
        let cdf = &fig.cdfs[0];
        assert_eq!(cdf.cdf(1.0), 1.0);
        assert!(cdf.cdf(0.0) <= cdf.cdf(0.45));
        assert!(cdf.cdf(0.45) <= cdf.cdf(0.9));
    }

    #[test]
    fn report_lists_requested_txs() {
        let fig = run(&[2, 9], 1.0, 3, 13);
        let rep = fig.report();
        assert!(rep.contains("TX3") && rep.contains("TX10"));
    }
}
