//! Extension: stop-and-wait ARQ over the WiFi feedback loop.
//!
//! The paper's MAC acknowledges every frame over the WiFi uplink (§7.2)
//! but never quantifies the retransmission behaviour. This experiment
//! attenuates the Table-5 link over a sweep of levels and compares
//! single-shot delivery against ARQ with a small retry budget: delivery
//! rate, attempts per payload, and the goodput cost of retransmissions.

use crate::e2e::{run, run_with_arq, E2eConfig, E2eTx};
use serde::{Deserialize, Serialize};
use vlc_mac::WifiUplink;
use vlc_sync::SyncScheme;
use vlc_testbed::{BbbHostMap, Deployment};

/// One attenuation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArqPoint {
    /// Link attenuation relative to the clean Table-5 link (1.0 = clean).
    pub attenuation: f64,
    /// Single-shot delivery rate in `[0, 1]`.
    pub single_shot_rate: f64,
    /// ARQ delivery rate in `[0, 1]`.
    pub arq_rate: f64,
    /// Mean transmission attempts per delivered payload under ARQ.
    pub attempts_per_delivery: f64,
    /// ARQ goodput in bit/s.
    pub arq_goodput_bps: f64,
}

/// The ARQ-study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtArq {
    /// One entry per attenuation level.
    pub points: Vec<ArqPoint>,
}

/// Sweeps link attenuations with `payloads` payloads per point and a
/// 5-retransmission budget.
pub fn run_study(attenuations: &[f64], payloads: usize, seed: u64) -> ExtArq {
    assert!(!attenuations.is_empty() && payloads > 0);
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    let hosts = BbbHostMap::paper();
    let base_gain = d.model.channel.gain(7, 0); // TX8, the strongest link
    let cfg = E2eConfig::default();
    let wifi = WifiUplink::paper();
    let points = attenuations
        .iter()
        .map(|&attenuation| {
            let txs = vec![E2eTx {
                gain: base_gain * attenuation,
                host: hosts.host_of(7),
            }];
            let single = run(&txs, &SyncScheme::SyncOff, &cfg, payloads, seed);
            let arq = run_with_arq(
                &txs,
                &SyncScheme::SyncOff,
                &cfg,
                &wifi,
                payloads,
                5,
                seed ^ 0xA,
            );
            ArqPoint {
                attenuation,
                single_shot_rate: single.frames_ok as f64 / single.frames_total as f64,
                arq_rate: arq.delivered as f64 / arq.payloads_total as f64,
                attempts_per_delivery: arq.attempts_per_delivery(),
                arq_goodput_bps: arq.goodput_bps,
            }
        })
        .collect();
    ExtArq { points }
}

impl ExtArq {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "Extension — stop-and-wait ARQ over the WiFi feedback loop (TX8 link, 5 retries)\n  atten    single-shot   ARQ rate   attempts/deliv   ARQ goodput\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>5.3}   {:>9.0} %   {:>6.0} %   {:>12.2}   {:>8.1} kb/s\n",
                p.attenuation,
                p.single_shot_rate * 100.0,
                p.arq_rate * 100.0,
                p.attempts_per_delivery,
                p.arq_goodput_bps / 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_dominates_single_shot_on_marginal_links() {
        let ext = run_study(&[0.045], 15, 301);
        let p = &ext.points[0];
        assert!(
            p.arq_rate >= p.single_shot_rate,
            "ARQ {} vs single {}",
            p.arq_rate,
            p.single_shot_rate
        );
        assert!(p.attempts_per_delivery > 1.0, "no retransmissions used");
    }

    #[test]
    fn clean_links_pay_no_arq_tax() {
        let ext = run_study(&[1.0], 10, 302);
        let p = &ext.points[0];
        assert_eq!(p.arq_rate, 1.0);
        assert!((p.attempts_per_delivery - 1.0).abs() < 0.11);
    }

    #[test]
    fn report_has_row_per_attenuation() {
        let ext = run_study(&[1.0, 0.05], 5, 303);
        assert_eq!(ext.report().lines().count(), 2 + 2);
    }
}
