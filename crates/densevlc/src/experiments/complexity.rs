//! §5 complexity: the heuristic's runtime vs the optimal solver.
//!
//! The paper reports 165 s for `fmincon` against 0.07 s for the heuristic —
//! a 99.96 % reduction, at a throughput cost of only 1.8 % (κ = 1.3). We
//! time our own solver and heuristic on the same instance; the *relative*
//! reduction is the reproducible quantity (our gradient solver is far
//! faster than Matlab's `fmincon`, but the heuristic is proportionally
//! faster still).

use serde::{Deserialize, Serialize};
use std::time::Instant;
use vlc_alloc::analysis::{heuristic_sweep, throughput_at_power};
use vlc_alloc::heuristic::heuristic_allocation;
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_testbed::{Deployment, Scenario};

/// The complexity-comparison result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Complexity {
    /// Wall-clock seconds per optimal solve.
    pub optimal_s: f64,
    /// Wall-clock seconds per heuristic run.
    pub heuristic_s: f64,
    /// Complexity reduction `1 − heuristic/optimal` (paper: 99.96 %).
    pub reduction: f64,
    /// Throughput loss of the κ = 1.3 heuristic vs the optimum at the
    /// measurement budget (paper: 1.8 %).
    pub throughput_loss: f64,
}

/// Times both solvers on the Fig. 7 instance at `budget_w`.
pub fn run(budget_w: f64, solver_reps: usize, heuristic_reps: usize) -> Complexity {
    assert!(solver_reps > 0 && heuristic_reps > 0);
    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let solver = OptimalSolver::default();

    let t0 = Instant::now();
    let mut opt_bps = 0.0;
    for _ in 0..solver_reps {
        let report = solver.solve(&model, budget_w);
        opt_bps = model.system_throughput(&report.allocation);
    }
    let optimal_s = t0.elapsed().as_secs_f64() / solver_reps as f64;

    let cfg = HeuristicConfig::paper();
    let t1 = Instant::now();
    for _ in 0..heuristic_reps {
        let _ = heuristic_allocation(&model.channel, &model.led, budget_w, &cfg);
    }
    let heuristic_s = t1.elapsed().as_secs_f64() / heuristic_reps as f64;

    let curve = heuristic_sweep(&model, &cfg);
    let heur_bps = throughput_at_power(&curve, budget_w);
    Complexity {
        optimal_s,
        heuristic_s,
        reduction: 1.0 - heuristic_s / optimal_s,
        throughput_loss: 1.0 - heur_bps / opt_bps,
    }
}

impl Complexity {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        format!(
            "§5 — complexity: optimal {:.4} s vs heuristic {:.6} s per run\n\
             \x20 reduction {:.2} %% (paper: 99.96 %%), throughput loss {:.1} %% (paper: 1.8 %%)\n",
            self.optimal_s,
            self.heuristic_s,
            self.reduction * 100.0,
            self.throughput_loss * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_is_orders_of_magnitude_faster() {
        let c = run(1.2, 1, 200);
        assert!(c.reduction > 0.99, "reduction {}", c.reduction);
    }

    #[test]
    fn throughput_loss_is_small() {
        let c = run(1.2, 1, 10);
        assert!(c.throughput_loss < 0.10, "loss {}", c.throughput_loss);
        assert!(
            c.throughput_loss > -0.02,
            "heuristic should not beat optimum"
        );
    }

    #[test]
    fn report_quotes_paper_numbers() {
        let rep = run(1.2, 1, 10).report();
        assert!(rep.contains("99.96"));
    }
}
