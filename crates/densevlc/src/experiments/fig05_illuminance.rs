//! Fig. 5 + §8: illuminance distribution and ISO 8995-1 compliance.
//!
//! The paper checks that the 6 × 6 deployment lights the 2.2 m × 2.2 m area
//! of interest to ≥ 500 lux average with ≥ 70 % uniformity: 564 lux / 74 %
//! in the §4 simulation geometry, 530 lux / 81 % measured on the testbed
//! with the HS1010 lux meter.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_channel::{IlluminanceMap, IlluminanceStats};
use vlc_geom::{AreaOfInterest, Room, TxGrid};
use vlc_led::LedParams;
use vlc_testbed::LuxMeter;

/// Result of the illuminance experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig05 {
    /// Ideal simulation-geometry statistics (paper: 564 lux / 74 %).
    pub simulation: IlluminanceStats,
    /// Lux-meter-measured testbed statistics (paper: 530 lux / 81 %).
    pub testbed: IlluminanceStats,
}

/// Computes both the §4 simulated map and the §8 metered testbed readings.
pub fn run(led: &LedParams, seed: u64) -> Fig05 {
    let semi_angle = 15f64.to_radians();

    // Simulation geometry: 2.8 m ceiling, 0.8 m work plane.
    let sim_room = Room::paper_simulation();
    let sim_grid = TxGrid::paper(&sim_room);
    let sim_area = AreaOfInterest::paper(&sim_room);
    let simulation = IlluminanceMap::compute(
        &sim_grid.poses(),
        led.luminous_flux_lm,
        semi_angle,
        &sim_area,
        0.8,
        0.05,
    )
    .stats();

    // Testbed geometry: 2 m ceiling, floor-level measurement via the meter.
    let tb_room = Room::paper_testbed();
    let tb_grid = TxGrid::paper(&tb_room);
    let tb_area = AreaOfInterest::paper(&tb_room);
    let meter = LuxMeter::hs1010();
    let mut rng = StdRng::seed_from_u64(seed);
    let readings: Vec<f64> = tb_area
        .sample_points(0.1, 0.0)
        .into_iter()
        .map(|p| {
            meter.read(
                &tb_grid.poses(),
                led.luminous_flux_lm,
                semi_angle,
                p,
                &mut rng,
            )
        })
        .collect();
    let sum: f64 = readings.iter().sum();
    let average_lux = sum / readings.len() as f64;
    let min_lux = readings.iter().copied().fold(f64::INFINITY, f64::min);
    let max_lux = readings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let testbed = IlluminanceStats {
        average_lux,
        min_lux,
        max_lux,
        uniformity: min_lux / average_lux,
    };
    Fig05 {
        simulation,
        testbed,
    }
}

impl Fig05 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        format!(
            "Fig. 5 / §8 — illuminance over the 2.2 m × 2.2 m area of interest\n\
               simulation: {:.0} lux avg, {:.0} %% uniformity (paper: 564 lux, 74 %%) — ISO 8995-1 {}\n\
               testbed:    {:.0} lux avg, {:.0} %% uniformity (paper: 530 lux, 81 %%) — ISO 8995-1 {}\n",
            self.simulation.average_lux,
            self.simulation.uniformity * 100.0,
            if self.simulation.meets_iso_8995() { "PASS" } else { "FAIL" },
            self.testbed.average_lux,
            self.testbed.uniformity * 100.0,
            if self.testbed.meets_iso_8995() { "PASS" } else { "FAIL" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_paper_numbers() {
        let fig = run(&LedParams::cree_xte_paper(), 1);
        assert!(
            (fig.simulation.average_lux - 564.0).abs() < 20.0,
            "avg {}",
            fig.simulation.average_lux
        );
        assert!(
            (fig.simulation.uniformity - 0.74).abs() < 0.05,
            "uniformity {}",
            fig.simulation.uniformity
        );
        assert!(fig.simulation.meets_iso_8995());
    }

    #[test]
    fn testbed_meets_iso_with_higher_uniformity() {
        // The testbed's lower ceiling yields higher illuminance; the paper
        // measured 81 % uniformity there.
        let fig = run(&LedParams::cree_xte_paper(), 2);
        assert!(fig.testbed.meets_iso_8995(), "{:?}", fig.testbed);
    }

    #[test]
    fn report_shows_both_geometries() {
        let rep = run(&LedParams::cree_xte_paper(), 3).report();
        assert!(rep.contains("simulation") && rep.contains("testbed"));
    }
}
