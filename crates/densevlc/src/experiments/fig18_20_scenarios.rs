//! Figs. 18–20: experimental heuristic evaluation in the three Table 6
//! scenarios.
//!
//! The paper assigns TXs from the ranked list one by one (raising the
//! communication budget step by step), computes SINRs from measured path
//! losses, and plots normalized per-RX and system throughput for
//! κ ∈ {1.0, 1.2, 1.3, 1.5}. Headline shapes: Scenario 1 is
//! interference-free (adding a TX never hurts the other RXs); Scenario 2
//! leaves RX1 behind (it sits closest to the interferers); Scenario 3 shows
//! a throughput drop when too many TXs are assigned.

use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{heuristic_sweep, SweepPoint};
use vlc_alloc::HeuristicConfig;
use vlc_testbed::{Deployment, Scenario};

/// The per-scenario result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCurves {
    /// Which scenario this is.
    pub scenario: Scenario,
    /// Sweep curves per κ: `(κ, points)` with one point per assigned-TX
    /// count (0..=36).
    pub curves: Vec<(f64, Vec<SweepPoint>)>,
    /// The normalization constant: the maximum system throughput observed
    /// across all κ and budgets (the paper normalizes its plots).
    pub max_system_bps: f64,
}

/// The κ values the paper sweeps.
pub const PAPER_KAPPAS: [f64; 4] = [1.0, 1.2, 1.3, 1.5];

/// Runs the ranked-assignment sweep for one scenario.
pub fn run(scenario: Scenario) -> ScenarioCurves {
    let model = Deployment::scenario(scenario).model;
    let curves: Vec<(f64, Vec<SweepPoint>)> = PAPER_KAPPAS
        .iter()
        .map(|&kappa| {
            (
                kappa,
                heuristic_sweep(&model, &HeuristicConfig::with_kappa(kappa)),
            )
        })
        .collect();
    let max_system_bps = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.system_bps))
        .fold(0.0, f64::max);
    ScenarioCurves {
        scenario,
        curves,
        max_system_bps,
    }
}

impl ScenarioCurves {
    /// The curve for a κ.
    pub fn curve(&self, kappa: f64) -> &[SweepPoint] {
        &self
            .curves
            .iter()
            .find(|(k, _)| (*k - kappa).abs() < 1e-9)
            .expect("κ was swept")
            .1
    }

    /// Normalized system throughput for a κ at a point index.
    pub fn normalized_system(&self, kappa: f64, idx: usize) -> f64 {
        self.curve(kappa)[idx].system_bps / self.max_system_bps
    }

    /// Paper-style text rendering (system curves only, every third point).
    pub fn report(&self) -> String {
        let mut out = format!("{}\n  P[W]", self.scenario.label());
        for k in PAPER_KAPPAS {
            out.push_str(&format!("     κ={k}"));
        }
        out.push('\n');
        let n = self.curve(1.3).len();
        for idx in (0..n).step_by(3) {
            out.push_str(&format!("  {:>5.2}", self.curve(1.3)[idx].power_w));
            for k in PAPER_KAPPAS {
                out.push_str(&format!("  {:>6.3}", self.normalized_system(k, idx)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_txs_do_not_hurt_each_other() {
        // Fig. 18: assigning a TX to one RX causes no throughput drop at
        // the others — per-RX curves are non-decreasing for κ = 1.3 over
        // the first dozen assignments.
        let res = run(Scenario::One);
        let curve = res.curve(1.3);
        for idx in 1..=12 {
            for rx in 0..4 {
                let now = curve[idx].per_rx_bps[rx];
                let before = curve[idx - 1].per_rx_bps[rx];
                assert!(
                    now >= before * 0.999,
                    "Scenario 1: RX{} dropped at step {idx}",
                    rx + 1
                );
            }
        }
    }

    #[test]
    fn scenario2_interference_creates_per_rx_spread() {
        // Fig. 19: unlike the interference-free Scenario 1, the receivers
        // no longer track each other — the RX nearest the interferers ends
        // up noticeably below the best-served one. (Which receiver falls
        // behind depends on the measured channel realization; the paper's
        // testbed sees RX1, our Lambertian channel picks another — the
        // robust claim is the interference-induced spread itself.)
        let res = run(Scenario::Two);
        let last = res.curve(1.3).last().expect("non-empty");
        let max = last.per_rx_bps.iter().copied().fold(f64::MIN, f64::max);
        let min = last.per_rx_bps.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 1.3 * min, "no spread: max {max} min {min}");

        // Scenario 1's spread is much smaller at the same assignment depth.
        let s1 = run(Scenario::One);
        let last1 = s1.curve(1.3).last().expect("non-empty");
        let max1 = last1.per_rx_bps.iter().copied().fold(f64::MIN, f64::max);
        let min1 = last1.per_rx_bps.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max1 / min1 < max / min,
            "scenario 1 spread exceeds scenario 2"
        );
    }

    #[test]
    fn scenario3_drops_with_many_txs() {
        // Fig. 20: the system throughput peaks and then degrades when many
        // TXs are assigned.
        let res = run(Scenario::Three);
        let curve = res.curve(1.3);
        let peak = curve.iter().map(|p| p.system_bps).fold(0.0, f64::max);
        let last = curve.last().expect("non-empty").system_bps;
        assert!(last < peak * 0.995, "no drop: peak {peak} last {last}");
    }

    #[test]
    fn kappa_one_starts_slow_under_interference() {
        // κ = 1.0 "pays too much attention to interference at low power",
        // so its early throughput is lowest among the κ values.
        let res = run(Scenario::Two);
        let idx = 6;
        let t10 = res.normalized_system(1.0, idx);
        let t13 = res.normalized_system(1.3, idx);
        assert!(t10 < t13, "κ=1.0 {t10} vs κ=1.3 {t13}");
    }

    #[test]
    fn normalization_caps_at_one() {
        for s in [Scenario::One, Scenario::Two, Scenario::Three] {
            let res = run(s);
            for k in PAPER_KAPPAS {
                for idx in 0..res.curve(k).len() {
                    assert!(res.normalized_system(k, idx) <= 1.0 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn report_labels_the_scenario() {
        assert!(run(Scenario::Three).report().contains("Scenario 3"));
    }
}
