//! Fig. 11: heuristic verification — throughput vs optimal across κ, plus
//! loss histograms over random instances.
//!
//! The paper finds κ = 1.2/1.3 track the optimum within a few percent
//! (κ = 1.3 loses only 1.8 % on average), while κ = 1.0 over-penalizes
//! interference and loses ~40 % at low budgets.

use crate::experiments::mean_ci95;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vlc_alloc::analysis::{heuristic_sweep, throughput_at_power};
use vlc_alloc::{HeuristicConfig, OptimalSolver};
use vlc_testbed::{random_instances, Deployment, Scenario};

/// Throughput-vs-budget curves on the Fig. 7 instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Curves {
    /// The swept budgets in watts.
    pub budgets_w: Vec<f64>,
    /// Optimal system throughput per budget, bit/s.
    pub optimal_bps: Vec<f64>,
    /// Heuristic system throughput per (κ, budget), bit/s.
    pub heuristic_bps: Vec<(f64, Vec<f64>)>,
}

/// Average loss statistics over random instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Losses {
    /// `(κ, per-instance loss fractions)`.
    pub losses: Vec<(f64, Vec<f64>)>,
}

/// The full Fig. 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Left panel: curves on the single instance.
    pub curves: Fig11Curves,
    /// Right panels: loss distributions over instances.
    pub losses: Fig11Losses,
}

/// The κ values the paper sweeps.
pub const PAPER_KAPPAS: [f64; 4] = [1.0, 1.2, 1.3, 1.5];

/// Runs the verification: curves on the Fig. 7 instance and loss
/// distributions over `instances` random placements at `loss_budget_w`.
pub fn run(budgets_w: &[f64], instances: usize, loss_budget_w: f64, seed: u64) -> Fig11 {
    assert!(!budgets_w.is_empty() && instances > 0);
    let solver = OptimalSolver::quick();

    // Left panel: the Fig. 7 instance.
    let model = Deployment::simulation(&Scenario::Two.rx_positions()).model;
    let optimal_bps: Vec<f64> = budgets_w
        .iter()
        .map(|&b| model.system_throughput(&solver.solve(&model, b).allocation))
        .collect();
    let heuristic_bps: Vec<(f64, Vec<f64>)> = PAPER_KAPPAS
        .iter()
        .map(|&kappa| {
            let curve = heuristic_sweep(&model, &HeuristicConfig::with_kappa(kappa));
            let t = budgets_w
                .iter()
                .map(|&b| throughput_at_power(&curve, b))
                .collect();
            (kappa, t)
        })
        .collect();

    // Right panels: losses over random instances at one budget.
    let mut rng = StdRng::seed_from_u64(seed);
    let placements = random_instances(instances, 0.35, &mut rng);
    let mut losses: Vec<(f64, Vec<f64>)> = PAPER_KAPPAS
        .iter()
        .map(|&k| (k, Vec::with_capacity(instances)))
        .collect();
    for placement in &placements {
        let m = Deployment::simulation(placement).model;
        let opt = m.system_throughput(&solver.solve(&m, loss_budget_w).allocation);
        for (k, bucket) in losses.iter_mut() {
            let curve = heuristic_sweep(&m, &HeuristicConfig::with_kappa(*k));
            let h = throughput_at_power(&curve, loss_budget_w);
            bucket.push(1.0 - h / opt);
        }
    }
    Fig11 {
        curves: Fig11Curves {
            budgets_w: budgets_w.to_vec(),
            optimal_bps,
            heuristic_bps,
        },
        losses: Fig11Losses { losses },
    }
}

impl Fig11 {
    /// Mean loss for a κ, as a fraction.
    pub fn mean_loss(&self, kappa: f64) -> f64 {
        let bucket = &self
            .losses
            .losses
            .iter()
            .find(|(k, _)| (*k - kappa).abs() < 1e-9)
            .expect("κ was swept")
            .1;
        mean_ci95(bucket).0
    }

    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "Fig. 11 — heuristic vs optimal (left: Fig. 7 instance; right: instance losses)\n  budget[W]   optimal",
        );
        for (k, _) in &self.curves.heuristic_bps {
            out.push_str(&format!("      κ={k}"));
        }
        out.push('\n');
        for (i, &b) in self.curves.budgets_w.iter().enumerate() {
            out.push_str(&format!(
                "  {:>7.2}   {:>7.3}",
                b,
                self.curves.optimal_bps[i] / 1e6
            ));
            for (_, t) in &self.curves.heuristic_bps {
                out.push_str(&format!("  {:>7.3}", t[i] / 1e6));
            }
            out.push('\n');
        }
        out.push_str("  mean loss vs optimal (paper: 40.3 %, 2.4 %, 1.8 %, 2.6 %):\n");
        for &k in &PAPER_KAPPAS {
            out.push_str(&format!(
                "    κ={k}: {:>5.1} %\n",
                self.mean_loss(k) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_kappas_are_near_optimal() {
        let fig = run(&[0.6, 1.2], 4, 1.2, 21);
        let loss_13 = fig.mean_loss(1.3);
        assert!(loss_13 < 0.10, "κ=1.3 loss {loss_13}");
    }

    #[test]
    fn kappa_one_is_worst_at_low_budget() {
        // κ=1.0 over-weights interference: at low budgets its curve sits
        // below the tuned κ values on the Fig. 7 instance.
        let fig = run(&[0.45], 1, 0.45, 22);
        let t = |kappa: f64| {
            fig.curves
                .heuristic_bps
                .iter()
                .find(|(k, _)| (*k - kappa).abs() < 1e-9)
                .expect("swept")
                .1[0]
        };
        assert!(t(1.0) < t(1.3), "κ=1.0 {} vs κ=1.3 {}", t(1.0), t(1.3));
    }

    #[test]
    fn optimal_dominates_every_heuristic() {
        let fig = run(&[0.6, 1.5], 2, 0.9, 23);
        for (i, &opt) in fig.curves.optimal_bps.iter().enumerate() {
            for (k, t) in &fig.curves.heuristic_bps {
                assert!(
                    t[i] <= opt * 1.02,
                    "κ={k} beat the optimum at budget index {i}: {} vs {opt}",
                    t[i]
                );
            }
        }
    }

    #[test]
    fn report_covers_all_kappas() {
        let rep = run(&[0.6], 1, 0.6, 24).report();
        for k in PAPER_KAPPAS {
            assert!(rep.contains(&format!("κ={k}")));
        }
    }
}
