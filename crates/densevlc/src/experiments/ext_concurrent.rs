//! Extension: concurrent multi-beamspot transmission at the symbol level.
//!
//! The paper's Table 5 measures one beamspot at a time; the cell-free
//! claim, though, is that "multiple RXs can be served simultaneously"
//! (§2.1). This experiment runs all of a controller plan's beamspots at
//! once through the waveform-level simulator: every receiver's photodiode
//! sees the superposition of its own stream and the other beamspots'
//! interference, and we report per-receiver goodput and PER.

use crate::e2e::{run_concurrent, E2eBeamspot, E2eConfig, E2eResult};
use serde::{Deserialize, Serialize};
use vlc_mac::{Controller, ControllerConfig};
use vlc_testbed::{Deployment, Scenario};

/// Per-receiver outcome of the concurrent run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrentRx {
    /// The receiver.
    pub rx: usize,
    /// TXs in its beamspot (zero-based).
    pub txs: Vec<usize>,
    /// Its end-to-end result.
    pub result: E2eResult,
}

/// The concurrent-transmission result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtConcurrent {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// Power budget in watts.
    pub budget_w: f64,
    /// One entry per beamspot.
    pub receivers: Vec<ConcurrentRx>,
}

/// Plans beamspots for a scenario and transmits all of them concurrently.
pub fn run(scenario: Scenario, budget_w: f64, frames: usize, seed: u64) -> ExtConcurrent {
    assert!(budget_w > 0.0 && frames > 0);
    let d = Deployment::scenario(scenario);
    let controller = Controller::new(
        ControllerConfig::paper(budget_w),
        d.grid.len(),
        d.receivers.len(),
    );
    let plan = controller.plan(&d.model.channel);
    let beamspots: Vec<E2eBeamspot> = plan
        .beamspots
        .iter()
        .map(|s| E2eBeamspot {
            rx: s.rx,
            txs: s.txs.clone(),
        })
        .collect();
    let results = run_concurrent(
        &d.model.channel,
        &beamspots,
        &E2eConfig::default(),
        frames,
        seed,
    );
    ExtConcurrent {
        scenario,
        budget_w,
        receivers: beamspots
            .into_iter()
            .zip(results)
            .map(|(spot, result)| ConcurrentRx {
                rx: spot.rx,
                txs: spot.txs,
                result,
            })
            .collect(),
    }
}

impl ExtConcurrent {
    /// Aggregate goodput over all simultaneously-served receivers.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        self.receivers.iter().map(|r| r.result.goodput_bps).sum()
    }

    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Extension — concurrent beamspots, {} @ {} W (all streams on air together)\n",
            self.scenario.label(),
            self.budget_w
        );
        for r in &self.receivers {
            out.push_str(&format!(
                "  RX{} ({} TXs): {:>7.1} kb/s, PER {:>6.2} %\n",
                r.rx + 1,
                r.txs.len(),
                r.result.goodput_bps / 1e3,
                r.result.per * 100.0
            ));
        }
        out.push_str(&format!(
            "  aggregate: {:.1} kb/s across {} simultaneous receivers\n",
            self.aggregate_goodput_bps() / 1e3,
            self.receivers.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_receivers_decode_concurrently() {
        let ext = run(Scenario::Two, 1.2, 10, 91);
        assert_eq!(ext.receivers.len(), 4);
        for r in &ext.receivers {
            assert!(r.result.per < 0.3, "RX{} PER {}", r.rx + 1, r.result.per);
        }
        // Four concurrent ~30 kb/s streams aggregate to >90 kb/s.
        assert!(
            ext.aggregate_goodput_bps() > 90e3,
            "{}",
            ext.aggregate_goodput_bps()
        );
    }

    #[test]
    fn interference_free_scenario_is_clean() {
        let ext = run(Scenario::One, 0.9, 8, 92);
        for r in &ext.receivers {
            assert_eq!(r.result.per, 0.0, "RX{} PER {}", r.rx + 1, r.result.per);
        }
    }

    #[test]
    fn report_lists_every_receiver() {
        let rep = run(Scenario::Three, 0.9, 4, 93).report();
        for rx in 1..=4 {
            assert!(rep.contains(&format!("RX{rx}")));
        }
    }
}
