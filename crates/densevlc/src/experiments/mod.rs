//! Experiment drivers: one module per table/figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers).
//!
//! Every driver exposes a `run(...)` function returning a plain-data result
//! struct with a `report()` method that prints the same rows/series the
//! paper's artifact shows. The `vlc-bench` crate wires each driver to a
//! binary and a Criterion bench.

pub mod complexity;
pub mod ext_adaptation;
pub mod ext_adaptive_kappa;
pub mod ext_arq;
pub mod ext_blockage;
pub mod ext_concurrent;
pub mod ext_density;
pub mod ext_dimming;
pub mod ext_ofdm;
pub mod ext_orientation;
pub mod fig04_taylor_error;
pub mod fig05_illuminance;
pub mod fig08_throughput_vs_power;
pub mod fig09_swing_levels;
pub mod fig10_swing_cdf;
pub mod fig11_heuristic_verification;
pub mod fig12_sync_delay;
pub mod fig18_20_scenarios;
pub mod fig21_baselines;
pub mod tab04_sync_error;
pub mod tab05_iperf;
pub mod validation_ber;

/// Formats a slice of `(x, y)` pairs as aligned rows.
pub(crate) fn format_series(header: &str, rows: &[(f64, f64)], unit: &str) -> String {
    let mut out = String::from(header);
    out.push('\n');
    for (x, y) in rows {
        out.push_str(&format!("  {x:>10.4}  {y:>12.4} {unit}\n"));
    }
    out
}

/// Mean and half-width of the 95 % confidence interval of a sample.
pub(crate) fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci95_of_constant_sample_is_tight() {
        let (m, ci) = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn mean_ci95_singleton() {
        let (m, ci) = mean_ci95(&[5.0]);
        assert_eq!((m, ci), (5.0, 0.0));
    }

    #[test]
    fn format_series_contains_all_rows() {
        let s = format_series("hdr", &[(1.0, 2.0), (3.0, 4.0)], "u");
        assert!(s.starts_with("hdr\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
