//! Table 5: iperf-style goodput and PER for the three §8.1 scenarios.
//!
//! One RX sits centered between TX2, TX3, TX8 and TX9. Paper anchors:
//!
//! | scenario            | throughput | PER    |
//! |---------------------|-----------:|-------:|
//! | 2 TXs (one BBB)     | 33.9 kb/s  | 0.19 % |
//! | 4 TXs, no sync      | 0          | 100 %  |
//! | 4 TXs, NLOS sync    | 33.8 kb/s  | 0.55 % |

use crate::e2e::{run_instrumented as e2e_run, E2eConfig, E2eResult, E2eTx};
use serde::{Deserialize, Serialize};
use vlc_sync::SyncScheme;
use vlc_telemetry::Registry;
use vlc_testbed::{BbbHostMap, Deployment};

/// The Table 5 result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tab05 {
    /// Row 1: two TXs on one BBB (no sync needed).
    pub two_tx: E2eResult,
    /// Row 2: four TXs across two BBBs without synchronization.
    pub four_tx_no_sync: E2eResult,
    /// Row 3: four TXs with NLOS-VLC synchronization.
    pub four_tx_nlos: E2eResult,
}

fn setup() -> (Vec<E2eTx>, Vec<E2eTx>) {
    // RX centered between TX2, TX3, TX8, TX9 (zero-based 1, 2, 7, 8).
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    let hosts = BbbHostMap::paper();
    let tx = |i: usize| E2eTx {
        gain: d.model.channel.gain(i, 0),
        host: hosts.host_of(i),
    };
    (vec![tx(1), tx(7)], vec![tx(1), tx(7), tx(2), tx(8)])
}

/// Runs the three scenarios with `frames` frames each.
pub fn run(frames: usize, seed: u64) -> Tab05 {
    run_instrumented(frames, seed, &Registry::noop())
}

/// [`run`] with telemetry: the PHY counters (`phy.frames_encoded`,
/// `phy.frames_decoded`, `phy.rs_*`, `phy.preamble_misses`, `phy.ber`)
/// accumulate across all three rows.
pub fn run_instrumented(frames: usize, seed: u64, telemetry: &Registry) -> Tab05 {
    assert!(frames > 0);
    let (two, four) = setup();
    let cfg = E2eConfig::default();
    Tab05 {
        two_tx: e2e_run(&two, &SyncScheme::SyncOff, &cfg, frames, seed, telemetry),
        four_tx_no_sync: e2e_run(
            &four,
            &SyncScheme::SyncOff,
            &cfg,
            frames,
            seed ^ 1,
            telemetry,
        ),
        four_tx_nlos: e2e_run(
            &four,
            &SyncScheme::nlos_paper(),
            &cfg,
            frames,
            seed ^ 2,
            telemetry,
        ),
    }
}

impl Tab05 {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let row = |label: &str, r: &E2eResult, paper: &str| {
            format!(
                "  {label:<22} {:>8.1} kb/s  PER {:>6.2} %   (paper: {paper})\n",
                r.goodput_bps / 1e3,
                r.per * 100.0
            )
        };
        let mut out = String::from("Table 5 — iperf-style experiment (one RX amid TX2/3/8/9)\n");
        out.push_str(&row("2 TXs (same BBB)", &self.two_tx, "33.9 kb/s, 0.19 %"));
        out.push_str(&row(
            "4 TXs (no sync)",
            &self.four_tx_no_sync,
            "0 kb/s, 100 %",
        ));
        out.push_str(&row(
            "4 TXs (NLOS sync)",
            &self.four_tx_nlos,
            "33.8 kb/s, 0.55 %",
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_holds() {
        let t = run(25, 51);
        // Row 1 and row 3 deliver ~34 kb/s at low PER; row 2 collapses.
        assert!(t.two_tx.per < 0.1, "2TX PER {}", t.two_tx.per);
        assert!(t.four_tx_nlos.per < 0.1, "NLOS PER {}", t.four_tx_nlos.per);
        assert!(
            t.four_tx_no_sync.per > 0.6,
            "no-sync PER {}",
            t.four_tx_no_sync.per
        );
        assert!(
            t.four_tx_no_sync.goodput_bps < 0.5 * t.two_tx.goodput_bps,
            "no-sync goodput {}",
            t.four_tx_no_sync.goodput_bps
        );
    }

    #[test]
    fn synced_rows_have_similar_goodput() {
        let t = run(20, 52);
        let ratio = t.four_tx_nlos.goodput_bps / t.two_tx.goodput_bps;
        assert!((0.85..=1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn report_has_three_rows() {
        let rep = run(5, 53).report();
        assert_eq!(rep.lines().count(), 4);
        assert!(rep.contains("NLOS sync"));
    }
}
