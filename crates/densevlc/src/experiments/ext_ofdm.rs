//! Extension (paper §9): OFDM in VLC.
//!
//! The paper's testbed PHY is Manchester-OOK at 100 Ksymbols/s because the
//! BBB/PRU cannot run anything heavier; §9 projects that "with advanced
//! dedicated hardware such as FPGA … exploit advanced modulation schemes
//! such as OFDM in VLC". This experiment quantifies the headroom: on the
//! Table-5 link (one RX amid TX2/3/8/9), it runs the DCO-OFDM modem at the
//! same 1 Msps front-end rate and measures BER and net bit rate against the
//! OOK baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vlc_channel::AwgnChannel;
use vlc_led::power::optical_swing_amplitude;
use vlc_led::LedParams;
use vlc_phy::ofdm::{OfdmModem, QamOrder};
use vlc_testbed::Deployment;

/// One modulation's outcome on the reference link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModulationPoint {
    /// Bits per second on the 1 Msps front-end.
    pub bit_rate_bps: f64,
    /// Measured bit error rate.
    pub ber: f64,
}

/// The OFDM-extension result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtOfdm {
    /// Manchester-OOK baseline (the paper's PHY): raw rate at chip level.
    pub ook: ModulationPoint,
    /// DCO-OFDM with 4-QAM.
    pub ofdm_qam4: ModulationPoint,
    /// DCO-OFDM with 16-QAM.
    pub ofdm_qam16: ModulationPoint,
}

/// Runs the comparison with `n_bits` per modulation.
pub fn run(n_bits: usize, seed: u64) -> ExtOfdm {
    assert!(n_bits >= 1_000, "need enough bits for a BER estimate");
    // The Table-5 link: joint gain of TX2+TX3+TX8+TX9 toward the center RX.
    let d = Deployment::testbed(&[(1.0, 0.5)]);
    let gain: f64 = [1usize, 2, 7, 8]
        .iter()
        .map(|&t| d.model.channel.gain(t, 0))
        .sum();
    let led = LedParams::cree_xte_paper();
    let amp = 0.40 * gain * optical_swing_amplitude(&led, led.max_swing);
    let sample_rate = 1e6;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut awgn = AwgnChannel::new(d.model.noise);

    // OOK baseline: ±amp per chip, 10 samples per chip, mid-chip decision.
    // Manchester halves the bit rate: 100 Kchips/s → 50 kb/s raw.
    let ook = {
        let n = n_bits.min(50_000);
        let mut errors = 0usize;
        for _ in 0..n {
            let bit: bool = rng.gen();
            let level = if bit { amp } else { -amp };
            // Average of the mid-chip samples plus noise.
            let mut acc = 0.0;
            for _ in 0..5 {
                acc += level + awgn.sample(&mut rng);
            }
            if (acc > 0.0) != bit {
                errors += 1;
            }
        }
        ModulationPoint {
            bit_rate_bps: 50_000.0,
            ber: errors as f64 / n as f64,
        }
    };

    // DCO-OFDM at the same sample rate: the modem's waveform rides on the
    // LED bias with amplitude `amp` (same optical swing budget as OOK).
    let mut run_ofdm = |order: QamOrder| {
        let modem = OfdmModem {
            order,
            ..OfdmModem::vlc_default()
        };
        let bits_per_sym = modem.bits_per_ofdm_symbol();
        let n_syms = (n_bits / bits_per_sym).max(4);
        let bits: Vec<bool> = (0..n_syms * bits_per_sym).map(|_| rng.gen()).collect();
        let clean = modem.modulate(&bits).expect("whole symbols");
        // Scale the unit-bias waveform to the link amplitude; the receiver
        // sees it AC-coupled, but the modem handles its own bias removal,
        // so feed it the attenuated waveform plus photocurrent noise.
        let noisy: Vec<f64> = clean
            .iter()
            .map(|&s| s * amp + awgn.sample(&mut rng))
            .collect();
        let decoded = modem.demodulate(&noisy, amp).expect("aligned");
        let errors = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        let rate = bits_per_sym as f64 / modem.samples_per_symbol() as f64 * sample_rate;
        ModulationPoint {
            bit_rate_bps: rate,
            ber: errors as f64 / bits.len() as f64,
        }
    };
    let ofdm_qam4 = run_ofdm(QamOrder::Qam4);
    let ofdm_qam16 = run_ofdm(QamOrder::Qam16);

    ExtOfdm {
        ook,
        ofdm_qam4,
        ofdm_qam16,
    }
}

impl ExtOfdm {
    /// Paper-style text rendering.
    pub fn report(&self) -> String {
        let row = |label: &str, p: &ModulationPoint| {
            format!(
                "  {label:<22} {:>8.1} kb/s   BER {:.2e}\n",
                p.bit_rate_bps / 1e3,
                p.ber
            )
        };
        let mut out =
            String::from("Extension (§9) — OFDM in VLC on the Table-5 link (1 Msps front-end)\n");
        out.push_str(&row("Manchester-OOK (paper)", &self.ook));
        out.push_str(&row("DCO-OFDM 4-QAM", &self.ofdm_qam4));
        out.push_str(&row("DCO-OFDM 16-QAM", &self.ofdm_qam16));
        out.push_str(&format!(
            "  OFDM headroom over the paper's PHY: {:.0}× (4-QAM), {:.0}× (16-QAM)\n",
            self.ofdm_qam4.bit_rate_bps / self.ook.bit_rate_bps,
            self.ofdm_qam16.bit_rate_bps / self.ook.bit_rate_bps
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofdm_multiplies_the_bit_rate() {
        let ext = run(20_000, 1);
        assert!(ext.ofdm_qam4.bit_rate_bps > 10.0 * ext.ook.bit_rate_bps);
        assert!(ext.ofdm_qam16.bit_rate_bps > 1.9 * ext.ofdm_qam4.bit_rate_bps);
    }

    #[test]
    fn strong_link_keeps_ber_low() {
        // The Table-5 link is strong: every modulation must be essentially
        // error-free at this SNR.
        let ext = run(20_000, 2);
        assert!(ext.ook.ber < 1e-3, "OOK BER {}", ext.ook.ber);
        assert!(ext.ofdm_qam4.ber < 1e-2, "4-QAM BER {}", ext.ofdm_qam4.ber);
    }

    #[test]
    fn report_names_all_modulations() {
        let rep = run(5_000, 3).report();
        assert!(rep.contains("OOK") && rep.contains("4-QAM") && rep.contains("16-QAM"));
    }
}
