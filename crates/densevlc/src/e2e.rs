//! Symbol-level end-to-end frame simulation (paper §8.1, Table 5).
//!
//! This is the reproduction of the paper's iperf experiment: a group of TXs
//! jointly transmits MAC frames to one receiver; each TX's waveform is
//! delayed by its host's synchronization error; the receiver sees the
//! superposition through the Lambertian channel, adds noise, runs the
//! analog front-end, detects the preamble, slices chips, Manchester-decodes,
//! and Reed–Solomon-corrects. Frames whose payload survives count toward
//! goodput; the rest are packet errors.
//!
//! The decisive physics: TXs hosted by the *same* BeagleBone share a clock
//! and superimpose perfectly; TXs on different hosts are offset by the sync
//! scheme's start error. At the testbed's 100 Ksymbols/s a chip lasts 10 µs,
//! so the no-synchronization skew (median ~10 µs — a full chip) garbles the
//! Manchester stream, while the NLOS-VLC residual (0.575 µs) is absorbed by
//! mid-chip slicing.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vlc_channel::{AwgnChannel, NoiseParams};
use vlc_led::power::optical_swing_amplitude;
use vlc_led::LedParams;
use vlc_phy::codec::RsStack;
use vlc_phy::frame::{protocol, Frame, FrameError, FrameHeader};
use vlc_phy::manchester::{manchester_decode, manchester_encode, Chip};
use vlc_phy::packed::{packed_encode, PackedChips};
use vlc_phy::rs::ReedSolomon;
use vlc_phy::waveform::{
    correlate_pattern, correlate_template, mix_into, render, render_packed_into, slice_chips,
    slice_chips_packed_into, template_energy, WaveformConfig,
};
use vlc_sync::SyncScheme;
use vlc_telemetry::Registry;

/// The preamble byte pattern (chips alternate at the chip rate, ideal for
/// correlation locking).
const PREAMBLE_BYTES: [u8; 4] = [0xAA, 0xAA, 0xAA, 0x55];

/// The preamble's chip encodings — scalar for the reference path, packed for
/// the fast path — computed once per process. Every `run*` entry point
/// shares this hoist (the encoding used to be recomputed per run and per
/// ARQ retry); the `preamble_hoist_matches_fresh_encoding` test pins both
/// call-site families to a fresh `manchester_encode`.
fn preamble() -> &'static (Vec<Chip>, PackedChips) {
    static PREAMBLE: OnceLock<(Vec<Chip>, PackedChips)> = OnceLock::new();
    PREAMBLE.get_or_init(|| {
        let scalar = manchester_encode(&PREAMBLE_BYTES);
        let packed = packed_encode(&PREAMBLE_BYTES);
        assert_eq!(packed.to_chips(), scalar, "preamble encodings diverge");
        (scalar, packed)
    })
}

/// One transmitter participating in the joint transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct E2eTx {
    /// Line-of-sight gain to the receiver.
    pub gain: f64,
    /// Hosting BBB: TXs with the same host share one clock/start offset.
    pub host: usize,
}

/// Configuration of an end-to-end run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eConfig {
    /// Chip (symbol) rate in chips/s.
    pub symbol_rate_hz: f64,
    /// Receiver sampling rate in samples/s.
    pub sample_rate_hz: f64,
    /// Payload bytes per frame.
    pub payload_len: usize,
    /// MAC turnaround between frames in seconds (WiFi ACK round-trip plus
    /// controller processing; calibrated to the paper's measured goodput).
    pub turnaround_s: f64,
    /// Receiver noise parameters.
    pub noise: NoiseParams,
    /// LED parameters (for the physical optical swing amplitude).
    pub led: LedParams,
    /// Photodiode responsivity in A/W.
    pub responsivity: f64,
}

impl Default for E2eConfig {
    fn default() -> Self {
        E2eConfig {
            symbol_rate_hz: 100_000.0,
            sample_rate_hz: 1_000_000.0,
            payload_len: 200,
            turnaround_s: 9.4e-3,
            noise: NoiseParams::paper(),
            led: LedParams::cree_xte_paper(),
            responsivity: 0.40,
        }
    }
}

/// Result of an end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct E2eResult {
    /// Frames transmitted.
    pub frames_total: usize,
    /// Frames whose payload decoded intact.
    pub frames_ok: usize,
    /// Packet error rate in `[0, 1]`.
    pub per: f64,
    /// Application goodput in bit/s (payload bits over total air+gap time).
    pub goodput_bps: f64,
    /// Total Reed–Solomon byte corrections across delivered frames.
    pub rs_corrections: usize,
}

/// Runs `frames` joint transmissions of a fresh random payload each and
/// reports PER and goodput.
pub fn run(
    txs: &[E2eTx],
    scheme: &SyncScheme,
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
) -> E2eResult {
    run_instrumented(txs, scheme, cfg, frames, seed, &Registry::noop())
}

/// [`run`] with telemetry: frame encode/decode counters flow through the
/// instrumented PHY codec (`phy.frames_encoded`, `phy.frames_decoded`,
/// `phy.rs_symbols_corrected`, `phy.rs_uncorrectable`,
/// `phy.frame_sync_errors`); failures to even reach the decoder count into
/// `phy.preamble_misses` (correlator never locks) or `phy.frame_sync_errors`
/// (chip slicing / Manchester decoding breaks); decodes whose payload does
/// not match the transmitted one count into `phy.frames_bad_payload`; and
/// each sliced frame's raw chip error fraction (sliced vs. transmitted MAC
/// chips, before FEC) lands in the `phy.ber` histogram.
pub fn run_instrumented(
    txs: &[E2eTx],
    scheme: &SyncScheme,
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
    telemetry: &Registry,
) -> E2eResult {
    FramePipeline::new(cfg).run(txs, scheme, cfg, frames, seed, telemetry)
}

/// The scalar reference implementation of [`run`]: `Vec<Chip>` streams,
/// per-call Reed–Solomon buffers, and fresh waveform allocations per frame.
/// The packed pipeline ([`FramePipeline`]) is pinned bit-identical to this
/// path by the `packed_run_matches_scalar_reference` tests; keep the two in
/// lockstep when changing either.
pub fn run_scalar(
    txs: &[E2eTx],
    scheme: &SyncScheme,
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
) -> E2eResult {
    run_scalar_instrumented(txs, scheme, cfg, frames, seed, &Registry::noop())
}

/// [`run_scalar`] with telemetry — the instrumented scalar reference.
pub fn run_scalar_instrumented(
    txs: &[E2eTx],
    scheme: &SyncScheme,
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
    telemetry: &Registry,
) -> E2eResult {
    assert!(!txs.is_empty(), "need at least one transmitter");
    assert!(frames > 0, "need at least one frame");
    let mut rng = StdRng::seed_from_u64(seed);
    let rs = ReedSolomon::paper();
    let wave_cfg = WaveformConfig {
        symbol_rate_hz: cfg.symbol_rate_hz,
        sample_rate_hz: cfg.sample_rate_hz,
    };
    let preamble_chips = &preamble().0;
    let a_opt = optical_swing_amplitude(&cfg.led, cfg.led.max_swing);
    let mut awgn = AwgnChannel::new(cfg.noise);

    // Hosts present in this transmission.
    let mut hosts: Vec<usize> = txs.iter().map(|t| t.host).collect();
    hosts.sort_unstable();
    hosts.dedup();

    // Without synchronization, nothing aligns the hosts' software transmit
    // loops: each BBB pushes the frame out with its own loop phase, an
    // offset that persists for the whole run and is uniform over a frame
    // duration. This — not the microsecond-scale per-frame jitter — is why
    // the paper's unsynchronized 4-TX row receives *zero* packets. The RX
    // locks onto the earliest copy, so phases are taken relative to the
    // earliest host.
    let chips_per_frame =
        (Frame::wire_len(cfg.payload_len, &rs) + PREAMBLE_BYTES.len()) as f64 * 16.0;
    let frame_duration_s = chips_per_frame / cfg.symbol_rate_hz;
    let loop_phase: Vec<(usize, f64)> = if matches!(scheme, SyncScheme::SyncOff) && hosts.len() > 1
    {
        let raw: Vec<f64> = hosts
            .iter()
            .map(|_| rng.gen_range(0.0..frame_duration_s))
            .collect();
        let min = raw.iter().copied().fold(f64::INFINITY, f64::min);
        hosts
            .iter()
            .copied()
            .zip(raw.into_iter().map(|p| p - min))
            .collect()
    } else {
        hosts.iter().map(|&h| (h, 0.0)).collect()
    };

    let mut frames_ok = 0;
    let mut rs_corrections = 0;
    let mut air_time_s = 0.0;
    for seq in 0..frames {
        // Fresh payload per frame.
        let payload: Vec<u8> = (0..cfg.payload_len).map(|_| rng.gen()).collect();
        let frame = Frame::new(
            u64::MAX,
            FrameHeader {
                dst: 1,
                src: 0,
                protocol: protocol::DATA,
            },
            payload.clone(),
        );
        let bytes = frame.to_bytes_instrumented(&rs, telemetry);
        let mut chips: Vec<Chip> = preamble_chips.clone();
        chips.extend(manchester_encode(&bytes));
        let spc = wave_cfg.samples_per_chip();
        // Guard before and after for offsets and filter transients.
        let guard = (8.0 * spc) as usize;
        let n_samples = guard + (chips.len() as f64 * spc).ceil() as usize + guard;
        air_time_s += n_samples as f64 / cfg.sample_rate_hz;

        // Per-host start offsets for this frame: per-frame jitter plus the
        // persistent loop phase.
        let offsets: Vec<(usize, f64)> = hosts
            .iter()
            .map(|&h| {
                let phase = loop_phase
                    .iter()
                    .find(|(host, _)| *host == h)
                    .expect("host has a phase")
                    .1;
                (
                    h,
                    phase + scheme.sample_start_offset(cfg.symbol_rate_hz, &mut rng),
                )
            })
            .collect();

        // Superimpose every TX's light at the photodiode.
        let mut photocurrent = vec![0.0f64; n_samples];
        for tx in txs {
            let offset = offsets
                .iter()
                .find(|(h, _)| *h == tx.host)
                .expect("host offset exists")
                .1;
            let amp = cfg.responsivity * tx.gain * a_opt;
            let delay = guard as f64 / cfg.sample_rate_hz + offset;
            let w = render(&chips, &wave_cfg, amp, delay, n_samples);
            mix_into(&mut photocurrent, &w);
        }
        // Receiver noise.
        for s in photocurrent.iter_mut() {
            *s += awgn.sample(&mut rng);
        }

        // Preamble lock: search around the nominal start.
        let Some((start, score)) =
            correlate_pattern(&photocurrent, &wave_cfg, preamble_chips, 0, 3 * guard)
        else {
            telemetry.counter("phy.preamble_misses").inc();
            continue;
        };
        if score < 0.5 {
            telemetry.counter("phy.preamble_misses").inc();
            continue;
        }
        // Slice the MAC portion after the preamble.
        let mac_start = start + (preamble_chips.len() as f64 * spc).round() as usize;
        let n_mac_chips = bytes.len() * 16;
        let Some(mac_chips) = slice_chips(&photocurrent, &wave_cfg, mac_start, n_mac_chips) else {
            telemetry.counter("phy.frame_sync_errors").inc();
            continue;
        };
        // Raw (pre-FEC) chip error rate: sliced chips vs. what was sent.
        let sent_chips = &chips[preamble_chips.len()..];
        let chip_errors = mac_chips
            .iter()
            .zip(sent_chips)
            .filter(|(got, sent)| got != sent)
            .count();
        telemetry
            .histogram("phy.ber")
            .record(chip_errors as f64 / sent_chips.len().max(1) as f64);
        let Some(decoded_bytes) = manchester_decode(&mac_chips) else {
            telemetry.counter("phy.frame_sync_errors").inc();
            continue;
        };
        match Frame::from_bytes_instrumented(&decoded_bytes, &rs, telemetry) {
            Ok((decoded, fixed)) if decoded.payload == payload => {
                frames_ok += 1;
                rs_corrections += fixed;
            }
            Ok(_) => {
                telemetry.counter("phy.frames_bad_payload").inc();
            }
            Err(_) => {}
        }
        let _ = seq;
    }

    let total_time_s = air_time_s + frames as f64 * cfg.turnaround_s;
    let payload_bits = (cfg.payload_len * 8 * frames_ok) as f64;
    E2eResult {
        frames_total: frames,
        frames_ok,
        per: 1.0 - frames_ok as f64 / frames as f64,
        goodput_bps: payload_bits / total_time_s,
        rs_corrections,
    }
}

/// The packed-chip fast path through the end-to-end simulation.
///
/// Owns every buffer the per-frame PHY cycle needs — the hoisted preamble
/// template, the FEC stack (the paper's Manchester+RS path as a
/// [`vlc_phy::codec::CodecStack`], routed through
/// [`Frame::encode_parts_with`] / [`Frame::decode_parts_with`]), packed
/// chip streams, and the waveform/photocurrent/decode scratch — so that a
/// warmed pipeline runs frames (and ARQ retries) with **zero heap
/// allocations** in steady state (`crates/densevlc/tests/e2e_identity.rs`
/// pins this with a counting allocator). Its output is bit-identical to
/// the scalar reference ([`run_scalar_instrumented`],
/// [`run_concurrent_scalar`]): identical RNG draw order, identical float
/// summation order, identical slicing predicates — so [`E2eResult`]
/// matches exactly, not just statistically (and the trait refactor is
/// pinned against hard-coded pre-refactor values by
/// `pipeline_results_are_pinned_to_pre_codec_stack_values`).
#[derive(Debug)]
pub struct FramePipeline {
    wave_cfg: WaveformConfig,
    stack: RsStack,
    /// The preamble rendered at unit amplitude, zero delay — exactly the
    /// template `correlate_pattern` re-renders per call on the scalar path.
    preamble_template: Vec<f64>,
    preamble_energy: f64,
    // Per-frame scratch (capacities persist across frames and runs).
    payload: Vec<u8>,
    wire: Vec<u8>,
    mac_tx: PackedChips,
    tx_chips: PackedChips,
    photocurrent: Vec<f64>,
    wave: Vec<f64>,
    sliced: PackedChips,
    rx_bytes: Vec<u8>,
    payload_rx: Vec<u8>,
    // Per-run scratch.
    hosts: Vec<usize>,
    loop_phase: Vec<(usize, f64)>,
    offsets: Vec<(usize, f64)>,
    // Concurrent-mode scratch (one slot per beamspot).
    spot_payloads: Vec<Vec<u8>>,
    spot_mac: Vec<PackedChips>,
    spot_chips: Vec<PackedChips>,
    spot_wire_lens: Vec<usize>,
    spot_offsets: Vec<f64>,
    spot_frames_ok: Vec<usize>,
    spot_rs_corrections: Vec<usize>,
}

impl FramePipeline {
    /// Builds a pipeline for runs at `cfg`'s symbol and sample rates (the
    /// hoisted preamble template is rate-specific; [`Self::run`] asserts
    /// the rates match).
    pub fn new(cfg: &E2eConfig) -> Self {
        let wave_cfg = WaveformConfig {
            symbol_rate_hz: cfg.symbol_rate_hz,
            sample_rate_hz: cfg.sample_rate_hz,
        };
        let (_, pre) = preamble();
        let mut preamble_template = Vec::new();
        render_packed_into(
            pre,
            &wave_cfg,
            1.0,
            0.0,
            (pre.len() as f64 * wave_cfg.samples_per_chip()).round() as usize,
            &mut preamble_template,
        );
        let preamble_energy = template_energy(&preamble_template);
        FramePipeline {
            wave_cfg,
            stack: RsStack::paper(),
            preamble_template,
            preamble_energy,
            payload: Vec::new(),
            wire: Vec::new(),
            mac_tx: PackedChips::new(),
            tx_chips: PackedChips::new(),
            photocurrent: Vec::new(),
            wave: Vec::new(),
            sliced: PackedChips::new(),
            rx_bytes: Vec::new(),
            payload_rx: Vec::new(),
            hosts: Vec::new(),
            loop_phase: Vec::new(),
            offsets: Vec::new(),
            spot_payloads: Vec::new(),
            spot_mac: Vec::new(),
            spot_chips: Vec::new(),
            spot_wire_lens: Vec::new(),
            spot_offsets: Vec::new(),
            spot_frames_ok: Vec::new(),
            spot_rs_corrections: Vec::new(),
        }
    }

    fn assert_rates(&self, cfg: &E2eConfig) {
        assert!(
            cfg.symbol_rate_hz == self.wave_cfg.symbol_rate_hz
                && cfg.sample_rate_hz == self.wave_cfg.sample_rate_hz,
            "pipeline was built for different rates"
        );
    }

    /// The packed twin of [`run_scalar_instrumented`]: same RNG stream,
    /// same physics, same telemetry counters, bit-identical [`E2eResult`] —
    /// but through reusable packed buffers. Packed encode work runs under
    /// the `phy.packed.encode_s` span, slice + Manchester decode under
    /// `phy.packed.decode_s`, and the Reed–Solomon block decode under
    /// `phy.rs.block_s`.
    pub fn run(
        &mut self,
        txs: &[E2eTx],
        scheme: &SyncScheme,
        cfg: &E2eConfig,
        frames: usize,
        seed: u64,
        telemetry: &Registry,
    ) -> E2eResult {
        assert!(!txs.is_empty(), "need at least one transmitter");
        assert!(frames > 0, "need at least one frame");
        self.assert_rates(cfg);
        let (_, pre) = preamble();
        let Self {
            wave_cfg,
            stack,
            preamble_template,
            preamble_energy,
            payload,
            wire,
            mac_tx,
            tx_chips,
            photocurrent,
            wave,
            sliced,
            rx_bytes,
            payload_rx,
            hosts,
            loop_phase,
            offsets,
            ..
        } = self;
        let mut rng = StdRng::seed_from_u64(seed);
        let a_opt = optical_swing_amplitude(&cfg.led, cfg.led.max_swing);
        let mut awgn = AwgnChannel::new(cfg.noise);

        hosts.clear();
        hosts.extend(txs.iter().map(|t| t.host));
        hosts.sort_unstable();
        hosts.dedup();

        // Same persistent loop-phase model (and RNG draws) as the scalar
        // reference: one uniform phase per host, relative to the earliest.
        let chips_per_frame =
            (Frame::wire_len_with(cfg.payload_len, stack) + PREAMBLE_BYTES.len()) as f64 * 16.0;
        let frame_duration_s = chips_per_frame / cfg.symbol_rate_hz;
        loop_phase.clear();
        if matches!(scheme, SyncScheme::SyncOff) && hosts.len() > 1 {
            for &h in hosts.iter() {
                loop_phase.push((h, rng.gen_range(0.0..frame_duration_s)));
            }
            let min = loop_phase
                .iter()
                .map(|&(_, p)| p)
                .fold(f64::INFINITY, f64::min);
            for (_, p) in loop_phase.iter_mut() {
                *p -= min;
            }
        } else {
            loop_phase.extend(hosts.iter().map(|&h| (h, 0.0)));
        }

        let header = FrameHeader {
            dst: 1,
            src: 0,
            protocol: protocol::DATA,
        };
        let mut frames_ok = 0;
        let mut rs_corrections = 0;
        let mut air_time_s = 0.0;
        for _ in 0..frames {
            {
                let _encode = telemetry.span("phy.packed.encode_s");
                payload.clear();
                for _ in 0..cfg.payload_len {
                    payload.push(rng.gen());
                }
                telemetry.counter("phy.frames_encoded").inc();
                wire.clear();
                Frame::encode_parts_with(u64::MAX, &header, payload, stack, wire);
                mac_tx.clear();
                mac_tx.encode_bytes(wire);
                tx_chips.clear();
                tx_chips.extend_from(pre);
                tx_chips.extend_from(mac_tx);
            }
            let spc = wave_cfg.samples_per_chip();
            let guard = (8.0 * spc) as usize;
            let n_samples = guard + (tx_chips.len() as f64 * spc).ceil() as usize + guard;
            air_time_s += n_samples as f64 / cfg.sample_rate_hz;

            offsets.clear();
            for &h in hosts.iter() {
                let phase = loop_phase
                    .iter()
                    .find(|(host, _)| *host == h)
                    .expect("host has a phase")
                    .1;
                offsets.push((
                    h,
                    phase + scheme.sample_start_offset(cfg.symbol_rate_hz, &mut rng),
                ));
            }

            photocurrent.clear();
            photocurrent.resize(n_samples, 0.0);
            for tx in txs {
                let offset = offsets
                    .iter()
                    .find(|(h, _)| *h == tx.host)
                    .expect("host offset exists")
                    .1;
                let amp = cfg.responsivity * tx.gain * a_opt;
                let delay = guard as f64 / cfg.sample_rate_hz + offset;
                render_packed_into(tx_chips, wave_cfg, amp, delay, n_samples, wave);
                mix_into(photocurrent, wave);
            }
            for s in photocurrent.iter_mut() {
                *s += awgn.sample(&mut rng);
            }

            let Some((start, score)) = correlate_template(
                photocurrent,
                preamble_template,
                *preamble_energy,
                0,
                3 * guard,
            ) else {
                telemetry.counter("phy.preamble_misses").inc();
                continue;
            };
            if score < 0.5 {
                telemetry.counter("phy.preamble_misses").inc();
                continue;
            }
            let mac_start = start + (pre.len() as f64 * spc).round() as usize;
            let n_mac_chips = wire.len() * 16;
            {
                let _decode = telemetry.span("phy.packed.decode_s");
                if !slice_chips_packed_into(photocurrent, wave_cfg, mac_start, n_mac_chips, sliced)
                {
                    telemetry.counter("phy.frame_sync_errors").inc();
                    continue;
                }
                let chip_errors = sliced.diff_count(mac_tx);
                telemetry
                    .histogram("phy.ber")
                    .record(chip_errors as f64 / mac_tx.len().max(1) as f64);
                if !sliced.decode_bytes_into(rx_bytes) {
                    telemetry.counter("phy.frame_sync_errors").inc();
                    continue;
                }
            }
            let parsed = {
                let _rs_block = telemetry.span("phy.rs.block_s");
                Frame::decode_parts_with(rx_bytes, stack, payload_rx)
            };
            match parsed {
                Ok((_, _, fixed)) => {
                    telemetry.counter("phy.frames_decoded").inc();
                    telemetry
                        .counter("phy.rs_symbols_corrected")
                        .add(fixed as u64);
                    if payload_rx == payload {
                        frames_ok += 1;
                        rs_corrections += fixed;
                    } else {
                        telemetry.counter("phy.frames_bad_payload").inc();
                    }
                }
                Err(FrameError::Uncorrectable) => {
                    telemetry.counter("phy.rs_uncorrectable").inc();
                    telemetry.event("phy.frame", "rs_uncorrectable", &[]);
                }
                Err(_) => {
                    telemetry.counter("phy.frame_sync_errors").inc();
                }
            }
        }

        let total_time_s = air_time_s + frames as f64 * cfg.turnaround_s;
        let payload_bits = (cfg.payload_len * 8 * frames_ok) as f64;
        E2eResult {
            frames_total: frames,
            frames_ok,
            per: 1.0 - frames_ok as f64 / frames as f64,
            goodput_bps: payload_bits / total_time_s,
            rs_corrections,
        }
    }

    /// The packed twin of [`run_concurrent_scalar`] — bit-identical
    /// per-beamspot results through the reusable buffers.
    pub fn run_concurrent(
        &mut self,
        channel: &vlc_channel::ChannelMatrix,
        beamspots: &[E2eBeamspot],
        cfg: &E2eConfig,
        frames: usize,
        seed: u64,
    ) -> Vec<E2eResult> {
        assert!(!beamspots.is_empty(), "need at least one beamspot");
        assert!(frames > 0, "need at least one frame");
        for spot in beamspots {
            assert!(
                !spot.txs.is_empty(),
                "beamspot for RX{} has no TXs",
                spot.rx
            );
            assert!(
                spot.rx < channel.n_rx(),
                "RX {} outside the channel",
                spot.rx
            );
            for &t in &spot.txs {
                assert!(t < channel.n_tx(), "TX {t} outside the channel");
            }
        }
        self.assert_rates(cfg);
        let (_, pre) = preamble();
        let Self {
            wave_cfg,
            stack,
            preamble_template,
            preamble_energy,
            wire,
            photocurrent,
            wave,
            sliced,
            rx_bytes,
            payload_rx,
            spot_payloads,
            spot_mac,
            spot_chips,
            spot_wire_lens,
            spot_offsets,
            spot_frames_ok,
            spot_rs_corrections,
            ..
        } = self;
        let mut rng = StdRng::seed_from_u64(seed);
        let a_opt = optical_swing_amplitude(&cfg.led, cfg.led.max_swing);
        let mut awgn = AwgnChannel::new(cfg.noise);
        let scheme = SyncScheme::nlos_paper();
        let header = FrameHeader {
            dst: 1,
            src: 0,
            protocol: protocol::DATA,
        };

        let n = beamspots.len();
        if spot_payloads.len() < n {
            spot_payloads.resize_with(n, Vec::new);
            spot_mac.resize_with(n, PackedChips::new);
            spot_chips.resize_with(n, PackedChips::new);
        }
        spot_wire_lens.clear();
        spot_wire_lens.resize(n, 0);
        spot_frames_ok.clear();
        spot_frames_ok.resize(n, 0);
        spot_rs_corrections.clear();
        spot_rs_corrections.resize(n, 0);

        let spc = wave_cfg.samples_per_chip();
        let guard = (8.0 * spc) as usize;
        let mut air_time_s = 0.0;
        for _ in 0..frames {
            for i in 0..n {
                let payload = &mut spot_payloads[i];
                payload.clear();
                for _ in 0..cfg.payload_len {
                    payload.push(rng.gen());
                }
                wire.clear();
                Frame::encode_parts_with(u64::MAX, &header, payload, stack, wire);
                spot_wire_lens[i] = wire.len();
                let mac = &mut spot_mac[i];
                mac.clear();
                mac.encode_bytes(wire);
                let chips = &mut spot_chips[i];
                chips.clear();
                chips.extend_from(pre);
                chips.extend_from(mac);
            }
            let max_chips = spot_chips[..n]
                .iter()
                .map(PackedChips::len)
                .max()
                .expect("non-empty plan");
            let n_samples = guard + (max_chips as f64 * spc).ceil() as usize + guard;
            air_time_s += n_samples as f64 / cfg.sample_rate_hz;

            spot_offsets.clear();
            for _ in beamspots {
                spot_offsets.push(scheme.sample_start_offset(cfg.symbol_rate_hz, &mut rng));
            }

            for (b, spot) in beamspots.iter().enumerate() {
                photocurrent.clear();
                photocurrent.resize(n_samples, 0.0);
                for (other, other_spot) in beamspots.iter().enumerate() {
                    let gain_sum: f64 = other_spot
                        .txs
                        .iter()
                        .map(|&t| channel.gain(t, spot.rx))
                        .sum();
                    if gain_sum <= 0.0 {
                        continue;
                    }
                    let amp = cfg.responsivity * gain_sum * a_opt;
                    let delay = guard as f64 / cfg.sample_rate_hz + spot_offsets[other];
                    render_packed_into(&spot_chips[other], wave_cfg, amp, delay, n_samples, wave);
                    mix_into(photocurrent, wave);
                }
                for s in photocurrent.iter_mut() {
                    *s += awgn.sample(&mut rng);
                }

                let Some((start, score)) = correlate_template(
                    photocurrent,
                    preamble_template,
                    *preamble_energy,
                    0,
                    3 * guard,
                ) else {
                    continue;
                };
                if score < 0.3 {
                    continue;
                }
                let mac_start = start + (pre.len() as f64 * spc).round() as usize;
                if !slice_chips_packed_into(
                    photocurrent,
                    wave_cfg,
                    mac_start,
                    spot_wire_lens[b] * 16,
                    sliced,
                ) {
                    continue;
                }
                if !sliced.decode_bytes_into(rx_bytes) {
                    continue;
                }
                if let Ok((_, _, fixed)) = Frame::decode_parts_with(rx_bytes, stack, payload_rx) {
                    if *payload_rx == spot_payloads[b] {
                        spot_frames_ok[b] += 1;
                        spot_rs_corrections[b] += fixed;
                    }
                }
            }
        }

        let total_time_s = air_time_s + frames as f64 * cfg.turnaround_s;
        (0..n)
            .map(|b| E2eResult {
                frames_total: frames,
                frames_ok: spot_frames_ok[b],
                per: 1.0 - spot_frames_ok[b] as f64 / frames as f64,
                goodput_bps: (cfg.payload_len * 8 * spot_frames_ok[b]) as f64 / total_time_s,
                rs_corrections: spot_rs_corrections[b],
            })
            .collect()
    }
}

/// Result of an ARQ (stop-and-wait) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArqResult {
    /// Payloads the application submitted.
    pub payloads_total: usize,
    /// Payloads delivered (decoded and acknowledged) within the retry
    /// budget.
    pub delivered: usize,
    /// Total transmission attempts across all payloads.
    pub attempts: usize,
    /// Application goodput in bit/s, charged for every attempt's air time
    /// plus a WiFi-ACK turnaround per attempt.
    pub goodput_bps: f64,
}

impl ArqResult {
    /// Mean attempts per delivered payload.
    pub fn attempts_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            f64::INFINITY
        } else {
            self.attempts as f64 / self.delivered as f64
        }
    }
}

/// Runs stop-and-wait ARQ over the single-receiver link: each payload is
/// retransmitted until the frame decodes *and* its WiFi ACK arrives, or
/// `max_retries` retransmissions are spent (paper §7.2: the RX "sends a MAC
/// acknowledgement frame back to the controller using WiFi").
pub fn run_with_arq(
    txs: &[E2eTx],
    scheme: &SyncScheme,
    cfg: &E2eConfig,
    wifi: &vlc_mac::WifiUplink,
    payloads: usize,
    max_retries: usize,
    seed: u64,
) -> ArqResult {
    assert!(payloads > 0, "need at least one payload");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delivered = 0usize;
    let mut attempts = 0usize;
    let mut time_s = 0.0;
    // Frame air time (guard + chips + guard) matches `run`'s accounting.
    let rs = ReedSolomon::paper();
    let chips_per_frame =
        (Frame::wire_len(cfg.payload_len, &rs) + PREAMBLE_BYTES.len()) as f64 * 16.0;
    let spc = cfg.sample_rate_hz / cfg.symbol_rate_hz;
    let air_s = ((8.0 * spc) * 2.0 + chips_per_frame * spc).ceil() / cfg.sample_rate_hz;

    // One pipeline reused across every payload and retry: after the first
    // attempt warms its buffers, retransmissions allocate nothing.
    let mut pipeline = FramePipeline::new(cfg);
    let noop = Registry::noop();
    for p in 0..payloads {
        for attempt in 0..=max_retries {
            attempts += 1;
            time_s += air_s + cfg.turnaround_s;
            // One frame through the physical pipeline (fresh seed per try).
            let try_seed = seed ^ ((p as u64) << 20) ^ (attempt as u64 + 1);
            let ok = pipeline.run(txs, scheme, cfg, 1, try_seed, &noop).frames_ok == 1;
            if !ok {
                continue;
            }
            // The decode succeeded; the ACK must survive the WiFi uplink,
            // otherwise the controller retransmits a delivered frame (a
            // duplicate — delivered either way, but the attempt is spent).
            if wifi.delivery_s(&mut rng).is_some() {
                delivered += 1;
                break;
            } else if attempt == max_retries {
                // Data arrived even though the last ACK was lost.
                delivered += 1;
            }
        }
    }
    ArqResult {
        payloads_total: payloads,
        delivered,
        attempts,
        goodput_bps: (cfg.payload_len * 8 * delivered) as f64 / time_s,
    }
}

/// One beamspot in a concurrent multi-receiver transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eBeamspot {
    /// The served receiver (column index of the channel matrix).
    pub rx: usize,
    /// Zero-based TX indices jointly carrying this receiver's stream.
    pub txs: Vec<usize>,
}

/// Runs `frames` *concurrent* transmissions: every beamspot radiates its
/// own frame simultaneously, and each receiver's photodiode sees the
/// superposition of all streams through the full channel matrix — the
/// symbol-level realization of the paper's cell-free MIMO claim, with
/// inter-beamspot interference emerging from the waveforms rather than
/// from Eq. 12.
///
/// Returns one [`E2eResult`] per beamspot, in input order. TXs within a
/// beamspot are assumed NLOS-synchronized; distinct beamspots are mutually
/// asynchronous (they carry different frames anyway).
///
/// # Panics
/// Panics on an empty plan, a beamspot without TXs, or indices outside the
/// channel matrix.
pub fn run_concurrent(
    channel: &vlc_channel::ChannelMatrix,
    beamspots: &[E2eBeamspot],
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
) -> Vec<E2eResult> {
    FramePipeline::new(cfg).run_concurrent(channel, beamspots, cfg, frames, seed)
}

/// The scalar reference implementation of [`run_concurrent`], pinned
/// bit-identical to the packed pipeline by
/// `packed_concurrent_matches_scalar_reference`.
pub fn run_concurrent_scalar(
    channel: &vlc_channel::ChannelMatrix,
    beamspots: &[E2eBeamspot],
    cfg: &E2eConfig,
    frames: usize,
    seed: u64,
) -> Vec<E2eResult> {
    assert!(!beamspots.is_empty(), "need at least one beamspot");
    assert!(frames > 0, "need at least one frame");
    for spot in beamspots {
        assert!(
            !spot.txs.is_empty(),
            "beamspot for RX{} has no TXs",
            spot.rx
        );
        assert!(
            spot.rx < channel.n_rx(),
            "RX {} outside the channel",
            spot.rx
        );
        for &t in &spot.txs {
            assert!(t < channel.n_tx(), "TX {t} outside the channel");
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let rs = ReedSolomon::paper();
    let wave_cfg = WaveformConfig {
        symbol_rate_hz: cfg.symbol_rate_hz,
        sample_rate_hz: cfg.sample_rate_hz,
    };
    let preamble_chips = &preamble().0;
    let a_opt = optical_swing_amplitude(&cfg.led, cfg.led.max_swing);
    let mut awgn = AwgnChannel::new(cfg.noise);
    let scheme = SyncScheme::nlos_paper();

    let spc = wave_cfg.samples_per_chip();
    let guard = (8.0 * spc) as usize;
    let mut frames_ok = vec![0usize; beamspots.len()];
    let mut rs_corrections = vec![0usize; beamspots.len()];
    let mut air_time_s = 0.0;
    for _ in 0..frames {
        // Each beamspot gets its own fresh payload and chip stream.
        let mut payloads = Vec::with_capacity(beamspots.len());
        let mut chip_streams = Vec::with_capacity(beamspots.len());
        let mut wire_lens = Vec::with_capacity(beamspots.len());
        for _ in beamspots {
            let payload: Vec<u8> = (0..cfg.payload_len).map(|_| rng.gen()).collect();
            let frame = Frame::new(
                u64::MAX,
                FrameHeader {
                    dst: 1,
                    src: 0,
                    protocol: protocol::DATA,
                },
                payload.clone(),
            );
            let bytes = frame.to_bytes(&rs);
            let mut chips: Vec<Chip> = preamble_chips.clone();
            chips.extend(manchester_encode(&bytes));
            payloads.push(payload);
            wire_lens.push(bytes.len());
            chip_streams.push(chips);
        }
        let max_chips = chip_streams
            .iter()
            .map(Vec::len)
            .max()
            .expect("non-empty plan");
        let n_samples = guard + (max_chips as f64 * spc).ceil() as usize + guard;
        air_time_s += n_samples as f64 / cfg.sample_rate_hz;

        // Per-beamspot start offsets (beamspots are mutually asynchronous;
        // TXs inside one are synchronized by the NLOS pilot).
        let spot_offsets: Vec<f64> = beamspots
            .iter()
            .map(|_| scheme.sample_start_offset(cfg.symbol_rate_hz, &mut rng))
            .collect();

        // Each receiver sees every beamspot's waveform through its own
        // channel column.
        for (b, spot) in beamspots.iter().enumerate() {
            let mut photocurrent = vec![0.0f64; n_samples];
            for (other, other_spot) in beamspots.iter().enumerate() {
                let gain_sum: f64 = other_spot
                    .txs
                    .iter()
                    .map(|&t| channel.gain(t, spot.rx))
                    .sum();
                if gain_sum <= 0.0 {
                    continue;
                }
                let amp = cfg.responsivity * gain_sum * a_opt;
                let delay = guard as f64 / cfg.sample_rate_hz + spot_offsets[other];
                let w = render(&chip_streams[other], &wave_cfg, amp, delay, n_samples);
                mix_into(&mut photocurrent, &w);
            }
            for s in photocurrent.iter_mut() {
                *s += awgn.sample(&mut rng);
            }

            let Some((start, score)) =
                correlate_pattern(&photocurrent, &wave_cfg, preamble_chips, 0, 3 * guard)
            else {
                continue;
            };
            if score < 0.3 {
                continue;
            }
            let mac_start = start + (preamble_chips.len() as f64 * spc).round() as usize;
            let Some(mac_chips) =
                slice_chips(&photocurrent, &wave_cfg, mac_start, wire_lens[b] * 16)
            else {
                continue;
            };
            let Some(decoded_bytes) = manchester_decode(&mac_chips) else {
                continue;
            };
            if let Ok((decoded, fixed)) = Frame::from_bytes(&decoded_bytes, &rs) {
                if decoded.payload == payloads[b] {
                    frames_ok[b] += 1;
                    rs_corrections[b] += fixed;
                }
            }
        }
    }

    let total_time_s = air_time_s + frames as f64 * cfg.turnaround_s;
    beamspots
        .iter()
        .enumerate()
        .map(|(b, _)| E2eResult {
            frames_total: frames,
            frames_ok: frames_ok[b],
            per: 1.0 - frames_ok[b] as f64 / frames as f64,
            goodput_bps: (cfg.payload_len * 8 * frames_ok[b]) as f64 / total_time_s,
            rs_corrections: rs_corrections[b],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_testbed::{BbbHostMap, Deployment};

    /// The §8.1 geometry: one RX centered between TX2, TX3, TX8, TX9.
    fn table5_setup() -> (Vec<f64>, BbbHostMap) {
        // RX in the middle of the four TXs (zero-based 1, 2, 7, 8): the
        // grid's TX2 is at (0.75, 0.25), TX3 at (1.25, 0.25), TX8 at
        // (0.75, 0.75), TX9 at (1.25, 0.75) → center (1.0, 0.5).
        let d = Deployment::testbed(&[(1.0, 0.5)]);
        let gains: Vec<f64> = (0..36).map(|t| d.model.channel.gain(t, 0)).collect();
        (gains, BbbHostMap::paper())
    }

    fn two_tx() -> Vec<E2eTx> {
        let (gains, hosts) = table5_setup();
        // TX2 + TX8 (zero-based 1, 7): same BBB.
        vec![
            E2eTx {
                gain: gains[1],
                host: hosts.host_of(1),
            },
            E2eTx {
                gain: gains[7],
                host: hosts.host_of(7),
            },
        ]
    }

    fn four_tx() -> Vec<E2eTx> {
        let (gains, hosts) = table5_setup();
        // TX2, TX8 on one BBB; TX3, TX9 on another.
        vec![
            E2eTx {
                gain: gains[1],
                host: hosts.host_of(1),
            },
            E2eTx {
                gain: gains[7],
                host: hosts.host_of(7),
            },
            E2eTx {
                gain: gains[2],
                host: hosts.host_of(2),
            },
            E2eTx {
                gain: gains[8],
                host: hosts.host_of(8),
            },
        ]
    }

    #[test]
    fn same_host_txs_need_no_sync() {
        // Table 5, row 1: 2 TXs on one BBB — no sync required, low PER.
        let txs = two_tx();
        assert_eq!(txs[0].host, txs[1].host);
        let res = run(&txs, &SyncScheme::SyncOff, &E2eConfig::default(), 30, 1);
        assert!(res.per < 0.1, "PER {}", res.per);
        assert!(res.goodput_bps > 25e3, "goodput {}", res.goodput_bps);
    }

    #[test]
    fn cross_host_without_sync_destroys_frames() {
        // Table 5, row 2: 4 TXs across two BBBs, no synchronization →
        // (nearly) nothing decodes.
        let res = run(
            &four_tx(),
            &SyncScheme::SyncOff,
            &E2eConfig::default(),
            30,
            2,
        );
        assert!(res.per > 0.6, "PER {}", res.per);
    }

    #[test]
    fn nlos_sync_restores_cross_host_transmission() {
        // Table 5, row 3: the same 4 TXs with NLOS-VLC sync → low PER and
        // goodput on par with the 2-TX row.
        let res = run(
            &four_tx(),
            &SyncScheme::nlos_paper(),
            &E2eConfig::default(),
            30,
            3,
        );
        assert!(res.per < 0.1, "PER {}", res.per);
        assert!(res.goodput_bps > 25e3, "goodput {}", res.goodput_bps);
    }

    #[test]
    fn goodput_matches_paper_scale() {
        // Paper: ~33.9 kb/s at 100 Ksym/s after Manchester, RS, header and
        // MAC overheads.
        let res = run(
            &two_tx(),
            &SyncScheme::SyncOff,
            &E2eConfig::default(),
            30,
            4,
        );
        assert!(
            (res.goodput_bps - 33_900.0).abs() < 4_000.0,
            "goodput {}",
            res.goodput_bps
        );
    }

    #[test]
    fn ntp_ptp_at_100ksym_is_marginal() {
        // §6.1: NTP/PTP cannot support 100 Ksym/s (max ≈ 14.28 Ksym/s at
        // 10 % overlap): its PER sits well above the NLOS scheme's.
        let ptp = run(
            &four_tx(),
            &SyncScheme::NtpPtp,
            &E2eConfig::default(),
            30,
            5,
        );
        let nlos = run(
            &four_tx(),
            &SyncScheme::nlos_paper(),
            &E2eConfig::default(),
            30,
            5,
        );
        assert!(
            ptp.per > nlos.per + 0.2,
            "ptp {} vs nlos {}",
            ptp.per,
            nlos.per
        );
    }

    #[test]
    fn single_weak_tx_fails_gracefully() {
        // A TX with (almost) no channel produces no decodable frames but
        // the harness still reports a result.
        let txs = vec![E2eTx {
            gain: 1e-12,
            host: 0,
        }];
        let res = run(&txs, &SyncScheme::SyncOff, &E2eConfig::default(), 5, 6);
        assert_eq!(res.frames_ok, 0);
        assert_eq!(res.per, 1.0);
        assert_eq!(res.goodput_bps, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one transmitter")]
    fn empty_tx_set_panics() {
        run(&[], &SyncScheme::SyncOff, &E2eConfig::default(), 1, 0);
    }

    #[test]
    fn arq_on_a_clean_link_uses_one_attempt_each() {
        let txs = two_tx();
        let wifi = vlc_mac::WifiUplink {
            loss_probability: 0.0,
            ..vlc_mac::WifiUplink::paper()
        };
        let res = crate::e2e::run_with_arq(
            &txs,
            &SyncScheme::SyncOff,
            &E2eConfig::default(),
            &wifi,
            10,
            3,
            201,
        );
        assert_eq!(res.delivered, 10);
        assert_eq!(res.attempts, 10);
        assert!((res.attempts_per_delivery() - 1.0).abs() < 1e-12);
        assert!(res.goodput_bps > 25e3, "goodput {}", res.goodput_bps);
    }

    #[test]
    fn arq_rescues_a_marginal_link_at_a_goodput_cost() {
        // Attenuate the link so single-shot delivery is unreliable; ARQ
        // must recover most payloads at the price of extra attempts.
        let (gains, hosts) = table5_setup();
        let txs = vec![E2eTx {
            // 0.040 puts the link on the PER cliff for the vendored RNG
            // stream (the upstream crates used 0.045; the xoshiro-based
            // stand-in draws a different noise sequence).
            gain: gains[7] * 0.040,
            host: hosts.host_of(7),
        }];
        let cfg = E2eConfig::default();
        let single = run(&txs, &SyncScheme::SyncOff, &cfg, 20, 202);
        let wifi = vlc_mac::WifiUplink::paper();
        let arq = crate::e2e::run_with_arq(&txs, &SyncScheme::SyncOff, &cfg, &wifi, 20, 5, 202);
        let arq_rate = arq.delivered as f64 / arq.payloads_total as f64;
        let single_rate = single.frames_ok as f64 / single.frames_total as f64;
        assert!(
            arq_rate > single_rate,
            "ARQ {arq_rate} vs single-shot {single_rate}"
        );
        assert!(
            arq.attempts > arq.payloads_total,
            "no retransmissions happened"
        );
    }

    #[test]
    fn lost_acks_cost_attempts_not_data() {
        // A very lossy ACK channel triggers duplicate transmissions, but a
        // clean downlink still delivers everything.
        let txs = two_tx();
        let lossy = vlc_mac::WifiUplink {
            loss_probability: 0.6,
            ..vlc_mac::WifiUplink::paper()
        };
        let res = crate::e2e::run_with_arq(
            &txs,
            &SyncScheme::SyncOff,
            &E2eConfig::default(),
            &lossy,
            10,
            4,
            203,
        );
        assert_eq!(res.delivered, 10, "ACK loss must not lose data");
        assert!(res.attempts > 10, "lost ACKs should cost retransmissions");
    }

    #[test]
    fn concurrent_beamspots_all_decode_under_the_controller_plan() {
        // The cell-free claim at symbol level: the Scenario-2 plan's four
        // beamspots transmit *simultaneously* and every receiver decodes
        // its own stream despite the other three radiating.
        use crate::e2e::{run_concurrent, E2eBeamspot};
        use vlc_mac::{Controller, ControllerConfig};
        use vlc_testbed::Scenario;

        let d = Deployment::scenario(Scenario::Two);
        let controller = Controller::new(ControllerConfig::paper(1.2), 36, 4);
        let plan = controller.plan(&d.model.channel);
        let beamspots: Vec<E2eBeamspot> = plan
            .beamspots
            .iter()
            .map(|s| E2eBeamspot {
                rx: s.rx,
                txs: s.txs.clone(),
            })
            .collect();
        assert_eq!(beamspots.len(), 4);
        let results = run_concurrent(&d.model.channel, &beamspots, &E2eConfig::default(), 12, 71);
        for (spot, res) in beamspots.iter().zip(&results) {
            assert!(
                res.per < 0.2,
                "RX{} PER {} under concurrent beamspots",
                spot.rx + 1,
                res.per
            );
        }
    }

    #[test]
    fn cross_assigned_beamspots_jam_each_other() {
        // Anti-plan: swap two receivers' beamspots so each RX is hammered
        // by a stream meant for the other — concurrent decoding collapses.
        use crate::e2e::{run_concurrent, E2eBeamspot};
        use vlc_mac::{Controller, ControllerConfig};
        use vlc_testbed::Scenario;

        let d = Deployment::scenario(Scenario::Three);
        let controller = Controller::new(ControllerConfig::paper(0.6), 36, 4);
        let plan = controller.plan(&d.model.channel);
        let mut beamspots: Vec<E2eBeamspot> = plan
            .beamspots
            .iter()
            .map(|s| E2eBeamspot {
                rx: s.rx,
                txs: s.txs.clone(),
            })
            .collect();
        assert!(beamspots.len() >= 2);
        // Swap the receivers of the first two beamspots.
        let rx0 = beamspots[0].rx;
        beamspots[0].rx = beamspots[1].rx;
        beamspots[1].rx = rx0;
        let results = run_concurrent(&d.model.channel, &beamspots, &E2eConfig::default(), 8, 72);
        assert!(
            results[0].per > 0.5 || results[1].per > 0.5,
            "cross-assignment should jam at least one stream: {results:?}"
        );
    }

    #[test]
    fn preamble_hoist_matches_fresh_encoding() {
        // The hoisted preamble shared by every run* call site must equal a
        // fresh scalar encoding, and its packed twin must match chip for
        // chip — the regression guard for the once-per-process hoist.
        let (scalar, packed) = super::preamble();
        assert_eq!(scalar, &manchester_encode(&PREAMBLE_BYTES));
        assert_eq!(&packed.to_chips(), scalar);
    }

    #[test]
    fn packed_run_matches_scalar_reference() {
        // The pipeline must be bit-identical to the scalar path — not just
        // statistically close — across clean, marginal, unsynchronized, and
        // preamble-missing regimes.
        let cfg = E2eConfig::default();
        let (gains, hosts) = table5_setup();
        let marginal = vec![E2eTx {
            gain: gains[7] * 0.040,
            host: hosts.host_of(7),
        }];
        let weak = vec![E2eTx {
            gain: 1e-12,
            host: 0,
        }];
        let two = two_tx();
        let four = four_tx();
        let cases: Vec<(&[E2eTx], SyncScheme, u64)> = vec![
            (&two, SyncScheme::SyncOff, 1),
            (&four, SyncScheme::SyncOff, 2),
            (&four, SyncScheme::nlos_paper(), 3),
            (&four, SyncScheme::NtpPtp, 5),
            (&marginal, SyncScheme::SyncOff, 202),
            (&weak, SyncScheme::SyncOff, 6),
        ];
        for (txs, scheme, seed) in cases {
            let packed = run(txs, &scheme, &cfg, 12, seed);
            let scalar = run_scalar(txs, &scheme, &cfg, 12, seed);
            assert_eq!(packed, scalar, "scheme {scheme:?} seed {seed}");
        }
    }

    #[test]
    fn packed_pipeline_reuse_is_bit_identical() {
        // A single pipeline reused across runs (the ARQ pattern) must give
        // the same results as a fresh pipeline per run.
        let cfg = E2eConfig::default();
        let txs = two_tx();
        let mut pipeline = FramePipeline::new(&cfg);
        let noop = Registry::noop();
        for seed in [9u64, 10, 11] {
            let reused = pipeline.run(&txs, &SyncScheme::SyncOff, &cfg, 5, seed, &noop);
            let fresh = run(&txs, &SyncScheme::SyncOff, &cfg, 5, seed);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn packed_concurrent_matches_scalar_reference() {
        use crate::e2e::{run_concurrent, run_concurrent_scalar, E2eBeamspot};
        use vlc_mac::{Controller, ControllerConfig};
        use vlc_testbed::Scenario;

        let d = Deployment::scenario(Scenario::Two);
        let controller = Controller::new(ControllerConfig::paper(1.2), 36, 4);
        let plan = controller.plan(&d.model.channel);
        let beamspots: Vec<E2eBeamspot> = plan
            .beamspots
            .iter()
            .map(|s| E2eBeamspot {
                rx: s.rx,
                txs: s.txs.clone(),
            })
            .collect();
        let cfg = E2eConfig::default();
        let packed = run_concurrent(&d.model.channel, &beamspots, &cfg, 4, 71);
        let scalar = run_concurrent_scalar(&d.model.channel, &beamspots, &cfg, 4, 71);
        assert_eq!(packed, scalar);
    }

    #[test]
    fn packed_run_emits_the_same_telemetry_counters() {
        // Same counters, same values: the packed path must be
        // observationally identical, not only in its E2eResult.
        let cfg = E2eConfig::default();
        let (gains, hosts) = table5_setup();
        let marginal = vec![E2eTx {
            gain: gains[7] * 0.040,
            host: hosts.host_of(7),
        }];
        for (txs, scheme, seed) in [
            (two_tx(), SyncScheme::SyncOff, 1u64),
            (four_tx(), SyncScheme::SyncOff, 2),
            (marginal, SyncScheme::SyncOff, 202),
        ] {
            let reg_packed = Registry::new();
            let reg_scalar = Registry::new();
            run_instrumented(&txs, &scheme, &cfg, 10, seed, &reg_packed);
            run_scalar_instrumented(&txs, &scheme, &cfg, 10, seed, &reg_scalar);
            for name in [
                "phy.frames_encoded",
                "phy.frames_decoded",
                "phy.rs_symbols_corrected",
                "phy.rs_uncorrectable",
                "phy.frame_sync_errors",
                "phy.preamble_misses",
                "phy.frames_bad_payload",
            ] {
                assert_eq!(
                    reg_packed.counter(name).get(),
                    reg_scalar.counter(name).get(),
                    "{name} diverged for scheme {scheme:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no TXs")]
    fn concurrent_empty_beamspot_panics() {
        use crate::e2e::{run_concurrent, E2eBeamspot};
        let d = Deployment::testbed(&[(1.0, 0.5)]);
        run_concurrent(
            &d.model.channel,
            &[E2eBeamspot { rx: 0, txs: vec![] }],
            &E2eConfig::default(),
            1,
            0,
        );
    }
}
