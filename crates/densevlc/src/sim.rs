//! A wall-clock simulation engine over the whole system.
//!
//! The experiment drivers each isolate one effect; this engine composes
//! them: receivers ride ACRO-style waypoint paths, people (cylinder
//! occluders) wander through the room, the lighting can be dimmed, and the
//! controller re-plans at the cadence its adaptation-round timeline allows.
//! Between rounds the beamspot plan is stale — exactly like the real
//! deployment. The engine advances in fixed ticks and records a
//! [`Timeline`] of per-tick system state for analysis or plotting.

use serde::{Deserialize, Serialize};
use vlc_alloc::model::SystemModel;
use vlc_channel::{ChannelMatrix, ChannelUpdater, CylinderBlocker};
use vlc_geom::Pose;
use vlc_mac::{BeamspotPlan, Controller, ControllerConfig, PlanCache};
use vlc_obs::{ObsPlane, TickSample};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::{MetricsSnapshot, Registry};
use vlc_testbed::{AcroPositioner, Deployment};
use vlc_trace::Span;

/// A person walking waypoints while occluding light.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkingPerson {
    /// The gantry-like waypoint follower carrying the occluder.
    pub mover: AcroPositioner,
}

impl WalkingPerson {
    /// The occluder at the person's current position.
    pub fn blocker(&self) -> CylinderBlocker {
        CylinderBlocker::person(self.mover.position.x, self.mover.position.y)
    }
}

/// One recorded tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Simulation time in seconds.
    pub t_s: f64,
    /// Per-receiver throughput under the (possibly stale) plan, bit/s.
    pub per_rx_bps: Vec<f64>,
    /// Whether the controller re-planned on this tick.
    pub replanned: bool,
    /// Number of LOS links currently blocked by people.
    pub blocked_links: usize,
}

/// The recorded simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// All ticks in time order.
    pub ticks: Vec<Tick>,
    /// Telemetry snapshot taken at the end of the run, when the run was
    /// driven through [`Simulation::run_instrumented`] with a live
    /// registry. `None` for uninstrumented runs.
    pub telemetry: Option<MetricsSnapshot>,
}

impl Timeline {
    /// Mean system throughput over the run, bit/s.
    pub fn mean_system_bps(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        self.ticks
            .iter()
            .map(|t| t.per_rx_bps.iter().sum::<f64>())
            .sum::<f64>()
            / self.ticks.len() as f64
    }

    /// Fraction of (tick, receiver) samples with zero throughput — outage.
    pub fn outage_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut out = 0usize;
        for tick in &self.ticks {
            for &t in &tick.per_rx_bps {
                total += 1;
                if t <= 0.0 {
                    out += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            out as f64 / total as f64
        }
    }

    /// Number of re-planning events.
    pub fn replans(&self) -> usize {
        self.ticks.iter().filter(|t| t.replanned).count()
    }
}

/// The composable simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulation {
    /// The physical deployment (mutated as things move).
    pub deployment: Deployment,
    /// The controller.
    pub controller: Controller,
    /// Receiver waypoint movers (same length/order as the receivers).
    pub rx_movers: Vec<AcroPositioner>,
    /// People wandering the room.
    pub people: Vec<WalkingPerson>,
    /// Seconds between adaptation rounds (from the round timeline).
    pub adaptation_period_s: f64,
    /// Simulation tick in seconds.
    pub tick_s: f64,
    time_since_replan_s: f64,
    plan: Option<BeamspotPlan>,
}

impl Simulation {
    /// Builds a simulation over a deployment; receivers start static.
    pub fn new(deployment: Deployment, budget_w: f64, adaptation_period_s: f64) -> Self {
        assert!(
            adaptation_period_s > 0.0,
            "adaptation period must be positive"
        );
        let n_tx = deployment.grid.len();
        let n_rx = deployment.receivers.len();
        let room = deployment.room;
        let rx_movers = deployment
            .receivers
            .iter()
            .map(|p| AcroPositioner::new(p.position, 0.5, room))
            .collect();
        Simulation {
            controller: Controller::new(ControllerConfig::paper(budget_w), n_tx, n_rx),
            deployment,
            rx_movers,
            people: Vec::new(),
            adaptation_period_s,
            tick_s: 0.1,
            time_since_replan_s: f64::INFINITY, // re-plan on the first tick
            plan: None,
        }
    }

    /// Adds a walking person at a start position with queued waypoints.
    pub fn add_person(&mut self, x: f64, y: f64, speed_mps: f64, waypoints: &[(f64, f64)]) {
        let mut mover = AcroPositioner::new(
            vlc_geom::Vec3::new(x, y, 0.0),
            speed_mps,
            self.deployment.room,
        );
        for &(wx, wy) in waypoints {
            mover.queue(vlc_geom::Vec3::new(wx, wy, 0.0));
        }
        self.people.push(WalkingPerson { mover });
    }

    /// Queues a waypoint for receiver `rx`.
    pub fn send_receiver(&mut self, rx: usize, x: f64, y: f64) {
        assert!(rx < self.rx_movers.len(), "unknown receiver {rx}");
        self.rx_movers[rx].queue(vlc_geom::Vec3::new(x, y, 0.0));
    }

    /// Applies the occluders to a *same-tick* clear channel: returns the
    /// masked matrix plus the number of links the occluders removed (gain
    /// positive in `clear`, zero after masking). Taking the clear channel
    /// as an argument makes the same-tick contract explicit — diffing
    /// against a stale stored channel would double-count a receiver that
    /// moved under a blocker between replans.
    fn masked_channel(
        &self,
        clear: &ChannelMatrix,
        blockers: &[CylinderBlocker],
    ) -> (ChannelMatrix, usize) {
        let channel = ChannelMatrix::compute_with_blockage(
            &self.deployment.grid,
            &self.deployment.receivers,
            self.deployment.half_power_semi_angle,
            &self.deployment.optics,
            blockers,
        );
        let blocked = clear
            .iter()
            .filter(|&(t, r, g)| g > 0.0 && channel.gain(t, r) == 0.0)
            .count();
        (channel, blocked)
    }

    /// Runs for `duration_s`, returning the recorded timeline.
    ///
    /// This is the **incremental engine**: channel columns are recomputed
    /// only for receivers that moved (or when blockage geometry changed)
    /// and the controller re-plans only when the channel actually changed
    /// since its last plan. The output is bitwise identical to
    /// [`Self::run_cold`] — the incremental layers reproduce the cold
    /// values exactly (see `tests/sim_incremental.rs`) — just faster.
    pub fn run(&mut self, duration_s: f64) -> Timeline {
        self.run_instrumented(duration_s, &Registry::noop())
    }

    /// [`Self::run`] with telemetry: every tick is timed under `sim.tick_s`
    /// and counted into `sim.ticks`; re-plans (forwarded through the
    /// controller's instrumented phases) count into `mac.replans` and the
    /// ticks spent serving traffic on a stale plan into
    /// `mac.stale_plan_ticks`; the incremental engine adds
    /// `channel.cache.hit/partial/miss` and `mac.plan.cache_hits/misses`;
    /// `sim.blocked_links` and the per-receiver `sim.rx{i}.bps` gauges
    /// track the latest tick. With a live registry the returned
    /// [`Timeline`] embeds the end-of-run snapshot.
    pub fn run_instrumented(&mut self, duration_s: f64, telemetry: &Registry) -> Timeline {
        self.run_traced(duration_s, telemetry, &Span::noop())
    }

    /// [`Self::run_instrumented`] recording a `sim.run` span under
    /// `parent`, with one `sim.tick` child per tick (indexed by step), the
    /// incremental engine's `channel.update` tree inside each tick, and
    /// the controller's `mac.plan` (or `mac.plan.cached`) tree nested
    /// inside re-planning ticks. With a noop parent this is the
    /// instrumented path plus one branch per span site.
    pub fn run_traced(&mut self, duration_s: f64, telemetry: &Registry, parent: &Span) -> Timeline {
        self.run_engine(duration_s, telemetry, parent, true, None)
    }

    /// [`Self::run_traced`] streaming into an observability plane: the
    /// plane's meta record is written up front, every tick feeds it a
    /// [`TickSample`] (adding per-receiver SINR next to the throughput the
    /// timeline already carries), and window snapshots / SLO evaluation /
    /// event forwarding happen on the plane's flush cadence. The plane
    /// only *reads* — the returned [`Timeline`] is byte-identical to
    /// [`Self::run`]'s (enforced by `tests/obs_stream.rs`). The caller
    /// finishes the stream with [`ObsPlane::finish`] after the run, once
    /// it knows the tracer's span-ring drop count.
    pub fn run_observed(
        &mut self,
        duration_s: f64,
        telemetry: &Registry,
        parent: &Span,
        obs: &mut ObsPlane,
    ) -> Timeline {
        obs.begin(self.tick_s, self.deployment.receivers.len());
        self.run_engine(duration_s, telemetry, parent, true, Some(obs))
    }

    /// [`Self::run`] on the cold engine: rebuild the full channel matrix
    /// and re-plan from scratch every tick, like the pre-incremental code.
    /// Kept as the reference the incremental engine is verified against.
    pub fn run_cold(&mut self, duration_s: f64) -> Timeline {
        self.run_cold_instrumented(duration_s, &Registry::noop())
    }

    /// [`Self::run_cold`] with telemetry (see [`Self::run_instrumented`]).
    pub fn run_cold_instrumented(&mut self, duration_s: f64, telemetry: &Registry) -> Timeline {
        self.run_cold_traced(duration_s, telemetry, &Span::noop())
    }

    /// [`Self::run_cold_instrumented`] with tracing (see
    /// [`Self::run_traced`]).
    pub fn run_cold_traced(
        &mut self,
        duration_s: f64,
        telemetry: &Registry,
        parent: &Span,
    ) -> Timeline {
        self.run_engine(duration_s, telemetry, parent, false, None)
    }

    /// The tick loop behind both engines. `incremental` selects the warm
    /// path (dirty-column channel updates + plan cache); the recorded
    /// [`Timeline`] and the end-of-run deployment state are identical
    /// either way.
    fn run_engine(
        &mut self,
        duration_s: f64,
        telemetry: &Registry,
        parent: &Span,
        incremental: bool,
        mut obs: Option<&mut ObsPlane>,
    ) -> Timeline {
        assert!(duration_s > 0.0, "duration must be positive");
        let run = parent.child("sim.run");
        run.attr("duration_s", &format!("{duration_s}"));
        run.attr("engine", if incremental { "incremental" } else { "cold" });
        let steps = (duration_s / self.tick_s).ceil() as usize;
        let mut ticks = Vec::with_capacity(steps);
        // Run-local engine state: one worker pool for the whole run
        // (hoisted out of the per-matrix calls), one channel updater with
        // ε = 0 (exact: any movement recomputes), one plan cache. Kept off
        // the struct so serialized simulations and replays stay unaffected.
        let pool = Pool::new(Jobs::from_env()).with_telemetry(telemetry);
        let mut updater = ChannelUpdater::new(
            &self.deployment.grid,
            self.deployment.half_power_semi_angle,
            &self.deployment.optics,
            0.0,
        );
        let mut plan_cache = PlanCache::new();
        let mut world: SystemModel = self.deployment.model.clone();
        for step in 0..steps {
            let tick_trace = run.child_indexed("sim.tick", step);
            let _tick_span = telemetry.span("sim.tick_s");
            telemetry.counter("sim.ticks").inc();
            let t_s = step as f64 * self.tick_s;
            // Motion.
            let height = self.deployment.receivers[0].position.z;
            let positions: Vec<Pose> = self
                .rx_movers
                .iter_mut()
                .map(|m| {
                    let p = m.advance(self.tick_s);
                    Pose::face_up(p.x, p.y, height)
                })
                .collect();
            for person in &mut self.people {
                person.mover.advance(self.tick_s);
            }
            let blockers: Vec<CylinderBlocker> =
                self.people.iter().map(WalkingPerson::blocker).collect();

            // The channel the world currently presents (with occluders).
            let (channel, blocked_links) = if incremental {
                let update =
                    updater.update_pooled(&positions, &blockers, &pool, telemetry, &tick_trace);
                self.deployment.receivers = positions;
                self.deployment.model.channel = update.clear;
                (update.matrix, update.blocked_links)
            } else {
                self.deployment.update_receivers(positions);
                // `update_receivers` just recomputed the clear channel, so
                // the stored one is same-tick by construction here.
                self.masked_channel(&self.deployment.model.channel, &blockers)
            };
            world.channel = channel;

            // Re-plan when the adaptation round allows.
            self.time_since_replan_s += self.tick_s;
            let mut replanned = false;
            if self.time_since_replan_s >= self.adaptation_period_s || self.plan.is_none() {
                self.plan = Some(if incremental {
                    self.controller.plan_cached_traced(
                        &world.channel,
                        &mut plan_cache,
                        telemetry,
                        &tick_trace,
                    )
                } else {
                    self.controller
                        .plan_traced(&world.channel, telemetry, &tick_trace)
                });
                self.time_since_replan_s = 0.0;
                replanned = true;
                telemetry.counter("mac.replans").inc();
            } else {
                telemetry.counter("mac.stale_plan_ticks").inc();
            }
            telemetry
                .gauge("sim.blocked_links")
                .set(blocked_links as f64);
            let plan = self.plan.as_ref().expect("plan exists after first tick");
            let per_rx_bps = world.throughput(&plan.allocation);
            for (i, &bps) in per_rx_bps.iter().enumerate() {
                telemetry.gauge(&format!("sim.rx{i}.bps")).set(bps);
            }
            if let Some(plane) = obs.as_deref_mut() {
                // SINR is computed only on the observed path: the plane
                // reads the world, never writes it, so the Timeline stays
                // byte-identical to the unobserved run.
                plane.observe_tick(
                    &TickSample {
                        tick: step as u64,
                        t_s,
                        per_rx_bps: per_rx_bps.clone(),
                        per_rx_sinr: world.sinr(&plan.allocation),
                        blocked_links: blocked_links as u64,
                        replanned,
                    },
                    telemetry,
                );
            }
            ticks.push(Tick {
                t_s,
                per_rx_bps,
                replanned,
                blocked_links,
            });
        }
        Timeline {
            ticks,
            telemetry: telemetry.is_enabled().then(|| telemetry.snapshot()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_testbed::Scenario;

    fn sim() -> Simulation {
        Simulation::new(Deployment::scenario(Scenario::Two), 1.2, 0.2)
    }

    #[test]
    fn static_world_is_stable() {
        let mut s = sim();
        let tl = s.run(2.0);
        assert_eq!(tl.ticks.len(), 20);
        assert_eq!(tl.outage_fraction(), 0.0);
        // Throughput identical across ticks (nothing moved).
        let first: f64 = tl.ticks[0].per_rx_bps.iter().sum();
        for t in &tl.ticks {
            let now: f64 = t.per_rx_bps.iter().sum();
            assert!(
                (now - first).abs() < 1.0,
                "throughput drifted in a static world"
            );
        }
    }

    #[test]
    fn replanning_happens_at_the_configured_cadence() {
        let mut s = sim();
        let tl = s.run(2.0);
        // 0.2 s period over 2 s of 0.1 s ticks → ~10 replans.
        assert!((9..=11).contains(&tl.replans()), "{} replans", tl.replans());
    }

    #[test]
    fn moving_receiver_keeps_service() {
        let mut s = sim();
        s.send_receiver(0, 2.4, 2.4);
        let tl = s.run(6.0);
        // RX1 ends up crowding RX4's corner; the greedy heuristic (the
        // paper's Algorithm 1) can transiently leave a crowded receiver
        // uncovered in its budgeted prefix, so a few percent of outage
        // samples are expected — but no more.
        assert!(
            tl.outage_fraction() < 0.05,
            "outage fraction {}",
            tl.outage_fraction()
        );
        assert!(tl.mean_system_bps() > 1e6);
    }

    #[test]
    fn person_standing_on_a_receiver_shadows_it_completely() {
        // A floor-level receiver inside a person's footprint loses *every*
        // LOS ray — physically correct total shadowing.
        let mut s = sim();
        s.add_person(0.92, 0.92, 0.5, &[]);
        let tl = s.run(0.5);
        assert!(
            tl.ticks.iter().all(|t| t.blocked_links > 0),
            "occluder blocked nothing"
        );
        let rx1_mean: f64 =
            tl.ticks.iter().map(|t| t.per_rx_bps[0]).sum::<f64>() / tl.ticks.len() as f64;
        assert_eq!(rx1_mean, 0.0, "total shadow should silence RX1");
    }

    #[test]
    fn person_nearby_is_routed_around() {
        // A person standing 0.4 m to the side shadows part of RX1's sky;
        // the controller re-plans onto unblocked TXs and keeps RX1 served.
        let mut s = sim();
        s.add_person(1.32, 0.92, 0.5, &[]);
        let tl = s.run(1.0);
        assert!(
            tl.ticks.iter().all(|t| t.blocked_links > 0),
            "occluder blocked nothing"
        );
        let rx1_mean: f64 =
            tl.ticks.iter().map(|t| t.per_rx_bps[0]).sum::<f64>() / tl.ticks.len() as f64;
        assert!(rx1_mean > 0.0, "blockage killed RX1 despite re-planning");
    }

    #[test]
    fn stale_plans_underperform_fresh_ones() {
        let mut fresh = sim();
        fresh.adaptation_period_s = 0.1;
        fresh.send_receiver(0, 2.4, 0.9);
        let tl_fresh = fresh.run(5.0);

        let mut stale = sim();
        stale.adaptation_period_s = 1e9; // never re-plan after the first
        stale.send_receiver(0, 2.4, 0.9);
        let tl_stale = stale.run(5.0);

        let rx1 = |tl: &Timeline| {
            tl.ticks.iter().map(|t| t.per_rx_bps[0]).sum::<f64>() / tl.ticks.len() as f64
        };
        assert!(
            rx1(&tl_fresh) > rx1(&tl_stale),
            "fresh {} !> stale {}",
            rx1(&tl_fresh),
            rx1(&tl_stale)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        sim().run(0.0);
    }
}
