//! # DenseVLC — a cell-free massive MIMO VLC system with distributed LEDs
//!
//! This crate is the public facade of the DenseVLC reproduction (Beysens et
//! al., CoNEXT '18). A dense ceiling grid of LED luminaires jointly serves a
//! few receivers by forming per-receiver *beamspots* of synchronized
//! transmitters, allocating a communication power budget so system
//! throughput is maximized without disturbing illumination.
//!
//! ## Quick start
//!
//! ```
//! use densevlc::System;
//! use vlc_testbed::Scenario;
//!
//! // The paper's testbed: 36 TXs over 3 m × 3 m, four receivers.
//! let mut system = System::scenario(Scenario::Two, 1.2 /* W budget */);
//! let round = system.adapt();
//! assert!(round.plan.beamspots.len() == 4);
//! assert!(round.system_throughput_bps > 0.0);
//! ```
//!
//! ## Layout
//!
//! * [`System`] — the assembled controller + testbed + metrics loop.
//! * [`e2e`] — symbol-level end-to-end frame simulation (Table 5's
//!   goodput/PER experiment).
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation; each prints the paper-comparable numbers.
//! * [`sim`] — a wall-clock simulation engine composing mobility, walking
//!   occluders, and the adaptation cadence into one timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2e;
pub mod experiments;
pub mod sim;
pub mod system;

pub use sim::{Simulation, Tick, Timeline};
pub use system::{AdaptationRound, System};

// Re-export the layer crates so downstream users need a single dependency.
pub use vlc_alloc as alloc;
pub use vlc_channel as channel;
pub use vlc_geom as geom;
pub use vlc_led as led;
pub use vlc_mac as mac;
pub use vlc_phy as phy;
pub use vlc_sync as sync;
pub use vlc_testbed as testbed;
