//! The LED electrical power model and its Taylor approximation.
//!
//! Paper Eq. 8 models instantaneous LED power as
//! `Pled(I) = k·Vt·ln(I/Is + 1)·I + Rs·I²` (diode drop plus series
//! resistance). Expanding to second order around the bias `Ib` (Eq. 9) and
//! averaging over Manchester-coded symbols (HIGH and LOW equiprobable at
//! `Ib ± Isw/2`) gives the average *extra* power spent on communication
//! (Eq. 10): `P̄C = r · (Isw/2)²` with dynamic resistance
//! `r = k·Vt/(2·Ib) + Rs`.
//!
//! Fig. 4 of the paper quantifies the quality of this approximation against
//! the exact model — [`taylor_relative_error_total`] reproduces that curve.

use crate::LedParams;

/// Exact instantaneous electrical power drawn by the LED at current `I`
/// (paper Eq. 8). `I` must be non-negative; the diode term vanishes at 0.
pub fn led_power(p: &LedParams, current: f64) -> f64 {
    assert!(
        current >= 0.0,
        "LED current must be non-negative, got {current}"
    );
    let diode =
        p.ideality * p.thermal_voltage * (current / p.saturation_current + 1.0).ln() * current;
    diode + p.series_resistance * current * current
}

/// The LED's dynamic (small-signal) resistance at the bias working point:
/// `r = k·Vt / (2·Ib) + Rs` (paper Eq. 10).
pub fn dynamic_resistance(p: &LedParams) -> f64 {
    p.ideality * p.thermal_voltage / (2.0 * p.bias_current) + p.series_resistance
}

/// Second-order-Taylor average communication power for a swing `Isw`
/// (paper Eq. 10): `P̄C = r · (Isw/2)²`.
///
/// This is the model the optimizer and the heuristic budget accounting use.
pub fn communication_power_avg(p: &LedParams, swing: f64) -> f64 {
    debug_assert!(swing >= 0.0);
    let half = swing / 2.0;
    dynamic_resistance(p) * half * half
}

/// Exact average communication power for a swing `Isw`: the Manchester
/// symbol average of the exact model minus the pure-illumination power,
/// `(Pled(Ih) + Pled(Il))/2 − Pled(Ib)`.
pub fn communication_power_exact(p: &LedParams, swing: f64) -> f64 {
    assert!(
        p.swing_is_valid(swing),
        "swing {swing} A outside the communication region (Ib = {} A, max = {} A)",
        p.bias_current,
        p.max_swing
    );
    let high = led_power(p, p.high_current(swing));
    let low = led_power(p, p.low_current(swing).max(0.0));
    (high + low) / 2.0 - led_power(p, p.bias_current)
}

/// Relative error of the Taylor model on the LED's *total* average power
/// consumption at swing `Isw` — the quantity plotted in the paper's Fig. 4
/// (≈ 0.45 % at the maximum 900 mA swing).
///
/// Total exact average power is `(Pled(Ih) + Pled(Il))/2`; the approximation
/// is `Pled(Ib) + r·(Isw/2)²`.
pub fn taylor_relative_error_total(p: &LedParams, swing: f64) -> f64 {
    let exact_total =
        (led_power(p, p.high_current(swing)) + led_power(p, p.low_current(swing).max(0.0))) / 2.0;
    let approx_total = led_power(p, p.bias_current) + communication_power_avg(p, swing);
    ((exact_total - approx_total) / exact_total).abs()
}

/// The per-TX communication power at full swing,
/// `PC,tx,max = r · (Isw,max/2)²` — 74.42 mW for the paper profile (§4.2).
pub fn full_swing_power(p: &LedParams) -> f64 {
    communication_power_avg(p, p.max_swing)
}

/// The *physical* optical swing amplitude for a given current swing, in
/// watts: `η · (Pled(Ih) − Pled(Il)) / 2`.
///
/// This is the actual AC light amplitude a photodiode sees — roughly half a
/// watt at full swing — as opposed to Eq. 12's `η·r·(Isw/2)²` term, which is
/// the paper's power-*accounting* metric. The synchronization link physics
/// (detecting a floor-reflected pilot) depends on the physical amplitude.
pub fn optical_swing_amplitude(p: &LedParams, swing: f64) -> f64 {
    assert!(
        p.swing_is_valid(swing),
        "swing {swing} A outside the communication region"
    );
    let high = led_power(p, p.high_current(swing));
    let low = led_power(p, p.low_current(swing).max(0.0));
    p.wall_plug_efficiency * (high - low) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> LedParams {
        LedParams::cree_xte_paper()
    }

    #[test]
    fn led_power_is_zero_at_zero_current() {
        assert_eq!(led_power(&paper(), 0.0), 0.0);
    }

    #[test]
    fn led_power_is_monotonic_in_current() {
        let p = paper();
        let mut prev = 0.0;
        for i in 1..=20 {
            let cur = led_power(&p, i as f64 * 0.05);
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn dynamic_resistance_matches_paper_value() {
        // r = k·Vt/(2·Ib) + Rs with the calibrated Vt gives the r that makes
        // PC,tx,max = 74.42 mW (paper §4.2).
        let r = dynamic_resistance(&paper());
        assert!((r - 0.3675).abs() < 1e-3, "r = {r}");
    }

    #[test]
    fn full_swing_power_matches_paper_74_42_mw() {
        let pc = full_swing_power(&paper());
        assert!((pc - 0.07442).abs() < 2e-4, "PC,tx,max = {pc} W");
    }

    #[test]
    fn zero_swing_costs_nothing() {
        assert_eq!(communication_power_avg(&paper(), 0.0), 0.0);
        assert!(communication_power_exact(&paper(), 0.0).abs() < 1e-15);
    }

    #[test]
    fn taylor_error_at_max_swing_matches_fig4() {
        // Paper Fig. 4: ≈ 0.45 % relative error at Isw = 900 mA.
        let err = taylor_relative_error_total(&paper(), 0.9);
        assert!(
            (err - 0.0045).abs() < 0.0015,
            "relative error at 900 mA was {:.4} %",
            err * 100.0
        );
    }

    #[test]
    fn taylor_error_grows_with_swing() {
        let p = paper();
        let e_small = taylor_relative_error_total(&p, 0.1);
        let e_mid = taylor_relative_error_total(&p, 0.5);
        let e_max = taylor_relative_error_total(&p, 0.9);
        assert!(e_small < e_mid && e_mid < e_max);
        assert!(e_small < 1e-3);
    }

    #[test]
    fn taylor_error_is_insensitive_to_vt_profile() {
        // The Fig. 4 shape holds under the textbook room-temperature Vt too.
        let err = taylor_relative_error_total(&LedParams::room_temperature_vt(), 0.9);
        assert!((err - 0.0045).abs() < 2e-3, "err = {err}");
    }

    #[test]
    fn exact_and_approx_agree_for_small_swings() {
        let p = paper();
        for &sw in &[0.01, 0.05, 0.1] {
            let exact = communication_power_exact(&p, sw);
            let approx = communication_power_avg(&p, sw);
            let rel = ((exact - approx) / exact).abs();
            assert!(rel < 0.02, "swing {sw}: rel diff {rel}");
        }
    }

    #[test]
    fn optical_swing_amplitude_is_physical_scale() {
        // At full swing the AC light amplitude is around half a watt —
        // orders of magnitude above the 30 mW power-accounting term.
        let p = paper();
        let amp = optical_swing_amplitude(&p, p.max_swing);
        assert!(amp > 0.3 && amp < 1.5, "amplitude {amp} W");
        assert_eq!(optical_swing_amplitude(&p, 0.0), 0.0);
    }

    #[test]
    fn optical_swing_amplitude_grows_with_swing() {
        let p = paper();
        let a1 = optical_swing_amplitude(&p, 0.3);
        let a2 = optical_swing_amplitude(&p, 0.6);
        let a3 = optical_swing_amplitude(&p, 0.9);
        assert!(a1 < a2 && a2 < a3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_current_panics() {
        led_power(&paper(), -0.1);
    }

    #[test]
    #[should_panic(expected = "communication region")]
    fn oversized_swing_panics_in_exact_model() {
        communication_power_exact(&paper(), 1.2);
    }
}
