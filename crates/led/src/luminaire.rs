//! Multi-LED luminaires (the paper's footnote 1).
//!
//! The paper's system model assumes one LED per TX "for simplicity" and
//! notes that "in a more general case, a total of M LEDs can be used at
//! each TX to satisfy the illumination level where the power consumed by
//! each TX increases linearly with M". This module is that general case: a
//! luminaire of `count` identical LEDs driven together — flux, optical
//! swing amplitude and electrical power all scale linearly, while the
//! Lambertian pattern (and therefore the channel gain geometry) is
//! unchanged.

use crate::power::{communication_power_avg, led_power, optical_swing_amplitude};
use crate::LedParams;
use serde::{Deserialize, Serialize};

/// A transmitter luminaire of `count` ganged LEDs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Luminaire {
    /// Per-LED parameters.
    pub led: LedParams,
    /// Number of LEDs driven together.
    pub count: usize,
}

impl Luminaire {
    /// A single-LED luminaire (the paper's default).
    pub fn single(led: LedParams) -> Self {
        Luminaire { led, count: 1 }
    }

    /// A luminaire of `count` LEDs.
    ///
    /// # Panics
    /// Panics when `count` is zero.
    pub fn ganged(led: LedParams, count: usize) -> Self {
        assert!(count > 0, "a luminaire needs at least one LED");
        Luminaire { led, count }
    }

    /// Total luminous flux at the bias, in lumens.
    pub fn luminous_flux_lm(&self) -> f64 {
        self.count as f64 * self.led.luminous_flux_lm
    }

    /// Total electrical illumination power, in watts.
    pub fn illumination_power_w(&self) -> f64 {
        self.count as f64 * led_power(&self.led, self.led.bias_current)
    }

    /// Total average communication power for a per-LED swing, in watts —
    /// "increases linearly with M" (footnote 1).
    pub fn communication_power_w(&self, swing_per_led: f64) -> f64 {
        self.count as f64 * communication_power_avg(&self.led, swing_per_led)
    }

    /// Total physical optical swing amplitude for a per-LED swing, in
    /// watts.
    pub fn optical_swing_w(&self, swing_per_led: f64) -> f64 {
        self.count as f64 * optical_swing_amplitude(&self.led, swing_per_led)
    }

    /// The per-LED swing that spends a given total communication power,
    /// clamped to the device's valid range.
    pub fn swing_for_power(&self, total_power_w: f64) -> f64 {
        assert!(total_power_w >= 0.0, "power cannot be negative");
        let per_led = total_power_w / self.count as f64;
        let r = crate::power::dynamic_resistance(&self.led);
        self.led.clamp_swing(2.0 * (per_led / r).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_up() -> Luminaire {
        Luminaire::ganged(LedParams::cree_xte_paper(), 4)
    }

    #[test]
    fn single_is_identity() {
        let led = LedParams::cree_xte_paper();
        let lum = Luminaire::single(led);
        assert_eq!(lum.luminous_flux_lm(), led.luminous_flux_lm);
        assert_eq!(
            lum.communication_power_w(0.9),
            communication_power_avg(&led, 0.9)
        );
    }

    #[test]
    fn everything_scales_linearly_with_count() {
        let led = LedParams::cree_xte_paper();
        let one = Luminaire::single(led);
        let four = four_up();
        assert!((four.luminous_flux_lm() - 4.0 * one.luminous_flux_lm()).abs() < 1e-9);
        assert!((four.illumination_power_w() - 4.0 * one.illumination_power_w()).abs() < 1e-9);
        assert!(
            (four.communication_power_w(0.5) - 4.0 * one.communication_power_w(0.5)).abs() < 1e-12
        );
        assert!((four.optical_swing_w(0.5) - 4.0 * one.optical_swing_w(0.5)).abs() < 1e-9);
    }

    #[test]
    fn swing_for_power_inverts_power_for_swing() {
        let lum = four_up();
        for &swing in &[0.1, 0.45, 0.9] {
            let p = lum.communication_power_w(swing);
            let back = lum.swing_for_power(p);
            assert!((back - swing).abs() < 1e-12, "swing {swing} → {back}");
        }
    }

    #[test]
    fn swing_for_power_clamps_at_device_max() {
        let lum = four_up();
        assert_eq!(lum.swing_for_power(1e3), lum.led.max_swing);
        assert_eq!(lum.swing_for_power(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one LED")]
    fn zero_count_panics() {
        Luminaire::ganged(LedParams::cree_xte_paper(), 0);
    }
}
