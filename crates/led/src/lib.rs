//! LED electrical and optical models for the DenseVLC reproduction.
//!
//! DenseVLC modulates the drive current of each LED around an illumination
//! bias `Ib` with a swing `Isw` (modified OOK with Manchester coding), so the
//! power an LED spends on *communication* — beyond what illumination already
//! costs — is the quantity the whole power-allocation story is built on.
//! This crate implements:
//!
//! * [`LedParams`] — device parameters (diode ideality, saturation current,
//!   series resistance, thermal voltage, swing limits, wall-plug efficiency),
//!   with a profile matching the paper's CREE XT-E numbers (Table 1).
//! * [`power`] — the Shockley-based electrical power model (paper Eq. 8), its
//!   second-order Taylor approximation around the bias (Eq. 9–10), the
//!   dynamic resistance `r`, and the exact-vs-approximate error analysis
//!   behind Fig. 4.
//! * [`modes`] — the two operating modes (illumination only vs
//!   illumination + communication), with the brightness-invariance rule that
//!   forbids flicker when switching.
//! * [`driver`] — the three-level TX front-end driver from §7.1 (symbol LOW /
//!   illumination / symbol HIGH emitted intensities and electrical draw).
//! * [`luminaire`] — the footnote-1 generalization: M ganged LEDs per TX
//!   with linear power/flux scaling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod luminaire;
pub mod modes;
pub mod params;
pub mod power;

pub use driver::ThreeLevelDriver;
pub use luminaire::Luminaire;
pub use modes::{BrightnessError, OperatingMode};
pub use params::LedParams;
pub use power::{
    communication_power_avg, communication_power_exact, dynamic_resistance, led_power,
    taylor_relative_error_total,
};
