//! LED operating modes and the brightness-invariance (no-flicker) rule.
//!
//! Paper §2.2: an LED is either in *illumination* mode (constant bias
//! current `Ib`) or in *illumination + communication* mode (Manchester-coded
//! OOK around `Ib`). The two modes must produce the same average brightness
//! so that switching between them — which DenseVLC does every reallocation
//! round — is invisible to occupants.

use crate::LedParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operating mode of a single LED transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Constant bias current; no data is transmitted.
    Illumination,
    /// Manchester-coded OOK around the bias with the given swing in amperes.
    IlluminationAndCommunication {
        /// Peak-to-peak swing current `Isw` in amperes.
        swing: f64,
    },
}

impl OperatingMode {
    /// Communication mode at the device's maximum swing (Insight 2: the
    /// practical system only ever uses zero or full swing).
    pub fn full_swing(params: &LedParams) -> Self {
        OperatingMode::IlluminationAndCommunication {
            swing: params.max_swing,
        }
    }

    /// The swing current in amperes (zero in illumination mode).
    pub fn swing(&self) -> f64 {
        match *self {
            OperatingMode::Illumination => 0.0,
            OperatingMode::IlluminationAndCommunication { swing } => swing,
        }
    }

    /// True when the LED is carrying data.
    pub fn is_communicating(&self) -> bool {
        self.swing() > 0.0
    }

    /// The time-average drive current of this mode. With equiprobable
    /// Manchester symbols the average is exactly the bias in both modes —
    /// this is the no-flicker invariant.
    pub fn average_current(&self, params: &LedParams) -> f64 {
        match *self {
            OperatingMode::Illumination => params.bias_current,
            OperatingMode::IlluminationAndCommunication { swing } => {
                (params.high_current(swing) + params.low_current(swing)) / 2.0
            }
        }
    }

    /// Validates that this mode is achievable on the device: the swing must
    /// lie in the communication region and keep the LOW current
    /// non-negative.
    pub fn validate(&self, params: &LedParams) -> Result<(), BrightnessError> {
        let swing = self.swing();
        if !params.swing_is_valid(swing) {
            return Err(BrightnessError::SwingOutOfRange {
                swing,
                max: params.max_swing.min(2.0 * params.bias_current),
            });
        }
        Ok(())
    }
}

/// Error raised when a requested mode would violate brightness constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BrightnessError {
    /// The swing falls outside `[0, min(Isw,max, 2·Ib)]`.
    SwingOutOfRange {
        /// The offending swing in amperes.
        swing: f64,
        /// The maximum permissible swing in amperes.
        max: f64,
    },
}

impl fmt::Display for BrightnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrightnessError::SwingOutOfRange { swing, max } => {
                write!(f, "swing {swing} A outside the valid range [0, {max} A]")
            }
        }
    }
}

impl std::error::Error for BrightnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> LedParams {
        LedParams::cree_xte_paper()
    }

    #[test]
    fn both_modes_have_identical_average_current() {
        let p = paper();
        let illum = OperatingMode::Illumination.average_current(&p);
        for &sw in &[0.1, 0.45, 0.9] {
            let comm =
                OperatingMode::IlluminationAndCommunication { swing: sw }.average_current(&p);
            assert!(
                (comm - illum).abs() < 1e-15,
                "flicker: avg current changed from {illum} to {comm} at swing {sw}"
            );
        }
    }

    #[test]
    fn swing_accessor() {
        assert_eq!(OperatingMode::Illumination.swing(), 0.0);
        assert_eq!(
            OperatingMode::IlluminationAndCommunication { swing: 0.3 }.swing(),
            0.3
        );
    }

    #[test]
    fn full_swing_uses_device_max() {
        let p = paper();
        assert_eq!(OperatingMode::full_swing(&p).swing(), p.max_swing);
    }

    #[test]
    fn is_communicating_only_with_positive_swing() {
        assert!(!OperatingMode::Illumination.is_communicating());
        assert!(!OperatingMode::IlluminationAndCommunication { swing: 0.0 }.is_communicating());
        assert!(OperatingMode::IlluminationAndCommunication { swing: 0.1 }.is_communicating());
    }

    #[test]
    fn validate_rejects_oversized_swing() {
        let p = paper();
        let bad = OperatingMode::IlluminationAndCommunication { swing: 1.2 };
        assert!(matches!(
            bad.validate(&p),
            Err(BrightnessError::SwingOutOfRange { .. })
        ));
        let good = OperatingMode::IlluminationAndCommunication { swing: 0.9 };
        assert!(good.validate(&p).is_ok());
    }

    #[test]
    fn error_display_mentions_range() {
        let err = BrightnessError::SwingOutOfRange {
            swing: 1.2,
            max: 0.9,
        };
        let msg = err.to_string();
        assert!(msg.contains("1.2") && msg.contains("0.9"));
    }
}
