//! The three-level TX front-end driver (paper §7.1).
//!
//! The testbed's TX front-end drives the CREE XT-E with three light levels
//! instead of the two of a typical low-end VLC driver: *symbol LOW* (LED
//! off), *illumination* (bias), and *symbol HIGH*. Two parallel
//! transistor+resistor branches set the illumination and HIGH currents, and
//! their resistors are tuned so the average luminous flux is identical in
//! illumination mode and in 50 %-duty-cycle communication mode. The paper
//! measures the whole front-end at 2.51 W in illumination mode and 3.04 W in
//! 50 %-duty communication mode; we carry those as empirical constants and
//! scale the model's LED-side communication power up to the measured step
//! (the branch resistors burn most of the extra power).

use crate::{LedParams, OperatingMode};
use serde::{Deserialize, Serialize};

/// The three drive levels of the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveLevel {
    /// Symbol LOW: the LED emits no light (both branches off).
    SymbolLow,
    /// Illumination: the bias branch conducts.
    Illumination,
    /// Symbol HIGH: both branches conduct.
    SymbolHigh,
}

/// Emulation of the two-branch, three-level LED driver.
///
/// In the hardware, symbol LOW turns the LED fully off (0 A) and symbol HIGH
/// compensates with `2·Ib` so that 50 %-duty communication keeps the average
/// flux at the illumination level — i.e. the driver realizes the maximum
/// swing `Isw = 2·Ib` of the model. Reduced swings are also supported for
/// completeness, although DenseVLC's practical design (Insight 2) only uses
/// zero or full swing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreeLevelDriver {
    /// The attached LED's parameters.
    pub led: LedParams,
    /// Measured front-end draw in pure illumination mode, in watts.
    pub illumination_draw_w: f64,
    /// Ratio of the front-end's measured extra communication draw to the
    /// LED-side model's `P̄C` at full swing — the driver's own losses
    /// (branch resistors, transistors) on top of the LED.
    pub comm_overhead_factor: f64,
}

impl ThreeLevelDriver {
    /// Driver matching the paper's measured front-end: 2.51 W illumination,
    /// 3.04 W at full-swing 50 %-duty communication.
    pub fn paper(led: LedParams) -> Self {
        let model_full_swing = crate::power::communication_power_exact(&led, led.max_swing);
        ThreeLevelDriver {
            led,
            illumination_draw_w: 2.51,
            comm_overhead_factor: (3.04 - 2.51) / model_full_swing,
        }
    }

    /// An idealized driver with no losses beyond the LED model itself.
    pub fn lossless(led: LedParams) -> Self {
        ThreeLevelDriver {
            led,
            illumination_draw_w: crate::power::led_power(&led, led.bias_current),
            comm_overhead_factor: 1.0,
        }
    }

    /// Instantaneous drive current for a level, given the configured swing.
    pub fn current(&self, level: DriveLevel, swing: f64) -> f64 {
        match level {
            DriveLevel::SymbolLow => self.led.low_current(swing).max(0.0),
            DriveLevel::Illumination => self.led.bias_current,
            DriveLevel::SymbolHigh => self.led.high_current(swing),
        }
    }

    /// Average electrical power drawn by the front-end in a mode (what a
    /// power meter on the TX would read).
    pub fn average_power(&self, mode: OperatingMode) -> f64 {
        let comm_extra = match mode {
            OperatingMode::Illumination => 0.0,
            OperatingMode::IlluminationAndCommunication { swing } => {
                self.comm_overhead_factor
                    * crate::power::communication_power_exact(&self.led, swing)
            }
        };
        self.illumination_draw_w + comm_extra
    }

    /// Relative average luminous flux of a mode versus pure illumination
    /// (1.0 means no visible brightness change). Flux is proportional to
    /// average current for the emulated device.
    pub fn relative_flux(&self, mode: OperatingMode) -> f64 {
        mode.average_current(&self.led) / self.led.bias_current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> ThreeLevelDriver {
        ThreeLevelDriver::paper(LedParams::cree_xte_paper())
    }

    #[test]
    fn illumination_mode_draws_2_51_w() {
        let p = driver().average_power(OperatingMode::Illumination);
        assert!((p - 2.51).abs() < 1e-12, "illumination draw {p} W");
    }

    #[test]
    fn full_swing_communication_draws_3_04_w() {
        let d = driver();
        let p = d.average_power(OperatingMode::full_swing(&d.led));
        assert!((p - 3.04).abs() < 1e-9, "communication draw {p} W");
    }

    #[test]
    fn partial_swing_draw_is_between_modes() {
        let d = driver();
        let p = d.average_power(OperatingMode::IlluminationAndCommunication { swing: 0.45 });
        assert!(p > 2.51 && p < 3.04, "draw {p} W");
    }

    #[test]
    fn full_swing_levels_are_zero_bias_double() {
        let d = driver();
        let sw = d.led.max_swing;
        assert_eq!(d.current(DriveLevel::SymbolLow, sw), 0.0);
        assert_eq!(d.current(DriveLevel::Illumination, sw), 0.45);
        assert!((d.current(DriveLevel::SymbolHigh, sw) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn flux_is_invariant_across_modes() {
        let d = driver();
        for &sw in &[0.0, 0.45, 0.9] {
            let m = OperatingMode::IlluminationAndCommunication { swing: sw };
            assert!((d.relative_flux(m) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lossless_driver_matches_led_model() {
        let led = LedParams::cree_xte_paper();
        let d = ThreeLevelDriver::lossless(led);
        let extra = d.average_power(OperatingMode::full_swing(&led))
            - d.average_power(OperatingMode::Illumination);
        let model = crate::power::communication_power_exact(&led, led.max_swing);
        assert!((extra - model).abs() < 1e-12);
    }

    #[test]
    fn paper_driver_overhead_factor_exceeds_one() {
        // The real driver burns more than the LED-side model on comm extras.
        assert!(driver().comm_overhead_factor > 1.0);
    }
}
