//! LED device parameters.

use serde::{Deserialize, Serialize};

/// Electrical and optical parameters of one LED transmitter.
///
/// The default profile, [`LedParams::cree_xte_paper`], matches the paper's
/// Table 1 for the CREE XT-E: ideality factor `k = 2.68`, series resistance
/// `Rs = 0.19 Ω`, reverse saturation current `Is = 1.44 × 10⁻¹⁸ A`, bias
/// `Ib = 450 mA`, maximum swing `Isw,max = 900 mA`, and wall-plug efficiency
/// `η = 0.40`.
///
/// The thermal voltage `Vt` is not listed in the paper; we back-solve it from
/// the paper's own full-swing per-TX communication power
/// `PC,tx,max = r · (Isw,max / 2)² = 74.42 mW`, which pins the dynamic
/// resistance at `r = 0.3675 Ω` and therefore `Vt ≈ 59.6 mV` given
/// `k = 2.68`. This choice reproduces every power axis in the paper's
/// figures (e.g. D-MISO's 36 full-swing TXs land at 2.68 W exactly as in
/// Fig. 21). A physically textbook room-temperature profile is available via
/// [`LedParams::room_temperature_vt`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedParams {
    /// Diode ideality factor `k` (dimensionless).
    pub ideality: f64,
    /// Thermal voltage `Vt` in volts.
    pub thermal_voltage: f64,
    /// Reverse-bias saturation current `Is` in amperes.
    pub saturation_current: f64,
    /// Series resistance `Rs` in ohms.
    pub series_resistance: f64,
    /// Illumination bias current `Ib` in amperes.
    pub bias_current: f64,
    /// Maximum swing current `Isw,max` in amperes.
    pub max_swing: f64,
    /// Wall-plug efficiency `η` — electrical-to-optical conversion ratio.
    pub wall_plug_efficiency: f64,
    /// Luminous flux emitted at the bias current, in lumens. Used by the
    /// photometry engine; calibrated so the paper's 6 × 6 deployment meets
    /// the ISO 8995-1 illuminance numbers reported in §4 (564 lux average).
    pub luminous_flux_lm: f64,
}

impl LedParams {
    /// The CREE XT-E profile used throughout the paper (Table 1), with `Vt`
    /// calibrated to the paper's 74.42 mW full-swing communication power.
    pub fn cree_xte_paper() -> Self {
        LedParams {
            ideality: 2.68,
            thermal_voltage: 0.059_610,
            saturation_current: 1.44e-18,
            series_resistance: 0.19,
            bias_current: 0.450,
            max_swing: 0.900,
            wall_plug_efficiency: 0.40,
            luminous_flux_lm: 153.3,
        }
    }

    /// Same device, but with the textbook 300 K thermal voltage
    /// `Vt = 25.85 mV`. Provided for sensitivity studies; the Taylor-error
    /// curve (Fig. 4) is nearly identical under both profiles.
    pub fn room_temperature_vt() -> Self {
        LedParams {
            thermal_voltage: 0.025_85,
            ..LedParams::cree_xte_paper()
        }
    }

    /// The HIGH-symbol current `Ih = Ib + Isw/2` for a given swing.
    pub fn high_current(&self, swing: f64) -> f64 {
        self.bias_current + swing / 2.0
    }

    /// The LOW-symbol current `Il = Ib − Isw/2` for a given swing.
    pub fn low_current(&self, swing: f64) -> f64 {
        self.bias_current - swing / 2.0
    }

    /// True when `swing` keeps the LOW current non-negative and the swing
    /// within the device limit — the communication region of Fig. 3.
    pub fn swing_is_valid(&self, swing: f64) -> bool {
        swing >= 0.0 && swing <= self.max_swing && self.low_current(swing) >= -1e-12
    }

    /// Clamps a swing into the valid communication region.
    pub fn clamp_swing(&self, swing: f64) -> f64 {
        swing.clamp(0.0, self.max_swing.min(2.0 * self.bias_current))
    }

    /// Returns this device re-biased at `bias_a` (a dimming operating
    /// point): the swing headroom shrinks to `2·min(Ib, Ilin − Ib)` where
    /// `Ilin` is the top of the linear region (the nominal bias sits at its
    /// center, so `Ilin = Ib,nom + Isw,max/2`), and the luminous flux scales
    /// with the bias (LED flux is ≈ linear in current). This is the §3.4
    /// observation that centering `Ib` in the linear region maximizes
    /// `Isw,max`, made operational for dimming studies.
    ///
    /// # Panics
    /// Panics unless `0 < bias_a ≤ Ilin`.
    pub fn rebias(&self, bias_a: f64) -> LedParams {
        let linear_top = self.bias_current + self.max_swing / 2.0;
        assert!(
            bias_a > 0.0 && bias_a <= linear_top,
            "bias {bias_a} A outside the linear region (0, {linear_top}]"
        );
        LedParams {
            bias_current: bias_a,
            max_swing: 2.0 * bias_a.min(linear_top - bias_a),
            luminous_flux_lm: self.luminous_flux_lm * bias_a / self.bias_current,
            ..*self
        }
    }
}

impl Default for LedParams {
    fn default() -> Self {
        LedParams::cree_xte_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table1() {
        let p = LedParams::cree_xte_paper();
        assert_eq!(p.ideality, 2.68);
        assert_eq!(p.series_resistance, 0.19);
        assert_eq!(p.saturation_current, 1.44e-18);
        assert_eq!(p.bias_current, 0.450);
        assert_eq!(p.max_swing, 0.900);
        assert_eq!(p.wall_plug_efficiency, 0.40);
    }

    #[test]
    fn high_low_currents_straddle_bias() {
        let p = LedParams::cree_xte_paper();
        assert!((p.high_current(0.9) - 0.9).abs() < 1e-12);
        assert!((p.low_current(0.9) - 0.0).abs() < 1e-12);
        assert!((p.high_current(0.0) - p.bias_current).abs() < 1e-12);
    }

    #[test]
    fn swing_validity_bounds() {
        let p = LedParams::cree_xte_paper();
        assert!(p.swing_is_valid(0.0));
        assert!(p.swing_is_valid(0.9));
        assert!(!p.swing_is_valid(0.91));
        assert!(!p.swing_is_valid(-0.1));
    }

    #[test]
    fn clamp_swing_respects_zero_floor_and_device_max() {
        let p = LedParams::cree_xte_paper();
        assert_eq!(p.clamp_swing(-1.0), 0.0);
        assert_eq!(p.clamp_swing(2.0), 0.9);
        assert_eq!(p.clamp_swing(0.5), 0.5);
    }

    #[test]
    fn clamp_swing_respects_low_current_floor() {
        // An LED biased below half its max swing is limited by Il ≥ 0.
        let p = LedParams {
            bias_current: 0.3,
            ..LedParams::cree_xte_paper()
        };
        assert_eq!(p.clamp_swing(0.9), 0.6);
    }

    #[test]
    fn rebias_at_nominal_is_identity() {
        let p = LedParams::cree_xte_paper();
        let same = p.rebias(0.45);
        assert!((same.max_swing - p.max_swing).abs() < 1e-12);
        assert!((same.luminous_flux_lm - p.luminous_flux_lm).abs() < 1e-9);
    }

    #[test]
    fn dimming_shrinks_swing_and_flux_together() {
        let p = LedParams::cree_xte_paper();
        let dim = p.rebias(0.225); // 50 % dimming
        assert!(
            (dim.max_swing - 0.45).abs() < 1e-12,
            "swing {}",
            dim.max_swing
        );
        assert!((dim.luminous_flux_lm - p.luminous_flux_lm / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overdriving_also_shrinks_swing() {
        // Above the linear-region center the upper headroom binds.
        let p = LedParams::cree_xte_paper();
        let bright = p.rebias(0.7);
        assert!((bright.max_swing - 2.0 * (0.9 - 0.7)).abs() < 1e-12);
        assert!(bright.luminous_flux_lm > p.luminous_flux_lm);
    }

    #[test]
    fn nominal_bias_maximizes_swing() {
        let p = LedParams::cree_xte_paper();
        for &b in &[0.1, 0.3, 0.45, 0.6, 0.8] {
            assert!(p.rebias(b).max_swing <= p.rebias(0.45).max_swing + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "linear region")]
    fn rebias_outside_linear_region_panics() {
        LedParams::cree_xte_paper().rebias(1.0);
    }
}
