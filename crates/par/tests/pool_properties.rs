//! Property tests for the worker pool: the determinism contract must hold
//! for *arbitrary* item counts, worker counts, chunk sizes, and panic
//! placements — not just the handful of shapes the unit tests pin down.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vlc_par::{Jobs, Pool};

/// A deterministic, index-dependent payload with enough structure to catch
/// out-of-order reassembly (not symmetric in `i`).
fn payload(i: usize) -> (usize, f64) {
    (i.wrapping_mul(2654435761) % 1000, (i as f64 + 0.5).sqrt())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `map_indexed` returns exactly the sequential result — same values,
    /// same order — for any item count and worker count.
    #[test]
    fn map_matches_sequential_for_any_shape(
        n in 0usize..80,
        workers in 1usize..9,
    ) {
        let expected: Vec<_> = (0..n).map(payload).collect();
        let got = Pool::new(Jobs::of(workers)).map_indexed(n, payload);
        prop_assert_eq!(got, expected);
    }

    /// `fold_chunks` performs an *ordered* reduction: with an
    /// order-sensitive merge (string concatenation) the result equals the
    /// left-to-right sequential fold for any chunk size and worker count.
    #[test]
    fn fold_reduction_is_ordered(
        n in 0usize..60,
        chunk in 1usize..20,
        workers in 1usize..9,
    ) {
        let expected: String = (0..n).map(|i| format!("{i},")).collect();
        let got = Pool::new(Jobs::of(workers)).fold_chunks(
            n,
            chunk,
            String::new,
            |acc, i| acc + &format!("{i},"),
            |a, b| a + &b,
        );
        prop_assert_eq!(got, expected);
    }

    /// `argmax_by` with a strict `better` predicate always returns the
    /// *leftmost* maximum — ties break to the lowest index — for any
    /// score landscape, chunk size, and worker count.
    #[test]
    fn argmax_is_leftmost_for_any_landscape(
        scores in proptest::collection::vec(0u32..6, 0..60),
        chunk in 1usize..16,
        workers in 1usize..9,
    ) {
        let expected = scores
            .iter()
            .enumerate()
            .fold(None::<(usize, u32)>, |best, (i, &s)| match best {
                Some((_, b)) if s <= b => best,
                _ => Some((i, s)),
            });
        let got = Pool::new(Jobs::of(workers)).argmax_by(
            scores.len(),
            chunk,
            |i| Some(scores[i]),
            |a, b| a > b,
        );
        prop_assert_eq!(got, expected);
    }

    /// A panicking item never deadlocks the pool, and the propagated panic
    /// names the *lowest* panicking index — the same one the sequential
    /// path would hit first — for any placement and worker count.
    #[test]
    fn panics_propagate_with_the_lowest_index(
        n in 1usize..40,
        panickers in proptest::collection::vec(0usize..40, 1..5),
        workers in 1usize..9,
    ) {
        let panickers: Vec<usize> =
            panickers.into_iter().map(|p| p % n).collect();
        let lowest = *panickers.iter().min().unwrap();
        let pool = Pool::new(Jobs::of(workers));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(n, |i| {
                if panickers.contains(&i) {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = result.expect_err("a panicking item must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into());
        prop_assert_eq!(
            &msg,
            &format!("parallel item {lowest} panicked: boom at {lowest}"),
            "got panic message: {}", msg
        );
    }
}
