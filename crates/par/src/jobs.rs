//! The worker-count knob shared by every parallel call site.

use std::sync::OnceLock;

/// Environment variable consulted by [`Jobs::from_env`]: `1` forces the
/// exact legacy sequential path, `0` or `max` means all available cores,
/// any other positive integer is an explicit worker count.
pub const JOBS_ENV: &str = "DENSEVLC_JOBS";

/// A resolved worker count (always ≥ 1).
///
/// `Jobs` only chooses *how* work is scheduled, never *what* is computed:
/// every `vlc-par` entry point guarantees output bitwise identical to the
/// sequential (`jobs = 1`) path for any worker count (see the crate docs
/// for the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly one worker: the sequential legacy path, no threads spawned.
    pub const fn serial() -> Self {
        Jobs(1)
    }

    /// An explicit worker count; zero is clamped to one.
    pub fn of(n: usize) -> Self {
        Jobs(n.max(1))
    }

    /// One worker per available hardware thread.
    pub fn max() -> Self {
        Jobs(available_parallelism())
    }

    /// Resolves the worker count from the `DENSEVLC_JOBS` environment
    /// variable (re-read on every call so tests can vary it): unset, `0`,
    /// or `max` mean all available cores; `N` means `N` workers; anything
    /// unparsable falls back to all cores.
    pub fn from_env() -> Self {
        match std::env::var(JOBS_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(Self::max),
            Err(_) => Self::max(),
        }
    }

    /// Parses a `--jobs`-style argument: `0` or `max` mean all available
    /// cores, a positive integer is explicit. Returns `None` on junk.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("max") {
            return Some(Self::max());
        }
        match s.parse::<usize>() {
            Ok(0) => Some(Self::max()),
            Ok(n) => Some(Jobs(n)),
            Err(_) => None,
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether this is the sequential path.
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Self::max()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Cached `std::thread::available_parallelism` (1 when undetectable).
pub fn available_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_worker() {
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::serial().is_serial());
    }

    #[test]
    fn of_clamps_zero_to_one() {
        assert_eq!(Jobs::of(0).get(), 1);
        assert_eq!(Jobs::of(7).get(), 7);
    }

    #[test]
    fn parse_accepts_counts_and_max() {
        assert_eq!(Jobs::parse("3"), Some(Jobs::of(3)));
        assert_eq!(Jobs::parse("max"), Some(Jobs::max()));
        assert_eq!(Jobs::parse("MAX"), Some(Jobs::max()));
        assert_eq!(Jobs::parse("0"), Some(Jobs::max()));
        assert_eq!(Jobs::parse(" 2 "), Some(Jobs::of(2)));
        assert_eq!(Jobs::parse("many"), None);
        assert_eq!(Jobs::parse("-1"), None);
    }

    #[test]
    fn max_is_at_least_one() {
        assert!(Jobs::max().get() >= 1);
        assert!(available_parallelism() >= 1);
    }
}
