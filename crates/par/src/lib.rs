//! # vlc-par — deterministic parallel execution for the DenseVLC stack
//!
//! A dependency-free (std-only, plus the in-workspace telemetry crate)
//! scoped worker pool with one non-negotiable contract:
//!
//! > **Parallel output is bitwise identical to sequential output, for any
//! > worker count.**
//!
//! The paper anchors in `tests/paper_anchors.rs` and the golden traces in
//! `tests/golden/` stay trustworthy only if fanning a loop out over
//! workers cannot change a single bit of its result. The pool guarantees
//! that by construction:
//!
//! * work items are **indexed** (`0..n`); workers claim them dynamically,
//!   but every item's result depends only on its index;
//! * partial results are **merged in index order on the calling thread**
//!   ([`Pool::map_indexed`] places by index; [`Pool::fold_chunks`] merges
//!   fixed-size chunk partials in chunk order — chunk boundaries depend
//!   only on the item count, never on the worker count);
//! * `jobs = 1` spawns no threads and runs the exact sequential code, so
//!   the legacy path *is* the reference path;
//! * a panicking item re-raises with the **lowest** panicking index — the
//!   same one the sequential scan would hit first.
//!
//! The worker count flows through [`Jobs`]: `DENSEVLC_JOBS=1` forces the
//! sequential path everywhere, `DENSEVLC_JOBS=N` pins `N` workers, and
//! unset/`0`/`max` use every available core. See `docs/PARALLELISM.md`
//! for the design discussion and the determinism test layer.
//!
//! ```
//! use vlc_par::{par_map_indexed, Jobs};
//!
//! let squares = par_map_indexed(Jobs::of(4), 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jobs;
pub mod pool;
pub mod seed;

pub use jobs::{available_parallelism, Jobs, JOBS_ENV};
pub use pool::{par_map_indexed, Pool, DEFAULT_CHUNK};
pub use seed::{cell_seed, SEED_GAMMA};
