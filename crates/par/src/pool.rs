//! The scoped worker pool and its deterministic reduction primitives.

use crate::jobs::Jobs;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use vlc_telemetry::Registry;

/// Default item count per reduction chunk for [`Pool::fold_chunks`] and
/// [`Pool::argmax_by`]. Fixed (independent of the worker count) so the
/// chunk boundaries — and therefore the merge tree — never depend on how
/// many workers happen to run.
pub const DEFAULT_CHUNK: usize = 1024;

/// A deterministic fan-out pool over `std::thread::scope`.
///
/// Work items are indexed `0..n`; workers claim items dynamically (an
/// atomic cursor) but every reduction is performed **in index order on the
/// calling thread**, so the output is bitwise identical to the sequential
/// path for any worker count. `jobs = 1` never spawns a thread and runs
/// the exact legacy sequential code.
///
/// With [`Pool::with_telemetry`], each dispatch records:
///
/// * `par.map_calls` / `par.items` — dispatches and total items,
/// * `par.spawns` — worker threads spawned (0 on the sequential path),
/// * `par.worker.busy_s` — one span sample per worker per dispatch,
/// * `par.worker{w}.items` — items completed by worker `w`.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: Jobs,
    telemetry: Registry,
}

impl Pool {
    /// A pool with an explicit worker count and no telemetry.
    pub fn new(jobs: Jobs) -> Self {
        Pool {
            jobs,
            telemetry: Registry::noop(),
        }
    }

    /// The sequential pool (`jobs = 1`).
    pub fn sequential() -> Self {
        Self::new(Jobs::serial())
    }

    /// A pool sized from `DENSEVLC_JOBS` / available parallelism.
    pub fn from_env() -> Self {
        Self::new(Jobs::from_env())
    }

    /// Attaches a telemetry registry recording the per-worker spans and
    /// counters listed in the type docs, and bumps `par.pool.created` —
    /// watching that counter shows how much pool reuse (one pool per
    /// matrix/solve instead of one per gain call) saves.
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        registry.counter("par.pool.created").inc();
        self.telemetry = registry.clone();
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> Jobs {
        self.jobs
    }

    /// Computes `f(i)` for every `i in 0..n` and returns the results in
    /// index order.
    ///
    /// Determinism contract: as long as `f` is a pure function of its
    /// index, the returned vector is bitwise identical for every worker
    /// count, including the thread-free `jobs = 1` path.
    ///
    /// # Panics
    /// If any item panics, the pool re-raises a panic naming the **lowest**
    /// panicking index (`parallel item {i} panicked: ...`) after all
    /// workers have drained — the same index the sequential path would hit
    /// first. Items are not aborted early on a sibling's panic.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.telemetry.counter("par.map_calls").inc();
        self.telemetry.counter("par.items").add(n as u64);
        let workers = self.jobs.get().min(n);
        if workers <= 1 {
            let _busy = self.telemetry.span("par.worker.busy_s");
            let items = self.telemetry.counter("par.worker0.items");
            return (0..n)
                .map(|i| {
                    let v = guarded(i, &f);
                    items.inc();
                    v
                })
                .collect();
        }
        self.telemetry.counter("par.spawns").add(workers as u64);

        // Tag each worker thread with a trace lane derived from the
        // spawning thread's lane, so spans opened inside `f` land on
        // per-worker tracks in trace exports. Lane assignment is
        // scheduling metadata only — span identity and tree shape stay
        // independent of it.
        let track_base = vlc_trace::current_track();
        let next = AtomicUsize::new(0);
        let mut computed: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut panics: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    let next = &next;
                    let telemetry = &self.telemetry;
                    scope.spawn(move || {
                        vlc_trace::set_current_track(vlc_trace::worker_track(track_base, w));
                        let _busy = telemetry.span("par.worker.busy_s");
                        let items = telemetry.counter(&format!("par.worker{w}.items"));
                        let mut ok: Vec<(usize, T)> = Vec::new();
                        let mut bad: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(v) => {
                                    ok.push((i, v));
                                    items.inc();
                                }
                                Err(payload) => bad.push((i, payload)),
                            }
                        }
                        (ok, bad)
                    })
                })
                .collect();
            for handle in handles {
                let (ok, bad) = handle.join().expect("pool workers catch item panics");
                computed.extend(ok);
                panics.extend(bad);
            }
        });

        if let Some((index, payload)) = panics.into_iter().min_by_key(|(i, _)| *i) {
            panic!(
                "parallel item {index} panicked: {}",
                payload_message(&payload)
            );
        }
        // Merge the partial results in index order.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in computed {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Folds `0..n` into an accumulator in fixed-size chunks: each chunk is
    /// folded in index order (possibly on different workers), then the
    /// chunk partials are merged in chunk order on the calling thread.
    ///
    /// `jobs = 1` (or a single chunk) runs one flat fold with **no** merge
    /// calls — the exact legacy path. For `jobs ≥ 2` the result is
    /// identical for every worker count (the chunk grid depends only on
    /// `n` and `chunk`); it additionally equals the `jobs = 1` result
    /// whenever the `fold`/`merge` pair is chunking-invariant, as every
    /// order-respecting argmax/argmin is. Floating-point *sums* are not
    /// chunking-invariant — restructure those call sites so the sequential
    /// path folds the same partials (see `docs/PARALLELISM.md`).
    ///
    /// # Panics
    /// Panics if `chunk` is zero; item panics propagate as in
    /// [`Pool::map_indexed`].
    pub fn fold_chunks<A, I, F, M>(&self, n: usize, chunk: usize, init: I, fold: F, merge: M) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, usize) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = n.div_ceil(chunk);
        if self.jobs.get().min(n_chunks) <= 1 {
            return (0..n).fold(init(), |acc, i| guarded(i, |i| fold(acc, i)));
        }
        let partials = self.map_indexed(n_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            (lo..hi).fold(init(), &fold)
        });
        partials
            .into_iter()
            .reduce(merge)
            .expect("n_chunks >= 2 on the parallel path")
    }

    /// Leftmost argmax: returns `(index, score)` of the best item under the
    /// strict `better` predicate, skipping items whose `score` is `None`.
    /// Ties keep the lowest index — on every worker count, exactly as a
    /// sequential first-strictly-better scan would.
    ///
    /// `better(a, b)` must implement a strict weak ordering ("`a` is
    /// strictly better than `b`"); that is what makes the chunked reduction
    /// equal to the sequential scan.
    pub fn argmax_by<S, F, B>(
        &self,
        n: usize,
        chunk: usize,
        score: F,
        better: B,
    ) -> Option<(usize, S)>
    where
        S: Send,
        F: Fn(usize) -> Option<S> + Sync,
        B: Fn(&S, &S) -> bool + Sync,
    {
        self.fold_chunks(
            n,
            chunk,
            || None,
            |acc: Option<(usize, S)>, i| match score(i) {
                None => acc,
                Some(s) => match &acc {
                    Some((_, cur)) if !better(&s, cur) => acc,
                    _ => Some((i, s)),
                },
            },
            |a, b| match (&a, &b) {
                (Some((_, sa)), Some((_, sb))) => {
                    if better(sb, sa) {
                        b
                    } else {
                        a
                    }
                }
                (None, _) => b,
                (_, None) => a,
            },
        )
    }
}

/// Runs `f(i)` on the sequential path, rewrapping an item panic with its
/// index so both paths report `parallel item {i} panicked: ...`.
fn guarded<T>(i: usize, f: impl FnOnce(usize) -> T) -> T {
    match catch_unwind(AssertUnwindSafe(|| f(i))) {
        Ok(v) => v,
        Err(payload) => panic!("parallel item {i} panicked: {}", payload_message(&payload)),
    }
}

/// Best-effort extraction of a panic payload's message.
fn payload_message(payload: &Box<dyn Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// [`Pool::map_indexed`] on a throwaway pool: the common "fan this loop
/// out" entry point.
pub fn par_map_indexed<T, F>(jobs: Jobs, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::new(jobs).map_indexed(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_for_every_worker_count() {
        let expect: Vec<u64> = (0..137)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for jobs in [1, 2, 3, 7, 16] {
            let got = par_map_indexed(Jobs::of(jobs), 137, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_maps_work() {
        assert_eq!(par_map_indexed(Jobs::of(4), 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(Jobs::of(4), 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn lowest_panicking_index_is_reported_on_every_path() {
        for jobs in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                par_map_indexed(Jobs::of(jobs), 20, |i| {
                    if i == 5 || i == 17 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }))
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("parallel item 5 panicked") && msg.contains("boom at 5"),
                "jobs={jobs}: {msg}"
            );
        }
    }

    #[test]
    fn fold_chunks_argmax_is_chunking_invariant() {
        // A vector with an exact tie: leftmost must win on every path.
        let scores = [1.0, 5.0, 3.0, 5.0, 2.0, 5.0];
        for jobs in [1, 2, 5] {
            let pool = Pool::new(Jobs::of(jobs));
            let best = pool.argmax_by(scores.len(), 2, |i| Some(scores[i]), |a, b| a > b);
            assert_eq!(best, Some((1, 5.0)), "jobs={jobs}");
        }
    }

    #[test]
    fn argmax_skips_none_items() {
        let pool = Pool::new(Jobs::of(3));
        let best = pool.argmax_by(10, 2, |i| (i % 2 == 1).then_some(i as f64), |a, b| a > b);
        assert_eq!(best, Some((9, 9.0)));
        let none = pool.argmax_by(10, 2, |_| Option::<f64>::None, |a, b| a > b);
        assert_eq!(none, None);
    }

    #[test]
    fn telemetry_records_workers_and_items() {
        let registry = Registry::new();
        let pool = Pool::new(Jobs::of(3)).with_telemetry(&registry);
        let out = pool.map_indexed(10, |i| i);
        assert_eq!(out.len(), 10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("par.map_calls"), Some(1));
        assert_eq!(snap.counter("par.items"), Some(10));
        assert_eq!(snap.counter("par.spawns"), Some(3));
        let per_worker: u64 = (0..3)
            .map(|w| snap.counter(&format!("par.worker{w}.items")).unwrap_or(0))
            .sum();
        assert_eq!(per_worker, 10);
        assert!(snap
            .histogram("par.worker.busy_s")
            .is_some_and(|h| h.count == 3));
    }

    #[test]
    fn pool_creation_is_counted() {
        let registry = Registry::new();
        let _a = Pool::new(Jobs::of(2)).with_telemetry(&registry);
        let _b = Pool::sequential().with_telemetry(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("par.pool.created"), Some(2));
    }

    #[test]
    fn sequential_path_spawns_nothing() {
        let registry = Registry::new();
        let pool = Pool::sequential().with_telemetry(&registry);
        pool.map_indexed(4, |i| i);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("par.spawns"), None);
        assert_eq!(snap.counter("par.worker0.items"), Some(4));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        Pool::sequential().fold_chunks(4, 0, || 0usize, |a, i| a + i, |a, b| a + b);
    }

    #[test]
    fn workers_open_spans_on_worker_lanes() {
        use vlc_telemetry::ManualClock;
        use vlc_trace::{worker_track, Tracer};

        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("fanout");
        let pool = Pool::new(Jobs::of(3));
        pool.map_indexed(9, |i| drop(root.child_indexed("item", i)));
        drop(root);

        let snap = tracer.snapshot();
        assert_eq!(snap.spans_named("item").count(), 9);
        // Every item span was opened on one of the three worker lanes
        // spawned from the main lane (track 0).
        let lanes: Vec<u32> = (0..3).map(|w| worker_track(0, w)).collect();
        assert!(snap.spans_named("item").all(|s| lanes.contains(&s.track)));
        // The span *tree* stays lane-independent: ids are structural.
        assert_eq!(snap.children_of(snap.find("fanout").unwrap().id).len(), 9);
    }

    #[test]
    fn sequential_path_keeps_the_caller_lane() {
        use vlc_telemetry::ManualClock;
        use vlc_trace::Tracer;

        let tracer = Tracer::with_clock(ManualClock::new());
        let root = tracer.root("seq");
        Pool::sequential().map_indexed(3, |i| drop(root.child_indexed("item", i)));
        drop(root);
        assert!(tracer.snapshot().spans_named("item").all(|s| s.track == 0));
    }
}
