//! Deterministic per-cell RNG seed derivation.
//!
//! Parallel campaigns that give every cell (codec lab cell, building room,
//! load-generator session wave) its own `StdRng` must derive the per-cell
//! seed from the campaign seed *and nothing else* — never from worker
//! identity or scheduling order — so results are bitwise identical at any
//! `DENSEVLC_JOBS`. This module is the single home for that derivation;
//! `codec_campaign` and the sharded building engine both use it.

/// Golden-ratio odd constant (2^64 / φ), the classic Weyl/Fibonacci-hash
/// multiplier: consecutive cell indices map to well-spread seeds.
pub const SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive a per-cell seed from a campaign `base` seed and a stable cell
/// index. Pure and order-free: cell `k` gets the same seed whether it runs
/// first, last, or on any worker.
#[must_use]
pub fn cell_seed(base: u64, cell: u64) -> u64 {
    base ^ cell.wrapping_mul(SEED_GAMMA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_codec_campaign_formula() {
        // The formula previously open-coded in codec_campaign; golden
        // outputs (tests/golden/codec_campaign.json) pin this mapping.
        for (base, idx) in [(0u64, 0u64), (42, 0), (42, 1), (7, 11), (u64::MAX, 255)] {
            assert_eq!(
                cell_seed(base, idx),
                base ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            );
        }
    }

    #[test]
    fn distinct_cells_get_distinct_seeds() {
        let seeds: Vec<u64> = (0..1000).map(|c| cell_seed(42, c)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }
}
