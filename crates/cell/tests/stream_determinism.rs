//! End-to-end worker-count independence of the service loop: a full
//! load-generated run — handovers included — must emit a byte-identical
//! obs stream and bitwise-identical shard timelines at any
//! `DENSEVLC_JOBS`.

use vlc_cell::{
    drive, BuildingConfig, BuildingEngine, BuildingObs, BuildingObsConfig, LoadGenConfig, ShardTick,
};
use vlc_obs::MemorySink;
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

struct RunResult {
    stream: String,
    timelines: Vec<Vec<ShardTick>>,
    system_bps: u64,
    handovers: u64,
}

fn run(jobs: Jobs) -> RunResult {
    let load = LoadGenConfig {
        cols: 3,
        rows: 3,
        ticks: 80,
        target_events: 4_000,
        seed: 11,
        mean_lifetime_ticks: 30,
        move_period_ticks: 3,
        step_m: 2.0, // bigger than half a room: handovers guaranteed
    };
    let mut cfg = BuildingConfig::paper(load.cols, load.rows);
    cfg.record_timelines = true;
    let registry = Registry::new();
    let mut engine = BuildingEngine::new(&cfg, &registry);
    let pool = Pool::new(jobs).with_telemetry(&registry);
    let obs_cfg = BuildingObsConfig {
        every: 10,
        ..BuildingObsConfig::default()
    };
    let sink = MemorySink::new();
    let mut obs =
        BuildingObs::new(&obs_cfg, &engine.map().clone(), Box::new(sink.clone())).expect("obs");
    let report = drive(
        &mut engine,
        &load.schedule(),
        &pool,
        Some(&mut obs),
        &Span::noop(),
    )
    .expect("drive");
    obs.finish().expect("finish");
    assert!(report.handovers > 0, "workload produced no handovers");
    RunResult {
        stream: sink.text(),
        timelines: (0..load.cols * load.rows)
            .map(|c| engine.shard(c).timeline().to_vec())
            .collect(),
        system_bps: engine.system_bps().to_bits(),
        handovers: report.handovers,
    }
}

#[test]
fn obs_stream_and_timelines_are_jobs_independent() {
    let a = run(Jobs::of(1));
    let b = run(Jobs::of(4));
    let c = run(Jobs::max());
    assert_eq!(a.stream, b.stream, "obs stream differs at jobs=4");
    assert_eq!(a.stream, c.stream, "obs stream differs at jobs=max");
    assert_eq!(a.timelines, b.timelines, "timelines differ at jobs=4");
    assert_eq!(a.timelines, c.timelines, "timelines differ at jobs=max");
    assert_eq!(a.system_bps, b.system_bps, "system bps differs at jobs=4");
    assert_eq!(a.handovers, b.handovers, "handover count differs at jobs=4");
    assert!(a.stream.lines().count() > 10, "stream suspiciously short");
}
