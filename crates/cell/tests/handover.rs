//! Beamspot handover: a session crossing a room boundary must end up in
//! the destination shard with a plan identical to a cold re-solve there
//! (heuristic policy — planning is a pure function of the channel), and
//! must seed the destination's solver under the optimal policy
//! (`alloc.optimal.warm_starts`) without ever landing below the cold
//! objective.

use vlc_alloc::model::SystemModel;
use vlc_alloc::OptimalSolver;
use vlc_cell::{BuildingConfig, BuildingEngine, Command, ReplanPolicy};
use vlc_channel::ChannelMatrix;
use vlc_geom::Pose;
use vlc_mac::controller::{Controller, ControllerConfig};
use vlc_par::Pool;
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// 1×2 building; session 7 starts in cell 0 and walks into cell 1 where
/// session 9 already lives.
fn run(policy: ReplanPolicy) -> (BuildingEngine, Registry) {
    let mut cfg = BuildingConfig::paper(2, 1);
    cfg.policy = policy;
    cfg.record_timelines = true;
    let registry = Registry::new();
    let mut engine = BuildingEngine::new(&cfg, &registry);
    let pool = Pool::sequential();
    let commands: Vec<Vec<Command>> = vec![
        vec![
            Command::Arrive {
                session: 7,
                x: 2.5,
                y: 1.5,
            },
            Command::Arrive {
                session: 9,
                x: 4.0,
                y: 1.2,
            },
        ],
        vec![Command::Move {
            session: 7,
            x: 2.9,
            y: 1.5,
        }],
        // The handover tick: session 7 crosses the x = 3 m room boundary.
        vec![Command::Move {
            session: 7,
            x: 3.6,
            y: 1.4,
        }],
        vec![],
    ];
    for bucket in commands {
        for cmd in &bucket {
            engine.apply(cmd);
        }
        engine.control_tick(&pool, &Span::noop());
    }
    (engine, registry)
}

/// The destination cell's deployment after the handover, built from
/// scratch (the cold path): occupants in shard order, local poses.
fn destination_model(cfg: &BuildingConfig) -> SystemModel {
    let map = cfg.map();
    let poses: Vec<Pose> = [(4.0, 1.2), (3.6, 1.4)]
        .iter()
        .map(|&(x, y)| {
            let (lx, ly) = map.to_local(1, x, y);
            Pose::face_up(lx, ly, cfg.rx_height)
        })
        .collect();
    let channel = ChannelMatrix::compute(&cfg.grid, &poses, cfg.half_power_semi_angle, &cfg.optics);
    let mut model = SystemModel::paper(channel);
    model.noise = cfg.noise;
    model
}

#[test]
fn migrated_session_lands_in_the_destination_shard() {
    let (engine, registry) = run(ReplanPolicy::Heuristic);
    assert_eq!(engine.locate(7), Some(1));
    assert_eq!(engine.shard(0).sessions(), &[] as &[u64]);
    assert_eq!(engine.shard(1).sessions(), &[9, 7]);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("cell.handovers"), Some(1));
    // Source replanned to empty, destination replanned with the migrant.
    assert!(engine
        .shard(0)
        .timeline()
        .last()
        .unwrap()
        .sessions
        .is_empty());
}

#[test]
fn handover_timeline_matches_a_cold_resolve_in_the_destination() {
    let (engine, _registry) = run(ReplanPolicy::Heuristic);
    let cfg = BuildingConfig::paper(2, 1);
    let model = destination_model(&cfg);
    let controller = Controller::new(ControllerConfig::paper(cfg.budget_w), model.n_tx(), 2);
    let plan = controller.plan(&model.channel);
    let cold_bps = model.throughput(&plan.allocation);

    let last = engine.shard(1).timeline().last().expect("dest replanned");
    assert!(last.replanned);
    assert_eq!(last.sessions, vec![9, 7]);
    assert_eq!(
        last.bps, cold_bps,
        "handover plan differs from cold re-solve"
    );
    assert_eq!(
        engine.shard(1).allocation().expect("dest has a plan"),
        &plan.allocation,
        "handover allocation differs from cold re-solve"
    );
}

#[test]
fn optimal_policy_warm_starts_the_destination_solver() {
    let (engine, registry) = run(ReplanPolicy::Optimal(OptimalSolver::quick()));
    let snap = registry.snapshot();
    assert_eq!(snap.counter("cell.handovers"), Some(1));
    // Exactly two seeded solves happen: cell 0's tick-1 in-room move
    // (continuity from its own previous plan) and cell 1's handover tick
    // (seeded by the imported column). The tick-0 cold solves and cell
    // 0's emptying on the handover tick contribute none — so == 2 pins
    // the handover solve itself as warm-started.
    let warm_starts = snap.counter("alloc.optimal.warm_starts").unwrap_or(0);
    assert_eq!(
        warm_starts, 2,
        "handover did not seed the destination solver"
    );

    // The warm solve explores the cold start set *plus* the carried seed,
    // with the max-reduction keeping the best — it can never land below
    // the cold objective.
    let cfg = BuildingConfig::paper(2, 1);
    let model = destination_model(&cfg);
    let cold = OptimalSolver::quick().solve(&model, cfg.budget_w);
    let warm_alloc = engine.shard(1).allocation().expect("dest has a plan");
    let warm_objective = model.sum_log_throughput(warm_alloc);
    assert!(
        warm_objective >= cold.objective - 1e-9,
        "warm objective {warm_objective} below cold {}",
        cold.objective
    );
}
