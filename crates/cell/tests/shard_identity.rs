//! Sharded-vs-sequential identity: the coordinator over N cells must
//! produce, bitwise, the same per-shard timelines as the same cells run
//! one at a time — at any worker count.
//!
//! The reference run feeds each cell's command stream (translated to the
//! cell's local frame via the same `BuildingMap::to_local` the engine
//! uses, so float arithmetic is identical) through a 1×1 building. The
//! coordinated run executes all cells in one engine at `jobs ∈ {1, 4,
//! max}`; every timeline entry — roster, replanned flag, per-session
//! throughput — must match to the last bit.

use vlc_cell::{BuildingConfig, BuildingEngine, Command, ShardTick};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

const COLS: usize = 3;
const ROWS: usize = 2;

fn config(cols: usize, rows: usize) -> BuildingConfig {
    let mut cfg = BuildingConfig::paper(cols, rows);
    cfg.record_timelines = true;
    cfg
}

/// A hand-built schedule touching cells 0, 2, 4 with arrivals,
/// within-room moves, and departures — no cross-room handovers, so the
/// building decomposes exactly into independent cells.
fn schedule() -> Vec<Vec<Command>> {
    let cfg = config(COLS, ROWS);
    let map = cfg.map();
    let (rw, rd) = (cfg.room.width, cfg.room.depth);
    // Sessions per cell: (cell, id, start position in local coords).
    let anchors = [
        (0usize, 1u64, (0.7, 0.7)),
        (0, 2, (2.1, 1.4)),
        (2, 3, (1.5, 1.5)),
        (4, 4, (0.9, 2.2)),
        (4, 5, (2.4, 0.6)),
    ];
    let global = |cell: usize, (lx, ly): (f64, f64)| {
        let (ox, oy) = map.origin(cell);
        (ox + lx, oy + ly)
    };
    let mut ticks: Vec<Vec<Command>> = vec![Vec::new(); 12];
    for &(cell, session, start) in &anchors {
        let (x, y) = global(cell, start);
        ticks[0].push(Command::Arrive { session, x, y });
        // Deterministic in-room drift, comfortably inside the walls.
        for t in [2usize, 5, 8] {
            let dx = 0.11 * session as f64 * (t as f64).sin();
            let dy = 0.07 * session as f64 * (t as f64).cos();
            let lx = (start.0 + dx).clamp(0.1, rw - 0.1);
            let ly = (start.1 + dy).clamp(0.1, rd - 0.1);
            let (x, y) = global(cell, (lx, ly));
            ticks[t].push(Command::Move { session, x, y });
        }
    }
    ticks[10].push(Command::Leave { session: 2 });
    ticks[10].push(Command::Leave { session: 4 });
    ticks
}

fn run_coordinated(jobs: Jobs) -> Vec<Vec<ShardTick>> {
    let registry = Registry::new();
    let mut engine = BuildingEngine::new(&config(COLS, ROWS), &registry);
    let pool = Pool::new(jobs).with_telemetry(&registry);
    for bucket in schedule() {
        for cmd in &bucket {
            engine.apply(cmd);
        }
        engine.control_tick(&pool, &Span::noop());
    }
    (0..COLS * ROWS)
        .map(|c| engine.shard(c).timeline().to_vec())
        .collect()
}

/// Runs cell `cell`'s commands alone through a 1×1 building.
fn run_cell_alone(cell: usize) -> Vec<ShardTick> {
    let map = config(COLS, ROWS).map();
    let registry = Registry::new();
    let mut engine = BuildingEngine::new(&config(1, 1), &registry);
    let pool = Pool::sequential();
    for bucket in schedule() {
        for cmd in &bucket {
            // Keep only this cell's commands, translated to local frame
            // with the exact same arithmetic the coordinator applies.
            let local = match *cmd {
                Command::Arrive { session, x, y } if map.cell_of(x, y) == cell => {
                    let (lx, ly) = map.to_local(cell, x, y);
                    Some(Command::Arrive {
                        session,
                        x: lx,
                        y: ly,
                    })
                }
                Command::Move { session, x, y } if map.cell_of(x, y) == cell => {
                    let (lx, ly) = map.to_local(cell, x, y);
                    Some(Command::Move {
                        session,
                        x: lx,
                        y: ly,
                    })
                }
                Command::Leave { session } if session_home(session) == cell => {
                    Some(Command::Leave { session })
                }
                _ => None,
            };
            if let Some(cmd) = local {
                engine.apply(&cmd);
            }
        }
        engine.control_tick(&pool, &Span::noop());
    }
    engine.shard(0).timeline().to_vec()
}

/// The schedule never hands sessions over, so home cells are static.
fn session_home(session: u64) -> usize {
    match session {
        1 | 2 => 0,
        3 => 2,
        4 | 5 => 4,
        _ => unreachable!("unknown session"),
    }
}

#[test]
fn coordinator_matches_cells_run_one_by_one_bitwise() {
    let coordinated = run_coordinated(Jobs::of(1));
    for (cell, timeline) in coordinated.iter().enumerate() {
        let alone = run_cell_alone(cell);
        assert_eq!(
            *timeline, alone,
            "cell {cell}: coordinated timeline diverges from the solo run"
        );
    }
    // Untouched cells never replan at all.
    for cell in [1usize, 3, 5] {
        assert!(coordinated[cell].is_empty(), "cell {cell} was visited");
    }
}

#[test]
fn worker_count_never_changes_the_timelines() {
    let serial = run_coordinated(Jobs::of(1));
    let threaded = run_coordinated(Jobs::of(4));
    let max = run_coordinated(Jobs::max());
    assert_eq!(serial, threaded, "jobs=4 diverged from jobs=1");
    assert_eq!(serial, max, "jobs=max diverged from jobs=1");
}
