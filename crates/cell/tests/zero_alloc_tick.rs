//! Allocation audit for the steady-state control tick.
//!
//! The tentpole contract: once a building is warmed up, a control tick
//! that touches no shard — bookkeeping, metric updates, obs window
//! appends — performs exactly **zero** heap allocations. Per-shard
//! scratch (updater buffers, plan caches, window rings, the dirty list)
//! persists across ticks; only replans and flush boundaries may
//! allocate.

use vlc_cell::{
    drive, BuildingConfig, BuildingEngine, BuildingObs, BuildingObsConfig, LoadGenConfig,
    TickReport,
};
use vlc_obs::NoopSink;
use vlc_par::Pool;
use vlc_prof::alloc_counter::{allocations_during, CountingAlloc};
use vlc_telemetry::Registry;
use vlc_trace::Span;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_ticks_are_allocation_free() {
    let cfg = BuildingConfig::paper(4, 3);
    let registry = Registry::new();
    let mut engine = BuildingEngine::new(&cfg, &registry);
    let pool = Pool::sequential();
    let span = Span::noop();

    // Warm the building with a short synthetic burst (arrivals, moves,
    // handovers), then let every window ring rotate through at least one
    // full span so bucket vectors reach their high-water capacity.
    let load = LoadGenConfig {
        cols: 4,
        rows: 3,
        ticks: 40,
        target_events: 1_200,
        seed: 9,
        mean_lifetime_ticks: 200, // sessions outlive the burst
        move_period_ticks: 4,
        step_m: 1.0,
    };
    let obs_cfg = BuildingObsConfig {
        every: 1_000_000, // no flush inside the measurement window
        ..BuildingObsConfig::default()
    };
    let mut obs = BuildingObs::new(&obs_cfg, engine.map(), Box::new(NoopSink)).expect("obs");
    drive(&mut engine, &load.schedule(), &pool, Some(&mut obs), &span).expect("warmup");
    let window_span = obs_cfg.window.window_ticks() + 8;
    let mut last = TickReport::default();
    for _ in 0..window_span {
        last = engine.control_tick(&pool, &span);
        obs.observe(&last).expect("warm observe");
    }
    assert_eq!(last.dirty_shards, 0, "warmup left shards dirty");
    assert!(engine.sessions() > 0, "building emptied before measurement");

    // The audit: 32 event-free control ticks, observed, zero allocations.
    let n = allocations_during(|| {
        for _ in 0..32 {
            let report = engine.control_tick(&pool, &span);
            obs.observe(&report).expect("steady observe");
        }
    });
    assert_eq!(n, 0, "steady-state control tick made {n} heap allocations");
}
