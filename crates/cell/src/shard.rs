//! One cell shard: a room's channel, plan cache, and MAC state.
//!
//! A [`CellShard`] owns everything needed to replan its room in
//! isolation: the session roster (ids + local poses), the incremental
//! [`ChannelUpdater`], the [`PlanCache`], the controller, and — under the
//! optimal policy — the warm-start seed carried from the previous plan
//! (and, on handover, from the source cell's allocation). Replans run on
//! the shard's own *sequential* inner pool: the coordinator parallelises
//! **across** shards, never inside one, so the per-shard computation is
//! the exact `jobs = 1` code path regardless of `DENSEVLC_JOBS`.
//!
//! A shard never allocates on a tick that doesn't touch it; all state
//! below persists across ticks and is reused in place.

use crate::ReplanPolicy;
use vlc_alloc::model::{Allocation, SystemModel};
use vlc_alloc::OptimalSolver;
use vlc_channel::incremental::ChannelUpdater;
use vlc_channel::{ChannelMatrix, NoiseParams, RxOptics};
use vlc_geom::{Pose, TxGrid};
use vlc_mac::controller::{Controller, ControllerConfig, PlanCache};
use vlc_par::Pool;
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// A session identifier (unique across the building).
pub type SessionId = u64;

/// One entry of a shard's replan timeline (recorded only when
/// [`crate::BuildingConfig::record_timelines`] is set — identity tests
/// compare these bitwise).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTick {
    /// Control tick the replan ran on.
    pub tick: u64,
    /// `false` when the plan cache answered (channel bitwise unchanged).
    pub replanned: bool,
    /// Session roster at replan time, in shard order.
    pub sessions: Vec<SessionId>,
    /// Per-session throughput under the plan, bit/s, in shard order.
    pub bps: Vec<f64>,
}

/// What one [`CellShard::replan`] produced, for the coordinator's
/// bookkeeping. `old_bps`/`new_bps` let the coordinator maintain the
/// building throughput by delta in deterministic (cell-index) order.
#[derive(Debug, Clone, Copy)]
pub struct ReplanOutcome {
    /// `false` when the plan cache answered without recomputing.
    pub replanned: bool,
    /// Shard throughput before the replan, bit/s.
    pub old_bps: f64,
    /// Shard throughput after the replan, bit/s.
    pub new_bps: f64,
}

/// One room's sessions, channel state, and planner.
#[derive(Debug, Clone)]
pub struct CellShard {
    cell: usize,
    budget_w: f64,
    policy: ReplanPolicy,
    record_timeline: bool,
    sessions: Vec<SessionId>,
    poses: Vec<Pose>,
    updater: ChannelUpdater,
    cache: PlanCache,
    controller: Option<Controller>,
    /// Occupancy the controller was built for (it is shape-bound).
    controller_rx: usize,
    model: SystemModel,
    /// Warm seed for the optimal policy: the previous allocation with
    /// columns remapped as sessions arrive/leave/hand over.
    warm: Option<Allocation>,
    /// The most recent allocation (either policy) — the handover export.
    last_alloc: Option<Allocation>,
    /// Per-session throughput of the current plan, shard order.
    bps: Vec<f64>,
    sum_bps: f64,
    timeline: Vec<ShardTick>,
    /// Sequential inner pool: across-shard parallelism only.
    inner: Pool,
    pub(crate) dirty: bool,
}

impl CellShard {
    /// A shard for `cell` with an empty roster.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cell: usize,
        grid: &TxGrid,
        half_power_semi_angle: f64,
        optics: &RxOptics,
        noise: NoiseParams,
        budget_w: f64,
        policy: ReplanPolicy,
        record_timeline: bool,
    ) -> Self {
        let mut model = SystemModel::paper(ChannelMatrix::from_gains(grid.len(), 0, Vec::new()));
        model.noise = noise;
        CellShard {
            cell,
            budget_w,
            policy,
            record_timeline,
            sessions: Vec::new(),
            poses: Vec::new(),
            updater: ChannelUpdater::new(grid, half_power_semi_angle, optics, 0.0),
            cache: PlanCache::new(),
            controller: None,
            controller_rx: 0,
            model,
            warm: None,
            last_alloc: None,
            bps: Vec::new(),
            sum_bps: 0.0,
            timeline: Vec::new(),
            inner: Pool::sequential(),
            dirty: false,
        }
    }

    /// The cell index this shard owns.
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// Sessions currently in the cell, shard order.
    pub fn sessions(&self) -> &[SessionId] {
        &self.sessions
    }

    /// Local poses, parallel to [`Self::sessions`].
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// Per-session throughput of the current plan, shard order.
    pub fn bps(&self) -> &[f64] {
        &self.bps
    }

    /// Shard throughput under the current plan, bit/s.
    pub fn sum_bps(&self) -> f64 {
        self.sum_bps
    }

    /// The recorded replan timeline (empty unless recording is on).
    pub fn timeline(&self) -> &[ShardTick] {
        &self.timeline
    }

    /// The current allocation, if the shard has ever planned.
    pub fn allocation(&self) -> Option<&Allocation> {
        self.last_alloc.as_ref()
    }

    fn index_of(&self, id: SessionId) -> Option<usize> {
        self.sessions.iter().position(|&s| s == id)
    }

    /// Adds a session with no warm-start column.
    pub(crate) fn arrive(&mut self, id: SessionId, pose: Pose) {
        self.import(id, pose, None);
    }

    /// Adds a session, optionally seeding its warm-start column with the
    /// allocation it carried over from the source cell of a handover.
    pub(crate) fn import(&mut self, id: SessionId, pose: Pose, carried: Option<Vec<f64>>) {
        debug_assert!(self.index_of(id).is_none(), "session {id} already here");
        self.sessions.push(id);
        self.poses.push(pose);
        let col = carried.unwrap_or_default();
        if let Some(w) = self.warm.take() {
            self.warm = Some(insert_column(&w, &col));
        } else if matches!(self.policy, ReplanPolicy::Optimal(_)) && !col.is_empty() {
            // First import into an unplanned cell: the carried column alone
            // is still a better seed than nothing.
            let mut w = Allocation::zeros(self.model.n_tx(), self.sessions.len());
            copy_column(&mut w, self.sessions.len() - 1, &col);
            self.warm = Some(w);
        }
        if let Some(a) = self.last_alloc.take() {
            self.last_alloc = Some(insert_column(&a, &col));
        }
    }

    /// Removes a session; returns its current allocation column (the
    /// handover payload) if the shard has a plan.
    pub(crate) fn depart(&mut self, id: SessionId) -> Option<Vec<f64>> {
        let idx = self.index_of(id).expect("departing session not in shard");
        let column = self
            .last_alloc
            .as_ref()
            .map(|a| (0..a.n_tx()).map(|tx| a.swing(tx, idx)).collect());
        self.sessions.remove(idx);
        self.poses.remove(idx);
        if let Some(w) = self.warm.take() {
            self.warm = (!self.sessions.is_empty()).then(|| remove_column(&w, idx));
        }
        if let Some(a) = self.last_alloc.take() {
            self.last_alloc = (!self.sessions.is_empty()).then(|| remove_column(&a, idx));
        }
        column
    }

    /// Moves a session within the room.
    pub(crate) fn move_to(&mut self, id: SessionId, pose: Pose) {
        let idx = self.index_of(id).expect("moving session not in shard");
        self.poses[idx] = pose;
    }

    /// Recomputes the room's channel and plan. Called by the coordinator
    /// only when the shard is dirty; runs entirely on the shard's
    /// sequential inner pool.
    pub(crate) fn replan(
        &mut self,
        tick: u64,
        telemetry: &Registry,
        parent: &Span,
    ) -> ReplanOutcome {
        self.dirty = false;
        let old_bps = self.sum_bps;
        if self.sessions.is_empty() {
            self.bps.clear();
            self.sum_bps = 0.0;
            self.cache.invalidate();
            self.controller = None;
            self.warm = None;
            self.last_alloc = None;
            if self.record_timeline {
                self.timeline.push(ShardTick {
                    tick,
                    replanned: true,
                    sessions: Vec::new(),
                    bps: Vec::new(),
                });
            }
            return ReplanOutcome {
                replanned: true,
                old_bps,
                new_bps: 0.0,
            };
        }

        let update = self
            .updater
            .update_pooled(&self.poses, &[], &self.inner, telemetry, parent);
        let changed = update.matrix != self.model.channel;
        self.model.channel = update.matrix;
        // An identical channel means the previous plan is still the answer
        // (planning is a pure function of the channel) — the cache-hit
        // path of the control plane.
        let hit = !changed && self.last_alloc.is_some();
        if !hit {
            let allocation = match &self.policy {
                ReplanPolicy::Heuristic => {
                    self.ensure_controller();
                    let controller = self.controller.as_ref().expect("just ensured");
                    let plan = controller.plan_cached_traced(
                        &self.model.channel,
                        &mut self.cache,
                        telemetry,
                        parent,
                    );
                    plan.allocation
                }
                ReplanPolicy::Optimal(solver) => self.solve_optimal(solver, telemetry, parent),
            };
            self.bps = self.model.throughput(&allocation);
            self.sum_bps = self.bps.iter().sum();
            if matches!(self.policy, ReplanPolicy::Optimal(_)) {
                self.warm = Some(allocation.clone());
            }
            self.last_alloc = Some(allocation);
        }
        if self.record_timeline {
            self.timeline.push(ShardTick {
                tick,
                replanned: !hit,
                sessions: self.sessions.clone(),
                bps: self.bps.clone(),
            });
        }
        ReplanOutcome {
            replanned: !hit,
            old_bps,
            new_bps: self.sum_bps,
        }
    }

    fn solve_optimal(
        &self,
        solver: &OptimalSolver,
        telemetry: &Registry,
        parent: &Span,
    ) -> Allocation {
        let warm = self
            .warm
            .as_ref()
            .filter(|w| w.n_rx() == self.sessions.len());
        solver
            .solve_warm_traced_pooled(
                &self.model,
                self.budget_w,
                warm,
                telemetry,
                &self.inner,
                parent,
            )
            .allocation
    }

    fn ensure_controller(&mut self) {
        let n_rx = self.sessions.len();
        if self.controller.is_none() || self.controller_rx != n_rx {
            self.controller = Some(Controller::new(
                ControllerConfig::paper(self.budget_w),
                self.model.n_tx(),
                n_rx,
            ));
            self.controller_rx = n_rx;
        }
    }
}

/// `alloc` with one fresh rightmost RX column holding `col` (zeros when
/// `col` is empty — an arrival with nothing to carry).
fn insert_column(alloc: &Allocation, col: &[f64]) -> Allocation {
    let (n_tx, n_rx) = (alloc.n_tx(), alloc.n_rx() + 1);
    let mut out = Allocation::zeros(n_tx, n_rx);
    for tx in 0..n_tx {
        for rx in 0..n_rx - 1 {
            out.set_swing(tx, rx, alloc.swing(tx, rx));
        }
    }
    copy_column(&mut out, n_rx - 1, col);
    out
}

/// `alloc` with RX column `idx` removed (later columns shift left,
/// mirroring `Vec::remove` on the session roster).
fn remove_column(alloc: &Allocation, idx: usize) -> Allocation {
    let (n_tx, n_rx) = (alloc.n_tx(), alloc.n_rx() - 1);
    let mut out = Allocation::zeros(n_tx, n_rx);
    for tx in 0..n_tx {
        for rx in 0..n_rx {
            let src = if rx < idx { rx } else { rx + 1 };
            out.set_swing(tx, rx, alloc.swing(tx, src));
        }
    }
    out
}

fn copy_column(alloc: &mut Allocation, rx: usize, col: &[f64]) {
    for (tx, &v) in col.iter().enumerate().take(alloc.n_tx()) {
        alloc.set_swing(tx, rx, v);
    }
}
