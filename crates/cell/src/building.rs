//! Building geometry: a grid of identical rooms and the global↔local
//! coordinate mapping that assigns sessions to cells.
//!
//! The building is a `cols × rows` grid of copies of one room, tiled in
//! the XY plane with cell 0 at the origin and cells numbered row-major
//! (`cell = row * cols + col`). Every room carries the same ceiling
//! `TxGrid` in *local* (per-room) coordinates, so a shard's channel
//! computation is independent of where its room sits in the building —
//! only the session's local pose matters.
//!
//! The mapping functions here are pure float arithmetic with no hidden
//! state, so placement is bitwise reproducible: the same global position
//! always lands in the same cell with the same local coordinates, on any
//! worker count.

use vlc_geom::Room;

/// The building layout: one room geometry tiled `cols × rows` times.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingMap {
    room: Room,
    cols: usize,
    rows: usize,
}

impl BuildingMap {
    /// A building of `cols × rows` copies of `room`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(room: Room, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "building needs at least one room");
        BuildingMap { room, cols, rows }
    }

    /// The per-room geometry.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// Rooms along X.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rooms along Y.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Building extent along X in metres.
    pub fn width(&self) -> f64 {
        self.room.width * self.cols as f64
    }

    /// Building extent along Y in metres.
    pub fn depth(&self) -> f64 {
        self.room.depth * self.rows as f64
    }

    /// Clamps a global position into the building footprint (half-open on
    /// the far edges so the clamped point still maps into the last cell).
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        let eps = 1e-9;
        (
            x.clamp(0.0, self.width() - eps),
            y.clamp(0.0, self.depth() - eps),
        )
    }

    /// The cell owning global position `(x, y)`; positions outside the
    /// footprint are clamped to the nearest edge cell first.
    pub fn cell_of(&self, x: f64, y: f64) -> usize {
        let col = ((x / self.room.width).floor() as isize).clamp(0, self.cols as isize - 1);
        let row = ((y / self.room.depth).floor() as isize).clamp(0, self.rows as isize - 1);
        row as usize * self.cols + col as usize
    }

    /// The `(col, row)` coordinates of `cell`.
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    pub fn cell_rc(&self, cell: usize) -> (usize, usize) {
        assert!(cell < self.cells(), "cell {cell} out of range");
        (cell % self.cols, cell / self.cols)
    }

    /// The global XY position of `cell`'s local origin.
    pub fn origin(&self, cell: usize) -> (f64, f64) {
        let (col, row) = self.cell_rc(cell);
        (col as f64 * self.room.width, row as f64 * self.room.depth)
    }

    /// Converts a global position to `cell`-local room coordinates.
    ///
    /// This is the one translation the whole engine uses, so the identity
    /// tests can reproduce a shard's local poses exactly by calling it.
    pub fn to_local(&self, cell: usize, x: f64, y: f64) -> (f64, f64) {
        let (ox, oy) = self.origin(cell);
        (x - ox, y - oy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> BuildingMap {
        BuildingMap::new(Room::paper_testbed(), 4, 3)
    }

    #[test]
    fn row_major_cell_numbering() {
        let m = map();
        assert_eq!(m.cells(), 12);
        assert_eq!(m.cell_of(0.1, 0.1), 0);
        // One room right of the origin (room is 3 m wide).
        assert_eq!(m.cell_of(3.1, 0.1), 1);
        // One room up (room is 3 m deep) starts the second row.
        assert_eq!(m.cell_of(0.1, 3.1), 4);
        assert_eq!(m.cell_rc(5), (1, 1));
        assert_eq!(m.origin(5), (3.0, 3.0));
    }

    #[test]
    fn out_of_footprint_positions_clamp_to_edge_cells() {
        let m = map();
        assert_eq!(m.cell_of(-1.0, -1.0), 0);
        assert_eq!(m.cell_of(1e9, 1e9), m.cells() - 1);
        let (x, y) = m.clamp(1e9, -5.0);
        assert!(x < m.width() && y == 0.0);
    }

    #[test]
    fn local_coordinates_subtract_the_cell_origin() {
        let m = map();
        let (lx, ly) = m.to_local(5, 3.25, 4.5);
        assert!((lx - 0.25).abs() < 1e-12);
        assert!((ly - 1.5).abs() < 1e-12);
    }
}
