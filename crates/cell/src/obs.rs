//! `densevlc-obs/1` NDJSON export for the building service loop.
//!
//! [`BuildingObs`] turns the engine's [`TickReport`] stream into the
//! same self-describing record stream the simulator emits (one `meta`
//! header, periodic `window` records, one final `summary`), so
//! `obs_check`, the monitor view, and the stream parser all work on
//! building runs unchanged.
//!
//! The stream carries **no wall-clock data** — every value is a pure
//! function of the command stream — so it is byte-identical at any
//! `DENSEVLC_JOBS` (asserted by `tests/stream_determinism.rs`). On a
//! non-flush tick, [`BuildingObs::observe`] only appends samples to
//! pre-allocated rolling windows: once the ring is warm it allocates
//! nothing, keeping the steady-state control tick allocation-free.

use crate::building::BuildingMap;
use crate::engine::TickReport;
use std::io;
use vlc_obs::{ObsRecord, ObsSink, RollingWindow, WindowConfig, OBS_SCHEMA};

/// Building-level signals exported as rolling windows, in stream order.
const SIGNALS: [&str; 5] = [
    "building.sessions",
    "building.bps",
    "building.events",
    "building.replans",
    "building.handovers",
];

/// Shape of a building obs stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingObsConfig {
    /// Run label for the `meta` record.
    pub run: String,
    /// Flush cadence in ticks (window records are emitted every `every`
    /// ticks; min 1).
    pub every: u64,
    /// Rolling-window shape shared by all building signals.
    pub window: WindowConfig,
}

impl Default for BuildingObsConfig {
    fn default() -> Self {
        BuildingObsConfig {
            run: "building".to_string(),
            every: 50,
            window: WindowConfig::default(),
        }
    }
}

/// The service-loop exporter. Create one per run, feed it every tick
/// report, and call [`BuildingObs::finish`] before dropping it.
pub struct BuildingObs {
    sink: Box<dyn ObsSink>,
    every: u64,
    windows: [RollingWindow; 5],
    ticks: u64,
    sum_bps: f64,
}

impl BuildingObs {
    /// Opens the stream: writes the `meta` header (`n_rx` carries the
    /// cell count — the building's unit of observation).
    pub fn new(
        cfg: &BuildingObsConfig,
        map: &BuildingMap,
        mut sink: Box<dyn ObsSink>,
    ) -> io::Result<Self> {
        let every = cfg.every.max(1);
        let meta = ObsRecord::Meta {
            schema: OBS_SCHEMA.to_string(),
            run: cfg.run.clone(),
            tick_s: 0.0,
            n_rx: map.cells() as u64,
            every,
        };
        sink.write_line(&meta.to_line())?;
        Ok(BuildingObs {
            sink,
            every,
            windows: std::array::from_fn(|_| RollingWindow::new(cfg.window)),
            ticks: 0,
            sum_bps: 0.0,
        })
    }

    /// Ingests one tick report; emits window records and flushes every
    /// `every` ticks. Allocation-free on non-flush ticks once the window
    /// rings are warm.
    pub fn observe(&mut self, report: &TickReport) -> io::Result<()> {
        let samples = [
            report.sessions as f64,
            report.system_bps,
            report.events as f64,
            report.replans as f64,
            report.handovers as f64,
        ];
        for (w, v) in self.windows.iter_mut().zip(samples) {
            w.record(report.tick, v);
        }
        self.ticks += 1;
        self.sum_bps += report.system_bps;
        if (report.tick + 1).is_multiple_of(self.every) {
            for (w, signal) in self.windows.iter().zip(SIGNALS) {
                let record = ObsRecord::Window {
                    tick: report.tick,
                    signal: signal.to_string(),
                    stats: w.stats(report.tick),
                };
                self.sink.write_line(&record.to_line())?;
            }
            self.sink.flush()?;
        }
        Ok(())
    }

    /// Closes the stream with the `summary` record.
    pub fn finish(mut self) -> io::Result<()> {
        let ticks = self.ticks;
        let summary = ObsRecord::Summary {
            ticks,
            mean_system_bps: if ticks == 0 {
                0.0
            } else {
                self.sum_bps / ticks as f64
            },
            alerts_fired: 0,
            alerts_cleared: 0,
            events_dropped: 0,
            spans_dropped: 0,
        };
        self.sink.write_line(&summary.to_line())?;
        self.sink.flush()
    }
}
