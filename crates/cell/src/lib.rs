//! Building-scale sharded multi-cell engine for the DenseVLC
//! reproduction.
//!
//! The paper stops at one 3×3 m room; this crate generalises the control
//! plane to a building of 100–400 such rooms, each an independently
//! sharded cell (ROADMAP item 1):
//!
//! * [`building`] — the room grid and the global↔local coordinate
//!   mapping that places sessions into cells.
//! * [`shard`] — one cell's sessions, incremental channel, plan cache,
//!   and warm-start state.
//! * [`engine`] — the coordinator: event-driven session placement,
//!   beamspot handover across room boundaries, and batched dirty-shard
//!   replans over one `vlc-par` pool per control tick.
//! * [`obs`] — the `densevlc-obs/1` NDJSON service-loop exporter
//!   (building-level rolling windows, summary).
//! * [`loadgen`] — a deterministic synthetic-session schedule generator
//!   and driver; `load_gen` is its CLI.
//!
//! Determinism contract: everything observable — per-shard timelines,
//! the obs stream, tick reports — is a pure function of the command
//! stream and seeds, bitwise identical at any `DENSEVLC_JOBS`. Worker
//! threads only ever race over *disjoint* shards, reductions run in cell
//! order on the calling thread, and all randomness is per-cell seeded
//! via [`vlc_par::cell_seed`] (the `codec_campaign` pattern).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod building;
pub mod engine;
pub mod loadgen;
pub mod obs;
pub mod shard;

pub use building::BuildingMap;
pub use engine::{BuildingEngine, Command, TickReport};
pub use loadgen::{drive, DriveReport, LoadGenConfig, Schedule};
pub use obs::{BuildingObs, BuildingObsConfig};
pub use shard::{CellShard, SessionId, ShardTick};

use vlc_alloc::OptimalSolver;
use vlc_channel::{NoiseParams, RxOptics};
use vlc_geom::{Room, TxGrid};

/// Which planner a shard runs on replan.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplanPolicy {
    /// The paper's SJR ranking heuristic through the MAC controller and
    /// its [`vlc_mac::controller::PlanCache`] — a pure function of the
    /// channel, so handover needs no seed.
    Heuristic,
    /// The projected-gradient optimal solver, warm-started from the
    /// shard's previous allocation (and from the carried column on
    /// handover).
    Optimal(OptimalSolver),
}

/// Static configuration of a building: geometry, radio parameters,
/// planner policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingConfig {
    /// Per-room geometry.
    pub room: Room,
    /// Rooms along X.
    pub cols: usize,
    /// Rooms along Y.
    pub rows: usize,
    /// The ceiling grid every room carries (in local room coordinates).
    pub grid: TxGrid,
    /// Receiver optics.
    pub optics: RxOptics,
    /// LED half-power semi-angle, radians.
    pub half_power_semi_angle: f64,
    /// Receiver noise (testbed calibration by default).
    pub noise: NoiseParams,
    /// Receiver height above the floor, metres.
    pub rx_height: f64,
    /// Per-room communication power budget, watts.
    pub budget_w: f64,
    /// Replan policy.
    pub policy: ReplanPolicy,
    /// Record per-shard replan timelines (identity tests; off for load
    /// generation, where they would grow without bound).
    pub record_timelines: bool,
}

impl BuildingConfig {
    /// A building of `cols × rows` paper testbed rooms (3×3×2 m, 36 TX)
    /// with the §8 calibrated noise, floor-level receivers, a 1.2 W
    /// per-room budget, and the heuristic planner.
    pub fn paper(cols: usize, rows: usize) -> Self {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        BuildingConfig {
            room,
            cols,
            rows,
            grid,
            optics: RxOptics::paper(),
            half_power_semi_angle: 15f64.to_radians(),
            noise: NoiseParams {
                n0_a2_per_hz: 0.4 * 7.02e-23,
                bandwidth_hz: 1e6,
            },
            rx_height: 0.0,
            budget_w: 1.2,
            policy: ReplanPolicy::Heuristic,
            record_timelines: false,
        }
    }

    /// The building layout this configuration describes.
    pub fn map(&self) -> BuildingMap {
        BuildingMap::new(self.room, self.cols, self.rows)
    }
}
