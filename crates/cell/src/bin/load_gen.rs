//! Million-session load generator for the sharded building engine.
//!
//! Drives a deterministic synthetic workload (per-cell seeded random
//! walks with cross-room handovers) through [`vlc_cell::BuildingEngine`]
//! and reports sessions/sec, replans/sec, and control-tick latency
//! percentiles. `--smoke` runs the small fixed-seed building CI
//! validates with `obs_check`.
//!
//! ```text
//! load_gen [--rooms CxR] [--ticks N] [--events N] [--seed N]
//!          [--policy heuristic|optimal] [--jobs N] [--smoke]
//!          [--obs-stream PATH] [--obs-every N] [--telemetry]
//! ```

use std::io::Write as _;
use vlc_cell::{
    drive, BuildingConfig, BuildingEngine, BuildingObs, BuildingObsConfig, LoadGenConfig,
    ReplanPolicy,
};
use vlc_obs::{FileSink, ObsSink};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

struct Options {
    load: LoadGenConfig,
    policy: ReplanPolicy,
    jobs: Jobs,
    obs_stream: Option<String>,
    obs_every: u64,
    telemetry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: load_gen [--rooms CxR] [--ticks N] [--events N] [--seed N] \
         [--policy heuristic|optimal] [--jobs N] [--smoke] \
         [--obs-stream PATH] [--obs-every N] [--telemetry]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut load = LoadGenConfig::default();
    let mut policy = ReplanPolicy::Heuristic;
    let mut jobs = Jobs::from_env();
    let mut obs_stream = None;
    let mut obs_every = 50;
    let mut telemetry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--rooms" => {
                let v = value();
                let (c, r) = v.split_once('x').unwrap_or_else(|| usage());
                load.cols = c.parse().unwrap_or_else(|_| usage());
                load.rows = r.parse().unwrap_or_else(|_| usage());
            }
            "--ticks" => load.ticks = value().parse().unwrap_or_else(|_| usage()),
            "--events" => load.target_events = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => load.seed = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => jobs = Jobs::parse(&value()).unwrap_or_else(|| usage()),
            "--policy" => {
                policy = match value().as_str() {
                    "heuristic" => ReplanPolicy::Heuristic,
                    "optimal" => ReplanPolicy::Optimal(vlc_alloc::OptimalSolver::quick()),
                    _ => usage(),
                }
            }
            "--smoke" => {
                load = LoadGenConfig {
                    cols: 5,
                    rows: 4,
                    ticks: 200,
                    target_events: 20_000,
                    seed: 42,
                    mean_lifetime_ticks: 60,
                    move_period_ticks: 5,
                    step_m: 1.5,
                };
            }
            "--obs-stream" => obs_stream = Some(value()),
            "--obs-every" => obs_every = value().parse().unwrap_or_else(|_| usage()),
            "--telemetry" => telemetry = true,
            _ => usage(),
        }
    }
    Options {
        load,
        policy,
        jobs,
        obs_stream,
        obs_every,
        telemetry,
    }
}

fn main() -> std::io::Result<()> {
    let opts = parse_options();
    let registry = Registry::new();
    let pool = Pool::new(opts.jobs).with_telemetry(&registry);

    let mut config = BuildingConfig::paper(opts.load.cols, opts.load.rows);
    config.policy = opts.policy.clone();
    let mut engine = BuildingEngine::new(&config, &registry);

    eprintln!(
        "load_gen: scheduling ≥{} events over {} rooms ({}x{}), {} ticks, seed {} …",
        opts.load.target_events,
        opts.load.cols * opts.load.rows,
        opts.load.cols,
        opts.load.rows,
        opts.load.ticks,
        opts.load.seed
    );
    let schedule = opts.load.schedule();

    let mut obs = match &opts.obs_stream {
        Some(path) => {
            let sink: Box<dyn ObsSink> = Box::new(FileSink::create(std::path::Path::new(path))?);
            let cfg = BuildingObsConfig {
                run: format!("load_gen seed{}", opts.load.seed),
                every: opts.obs_every,
                ..BuildingObsConfig::default()
            };
            Some(BuildingObs::new(&cfg, engine.map(), sink)?)
        }
        None => None,
    };

    let report = drive(&mut engine, &schedule, &pool, obs.as_mut(), &Span::noop())?;
    if let Some(obs) = obs {
        obs.finish()?;
    }

    let policy = match &opts.policy {
        ReplanPolicy::Heuristic => "heuristic",
        ReplanPolicy::Optimal(_) => "optimal",
    };
    let mut out = std::io::stdout().lock();
    writeln!(out, "==== load_gen · sharded building control plane ====")?;
    writeln!(
        out,
        "rooms {} ({}x{}) · policy {policy} · jobs {} · seed {}",
        opts.load.cols * opts.load.rows,
        opts.load.cols,
        opts.load.rows,
        opts.jobs.get(),
        opts.load.seed
    )?;
    writeln!(
        out,
        "ticks {} · events {} · sessions {} (peak concurrent {})",
        report.ticks, report.events, report.sessions, report.peak_sessions
    )?;
    writeln!(
        out,
        "replans {} · plan-cache hits {} · handovers {}",
        report.replans, report.plan_hits, report.handovers
    )?;
    writeln!(
        out,
        "wall {:.2} s · events/s {:.0} · replans/s {:.0}",
        report.wall_s, report.events_per_s, report.replans_per_s
    )?;
    writeln!(
        out,
        "control tick: p50 {:.1} µs · p99 {:.1} µs · max {:.1} µs",
        report.tick_p50_us, report.tick_p99_us, report.tick_max_us
    )?;
    writeln!(
        out,
        "system throughput {:.3e} bit/s",
        report.final_system_bps
    )?;
    if opts.telemetry {
        writeln!(out, "{}", registry.snapshot().summary_table())?;
    }
    Ok(())
}
