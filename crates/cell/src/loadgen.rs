//! Deterministic synthetic-session load generation and the drive loop.
//!
//! [`LoadGenConfig::schedule`] pre-computes the whole command stream:
//! every cell draws its sessions from its own `StdRng` seeded with
//! [`vlc_par::cell_seed`] (the `codec_campaign` per-cell pattern), so the
//! schedule is a pure function of `(config)` — independent of worker
//! count, wall clock, and iteration order. Sessions are born in a cell,
//! random-walk from there, and hand over whenever a step crosses a room
//! boundary; the generator keeps adding sessions to a cell until that
//! cell's share of [`LoadGenConfig::target_events`] is met, so the total
//! event count is guaranteed ≥ the target.
//!
//! [`drive`] pumps a schedule through a [`BuildingEngine`] tick by tick,
//! timing each control tick with the wall clock (report only — never in
//! the obs stream) and returning throughput/latency figures.

use crate::engine::{BuildingEngine, Command, TickReport};
use crate::obs::BuildingObs;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io;
use std::time::Instant;
use vlc_par::{cell_seed, Pool};
use vlc_trace::Span;

/// Shape of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// Rooms along X.
    pub cols: usize,
    /// Rooms along Y.
    pub rows: usize,
    /// Control ticks to schedule over.
    pub ticks: u64,
    /// Minimum total session events (arrive + move + leave) to generate;
    /// spread evenly across cells.
    pub target_events: u64,
    /// Campaign seed; cell `c` uses `cell_seed(seed, c)`.
    pub seed: u64,
    /// Mean session lifetime in ticks (actual lifetimes draw uniformly
    /// from `[mean/2, 3·mean/2]`).
    pub mean_lifetime_ticks: u64,
    /// Mean ticks between a session's moves (uniform `[1, 2·mean)`).
    pub move_period_ticks: u64,
    /// Maximum per-axis step of the random walk, metres. Steps larger
    /// than the room pitch make cross-room handovers common.
    pub step_m: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            cols: 20,
            rows: 10,
            ticks: 2000,
            target_events: 1_200_000,
            seed: 42,
            mean_lifetime_ticks: 400,
            move_period_ticks: 10,
            step_m: 1.0,
        }
    }
}

/// A pre-computed command stream, bucketed by tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `per_tick[t]` holds tick `t`'s commands in application order.
    pub per_tick: Vec<Vec<Command>>,
    /// Total commands scheduled.
    pub events: u64,
    /// Distinct sessions scheduled.
    pub sessions: u64,
}

impl LoadGenConfig {
    /// Generates the full deterministic schedule (see the module docs).
    pub fn schedule(&self) -> Schedule {
        let cells = self.cols * self.rows;
        assert!(cells > 0 && self.ticks > 0, "empty workload");
        let (room_w, room_d) = {
            let room = vlc_geom::Room::paper_testbed();
            (room.width, room.depth)
        };
        let (width, depth) = (
            room_w * self.cols as f64 - 1e-9,
            room_d * self.rows as f64 - 1e-9,
        );
        let per_cell_target = self.target_events.div_ceil(cells as u64);
        let mut per_tick: Vec<Vec<Command>> = vec![Vec::new(); self.ticks as usize];
        let mut events = 0u64;
        let mut sessions = 0u64;
        for cell in 0..cells {
            let mut rng = StdRng::seed_from_u64(cell_seed(self.seed, cell as u64));
            let (col, row) = (cell % self.cols, cell / self.cols);
            let (ox, oy) = (col as f64 * room_w, row as f64 * room_d);
            let mut cell_events = 0u64;
            let mut k = 0u64;
            while cell_events < per_cell_target {
                let session = ((cell as u64) << 32) | k;
                k += 1;
                sessions += 1;
                let born = rng.gen_range(0..self.ticks);
                let life =
                    rng.gen_range(self.mean_lifetime_ticks / 2..=self.mean_lifetime_ticks * 3 / 2);
                let died = (born + life.max(1)).min(self.ticks);
                let mut x = ox + rng.gen_range(0.0..room_w);
                let mut y = oy + rng.gen_range(0.0..room_d);
                per_tick[born as usize].push(Command::Arrive { session, x, y });
                cell_events += 1;
                let mut t = born + rng.gen_range(1..self.move_period_ticks.max(1) * 2);
                while t < died {
                    x = (x + rng.gen_range(-self.step_m..self.step_m)).clamp(0.0, width);
                    y = (y + rng.gen_range(-self.step_m..self.step_m)).clamp(0.0, depth);
                    per_tick[t as usize].push(Command::Move { session, x, y });
                    cell_events += 1;
                    t += rng.gen_range(1..self.move_period_ticks.max(1) * 2);
                }
                if died < self.ticks {
                    per_tick[died as usize].push(Command::Leave { session });
                    cell_events += 1;
                }
            }
            events += cell_events;
        }
        Schedule {
            per_tick,
            events,
            sessions,
        }
    }
}

/// What [`drive`] measured. Latency figures are wall-clock and therefore
/// machine-dependent; everything else is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveReport {
    /// Control ticks run.
    pub ticks: u64,
    /// Session events applied.
    pub events: u64,
    /// Distinct sessions driven.
    pub sessions: u64,
    /// Shard replans performed.
    pub replans: u64,
    /// Dirty visits answered by the plan cache.
    pub plan_hits: u64,
    /// Cross-room handovers.
    pub handovers: u64,
    /// Largest live-session count seen after any tick.
    pub peak_sessions: u64,
    /// Building throughput after the final tick, bit/s.
    pub final_system_bps: f64,
    /// Wall time of the drive loop, seconds.
    pub wall_s: f64,
    /// Events applied per wall second.
    pub events_per_s: f64,
    /// Replans per wall second.
    pub replans_per_s: f64,
    /// Median control-tick latency, microseconds.
    pub tick_p50_us: f64,
    /// 99th-percentile control-tick latency, microseconds.
    pub tick_p99_us: f64,
    /// Worst control-tick latency, microseconds.
    pub tick_max_us: f64,
}

/// Pumps `schedule` through `engine` on `pool`, streaming to `obs` when
/// given. Returns the throughput/latency report.
pub fn drive(
    engine: &mut BuildingEngine,
    schedule: &Schedule,
    pool: &Pool,
    mut obs: Option<&mut BuildingObs>,
    parent: &Span,
) -> io::Result<DriveReport> {
    let mut tick_us: Vec<f64> = Vec::with_capacity(schedule.per_tick.len());
    let mut applied = 0u64;
    let (mut replans, mut plan_hits, mut handovers, mut peak) = (0u64, 0u64, 0u64, 0u64);
    let mut last = TickReport::default();
    let wall = Instant::now();
    for commands in &schedule.per_tick {
        for cmd in commands {
            engine.apply(cmd);
        }
        applied += commands.len() as u64;
        let t0 = Instant::now();
        let report = engine.control_tick(pool, parent);
        tick_us.push(t0.elapsed().as_secs_f64() * 1e6);
        replans += report.replans;
        plan_hits += report.plan_hits;
        handovers += report.handovers;
        peak = peak.max(report.sessions);
        if let Some(obs) = obs.as_deref_mut() {
            obs.observe(&report)?;
        }
        last = report;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    tick_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |q: f64| -> f64 {
        if tick_us.is_empty() {
            return 0.0;
        }
        let rank = ((q * tick_us.len() as f64).ceil() as usize).clamp(1, tick_us.len());
        tick_us[rank - 1]
    };
    Ok(DriveReport {
        ticks: schedule.per_tick.len() as u64,
        events: applied,
        sessions: schedule.sessions,
        replans,
        plan_hits,
        handovers,
        peak_sessions: peak,
        final_system_bps: last.system_bps,
        wall_s,
        events_per_s: applied as f64 / wall_s.max(1e-12),
        replans_per_s: replans as f64 / wall_s.max(1e-12),
        tick_p50_us: quantile(0.50),
        tick_p99_us: quantile(0.99),
        tick_max_us: tick_us.last().copied().unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LoadGenConfig {
        LoadGenConfig {
            cols: 3,
            rows: 2,
            ticks: 60,
            target_events: 3_000,
            seed: 7,
            mean_lifetime_ticks: 20,
            move_period_ticks: 3,
            step_m: 1.5,
        }
    }

    #[test]
    fn schedule_is_reproducible_and_meets_target() {
        let a = small().schedule();
        let b = small().schedule();
        assert_eq!(a, b);
        assert!(a.events >= 3_000, "events {} below target", a.events);
        assert_eq!(
            a.per_tick.iter().map(|t| t.len() as u64).sum::<u64>(),
            a.events
        );
    }

    #[test]
    fn sessions_arrive_before_they_move_or_leave() {
        let s = small().schedule();
        let mut alive = std::collections::HashSet::new();
        for bucket in &s.per_tick {
            for cmd in bucket {
                match cmd {
                    Command::Arrive { session, .. } => assert!(alive.insert(*session)),
                    Command::Move { session, .. } => assert!(alive.contains(session)),
                    Command::Leave { session } => assert!(alive.remove(session)),
                }
            }
        }
    }
}
