//! The building coordinator: session placement, handover, and batched
//! dirty-shard replans.
//!
//! [`BuildingEngine`] is an event-driven control plane. Between control
//! ticks the caller feeds it [`Command`]s (arrive / move / leave, in
//! global building coordinates); each command is O(roster lookup) and
//! marks the touched shard(s) dirty. [`BuildingEngine::control_tick`]
//! then batches every dirty shard's replan through **one** caller-owned
//! `vlc-par` pool — untouched shards are not visited at all, so a tick
//! that touches `k` of `N` shards costs O(k · replan), and a tick that
//! touches nothing is O(1) and allocation-free (proven by
//! `tests/zero_alloc_tick.rs`).
//!
//! Determinism: dirty shards are replanned in ascending cell order, each
//! under a `cell.replan` span indexed by its position in that order, and
//! the building throughput is folded by delta in the same order — so
//! timelines, obs streams, and metrics derived from tick reports are
//! bitwise identical for any `DENSEVLC_JOBS` (workers race only over
//! *disjoint* shards, and reduction order is fixed).
//!
//! A cross-cell move is a **beamspot handover**: the source shard exports
//! the session's current allocation column, and the destination shard
//! uses it to warm-start its next solve (optimal policy; the heuristic
//! planner is a pure function of the channel and ignores seeds, which is
//! what the handover identity test relies on).

use crate::building::BuildingMap;
use crate::shard::{CellShard, SessionId};
use crate::BuildingConfig;
use std::collections::HashMap;
use std::sync::Mutex;
use vlc_geom::Pose;
use vlc_par::Pool;
use vlc_telemetry::{Counter, Gauge, Histogram, Registry};
use vlc_trace::Span;

/// A session event, in global building coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// A new session appears at `(x, y)`.
    Arrive {
        /// Building-unique session id.
        session: SessionId,
        /// Global X, metres.
        x: f64,
        /// Global Y, metres.
        y: f64,
    },
    /// An existing session moves to `(x, y)` (possibly crossing rooms).
    Move {
        /// The moving session.
        session: SessionId,
        /// Global X, metres.
        x: f64,
        /// Global Y, metres.
        y: f64,
    },
    /// A session ends.
    Leave {
        /// The departing session.
        session: SessionId,
    },
}

/// What one control tick did — the engine's obs/timeline surface.
/// Everything here is a pure function of the command stream, never of
/// worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickReport {
    /// The tick index (from 0).
    pub tick: u64,
    /// Commands applied since the previous tick.
    pub events: u64,
    /// Arrivals among them.
    pub arrivals: u64,
    /// Departures among them.
    pub departures: u64,
    /// Moves among them (within-room and cross-room).
    pub moves: u64,
    /// Cross-room moves (beamspot handovers).
    pub handovers: u64,
    /// Shards visited this tick.
    pub dirty_shards: u64,
    /// Visited shards that actually recomputed a plan.
    pub replans: u64,
    /// Visited shards answered by the plan cache (channel unchanged).
    pub plan_hits: u64,
    /// Live sessions after the tick.
    pub sessions: u64,
    /// Building throughput under the current plans, bit/s.
    pub system_bps: f64,
}

/// Pre-resolved metric handles so the steady-state tick path performs no
/// name lookups (and therefore no allocations) against a live registry.
struct CellMetrics {
    ticks: Counter,
    events: Counter,
    arrivals: Counter,
    departures: Counter,
    moves: Counter,
    handovers: Counter,
    dirty_shards: Counter,
    replans: Counter,
    plan_hits: Counter,
    sessions: Gauge,
    system_bps: Gauge,
    tick_s: Histogram,
}

impl CellMetrics {
    fn new(registry: &Registry) -> Self {
        CellMetrics {
            ticks: registry.counter("cell.ticks"),
            events: registry.counter("cell.events"),
            arrivals: registry.counter("cell.arrivals"),
            departures: registry.counter("cell.departures"),
            moves: registry.counter("cell.moves"),
            handovers: registry.counter("cell.handovers"),
            dirty_shards: registry.counter("cell.dirty_shards"),
            replans: registry.counter("cell.replans"),
            plan_hits: registry.counter("cell.plan.hits"),
            sessions: registry.gauge("cell.sessions"),
            system_bps: registry.gauge("cell.system_bps"),
            tick_s: registry.histogram("cell.tick_s"),
        }
    }
}

/// The sharded multi-cell engine. See the module docs.
pub struct BuildingEngine {
    map: BuildingMap,
    rx_height: f64,
    shards: Vec<CellShard>,
    /// session → owning cell. Never iterated, so hash order is moot.
    locations: HashMap<SessionId, usize>,
    /// Cells dirtied since the last tick (unsorted; deduped via the
    /// per-shard flag). Capacity persists across ticks.
    dirty: Vec<usize>,
    tick: u64,
    sum_bps: f64,
    metrics: CellMetrics,
    telemetry: Registry,
    // Per-tick event tallies, reset by `control_tick`.
    pend_events: u64,
    pend_arrivals: u64,
    pend_departures: u64,
    pend_moves: u64,
    pend_handovers: u64,
}

impl BuildingEngine {
    /// Builds an engine with one empty shard per room.
    ///
    /// Metric handles are resolved against `registry` once, here; pass
    /// the same registry (or `Registry::noop()`) that the driving loop
    /// snapshots at the end.
    pub fn new(config: &BuildingConfig, registry: &Registry) -> Self {
        let map = config.map();
        let shards = (0..map.cells())
            .map(|cell| {
                CellShard::new(
                    cell,
                    &config.grid,
                    config.half_power_semi_angle,
                    &config.optics,
                    config.noise,
                    config.budget_w,
                    config.policy.clone(),
                    config.record_timelines,
                )
            })
            .collect();
        BuildingEngine {
            map,
            rx_height: config.rx_height,
            shards,
            locations: HashMap::new(),
            dirty: Vec::new(),
            tick: 0,
            sum_bps: 0.0,
            metrics: CellMetrics::new(registry),
            telemetry: registry.clone(),
            pend_events: 0,
            pend_arrivals: 0,
            pend_departures: 0,
            pend_moves: 0,
            pend_handovers: 0,
        }
    }

    /// The building layout.
    pub fn map(&self) -> &BuildingMap {
        &self.map
    }

    /// The shard owning `cell` (timelines, rosters, allocations).
    pub fn shard(&self, cell: usize) -> &CellShard {
        &self.shards[cell]
    }

    /// Live sessions across the building.
    pub fn sessions(&self) -> u64 {
        self.locations.len() as u64
    }

    /// Building throughput under the current plans, bit/s.
    pub fn system_bps(&self) -> f64 {
        self.sum_bps
    }

    /// Control ticks run so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The cell a session currently lives in.
    pub fn locate(&self, session: SessionId) -> Option<usize> {
        self.locations.get(&session).copied()
    }

    fn mark_dirty(&mut self, cell: usize) {
        if !self.shards[cell].dirty {
            self.shards[cell].dirty = true;
            self.dirty.push(cell);
        }
    }

    /// Applies one session event. Commands for unknown sessions
    /// (`Move`/`Leave` before `Arrive`) are ignored; duplicate arrivals
    /// panic in debug builds and are ignored in release.
    pub fn apply(&mut self, cmd: &Command) {
        self.pend_events += 1;
        match *cmd {
            Command::Arrive { session, x, y } => {
                debug_assert!(
                    !self.locations.contains_key(&session),
                    "duplicate arrival for session {session}"
                );
                if self.locations.contains_key(&session) {
                    return;
                }
                let (x, y) = self.map.clamp(x, y);
                let cell = self.map.cell_of(x, y);
                let (lx, ly) = self.map.to_local(cell, x, y);
                self.shards[cell].arrive(session, Pose::face_up(lx, ly, self.rx_height));
                self.locations.insert(session, cell);
                self.mark_dirty(cell);
                self.pend_arrivals += 1;
            }
            Command::Move { session, x, y } => {
                let Some(&src) = self.locations.get(&session) else {
                    return;
                };
                let (x, y) = self.map.clamp(x, y);
                let dst = self.map.cell_of(x, y);
                let (lx, ly) = self.map.to_local(dst, x, y);
                let pose = Pose::face_up(lx, ly, self.rx_height);
                if dst == src {
                    self.shards[src].move_to(session, pose);
                    self.mark_dirty(src);
                } else {
                    // Beamspot handover: carry the allocation column so the
                    // destination's solver can warm-start from it.
                    let carried = self.shards[src].depart(session);
                    self.shards[dst].import(session, pose, carried);
                    self.locations.insert(session, dst);
                    self.mark_dirty(src);
                    self.mark_dirty(dst);
                    self.pend_handovers += 1;
                }
                self.pend_moves += 1;
            }
            Command::Leave { session } => {
                let Some(cell) = self.locations.remove(&session) else {
                    return;
                };
                self.shards[cell].depart(session);
                self.mark_dirty(cell);
                self.pend_departures += 1;
            }
        }
    }

    /// Replans every dirty shard in one batch over `pool` and returns the
    /// tick report. A tick with no dirty shards does O(1) bookkeeping and
    /// allocates nothing.
    pub fn control_tick(&mut self, pool: &Pool, parent: &Span) -> TickReport {
        let t0 = self.telemetry.now_s();
        let tick = self.tick;
        self.tick += 1;

        let mut report = TickReport {
            tick,
            events: self.pend_events,
            arrivals: self.pend_arrivals,
            departures: self.pend_departures,
            moves: self.pend_moves,
            handovers: self.pend_handovers,
            dirty_shards: self.dirty.len() as u64,
            ..TickReport::default()
        };
        self.pend_events = 0;
        self.pend_arrivals = 0;
        self.pend_departures = 0;
        self.pend_moves = 0;
        self.pend_handovers = 0;

        if !self.dirty.is_empty() {
            // Ascending cell order fixes the span indexing and the
            // throughput fold, independent of which worker runs what.
            self.dirty.sort_unstable();
            let span = parent.child("cell.tick");
            if span.is_enabled() {
                span.attr("tick", &tick.to_string());
                span.attr("dirty", &self.dirty.len().to_string());
            }
            let telemetry = &self.telemetry;
            let outcomes = if pool.jobs().is_serial() || self.dirty.len() == 1 {
                // Thread-free path: replan in place, in order.
                let mut out = Vec::with_capacity(self.dirty.len());
                for (i, &cell) in self.dirty.iter().enumerate() {
                    let child = span.child_indexed("cell.replan", i);
                    out.push(self.shards[cell].replan(tick, telemetry, &child));
                }
                out
            } else {
                // Fan the disjoint dirty shards out over the pool. Each
                // index owns exactly one shard, so every lock is
                // uncontended; the Mutex exists only to hand a `&mut`
                // across the scoped workers without unsafe code.
                let mut slots: Vec<Mutex<&mut CellShard>> = Vec::with_capacity(self.dirty.len());
                {
                    let mut rest: &mut [CellShard] = &mut self.shards;
                    let mut taken = 0usize;
                    for &cell in &self.dirty {
                        let (_, tail) = rest.split_at_mut(cell - taken);
                        let (shard, tail) = tail.split_first_mut().expect("dirty cell in range");
                        slots.push(Mutex::new(shard));
                        rest = tail;
                        taken = cell + 1;
                    }
                }
                pool.map_indexed(slots.len(), |i| {
                    let child = span.child_indexed("cell.replan", i);
                    let mut shard = slots[i].lock().expect("shard slot poisoned");
                    shard.replan(tick, telemetry, &child)
                })
            };
            for outcome in &outcomes {
                self.sum_bps += outcome.new_bps - outcome.old_bps;
                if outcome.replanned {
                    report.replans += 1;
                } else {
                    report.plan_hits += 1;
                }
            }
            self.dirty.clear();
        }

        report.sessions = self.locations.len() as u64;
        report.system_bps = self.sum_bps;

        let m = &self.metrics;
        m.ticks.inc();
        m.events.add(report.events);
        m.arrivals.add(report.arrivals);
        m.departures.add(report.departures);
        m.moves.add(report.moves);
        m.handovers.add(report.handovers);
        m.dirty_shards.add(report.dirty_shards);
        m.replans.add(report.replans);
        m.plan_hits.add(report.plan_hits);
        m.sessions.set(report.sessions as f64);
        m.system_bps.set(report.system_bps);
        m.tick_s.record(self.telemetry.now_s() - t0);
        report
    }
}
