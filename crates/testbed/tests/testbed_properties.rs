//! Property tests for the emulated testbed hardware.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vlc_geom::{Room, Vec3};
use vlc_testbed::{random_instances, AcroPositioner, BbbHostMap, Scenario};

proptest! {
    /// The gantry never leaves its workspace and never overshoots the
    /// distance budget `speed × dt`.
    #[test]
    fn acro_respects_speed_and_workspace(
        sx in 0.0f64..3.0, sy in 0.0f64..3.0,
        tx in -1.0f64..4.0, ty in -1.0f64..4.0,
        speed in 0.01f64..2.0, dt in 0.0f64..10.0,
    ) {
        let room = Room::paper_testbed();
        let mut g = AcroPositioner::new(Vec3::new(sx, sy, 0.0), speed, room);
        let start = g.position;
        g.queue(Vec3::new(tx, ty, 0.0));
        let end = g.advance(dt);
        prop_assert!(room.contains(Vec3::new(end.x, end.y, 0.0)));
        prop_assert!(start.distance(end) <= speed * dt + 1e-9);
    }

    /// Every TX maps to exactly one BBB host, and hosts partition the grid
    /// into equal 2×2 blocks, for any even grid size.
    #[test]
    fn host_map_partitions_any_even_grid(cols in 1usize..6, rows in 1usize..6) {
        let (cols, rows) = (cols * 2, rows * 2);
        let map = BbbHostMap::new(cols, rows);
        let mut counts = vec![0usize; map.n_hosts()];
        for tx in 0..cols * rows {
            counts[map.host_of(tx)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == 4));
    }

    /// Random instances always stay inside the room and near their anchors.
    #[test]
    fn instances_stay_in_bounds(seed in any::<u64>(), radius in 0.05f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let room = Room::paper_simulation();
        for inst in random_instances(5, radius, &mut rng) {
            for (x, y) in inst {
                prop_assert!(room.contains(Vec3::new(x, y, 0.0)));
            }
        }
    }
}

#[test]
fn scenarios_build_valid_deployments() {
    use vlc_testbed::Deployment;
    for s in [Scenario::One, Scenario::Two, Scenario::Three] {
        let d = Deployment::scenario(s);
        assert_eq!(d.grid.len(), 36);
        assert_eq!(d.receivers.len(), 4);
        // Every receiver has at least one usable channel.
        for rx in 0..4 {
            assert!(d.model.channel.gain(d.model.channel.best_tx_for(rx), rx) > 0.0);
        }
    }
}
