//! OpenBuilds ACRO positioner emulation (paper §8: "The 4 RXs are placed on
//! the floor, controlled by 4 OpenBuilds ACRO System and can be moved to any
//! position within the 3 m × 3 m area").
//!
//! An ACRO is a 2-axis gantry: it moves a receiver through waypoints at a
//! commanded feed rate. The emulation advances the position with time,
//! which the mobility experiments use to study re-adaptation under receiver
//! movement (the paper's "fast adaptation" design goal).

use serde::{Deserialize, Serialize};
use vlc_geom::{Room, Vec3};

/// A 2-axis positioner carrying one receiver at a fixed height.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcroPositioner {
    /// Current position (z = carried receiver height).
    pub position: Vec3,
    /// Remaining waypoints, in visit order.
    pub waypoints: Vec<Vec3>,
    /// Feed rate in m/s.
    pub speed_mps: f64,
    /// The workspace the gantry clamps motion to.
    pub workspace: Room,
}

impl AcroPositioner {
    /// Creates a positioner at a start position.
    pub fn new(start: Vec3, speed_mps: f64, workspace: Room) -> Self {
        assert!(speed_mps > 0.0, "feed rate must be positive");
        let position = workspace.clamp_xy(start);
        AcroPositioner {
            position,
            waypoints: Vec::new(),
            speed_mps,
            workspace,
        }
    }

    /// Queues a waypoint (clamped into the workspace, height preserved).
    pub fn queue(&mut self, target: Vec3) {
        let t = self
            .workspace
            .clamp_xy(Vec3::new(target.x, target.y, self.position.z));
        self.waypoints.push(t);
    }

    /// Advances the gantry by `dt` seconds, consuming waypoints as they are
    /// reached. Returns the new position.
    pub fn advance(&mut self, dt: f64) -> Vec3 {
        assert!(dt >= 0.0, "time cannot run backwards");
        let mut remaining = self.speed_mps * dt;
        while remaining > 0.0 {
            let Some(&target) = self.waypoints.first() else {
                break;
            };
            let to_target = target - self.position;
            let dist = to_target.norm();
            if dist <= remaining {
                self.position = target;
                self.waypoints.remove(0);
                remaining -= dist;
            } else {
                self.position += to_target * (remaining / dist);
                remaining = 0.0;
            }
        }
        self.position
    }

    /// True when all waypoints have been visited.
    pub fn idle(&self) -> bool {
        self.waypoints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gantry() -> AcroPositioner {
        AcroPositioner::new(Vec3::new(0.5, 0.5, 0.0), 0.1, Room::paper_testbed())
    }

    #[test]
    fn advances_toward_waypoint_at_feed_rate() {
        let mut g = gantry();
        g.queue(Vec3::new(2.5, 0.5, 0.0));
        let p = g.advance(1.0); // 0.1 m/s × 1 s
        assert!((p.x - 0.6).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reaches_and_consumes_waypoints() {
        let mut g = gantry();
        g.queue(Vec3::new(0.7, 0.5, 0.0));
        g.queue(Vec3::new(0.7, 0.7, 0.0));
        // 0.2 m to first + 0.2 m to second = 4 s at 0.1 m/s.
        let p = g.advance(4.0);
        assert!(g.idle());
        assert!((p - Vec3::new(0.7, 0.7, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn partial_progress_spans_waypoints() {
        let mut g = gantry();
        g.queue(Vec3::new(0.7, 0.5, 0.0));
        g.queue(Vec3::new(0.7, 1.5, 0.0));
        let p = g.advance(3.0); // 0.3 m: 0.2 to wp1 + 0.1 along second leg
        assert!((p - Vec3::new(0.7, 0.6, 0.0)).norm() < 1e-9);
        assert_eq!(g.waypoints.len(), 1);
    }

    #[test]
    fn waypoints_are_clamped_to_workspace() {
        let mut g = gantry();
        g.queue(Vec3::new(99.0, -5.0, 0.0));
        g.advance(1e6);
        assert!((g.position.x - 3.0).abs() < 1e-9);
        assert!(g.position.y.abs() < 1e-9);
    }

    #[test]
    fn idle_gantry_stays_put() {
        let mut g = gantry();
        let before = g.position;
        assert_eq!(g.advance(10.0), before);
    }

    #[test]
    fn height_is_preserved_through_motion() {
        let mut g = AcroPositioner::new(Vec3::new(1.0, 1.0, 0.3), 1.0, Room::paper_testbed());
        g.queue(Vec3::new(2.0, 2.0, 0.9)); // z of target is ignored
        g.advance(100.0);
        assert!((g.position.z - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_dt_panics() {
        gantry().advance(-1.0);
    }
}
