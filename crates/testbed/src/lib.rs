//! Emulated testbed for the DenseVLC reproduction.
//!
//! The paper evaluates on real hardware: 36 TX front-ends hosted by nine
//! BeagleBone Blacks (four TX PHYs per BBB), four RX front-ends on BBB
//! Wireless boards, OpenBuilds ACRO positioners to move the receivers, an
//! HS1010 lux meter, and a RIGOL oscilloscope. None of that exists here, so
//! this crate provides software stand-ins with the same observable
//! behaviour (the substitution table lives in `DESIGN.md`):
//!
//! * [`devices`] — TX-to-BBB host mapping (TXs on the same BBB share a
//!   clock and need no over-the-air synchronization — the fact Table 5's
//!   first row exploits).
//! * [`scope`] — oscilloscope emulation: renders two TXs' drive waveforms
//!   at scope rate and measures their median symbol-edge delay.
//! * [`acro`] — ACRO positioner emulation: waypoint motion for receivers.
//! * [`luxmeter`] — HS1010 emulation: quantized illuminance readings.
//! * [`scenario`] — the evaluation geometries: Table 6's three scenarios,
//!   the Fig. 6 random-instance generator, and the Fig. 7 instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acro;
pub mod devices;
pub mod luxmeter;
pub mod scenario;
pub mod scope;

pub use acro::AcroPositioner;
pub use devices::BbbHostMap;
pub use luxmeter::LuxMeter;
pub use scenario::{random_instances, Deployment, Scenario};
pub use scope::Scope;
