//! Evaluation geometries: Table 6's scenarios, the Fig. 6 random instances,
//! and the Fig. 7 instance.
//!
//! The paper evaluates the heuristic in three representative scenarios
//! (§8.2) whose receiver positions are listed in Table 6, simulates the
//! optimal policy over 100 random receiver placements around four anchor
//! TXs (Fig. 6), and illustrates swing levels on one specific instance
//! (Fig. 7, identical to Scenario 2's positions).

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlc_alloc::model::SystemModel;
use vlc_channel::{ChannelMatrix, NoiseParams, RxOptics};
use vlc_geom::{Pose, Room, TxGrid, Vec3};

/// The three §8.2 evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Interference-free; no dominating TX (2 m inter-RX distance).
    One,
    /// With interference; no dominating TX (the Fig. 7 positions).
    Two,
    /// With interference; each RX exactly under a TX (1 m spacing).
    Three,
}

impl Scenario {
    /// The Table 6 receiver XY positions for this scenario.
    pub fn rx_positions(&self) -> [(f64, f64); 4] {
        match self {
            Scenario::One => [(0.50, 0.50), (2.50, 0.50), (0.50, 2.50), (2.50, 2.50)],
            Scenario::Two => [(0.92, 0.92), (1.65, 0.65), (0.72, 1.93), (1.99, 1.69)],
            Scenario::Three => [(0.75, 0.75), (1.75, 0.75), (0.75, 1.75), (1.75, 1.75)],
        }
    }

    /// Human-readable label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::One => "Scenario 1: interference-free, no dominating TX",
            Scenario::Two => "Scenario 2: interference, no dominating TX",
            Scenario::Three => "Scenario 3: interference, dominating TX",
        }
    }
}

/// A complete deployment: room, grid, receivers, and the system model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The room.
    pub room: Room,
    /// The ceiling grid.
    pub grid: TxGrid,
    /// Receiver poses.
    pub receivers: Vec<Pose>,
    /// The assembled system model (channel + devices + noise).
    pub model: SystemModel,
    /// Receiver optics used to build the channel.
    pub optics: RxOptics,
    /// LED half-power semi-angle in radians.
    pub half_power_semi_angle: f64,
}

impl Deployment {
    /// The §4 simulation setup: 2.8 m ceiling, receivers on a 0.8 m table.
    pub fn simulation(rx_xy: &[(f64, f64)]) -> Self {
        Deployment::build(Room::paper_simulation(), rx_xy, 0.8, NoiseParams::paper())
    }

    /// The §8 testbed: 2 m ceiling, receivers on the floor. The testbed's
    /// receivers operate above the Table-1 simulation SNR (their SINRs come
    /// from M2M4 measurements on the real front-end, not from the nominal
    /// N0); we calibrate the testbed noise density to 0.4 × N0, which
    /// reproduces the paper's Fig. 21 constellation — D-MISO matched at
    /// ≈ 1.15 W (paper: 1.19 W) for a ≈ 2.3× power-efficiency gain (see
    /// `EXPERIMENTS.md`).
    pub fn testbed(rx_xy: &[(f64, f64)]) -> Self {
        let noise = NoiseParams {
            n0_a2_per_hz: 0.4 * 7.02e-23,
            bandwidth_hz: 1e6,
        };
        Deployment::build(Room::paper_testbed(), rx_xy, 0.0, noise)
    }

    /// A Table 6 scenario on the testbed geometry.
    pub fn scenario(s: Scenario) -> Self {
        Deployment::testbed(&s.rx_positions())
    }

    fn build(room: Room, rx_xy: &[(f64, f64)], rx_height: f64, noise: NoiseParams) -> Self {
        assert!(!rx_xy.is_empty(), "deployment needs at least one receiver");
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        let half_power_semi_angle = 15f64.to_radians();
        let receivers: Vec<Pose> = rx_xy
            .iter()
            .map(|&(x, y)| Pose::face_up(x, y, rx_height))
            .collect();
        let channel = ChannelMatrix::compute(&grid, &receivers, half_power_semi_angle, &optics);
        let mut model = SystemModel::paper(channel);
        model.noise = noise;
        Deployment {
            room,
            grid,
            receivers,
            model,
            optics,
            half_power_semi_angle,
        }
    }

    /// Recomputes the channel after receivers moved (mobility studies).
    pub fn update_receivers(&mut self, receivers: Vec<Pose>) {
        assert_eq!(
            receivers.len(),
            self.receivers.len(),
            "receiver count is fixed"
        );
        self.receivers = receivers;
        self.model.channel = ChannelMatrix::compute(
            &self.grid,
            &self.receivers,
            self.half_power_semi_angle,
            &self.optics,
        );
    }

    /// Receiver XY positions as vectors (for geometric baselines).
    pub fn rx_positions(&self) -> Vec<Vec3> {
        self.receivers.iter().map(|p| p.position).collect()
    }
}

/// The Fig. 6 anchor TXs (zero-based): the paper scatters 100 random RX
/// placements around the TXs nearest the Fig. 7 receiver positions — TX8,
/// TX10, TX20 and TX22 — which is what makes TX10 "the best channel to RX2"
/// in the Fig. 10 analysis.
pub const INSTANCE_ANCHORS: [usize; 4] = [7, 9, 19, 21];

/// Generates `n` random instances of four receiver positions, each drawn
/// uniformly within `radius` (in XY) of its anchor TX, reproducing Fig. 6.
pub fn random_instances<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Vec<[(f64, f64); 4]> {
    assert!(radius > 0.0, "radius must be positive");
    let room = Room::paper_simulation();
    let grid = TxGrid::paper(&room);
    (0..n)
        .map(|_| {
            let mut out = [(0.0, 0.0); 4];
            for (slot, &anchor) in out.iter_mut().zip(INSTANCE_ANCHORS.iter()) {
                let c = grid.pose(anchor).position;
                // Uniform in a disc via rejection sampling.
                let (dx, dy) = loop {
                    let dx = rng.gen_range(-radius..radius);
                    let dy = rng.gen_range(-radius..radius);
                    if dx * dx + dy * dy <= radius * radius {
                        break (dx, dy);
                    }
                };
                let p = room.clamp_xy(Vec3::new(c.x + dx, c.y + dy, 0.0));
                *slot = (p.x, p.y);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table6_positions_match_paper() {
        assert_eq!(Scenario::Two.rx_positions()[0], (0.92, 0.92));
        assert_eq!(Scenario::Three.rx_positions()[3], (1.75, 1.75));
        assert_eq!(Scenario::One.rx_positions()[1], (2.50, 0.50));
    }

    #[test]
    fn scenario_one_has_negligible_interference() {
        // 2 m inter-RX spacing with 15° beams: assigning any TX to one RX
        // leaks almost nothing to the others.
        let d = Deployment::scenario(Scenario::One);
        let ch = &d.model.channel;
        for rx in 0..4 {
            let own = ch.gain(ch.best_tx_for(rx), rx);
            for other in 0..4 {
                if other == rx {
                    continue;
                }
                let leak = ch.gain(ch.best_tx_for(rx), other);
                assert!(leak < own * 1e-2, "RX{} leaks into RX{}", rx + 1, other + 1);
            }
        }
    }

    #[test]
    fn scenario_three_rxs_sit_under_txs() {
        let d = Deployment::scenario(Scenario::Three);
        for rx in &d.receivers {
            let nearest = d.grid.nearest(rx.position);
            let dist = d
                .grid
                .pose(nearest)
                .position
                .horizontal_distance(rx.position);
            assert!(dist < 1e-9, "RX not under a TX (distance {dist})");
        }
    }

    #[test]
    fn simulation_and_testbed_geometries_differ() {
        let sim = Deployment::simulation(&Scenario::Two.rx_positions());
        let tb = Deployment::scenario(Scenario::Two);
        assert_eq!(sim.room.height, 2.8);
        assert_eq!(tb.room.height, 2.0);
        assert_eq!(sim.receivers[0].position.z, 0.8);
        assert_eq!(tb.receivers[0].position.z, 0.0);
    }

    #[test]
    fn random_instances_stay_near_anchors() {
        let mut rng = StdRng::seed_from_u64(41);
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let instances = random_instances(100, 0.4, &mut rng);
        assert_eq!(instances.len(), 100);
        for inst in &instances {
            for (k, &(x, y)) in inst.iter().enumerate() {
                let anchor = grid.pose(INSTANCE_ANCHORS[k]).position;
                let d = anchor.horizontal_distance(Vec3::new(x, y, 0.0));
                assert!(d <= 0.4 + 1e-9, "instance point {d} m from anchor");
            }
        }
    }

    #[test]
    fn random_instances_are_diverse() {
        let mut rng = StdRng::seed_from_u64(42);
        let instances = random_instances(50, 0.4, &mut rng);
        let first = instances[0];
        assert!(
            instances.iter().skip(1).any(|i| *i != first),
            "instances are identical"
        );
    }

    #[test]
    fn update_receivers_recomputes_channel() {
        let mut d = Deployment::scenario(Scenario::One);
        let before = d.model.channel.clone();
        let moved: Vec<Pose> = d
            .receivers
            .iter()
            .map(|p| Pose::face_up(p.position.x + 0.3, p.position.y, p.position.z))
            .collect();
        d.update_receivers(moved);
        assert_ne!(before, d.model.channel);
    }

    #[test]
    #[should_panic(expected = "receiver count")]
    fn update_with_wrong_count_panics() {
        let mut d = Deployment::scenario(Scenario::One);
        d.update_receivers(vec![Pose::face_up(1.0, 1.0, 0.0)]);
    }
}
