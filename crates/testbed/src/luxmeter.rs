//! HS1010 lux-meter emulation (paper §8: "The measurements were performed
//! with the HS1010 lux meter").
//!
//! A handheld lux meter reads the illuminance at a point with limited
//! resolution (1 lux on the HS1010's low range) and a few percent of
//! calibration error. The emulation wraps the photometry engine and applies
//! both, so testbed illuminance numbers carry realistic measurement
//! roughness, like the paper's 530 lux / 81 % testbed figures versus the
//! 564 lux / 74 % ideal simulation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlc_channel::lambertian::lambertian_order;
use vlc_channel::photometry::illuminance_from;
use vlc_geom::{Pose, Vec3};

/// A handheld lux meter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LuxMeter {
    /// Reading resolution in lux (display quantization).
    pub resolution_lux: f64,
    /// Relative calibration error (one-sigma).
    pub calibration_sigma: f64,
}

impl LuxMeter {
    /// The HS1010 profile: 1 lux resolution, ±3 % calibration class.
    pub fn hs1010() -> Self {
        LuxMeter {
            resolution_lux: 1.0,
            calibration_sigma: 0.03,
        }
    }

    /// Reads the illuminance at `point` (horizontal sensor) produced by the
    /// given luminaires. The calibration error is drawn once per reading.
    pub fn read<R: Rng + ?Sized>(
        &self,
        luminaires: &[Pose],
        flux_lm: f64,
        half_power_semi_angle: f64,
        point: Vec3,
        rng: &mut R,
    ) -> f64 {
        let m = lambertian_order(half_power_semi_angle);
        let truth: f64 = luminaires
            .iter()
            .map(|lum| illuminance_from(lum, flux_lm, m, point, Vec3::UP))
            .sum();
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let measured = truth * (1.0 + gauss * self.calibration_sigma);
        (measured / self.resolution_lux).round() * self.resolution_lux
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vlc_geom::{Room, TxGrid};

    #[test]
    fn readings_are_quantized() {
        let meter = LuxMeter::hs1010();
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let mut rng = StdRng::seed_from_u64(31);
        let v = meter.read(
            &grid.poses(),
            153.3,
            15f64.to_radians(),
            Vec3::new(1.5, 1.5, 0.8),
            &mut rng,
        );
        assert_eq!(v, v.round());
        assert!(v > 0.0);
    }

    #[test]
    fn readings_track_truth_within_calibration() {
        let meter = LuxMeter::hs1010();
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let mut rng = StdRng::seed_from_u64(32);
        let point = Vec3::new(1.5, 1.5, 0.8);
        let n = 500;
        let mean: f64 = (0..n)
            .map(|_| meter.read(&grid.poses(), 153.3, 15f64.to_radians(), point, &mut rng))
            .sum::<f64>()
            / n as f64;
        let m = lambertian_order(15f64.to_radians());
        let truth: f64 = grid
            .poses()
            .iter()
            .map(|lum| illuminance_from(lum, 153.3, m, point, Vec3::UP))
            .sum();
        assert!(
            (mean - truth).abs() / truth < 0.01,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn dark_point_reads_zero() {
        let meter = LuxMeter::hs1010();
        let mut rng = StdRng::seed_from_u64(33);
        let v = meter.read(&[], 153.3, 15f64.to_radians(), Vec3::ZERO, &mut rng);
        assert_eq!(v, 0.0);
    }
}
