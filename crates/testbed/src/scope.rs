//! Oscilloscope emulation (RIGOL MSO1104 stand-in).
//!
//! The paper's §8.1 synchronization measurement connects the LED anodes of
//! two TXs to a scope, captures both drive waveforms, and computes the
//! median delay between corresponding symbol edges per frame, averaged over
//! ten frames. The emulation renders the two chips streams at the scope's
//! sample rate (far above the TXs' 100 Ksym/s) with the TXs' start offsets
//! applied and reuses `vlc-sync`'s edge-delay estimator.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vlc_phy::manchester::Chip;
use vlc_phy::waveform::{render, WaveformConfig};
use vlc_sync::measure::average_median_delay;
use vlc_sync::SyncScheme;

/// A two-channel digital scope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scope {
    /// Scope sampling rate in Hz.
    pub sample_rate_hz: f64,
}

impl Scope {
    /// A scope profile comfortably oversampling the 100 Ksym/s chips.
    pub fn paper() -> Self {
        Scope {
            sample_rate_hz: 20e6,
        }
    }

    /// Runs the §8.1 measurement: both TXs transmit `chips` at
    /// `symbol_rate_hz`, each with a start offset drawn from `scheme`;
    /// `frames` frames are captured and the per-frame median edge delays
    /// averaged. Returns the measured delay in seconds, or `None` when a
    /// waveform never toggles.
    pub fn measure_sync_delay<R: Rng + ?Sized>(
        &self,
        chips: &[Chip],
        symbol_rate_hz: f64,
        scheme: &SyncScheme,
        frames: usize,
        rng: &mut R,
    ) -> Option<f64> {
        self.measure(chips, symbol_rate_hz, scheme, frames, false, rng)
    }

    /// The leader-vs-follower variant used for the NLOS-VLC row of Table 4:
    /// channel one probes the *leading* TX (which by definition starts on
    /// time) and channel two a follower whose start error comes from the
    /// scheme.
    pub fn measure_leader_follower_delay<R: Rng + ?Sized>(
        &self,
        chips: &[Chip],
        symbol_rate_hz: f64,
        scheme: &SyncScheme,
        frames: usize,
        rng: &mut R,
    ) -> Option<f64> {
        self.measure(chips, symbol_rate_hz, scheme, frames, true, rng)
    }

    fn measure<R: Rng + ?Sized>(
        &self,
        chips: &[Chip],
        symbol_rate_hz: f64,
        scheme: &SyncScheme,
        frames: usize,
        leader_follower: bool,
        rng: &mut R,
    ) -> Option<f64> {
        assert!(frames > 0, "need at least one frame");
        assert!(!chips.is_empty(), "need a non-empty chip stream");
        let cfg = WaveformConfig {
            symbol_rate_hz,
            sample_rate_hz: self.sample_rate_hz,
        };
        let samples_per_chip = self.sample_rate_hz / symbol_rate_hz;
        // Room for the worst-case offset (a symbol period) plus the frame.
        let n = ((chips.len() as f64 + 4.0) * samples_per_chip).ceil() as usize;
        let captures: Vec<(Vec<f64>, Vec<f64>)> = (0..frames)
            .map(|_| {
                let d1 = if leader_follower {
                    0.0
                } else {
                    scheme.sample_start_offset(symbol_rate_hz, rng)
                };
                let d2 = scheme.sample_start_offset(symbol_rate_hz, rng);
                (
                    render(chips, &cfg, 1.0, d1, n),
                    render(chips, &cfg, 1.0, d2, n),
                )
            })
            .collect();
        average_median_delay(&captures, self.sample_rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vlc_phy::manchester::manchester_encode;

    fn chips() -> Vec<Chip> {
        manchester_encode(&[0xA5, 0x5A, 0xC3, 0x3C, 0x0F, 0xF0, 0x99, 0x66])
    }

    #[test]
    fn nlos_measurement_reproduces_table4() {
        // The paper measures 0.575 µs for NLOS sync at 100 Ksym/s. Averaged
        // over enough frames the scope should land near it. (Edge pairing
        // uses the *nearest* edge, and the estimator averages medians, so
        // compare loosely.)
        let scope = Scope::paper();
        let mut rng = StdRng::seed_from_u64(0x5C07E);
        let d = scope
            .measure_sync_delay(&chips(), 100e3, &SyncScheme::nlos_paper(), 60, &mut rng)
            .expect("edges exist");
        assert!((d - 0.575e-6).abs() < 0.25e-6, "measured {d}");
    }

    #[test]
    fn sync_off_is_an_order_of_magnitude_worse() {
        let scope = Scope::paper();
        let mut rng = StdRng::seed_from_u64(77);
        let nlos = scope
            .measure_sync_delay(&chips(), 100e3, &SyncScheme::nlos_paper(), 40, &mut rng)
            .expect("edges");
        let off = scope
            .measure_sync_delay(&chips(), 100e3, &SyncScheme::SyncOff, 40, &mut rng)
            .expect("edges");
        assert!(off > 5.0 * nlos, "off {off} vs nlos {nlos}");
    }

    #[test]
    fn measurement_is_deterministic_under_a_seed() {
        let scope = Scope::paper();
        let d1 = scope
            .measure_sync_delay(
                &chips(),
                100e3,
                &SyncScheme::NtpPtp,
                10,
                &mut StdRng::seed_from_u64(5),
            )
            .expect("edges");
        let d2 = scope
            .measure_sync_delay(
                &chips(),
                100e3,
                &SyncScheme::NtpPtp,
                10,
                &mut StdRng::seed_from_u64(5),
            )
            .expect("edges");
        assert_eq!(d1, d2);
    }

    #[test]
    fn leader_follower_matches_follower_error_median() {
        // The leader starts exactly on time, so the measured delay is the
        // follower's own start error — 0.575 µs median for NLOS VLC.
        let scope = Scope::paper();
        let mut rng = StdRng::seed_from_u64(88);
        let d = scope
            .measure_leader_follower_delay(&chips(), 100e3, &SyncScheme::nlos_paper(), 80, &mut rng)
            .expect("edges exist");
        assert!((d - 0.575e-6).abs() < 0.2e-6, "measured {d}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_chips_panic() {
        let scope = Scope::paper();
        let mut rng = StdRng::seed_from_u64(1);
        scope.measure_sync_delay(&[], 100e3, &SyncScheme::SyncOff, 1, &mut rng);
    }
}
