//! TX-to-host mapping: which BeagleBone drives which transmitters.
//!
//! The testbed drives four TX PHYs per BeagleBone Black (paper §7.1: "The
//! VLC PHY of four TXs is managed by 1 BBB, so 9 BBBs are used in total").
//! TXs sharing a BBB share its clock: they are inherently synchronized with
//! each other, while TXs on different BBBs are not — the distinction behind
//! the three rows of Table 5. The grid is partitioned into 2 × 2 blocks,
//! which puts TX2/TX8 on one BBB and TX3/TX9 on another, exactly as in the
//! paper's §8.1 experiment.

use serde::{Deserialize, Serialize};

/// Maps grid TXs to their hosting embedded computer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbbHostMap {
    cols: usize,
    rows: usize,
}

impl BbbHostMap {
    /// The paper's 6 × 6 deployment: nine BBBs, each hosting a 2 × 2 block.
    pub fn paper() -> Self {
        BbbHostMap { cols: 6, rows: 6 }
    }

    /// A map for an arbitrary grid (must have even dimensions so 2 × 2
    /// blocks tile it).
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(
            cols.is_multiple_of(2) && rows.is_multiple_of(2) && cols > 0 && rows > 0,
            "grid {cols}×{rows} cannot be tiled by 2×2 BBB blocks"
        );
        BbbHostMap { cols, rows }
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        (self.cols / 2) * (self.rows / 2)
    }

    /// The host index of a TX (zero-based grid index, row-major).
    ///
    /// # Panics
    /// Panics on an out-of-range TX index.
    pub fn host_of(&self, tx: usize) -> usize {
        assert!(tx < self.cols * self.rows, "TX {tx} out of range");
        let row = tx / self.cols;
        let col = tx % self.cols;
        (row / 2) * (self.cols / 2) + col / 2
    }

    /// All TXs hosted by one BBB.
    pub fn txs_of(&self, host: usize) -> Vec<usize> {
        assert!(host < self.n_hosts(), "host {host} out of range");
        (0..self.cols * self.rows)
            .filter(|&t| self.host_of(t) == host)
            .collect()
    }

    /// True when two TXs share a clock (same BBB).
    pub fn same_host(&self, a: usize, b: usize) -> bool {
        self.host_of(a) == self.host_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_map_has_nine_hosts_of_four() {
        let m = BbbHostMap::paper();
        assert_eq!(m.n_hosts(), 9);
        for host in 0..9 {
            assert_eq!(m.txs_of(host).len(), 4, "host {host}");
        }
    }

    #[test]
    fn tx2_tx8_share_a_host_but_tx3_tx9_live_elsewhere() {
        // Paper §8.1: TX2 and TX8 are managed by the same BBB; TX3 and TX9
        // by another. (Zero-based: 1 & 7 vs 2 & 8.)
        let m = BbbHostMap::paper();
        assert!(m.same_host(1, 7));
        assert!(m.same_host(2, 8));
        assert!(!m.same_host(1, 2));
        assert!(!m.same_host(7, 8));
    }

    #[test]
    fn blocks_are_2x2_neighbors() {
        let m = BbbHostMap::paper();
        let block = m.txs_of(0);
        // Top-left block: TX1, TX2, TX7, TX8 (zero-based 0, 1, 6, 7).
        assert_eq!(block, vec![0, 1, 6, 7]);
    }

    #[test]
    fn every_tx_has_exactly_one_host() {
        let m = BbbHostMap::paper();
        let mut count = vec![0usize; m.n_hosts()];
        for tx in 0..36 {
            count[m.host_of(tx)] += 1;
        }
        assert!(count.iter().all(|&c| c == 4));
    }

    #[test]
    #[should_panic(expected = "cannot be tiled")]
    fn odd_grid_panics() {
        BbbHostMap::new(5, 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tx_panics() {
        BbbHostMap::paper().host_of(36);
    }
}
