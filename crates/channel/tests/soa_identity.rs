//! Property tests for the SoA / lane-kernel identity contract: every fused
//! fast path introduced by the SoA refactor must be *bitwise* equal to its
//! retained scalar reference, for any poses, optics, blockers, and worker
//! count, and the FOV mask must be conservative (it never culls a link
//! whose scalar LOS gain is nonzero). These ride in `cargo test
//! --workspace` and in the CI `soa` job at `DENSEVLC_JOBS` ∈ {1, max}.

use proptest::prelude::*;
use vlc_channel::fov::cone_live;
use vlc_channel::nlos::{
    floor_bounce_gain_par, floor_bounce_gain_scalar, wall_bounce_gain_par, wall_bounce_gain_scalar,
    NlosConfig,
};
use vlc_channel::{
    lambertian_order, los_gain, los_gain_profiled, ChannelMatrix, CylinderBlocker, FovMask,
    RxOptics, SparseChannelView,
};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_par::{Jobs, Pool};
use vlc_trace::Span;

const HPSA: f64 = 0.2617993877991494; // 15° in radians

/// Coarse patches keep the per-case quadrature cheap; the identity must
/// hold for any grid (0.07 m leaves a non-multiple-of-4 patch count, so the
/// scalar tail of the lane kernel is exercised too).
fn coarse() -> NlosConfig {
    NlosConfig { patch_size_m: 0.07 }
}

fn arb_tx_pose() -> impl Strategy<Value = Pose> {
    // Ceiling emitters, some tilted off vertical.
    (
        0.0f64..3.0,
        0.0f64..3.0,
        2.0f64..3.0,
        0.0f64..0.6,
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(|(x, y, z, tilt, az)| {
            let p = Pose::tilted(x, y, z, tilt, az);
            Pose::new(p.position, -p.boresight)
        })
}

fn arb_rx_pose() -> impl Strategy<Value = Pose> {
    // Anywhere in the room interior, desk to head height, possibly tilted.
    (
        0.0f64..3.0,
        0.0f64..3.0,
        0.3f64..1.8,
        0.0f64..0.5,
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(|(x, y, z, tilt, az)| Pose::tilted(x, y, z, tilt, az))
}

fn arb_optics() -> impl Strategy<Value = RxOptics> {
    // FOV half-angles from narrow (heavy culling) to the paper's wide open.
    (10.0f64..90.0).prop_map(|fov_deg| RxOptics {
        fov_half_angle: fov_deg.to_radians(),
        ..RxOptics::paper()
    })
}

fn arb_blockers() -> impl Strategy<Value = Vec<CylinderBlocker>> {
    proptest::collection::vec(
        (0.0f64..3.0, 0.0f64..3.0).prop_map(|(x, y)| CylinderBlocker::person(x, y)),
        0..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused profiled LOS kernel is bitwise identical to the historical
    /// per-call scalar reference for arbitrary pose pairs and optics.
    #[test]
    fn profiled_los_gain_matches_reference(
        tx in arb_tx_pose(),
        rx in arb_rx_pose(),
        optics in arb_optics(),
    ) {
        let m = lambertian_order(HPSA);
        let reference = los_gain(&tx, &rx, m, &optics);
        let fused = los_gain_profiled(&tx, &rx, m, &optics.profile());
        prop_assert_eq!(fused.to_bits(), reference.to_bits());
    }

    /// The FOV mask is conservative: any link with a nonzero scalar LOS
    /// gain is live, and the cheap cone test agrees with the mask bits.
    #[test]
    fn fov_mask_is_conservative(
        txs in proptest::collection::vec(arb_tx_pose(), 1..6),
        rxs in proptest::collection::vec(arb_rx_pose(), 1..4),
        optics in arb_optics(),
    ) {
        let m = lambertian_order(HPSA);
        let profile = optics.profile();
        let mask = FovMask::compute_poses(&txs, &rxs, &profile);
        let mut live = 0;
        for (r, rx) in rxs.iter().enumerate() {
            for (t, tx) in txs.iter().enumerate() {
                let g = los_gain(tx, rx, m, &optics);
                if g != 0.0 {
                    prop_assert!(mask.is_live(t, r), "culled nonzero link tx={} rx={}", t, r);
                }
                prop_assert_eq!(mask.is_live(t, r), cone_live(tx, rx, &profile));
                if mask.is_live(t, r) {
                    live += 1;
                }
            }
        }
        prop_assert_eq!(mask.live_count(), live);
        prop_assert_eq!(mask.culled_count(), txs.len() * rxs.len() - live);
    }

    /// The lane-batched masked matrix sweep equals (a) a per-link scalar
    /// assembly and (b) the unmasked sweep, bitwise, for any worker count.
    #[test]
    fn masked_lane_compute_matches_scalar_assembly(
        rxs in proptest::collection::vec(arb_rx_pose(), 1..4),
        optics in arb_optics(),
        blockers in arb_blockers(),
    ) {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let m = lambertian_order(HPSA);
        let mask = FovMask::compute(&grid, &rxs, &optics.profile());
        for jobs in [Jobs::serial(), Jobs::max()] {
            let pool = Pool::new(jobs);
            let masked = ChannelMatrix::compute_masked_pooled(
                &grid, &rxs, HPSA, &optics, &blockers, Some(&mask), &pool, &Span::noop(),
            );
            let unmasked = ChannelMatrix::compute_with_blockage_pooled(
                &grid, &rxs, HPSA, &optics, &blockers, &pool, &Span::noop(),
            );
            for t in 0..grid.len() {
                let tx = grid.pose(t);
                for (r, rx) in rxs.iter().enumerate() {
                    let scalar = if vlc_channel::blockage::any_blocks(
                        &blockers, tx.position, rx.position,
                    ) {
                        0.0
                    } else {
                        los_gain(&tx, rx, m, &optics)
                    };
                    prop_assert_eq!(masked.gain(t, r).to_bits(), scalar.to_bits());
                    prop_assert_eq!(unmasked.gain(t, r).to_bits(), scalar.to_bits());
                }
            }
            // The sparse view built through the mask carries exactly the
            // zero-pattern live set (conservativeness again, CSR-side).
            prop_assert_eq!(
                SparseChannelView::from_mask(&masked, &mask),
                SparseChannelView::from_matrix(&masked)
            );
        }
    }

    /// The lane-batched NLOS quadratures (floor and wall) are bitwise
    /// identical to the retained scalar references for any worker count.
    #[test]
    fn nlos_lane_kernels_match_scalar_references(
        tx in arb_tx_pose(),
        rx in arb_rx_pose(),
        optics in arb_optics(),
    ) {
        let room = Room::paper_testbed();
        let m = lambertian_order(HPSA);
        let cfg = coarse();
        let floor_ref = floor_bounce_gain_scalar(&tx, &rx, m, &optics, &room, &cfg);
        let wall_ref = wall_bounce_gain_scalar(&tx, &rx, m, &optics, &room, &cfg);
        for jobs in [Jobs::serial(), Jobs::max()] {
            let floor = floor_bounce_gain_par(&tx, &rx, m, &optics, &room, &cfg, jobs);
            let wall = wall_bounce_gain_par(&tx, &rx, m, &optics, &room, &cfg, jobs);
            prop_assert_eq!(floor.to_bits(), floor_ref.to_bits());
            prop_assert_eq!(wall.to_bits(), wall_ref.to_bits());
        }
    }
}
