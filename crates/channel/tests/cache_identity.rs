//! Property tests for the incremental channel engine's identity contract:
//! the cached/incremental paths must be *bitwise* equal to the cold paths
//! (paper-faithful per-pair quadrature), for any receiver poses, any ε, any
//! blocker set, and any worker count. These ride in `cargo test --workspace`
//! and therefore in both halves of `cargo tier2`.

use proptest::prelude::*;
use vlc_channel::nlos::{floor_bounce_gain_par, wall_bounce_gain_par, NlosConfig};
use vlc_channel::{
    lambertian_order, ChannelMatrix, ChannelUpdater, CylinderBlocker, NlosTxCache, RxOptics,
};
use vlc_geom::{Pose, Room, TxGrid};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

const HPSA: f64 = 0.2617993877991494; // 15° in radians

/// Coarser patches than the 5 cm default keep the per-case quadrature cheap
/// without weakening the identity being tested (it must hold for any grid).
fn coarse() -> NlosConfig {
    NlosConfig { patch_size_m: 0.2 }
}

fn arb_rx_pose() -> impl Strategy<Value = Pose> {
    // Anywhere in the testbed room's interior, desk to head height.
    (0.0f64..3.0, 0.0f64..3.0, 0.3f64..1.8).prop_map(|(x, y, z)| Pose::face_up(x, y, z))
}

fn arb_blockers() -> impl Strategy<Value = Vec<CylinderBlocker>> {
    proptest::collection::vec(
        (0.0f64..3.0, 0.0f64..3.0).prop_map(|(x, y)| CylinderBlocker::person(x, y)),
        0..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A leader-side NLOS cache reproduces the direct floor-bounce
    /// quadrature bit for bit, for any receiver pose and worker count.
    #[test]
    fn cached_floor_gain_matches_direct_bitwise(rx in arb_rx_pose(), tx_idx in 0usize..36) {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        let m = lambertian_order(HPSA);
        let tx = grid.pose(tx_idx);
        let cache = NlosTxCache::new(&tx, m, &room, &coarse());
        for jobs in [Jobs::serial(), Jobs::max()] {
            let direct = floor_bounce_gain_par(&tx, &rx, m, &optics, &room, &coarse(), jobs);
            let cached = cache.floor_gain_par(&rx, &optics, jobs);
            prop_assert_eq!(cached.to_bits(), direct.to_bits(), "jobs={}", jobs);
        }
    }

    /// Same identity for the four-wall bounce.
    #[test]
    fn cached_wall_gain_matches_direct_bitwise(rx in arb_rx_pose(), tx_idx in 0usize..36) {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        let m = lambertian_order(HPSA);
        let tx = grid.pose(tx_idx);
        let cache = NlosTxCache::new(&tx, m, &room, &coarse());
        for jobs in [Jobs::serial(), Jobs::max()] {
            let direct = wall_bounce_gain_par(&tx, &rx, m, &optics, &room, &coarse(), jobs);
            let cached = cache.wall_gain_par(&rx, &optics, jobs);
            prop_assert_eq!(cached.to_bits(), direct.to_bits(), "jobs={}", jobs);
        }
    }

    /// With ε = 0 the dirty-row updater is a drop-in replacement for a full
    /// rebuild: after any sequence of pose jitters and blocker changes, the
    /// masked matrix, the clear matrix, and the blocked-link count all match
    /// a from-scratch computation of the same tick, bitwise, at any jobs.
    #[test]
    fn zero_epsilon_updater_matches_full_rebuild(
        steps in proptest::collection::vec(
            (proptest::collection::vec(arb_rx_pose(), 3), arb_blockers()),
            1..5,
        ),
    ) {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        for jobs in [Jobs::serial(), Jobs::max()] {
            let pool = Pool::new(jobs);
            let mut updater = ChannelUpdater::new(&grid, HPSA, &optics, 0.0);
            for (poses, blockers) in &steps {
                let update = updater.update_pooled(
                    poses,
                    blockers,
                    &pool,
                    &Registry::noop(),
                    &Span::noop(),
                );
                let full = ChannelMatrix::compute_with_blockage_par(
                    &grid, poses, HPSA, &optics, blockers, jobs,
                );
                let clear = ChannelMatrix::compute_par(&grid, poses, HPSA, &optics, jobs);
                prop_assert_eq!(&update.matrix, &full, "masked, jobs={}", jobs);
                prop_assert_eq!(&update.clear, &clear, "clear, jobs={}", jobs);
                let blocked = (0..grid.len())
                    .flat_map(|t| (0..poses.len()).map(move |r| (t, r)))
                    .filter(|&(t, r)| clear.gain(t, r) > 0.0 && full.gain(t, r) == 0.0)
                    .count();
                prop_assert_eq!(update.blocked_links, blocked);
            }
        }
    }

    /// With ε > 0 the updater trades bounded staleness for reuse: its output
    /// equals a full rebuild at the *effective* poses (each column's pose
    /// re-snaps only when the receiver drifts beyond ε of the last computed
    /// pose), so the approximation is exactly "each RX is where we last
    /// looked, at most ε ago" — never an uncontrolled mixture.
    #[test]
    fn positive_epsilon_updater_matches_rebuild_at_effective_poses(
        epsilon in 0.0f64..0.5,
        steps in proptest::collection::vec(
            (proptest::collection::vec(arb_rx_pose(), 2), arb_blockers()),
            1..5,
        ),
    ) {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics::paper();
        let mut updater = ChannelUpdater::new(&grid, HPSA, &optics, epsilon);
        // Shadow model of the invalidation rule.
        let mut effective: Vec<Pose> = Vec::new();
        for (poses, blockers) in &steps {
            let update = updater.update(poses, blockers);
            if effective.is_empty() {
                effective = poses.clone();
            } else {
                for (eff, new) in effective.iter_mut().zip(poses) {
                    if eff.boresight != new.boresight
                        || eff.position.distance(new.position) > epsilon
                    {
                        *eff = *new;
                    }
                }
            }
            let full = ChannelMatrix::compute_with_blockage(
                &grid, &effective, HPSA, &optics, blockers,
            );
            prop_assert_eq!(&update.matrix, &full);
        }
    }
}
