//! Receiver noise models.
//!
//! The paper models the receiver as an AWGN channel with single-sided
//! spectral power density `N0 = 7.02 × 10⁻²³ A²/Hz` over `B = 1 MHz`
//! (Table 1). We carry those as [`NoiseParams`] and provide an
//! [`AwgnChannel`] sampler for symbol-level simulations (Gaussian samples
//! via an in-tree Box–Muller transform, since `rand_distr` is outside the
//! allowed dependency set), plus an optional ambient-light shot-noise term
//! for sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Elementary charge in coulombs (for shot-noise computations).
const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;

/// Receiver noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Single-sided noise spectral power density `N0` in A²/Hz.
    pub n0_a2_per_hz: f64,
    /// Communication bandwidth `B` in Hz.
    pub bandwidth_hz: f64,
}

impl NoiseParams {
    /// The paper's Table 1 values.
    pub fn paper() -> Self {
        NoiseParams {
            n0_a2_per_hz: 7.02e-23,
            bandwidth_hz: 1e6,
        }
    }

    /// Total in-band noise power `N0·B` in A².
    pub fn noise_power(&self) -> f64 {
        self.n0_a2_per_hz * self.bandwidth_hz
    }

    /// RMS noise current in amperes.
    pub fn noise_rms(&self) -> f64 {
        self.noise_power().sqrt()
    }

    /// Additional shot-noise spectral density `2·q·I_dc` in A²/Hz produced
    /// by a DC photocurrent `i_dc_a` (ambient light plus the illumination
    /// bias light of all LEDs).
    pub fn shot_noise_density(i_dc_a: f64) -> f64 {
        assert!(i_dc_a >= 0.0, "DC photocurrent must be non-negative");
        2.0 * ELECTRON_CHARGE * i_dc_a
    }

    /// Returns new params with the shot noise of `i_dc_a` folded into `N0`.
    pub fn with_shot_noise(&self, i_dc_a: f64) -> NoiseParams {
        NoiseParams {
            n0_a2_per_hz: self.n0_a2_per_hz + Self::shot_noise_density(i_dc_a),
            bandwidth_hz: self.bandwidth_hz,
        }
    }
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams::paper()
    }
}

/// A sampler of zero-mean Gaussian noise currents with the configured RMS.
#[derive(Debug, Clone, Copy)]
pub struct AwgnChannel {
    sigma: f64,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl AwgnChannel {
    /// Creates a sampler for the given noise parameters.
    pub fn new(params: NoiseParams) -> Self {
        AwgnChannel {
            sigma: params.noise_rms(),
            spare: None,
        }
    }

    /// Creates a sampler with an explicit standard deviation in amperes.
    pub fn with_sigma(sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        AwgnChannel { sigma, spare: None }
    }

    /// The configured standard deviation in amperes.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one noise sample (Box–Muller on top of the supplied RNG).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z * self.sigma;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }

    /// Fills `out` with independent noise samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_noise_power() {
        let n = NoiseParams::paper();
        assert!((n.noise_power() - 7.02e-17).abs() < 1e-30);
        assert!((n.noise_rms() - 7.02e-17f64.sqrt()).abs() < 1e-30);
    }

    #[test]
    fn shot_noise_scales_with_dc_current() {
        let d1 = NoiseParams::shot_noise_density(1e-6);
        let d2 = NoiseParams::shot_noise_density(2e-6);
        assert!((d2 / d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn with_shot_noise_only_increases_density() {
        let base = NoiseParams::paper();
        let noisy = base.with_shot_noise(1e-3);
        assert!(noisy.n0_a2_per_hz > base.n0_a2_per_hz);
        assert_eq!(noisy.bandwidth_hz, base.bandwidth_hz);
    }

    #[test]
    fn awgn_sample_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ch = AwgnChannel::with_sigma(2.0);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = ch.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn zero_sigma_yields_zero_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = AwgnChannel::with_sigma(0.0);
        for _ in 0..10 {
            assert_eq!(ch.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ch = AwgnChannel::with_sigma(1.0);
        let mut buf = [0.0; 101];
        ch.fill(&mut rng, &mut buf);
        // With probability ~1 every slot is non-zero.
        assert!(buf.iter().filter(|&&x| x != 0.0).count() >= 100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dc_current_panics() {
        NoiseParams::shot_noise_density(-1.0);
    }
}
