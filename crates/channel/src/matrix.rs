//! The N × M channel matrix between a TX grid and a set of receivers.

use crate::blockage::{any_blocks, CylinderBlocker};
use crate::fov::FovMask;
use crate::lambertian::{lambertian_order, los_gain_profiled, RxOptics, RxProfile};
use crate::soa::LANE;
use serde::{Deserialize, Serialize};
use vlc_geom::{Pose, TxGrid};
use vlc_par::{Jobs, Pool};
use vlc_trace::Span;

/// Line-of-sight path gains `H[tx][rx]` for every TX/RX pair.
///
/// This is the matrix the paper calls `H` (Eq. 3, Eq. 13): the controller
/// measures it through pilot rounds and feeds it to the allocation
/// algorithms. Stored row-major with `n_tx` rows of `n_rx` entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelMatrix {
    n_tx: usize,
    n_rx: usize,
    gains: Vec<f64>,
}

impl ChannelMatrix {
    /// Builds the matrix from explicit gains (row-major, `n_tx × n_rx`).
    ///
    /// # Panics
    /// Panics if the slice length is not `n_tx · n_rx`, or any gain is
    /// negative or non-finite.
    pub fn from_gains(n_tx: usize, n_rx: usize, gains: Vec<f64>) -> Self {
        assert_eq!(gains.len(), n_tx * n_rx, "gain vector has the wrong shape");
        assert!(
            gains.iter().all(|g| g.is_finite() && *g >= 0.0),
            "channel gains must be finite and non-negative"
        );
        ChannelMatrix { n_tx, n_rx, gains }
    }

    /// Computes the LOS matrix for a TX grid and receiver poses, fanning
    /// the TX rows out over `DENSEVLC_JOBS` workers (sequential when that
    /// resolves to 1). The result is bitwise identical for any worker
    /// count — see [`Self::compute_par`].
    pub fn compute(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
    ) -> Self {
        Self::compute_with_blockage(grid, receivers, half_power_semi_angle, optics, &[])
    }

    /// [`Self::compute`] with an explicit worker count.
    pub fn compute_par(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        jobs: Jobs,
    ) -> Self {
        Self::compute_with_blockage_par(grid, receivers, half_power_semi_angle, optics, &[], jobs)
    }

    /// Computes the LOS matrix with cylindrical occluders: a blocked pair
    /// gets zero gain. Parallelism as in [`Self::compute`].
    pub fn compute_with_blockage(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        blockers: &[CylinderBlocker],
    ) -> Self {
        Self::compute_with_blockage_par(
            grid,
            receivers,
            half_power_semi_angle,
            optics,
            blockers,
            Jobs::from_env(),
        )
    }

    /// [`Self::compute_with_blockage`] with an explicit worker count: each
    /// TX row of `H` is an independent work item, and rows are reassembled
    /// in TX order, so the matrix is bitwise identical to the sequential
    /// one for any `jobs`.
    pub fn compute_with_blockage_par(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        blockers: &[CylinderBlocker],
        jobs: Jobs,
    ) -> Self {
        Self::compute_with_blockage_traced(
            grid,
            receivers,
            half_power_semi_angle,
            optics,
            blockers,
            jobs,
            &Span::noop(),
        )
    }

    /// [`Self::compute_with_blockage_par`] recording a `channel.sound`
    /// span under `parent`, with one `channel.sound.row` child per TX row
    /// (indexed by TX, so the span tree is identical for any worker
    /// count). With a noop parent this is the uninstrumented path plus one
    /// branch per span site.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with_blockage_traced(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        blockers: &[CylinderBlocker],
        jobs: Jobs,
        parent: &Span,
    ) -> Self {
        Self::compute_with_blockage_pooled(
            grid,
            receivers,
            half_power_semi_angle,
            optics,
            blockers,
            &Pool::new(jobs),
            parent,
        )
    }

    /// [`Self::compute_with_blockage_traced`] on a caller-supplied [`Pool`],
    /// so one pool can serve many matrix builds (and the NLOS quadratures)
    /// instead of being rebuilt per call.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with_blockage_pooled(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        blockers: &[CylinderBlocker],
        pool: &Pool,
        parent: &Span,
    ) -> Self {
        Self::compute_masked_pooled(
            grid,
            receivers,
            half_power_semi_angle,
            optics,
            blockers,
            None,
            pool,
            parent,
        )
    }

    /// [`Self::compute_with_blockage_pooled`] with an optional precomputed
    /// [`FovMask`]: culled links get an exact zero without evaluating the
    /// Lambertian kernel or the blockage test. Because the mask is
    /// conservative — it only culls links whose LOS gain is exactly zero —
    /// the result is bitwise identical to the unmasked computation.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_masked_pooled(
        grid: &TxGrid,
        receivers: &[Pose],
        half_power_semi_angle: f64,
        optics: &RxOptics,
        blockers: &[CylinderBlocker],
        mask: Option<&FovMask>,
        pool: &Pool,
        parent: &Span,
    ) -> Self {
        let m = lambertian_order(half_power_semi_angle);
        let n_tx = grid.len();
        let n_rx = receivers.len();
        if let Some(mask) = mask {
            assert_eq!(mask.n_tx(), n_tx, "mask/grid TX count mismatch");
            assert_eq!(mask.n_rx(), n_rx, "mask/receiver count mismatch");
        }
        let profile = optics.profile();
        let sound = parent.child("channel.sound");
        sound.attr("n_tx", &n_tx.to_string());
        sound.attr("n_rx", &n_rx.to_string());
        let rows = pool.map_indexed(n_tx, |t| {
            let _row = sound.child_indexed("channel.sound.row", t);
            let tx = grid.pose(t);
            let mut out = vec![0.0f64; n_rx];
            los_row_into(&tx, t, receivers, blockers, mask, m, &profile, &mut out);
            out
        });
        let mut gains = Vec::with_capacity(n_tx * n_rx);
        for row in rows {
            gains.extend(row);
        }
        ChannelMatrix { n_tx, n_rx, gains }
    }

    /// Number of transmitters (rows).
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receivers (columns).
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Gain from TX `tx` to RX `rx`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn gain(&self, tx: usize, rx: usize) -> f64 {
        assert!(
            tx < self.n_tx && rx < self.n_rx,
            "index ({tx},{rx}) out of range"
        );
        self.gains[tx * self.n_rx + rx]
    }

    /// All gains from one TX (one row), length `n_rx`.
    pub fn tx_row(&self, tx: usize) -> &[f64] {
        assert!(tx < self.n_tx);
        &self.gains[tx * self.n_rx..(tx + 1) * self.n_rx]
    }

    /// Iterator over `(tx, rx, gain)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n_tx).flat_map(move |t| (0..self.n_rx).map(move |r| (t, r, self.gain(t, r))))
    }

    /// The TX index with the strongest gain toward RX `rx`.
    pub fn best_tx_for(&self, rx: usize) -> usize {
        (0..self.n_tx)
            .max_by(|&a, &b| {
                self.gain(a, rx)
                    .partial_cmp(&self.gain(b, rx))
                    .expect("gains are finite")
            })
            .expect("matrix has at least one TX")
    }

    /// Applies measurement noise / quantization by mapping each gain through
    /// `f` (used to emulate reported channel measurements).
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> ChannelMatrix {
        ChannelMatrix {
            n_tx: self.n_tx,
            n_rx: self.n_rx,
            gains: self.gains.iter().map(|&g| f(g).max(0.0)).collect(),
        }
    }
}

/// Fills one TX row of `H` through the fused profiled kernel, processing
/// receivers in fixed [`LANE`]-wide batches with a scalar tail. Each output
/// element is an independent store — there is no cross-element accumulation
/// to reassociate — so the row is bitwise identical to the historical
/// per-link path (pinned by `tests/soa_identity.rs`).
#[allow(clippy::too_many_arguments)]
fn los_row_into(
    tx: &Pose,
    t: usize,
    receivers: &[Pose],
    blockers: &[CylinderBlocker],
    mask: Option<&FovMask>,
    m: f64,
    profile: &RxProfile,
    out: &mut [f64],
) {
    let link = |r: usize, rx: &Pose| -> f64 {
        if let Some(mask) = mask {
            if !mask.is_live(t, r) {
                return 0.0;
            }
        }
        if any_blocks(blockers, tx.position, rx.position) {
            0.0
        } else {
            los_gain_profiled(tx, rx, m, profile)
        }
    };
    let n = receivers.len();
    let tail = n - n % LANE;
    for base in (0..tail).step_by(LANE) {
        for l in 0..LANE {
            let r = base + l;
            out[r] = link(r, &receivers[r]);
        }
    }
    for r in tail..n {
        out[r] = link(r, &receivers[r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::Room;

    fn paper_setup() -> (TxGrid, Vec<Pose>) {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        (grid, rxs)
    }

    #[test]
    fn matrix_shape_matches_deployment() {
        let (grid, rxs) = paper_setup();
        let h = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
        assert_eq!(h.n_tx(), 36);
        assert_eq!(h.n_rx(), 4);
        assert_eq!(h.iter().count(), 144);
    }

    #[test]
    fn best_tx_is_geometrically_nearest() {
        let (grid, rxs) = paper_setup();
        let h = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
        for (i, rx) in rxs.iter().enumerate() {
            let best = h.best_tx_for(i);
            let nearest = grid.nearest(rx.position);
            assert_eq!(best, nearest, "RX{}", i + 1);
        }
    }

    #[test]
    fn narrow_beams_make_far_links_zero() {
        // With a 15° half-power lens and 2 m drop, a TX ~2.5 m away laterally is
        // far outside the beam: its cos^20(φ) is numerically negligible.
        let (grid, rxs) = paper_setup();
        let h = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &RxOptics::paper());
        let far_gain = h.gain(35, 2); // TX36 (corner) vs RX3 (opposite side)
        let near_gain = h.gain(h.best_tx_for(2), 2);
        assert!(far_gain < near_gain * 1e-3);
    }

    #[test]
    fn blockage_zeroes_only_the_occluded_links() {
        let (grid, rxs) = paper_setup();
        let optics = RxOptics::paper();
        let clear = ChannelMatrix::compute(&grid, &rxs, 15f64.to_radians(), &optics);
        // A person standing right next to RX1 blocks its overhead TXs.
        let blockers = [CylinderBlocker::person(0.92, 0.92)];
        let blocked = ChannelMatrix::compute_with_blockage(
            &grid,
            &rxs,
            15f64.to_radians(),
            &optics,
            &blockers,
        );
        let best_rx1 = clear.best_tx_for(0);
        assert!(clear.gain(best_rx1, 0) > 0.0);
        assert_eq!(blocked.gain(best_rx1, 0), 0.0);
        // A link on the other side of the room is untouched.
        let best_rx4 = clear.best_tx_for(3);
        assert_eq!(blocked.gain(best_rx4, 3), clear.gain(best_rx4, 3));
    }

    #[test]
    fn from_gains_validates_shape_and_values() {
        let m = ChannelMatrix::from_gains(2, 2, vec![1e-6, 0.0, 2e-6, 3e-6]);
        assert_eq!(m.gain(1, 0), 2e-6);
        assert_eq!(m.tx_row(1), &[2e-6, 3e-6]);
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn from_gains_rejects_bad_shape() {
        ChannelMatrix::from_gains(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_gains_rejects_negative() {
        ChannelMatrix::from_gains(1, 1, vec![-1.0]);
    }

    #[test]
    fn masked_compute_is_bitwise_identical_to_dense() {
        let (grid, rxs) = paper_setup();
        let optics = RxOptics {
            fov_half_angle: 30f64.to_radians(),
            ..RxOptics::paper()
        };
        let blockers = [CylinderBlocker::person(0.92, 0.92)];
        let hpsa = 15f64.to_radians();
        let mask = FovMask::compute(&grid, &rxs, &optics.profile());
        assert!(mask.culled_count() > 0, "30° FOV should cull corner links");
        let pool = Pool::new(Jobs::serial());
        let dense = ChannelMatrix::compute_masked_pooled(
            &grid,
            &rxs,
            hpsa,
            &optics,
            &blockers,
            None,
            &pool,
            &Span::noop(),
        );
        let masked = ChannelMatrix::compute_masked_pooled(
            &grid,
            &rxs,
            hpsa,
            &optics,
            &blockers,
            Some(&mask),
            &pool,
            &Span::noop(),
        );
        for (t, r, g) in dense.iter() {
            assert_eq!(g.to_bits(), masked.gain(t, r).to_bits(), "({t},{r})");
        }
    }

    #[test]
    fn map_clamps_negative_results() {
        let m = ChannelMatrix::from_gains(1, 2, vec![1e-6, 5e-7]);
        let noisy = m.map(|g| g - 8e-7);
        assert_eq!(noisy.gain(0, 1), 0.0);
        assert!((noisy.gain(0, 0) - 2e-7).abs() < 1e-18);
    }
}
