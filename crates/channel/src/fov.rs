//! Sparse FOV culling: a precomputed per-RX bitset of in-cone TXs.
//!
//! Most TX–RX links in a dense deployment are geometrically zero — the TX
//! sits outside the receiver's FOV cone, or behind its boresight plane, or
//! the receiver is behind the emitter plane. [`FovMask`] evaluates exactly
//! the pure-geometry zero conditions of [`crate::los_gain`] once per link
//! (ignoring blockers, which can only zero *more* links), so the channel
//! sweeps, the [`crate::ChannelUpdater`] dirty-column path, and the solver's
//! [`crate::SparseChannelView`] can skip culled links entirely.
//!
//! The mask is **conservative**: it never culls a link whose scalar LOS
//! gain is nonzero. A live link may still carry an exactly-zero gain (e.g.
//! `cosᵐφ` underflow), which costs a wasted evaluation but never changes a
//! result. `tests/soa_identity.rs` property-tests this invariant.

use crate::lambertian::RxProfile;
use vlc_geom::{Pose, TxGrid};
use vlc_telemetry::Registry;

/// Telemetry counter: links the FOV mask kept live.
pub const COUNTER_FOV_LIVE: &str = "channel.fov.live";
/// Telemetry counter: links the FOV mask culled.
pub const COUNTER_FOV_CULLED: &str = "channel.fov.culled";

/// The cheap cone test behind [`FovMask`]: true iff the link passes every
/// pure-geometry gate of [`crate::los_gain`] — non-coincident devices,
/// receiver in front of the emitter plane, emitter inside the receiver's
/// FOV cone. Blockers are deliberately ignored (they only zero more
/// links), which is what makes the mask conservative.
pub fn cone_live(tx: &Pose, rx: &Pose, profile: &RxProfile) -> bool {
    let ray = rx.position - tx.position;
    let d2 = ray.norm_sq();
    if d2 < 1e-12 {
        return false;
    }
    let dir = ray / d2.sqrt();
    let cos_phi = tx.boresight.dot(dir);
    let cos_psi = rx.boresight.dot(-dir);
    if cos_phi <= 0.0 || cos_psi <= 0.0 {
        return false;
    }
    profile.in_cone_cos(cos_psi)
}

/// Per-RX bitset of in-cone TXs, precomputed with [`cone_live`].
///
/// Bits are stored row-major by receiver (`words_per_rx` u64 words per RX,
/// TX index = bit index), so the per-receiver live set the solver and
/// updater iterate is contiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FovMask {
    n_tx: usize,
    n_rx: usize,
    words_per_rx: usize,
    bits: Vec<u64>,
    live: usize,
}

impl FovMask {
    /// Evaluate the cone test for every TX pose × receiver pair.
    pub fn compute_poses(txs: &[Pose], receivers: &[Pose], profile: &RxProfile) -> Self {
        let n_tx = txs.len();
        let n_rx = receivers.len();
        let words_per_rx = n_tx.div_ceil(64).max(1);
        let mut bits = vec![0u64; words_per_rx * n_rx];
        let mut live = 0usize;
        for (r, rx) in receivers.iter().enumerate() {
            let row = &mut bits[r * words_per_rx..(r + 1) * words_per_rx];
            for (t, tx) in txs.iter().enumerate() {
                if cone_live(tx, rx, profile) {
                    row[t / 64] |= 1u64 << (t % 64);
                    live += 1;
                }
            }
        }
        FovMask {
            n_tx,
            n_rx,
            words_per_rx,
            bits,
            live,
        }
    }

    /// [`Self::compute_poses`] over a [`TxGrid`]'s emitters.
    pub fn compute(grid: &TxGrid, receivers: &[Pose], profile: &RxProfile) -> Self {
        Self::compute_poses(&grid.poses(), receivers, profile)
    }

    /// The degenerate all-ones mask (nothing culled) — what a 90°-FOV
    /// ceiling deployment over upward receivers collapses to.
    pub fn all_live(n_tx: usize, n_rx: usize) -> Self {
        let words_per_rx = n_tx.div_ceil(64).max(1);
        let mut bits = vec![0u64; words_per_rx * n_rx];
        for r in 0..n_rx {
            let row = &mut bits[r * words_per_rx..(r + 1) * words_per_rx];
            for t in 0..n_tx {
                row[t / 64] |= 1u64 << (t % 64);
            }
        }
        FovMask {
            n_tx,
            n_rx,
            words_per_rx,
            bits,
            live: n_tx * n_rx,
        }
    }

    /// Number of transmitters the mask covers.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receivers the mask covers.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Whether TX `tx` is inside receiver `rx`'s FOV cone.
    #[inline]
    pub fn is_live(&self, tx: usize, rx: usize) -> bool {
        assert!(tx < self.n_tx && rx < self.n_rx, "link index out of range");
        self.bits[rx * self.words_per_rx + tx / 64] & (1u64 << (tx % 64)) != 0
    }

    /// Total number of live (in-cone) links.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total number of culled links.
    pub fn culled_count(&self) -> usize {
        self.n_tx * self.n_rx - self.live
    }

    /// Ascending TX indices live for receiver `rx`.
    pub fn live_txs(&self, rx: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(rx < self.n_rx, "rx index out of range");
        let row = &self.bits[rx * self.words_per_rx..(rx + 1) * self.words_per_rx];
        let n_tx = self.n_tx;
        row.iter().enumerate().flat_map(move |(w, &word)| {
            let base = w * 64;
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| base + b)
                .filter(move |&t| t < n_tx)
        })
    }

    /// Record the mask's live/culled split on the
    /// `channel.fov.live` / `channel.fov.culled` counters.
    pub fn record(&self, telemetry: &Registry) {
        telemetry.counter(COUNTER_FOV_LIVE).add(self.live as u64);
        telemetry
            .counter(COUNTER_FOV_CULLED)
            .add(self.culled_count() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambertian::{los_gain, RxOptics};
    use vlc_geom::{Room, Vec3};

    #[test]
    fn paper_geometry_culls_nothing() {
        // 90° FOV upward receivers under a ceiling grid: every link passes
        // the cone test.
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let receivers = vec![Pose::face_up(0.75, 2.25, 0.8), Pose::face_up(2.0, 1.0, 0.8)];
        let mask = FovMask::compute(&grid, &receivers, &RxOptics::paper().profile());
        assert_eq!(mask.live_count(), grid.len() * receivers.len());
        assert_eq!(mask.culled_count(), 0);
    }

    #[test]
    fn narrow_fov_culls_off_axis_links_conservatively() {
        let room = Room::paper_testbed();
        let grid = TxGrid::paper(&room);
        let optics = RxOptics {
            fov_half_angle: 20f64.to_radians(),
            ..RxOptics::paper()
        };
        let m = crate::lambertian_order(15f64.to_radians());
        let receivers = vec![Pose::face_up(0.75, 2.25, 0.8), Pose::face_up(2.6, 3.8, 0.8)];
        let mask = FovMask::compute(&grid, &receivers, &optics.profile());
        assert!(mask.culled_count() > 0, "20° FOV should cull distant TXs");
        // Conservative: every nonzero-gain link is live, and the live list
        // iterator agrees with the bit probe.
        for (r, rx) in receivers.iter().enumerate() {
            let live: Vec<usize> = mask.live_txs(r).collect();
            for t in 0..grid.len() {
                let g = los_gain(&grid.pose(t), rx, m, &optics);
                if g != 0.0 {
                    assert!(mask.is_live(t, r), "culled nonzero link tx={t} rx={r}");
                }
                assert_eq!(live.contains(&t), mask.is_live(t, r));
            }
        }
    }

    #[test]
    fn all_live_matches_wide_open_compute() {
        let txs = vec![Pose::ceiling(0.5, 0.5, 2.8), Pose::ceiling(1.5, 0.5, 2.8)];
        let rxs = vec![Pose::face_up(1.0, 0.5, 0.8)];
        let computed = FovMask::compute_poses(&txs, &rxs, &RxOptics::paper().profile());
        assert_eq!(computed, FovMask::all_live(2, 1));
    }

    #[test]
    fn counters_record_live_and_culled() {
        let telemetry = Registry::new();
        let mask = FovMask::all_live(3, 2);
        mask.record(&telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(COUNTER_FOV_LIVE), Some(6));
        assert_eq!(snap.counter(COUNTER_FOV_CULLED), Some(0));
    }

    #[test]
    fn sideways_receiver_culls_behind_links() {
        // A receiver looking along +X can never see a TX at -X.
        let txs = vec![
            Pose::ceiling(-1.0, 0.0, 1.0),
            Pose::new(Vec3::new(2.0, 0.0, 1.0), -Vec3::X),
        ];
        let rx = Pose::new(Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        let mask = FovMask::compute_poses(&txs, &[rx], &RxOptics::paper().profile());
        assert!(!mask.is_live(0, 0));
        assert!(mask.is_live(1, 0));
    }
}
