//! The line-of-sight Lambertian path-loss model (paper Eq. 2).

use serde::{Deserialize, Serialize};
use vlc_geom::Pose;

/// Receiver optics: photodiode geometry, field of view, and concentrator.
///
/// Defaults match the paper's Table 1: Hamamatsu S5971-class photodiode with
/// a 1.1 mm² collection area, a 90° field of view, responsivity 0.40 A/W,
/// and no optical concentrator (refractive index 1 → unit gain at a 90°
/// FOV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RxOptics {
    /// Photodiode collection area `Apd` in m².
    pub collection_area_m2: f64,
    /// Field of view half-angle `Ψc` in radians; light beyond it is ignored.
    pub fov_half_angle: f64,
    /// Refractive index of the optical concentrator (1.0 = none).
    pub concentrator_index: f64,
    /// Optical filter transmission in `[0, 1]`.
    pub filter_gain: f64,
    /// Photodiode responsivity `R` in A/W.
    pub responsivity: f64,
}

impl RxOptics {
    /// The paper's receiver front-end optics (Table 1).
    pub fn paper() -> Self {
        RxOptics {
            collection_area_m2: 1.1e-6,
            fov_half_angle: std::f64::consts::FRAC_PI_2,
            concentrator_index: 1.0,
            filter_gain: 1.0,
            responsivity: 0.40,
        }
    }

    /// Concentrator-plus-filter gain `g(ψ)` for an incidence angle `ψ`:
    /// `n² / sin²(Ψc)` inside the FOV, zero outside.
    pub fn gain(&self, incidence: f64) -> f64 {
        if incidence <= self.fov_half_angle {
            let n = self.concentrator_index;
            self.filter_gain * n * n / self.fov_half_angle.sin().powi(2)
        } else {
            0.0
        }
    }
}

impl Default for RxOptics {
    fn default() -> Self {
        RxOptics::paper()
    }
}

/// The Lambertian order `m = −ln 2 / ln(cos φ½)` for a half-power semi-angle
/// `φ½` in radians. The paper's lens-equipped CREE XT-E has φ½ = 15°,
/// giving `m ≈ 20`.
pub fn lambertian_order(half_power_semi_angle: f64) -> f64 {
    assert!(
        half_power_semi_angle > 0.0 && half_power_semi_angle < std::f64::consts::FRAC_PI_2,
        "half-power semi-angle must be in (0, π/2), got {half_power_semi_angle}"
    );
    -std::f64::consts::LN_2 / half_power_semi_angle.cos().ln()
}

/// Line-of-sight optical path loss `H` between a transmitter and receiver
/// (paper Eq. 2):
///
/// `H = (m+1)·Apd / (2π·d²) · cosᵐ(φ) · g(ψ) · cos(ψ)` for `0 ≤ ψ ≤ Ψc`,
/// zero otherwise (and zero when the target is behind the emitter plane).
///
/// `m` is the Lambertian order (see [`lambertian_order`]); `φ` the
/// irradiation angle at the TX; `ψ` the incidence angle at the RX; `d` the
/// TX–RX distance.
pub fn los_gain(tx: &Pose, rx: &Pose, lambertian_m: f64, optics: &RxOptics) -> f64 {
    let d2 = (rx.position - tx.position).norm_sq();
    if d2 < 1e-12 {
        return 0.0; // coincident devices: undefined geometry, no coupling
    }
    let cos_phi = tx.cos_irradiation(rx.position);
    let cos_psi = rx.cos_incidence(tx.position);
    if cos_phi <= 0.0 || cos_psi <= 0.0 {
        return 0.0;
    }
    let psi = cos_psi.clamp(-1.0, 1.0).acos();
    let g = optics.gain(psi);
    if g == 0.0 {
        return 0.0;
    }
    (lambertian_m + 1.0) * optics.collection_area_m2 / (2.0 * std::f64::consts::PI * d2)
        * cos_phi.powf(lambertian_m)
        * g
        * cos_psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::Vec3;

    fn m15() -> f64 {
        lambertian_order(15f64.to_radians())
    }

    #[test]
    fn order_for_15_degrees_is_about_20() {
        let m = m15();
        assert!((m - 20.0).abs() < 0.2, "m = {m}");
    }

    #[test]
    fn order_for_60_degrees_is_1() {
        // cos 60° = 0.5 → m = ln2/ln2 = 1 (the classic Lambertian source).
        let m = lambertian_order(60f64.to_radians());
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn on_axis_gain_matches_hand_computation() {
        // TX at 2.8 m directly above an upward RX at 0.8 m → d = 2 m,
        // φ = ψ = 0: H = (m+1)·Apd / (2π·4).
        let tx = Pose::ceiling(1.0, 1.0, 2.8);
        let rx = Pose::face_up(1.0, 1.0, 0.8);
        let optics = RxOptics::paper();
        let m = m15();
        let expected = (m + 1.0) * 1.1e-6 / (2.0 * std::f64::consts::PI * 4.0);
        let h = los_gain(&tx, &rx, m, &optics);
        assert!(
            (h - expected).abs() / expected < 1e-12,
            "h = {h}, expected {expected}"
        );
    }

    #[test]
    fn gain_decays_off_axis_faster_than_cosine() {
        let optics = RxOptics::paper();
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let on_axis = los_gain(&tx, &Pose::face_up(0.0, 0.0, 0.0), m, &optics);
        let off_axis = los_gain(&tx, &Pose::face_up(0.5, 0.0, 0.0), m, &optics);
        // 0.5 m offset at 2 m drop ≈ 14° — near the half-power angle, the
        // narrow-beam gain should have fallen well below cos(14°).
        assert!(off_axis < on_axis * 0.6);
        assert!(off_axis > 0.0);
    }

    #[test]
    fn gain_is_zero_beyond_fov() {
        let m = m15();
        // RX tilted 90°: light from straight above arrives at ψ = 90° > Ψc
        // for a 60° FOV receiver.
        let narrow = RxOptics {
            fov_half_angle: 60f64.to_radians(),
            ..RxOptics::paper()
        };
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::new(Vec3::new(0.0, 0.0, 0.0), Vec3::X);
        assert_eq!(los_gain(&tx, &rx, m, &narrow), 0.0);
    }

    #[test]
    fn gain_is_zero_behind_emitter() {
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx_above = Pose::face_up(0.0, 0.0, 2.5); // above the ceiling TX
        assert_eq!(los_gain(&tx, &rx_above, m, &RxOptics::paper()), 0.0);
    }

    #[test]
    fn gain_is_zero_for_coincident_devices() {
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::face_up(0.0, 0.0, 2.0);
        assert_eq!(los_gain(&tx, &rx, m, &RxOptics::paper()), 0.0);
    }

    #[test]
    fn gain_scales_inverse_square_with_distance() {
        let m = m15();
        let optics = RxOptics::paper();
        let rx = Pose::face_up(0.0, 0.0, 0.0);
        let h1 = los_gain(&Pose::ceiling(0.0, 0.0, 1.0), &rx, m, &optics);
        let h2 = los_gain(&Pose::ceiling(0.0, 0.0, 2.0), &rx, m, &optics);
        assert!((h1 / h2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn concentrator_boosts_gain_quadratically() {
        let m = m15();
        let plain = RxOptics::paper();
        let lensed = RxOptics {
            concentrator_index: 1.5,
            ..plain
        };
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::face_up(0.0, 0.0, 0.0);
        let ratio = los_gain(&tx, &rx, m, &lensed) / los_gain(&tx, &rx, m, &plain);
        assert!((ratio - 2.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half-power semi-angle")]
    fn zero_semi_angle_panics() {
        lambertian_order(0.0);
    }

    #[test]
    fn paper_geometry_magnitude_sanity() {
        // For the paper's setup the strongest link (TX directly above an RX
        // at table height) should be ~1e-7..1e-6 — the scale that makes the
        // SINR numbers in §4 come out in the Mbit/s range.
        let tx = Pose::ceiling(0.75, 2.25, 2.8);
        let rx = Pose::face_up(0.75, 2.25, 0.8);
        let h = los_gain(&tx, &rx, m15(), &RxOptics::paper());
        assert!(h > 1e-7 && h < 1e-5, "h = {h}");
    }
}
