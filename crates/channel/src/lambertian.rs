//! The line-of-sight Lambertian path-loss model (paper Eq. 2).

use serde::{Deserialize, Serialize};
use vlc_geom::Pose;

/// Receiver optics: photodiode geometry, field of view, and concentrator.
///
/// Defaults match the paper's Table 1: Hamamatsu S5971-class photodiode with
/// a 1.1 mm² collection area, a 90° field of view, responsivity 0.40 A/W,
/// and no optical concentrator (refractive index 1 → unit gain at a 90°
/// FOV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RxOptics {
    /// Photodiode collection area `Apd` in m².
    pub collection_area_m2: f64,
    /// Field of view half-angle `Ψc` in radians; light beyond it is ignored.
    pub fov_half_angle: f64,
    /// Refractive index of the optical concentrator (1.0 = none).
    pub concentrator_index: f64,
    /// Optical filter transmission in `[0, 1]`.
    pub filter_gain: f64,
    /// Photodiode responsivity `R` in A/W.
    pub responsivity: f64,
}

impl RxOptics {
    /// The paper's receiver front-end optics (Table 1).
    pub fn paper() -> Self {
        RxOptics {
            collection_area_m2: 1.1e-6,
            fov_half_angle: std::f64::consts::FRAC_PI_2,
            concentrator_index: 1.0,
            filter_gain: 1.0,
            responsivity: 0.40,
        }
    }

    /// Concentrator-plus-filter gain `g(ψ)` for an incidence angle `ψ`:
    /// `n² / sin²(Ψc)` inside the FOV, zero outside.
    pub fn gain(&self, incidence: f64) -> f64 {
        self.profile().gain(incidence)
    }

    /// Precompute the per-receiver constants the hot kernels need: the
    /// peak concentrator gain (hoisting the `sin²(Ψc)` that [`Self::gain`]
    /// historically recomputed per call) and the FOV cone threshold shared
    /// with [`crate::FovMask`].
    pub fn profile(&self) -> RxProfile {
        let n = self.concentrator_index;
        RxProfile {
            fov_half_angle: self.fov_half_angle,
            collection_area_m2: self.collection_area_m2,
            peak_gain: self.filter_gain * n * n / self.fov_half_angle.sin().powi(2),
            cos_fov_threshold: cos_fov_threshold(self.fov_half_angle),
        }
    }
}

/// Precomputed receiver-optics constants for the fused channel kernels.
///
/// [`RxOptics::gain`] evaluates `filter_gain · n² / sin²(Ψc)` on every
/// call even though every operand is a per-receiver constant; the profile
/// hoists that into [`RxProfile::peak_gain`] once. Both the LOS/NLOS
/// kernels and the [`crate::FovMask`] cone test go through the same
/// [`RxProfile::in_cone`] predicate, so there is exactly one definition of
/// "inside the field of view".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxProfile {
    /// Field of view half-angle `Ψc` in radians (copied from [`RxOptics`]).
    pub fov_half_angle: f64,
    /// Photodiode collection area `Apd` in m² (copied from [`RxOptics`]).
    pub collection_area_m2: f64,
    /// Constant in-FOV gain `filter_gain · n² / sin²(Ψc)` — bitwise equal
    /// to what [`RxOptics::gain`] computes, since every operand is a
    /// constant of the optics.
    pub peak_gain: f64,
    /// Smallest representable cosine whose `clamp`-then-`acos` recovered
    /// incidence angle still lies inside the cone — bisected once against
    /// the platform `acos` (see [`cos_fov_threshold`]) so the hot kernels
    /// can replace the per-patch `acos` of [`Self::gain_from_cos`] with one
    /// comparison that takes the exact same branch for every input.
    pub cos_fov_threshold: f64,
}

/// The exact cosine threshold of the FOV cone test: the smallest `c` in
/// `[-1, 1]` with `acos(c) ≤ Ψc`, found by bisecting the *ordered* f64 bit
/// space against the platform `acos` (monotone non-increasing, so the
/// predicate `acos(c) ≤ Ψc` is monotone in `c` and the bisection is exact).
/// `clamp(cos, -1, 1) ≥ threshold` then reproduces
/// `acos(clamp(cos, -1, 1)) ≤ Ψc` bit-for-bit for every input, including
/// the out-of-range and NaN cases (`NaN.clamp` stays NaN and fails both
/// predicates). A negative or NaN half-angle admits no cosine at all
/// (`acos(1) == +0.0 > Ψc`), encoded as a `+∞` threshold.
pub fn cos_fov_threshold(fov_half_angle: f64) -> f64 {
    if fov_half_angle.is_nan() || fov_half_angle < 0.0 {
        return f64::INFINITY;
    }
    if (-1.0f64).acos() <= fov_half_angle {
        return -1.0;
    }
    // Invariant: acos(lo) > Ψc, acos(hi) ≤ Ψc (acos(1) == +0.0 ≤ Ψc here).
    let (mut lo, mut hi) = (ord_key(-1.0), ord_key(1.0));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if from_ord_key(mid).acos() <= fov_half_angle {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    from_ord_key(hi)
}

/// Monotone map from f64 to u64 preserving the numeric order of finite
/// values (the standard sign-flip trick), so [`cos_fov_threshold`] can
/// bisect over *representable* cosines instead of midpoints that may skip
/// or repeat values.
fn ord_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | 0x8000_0000_0000_0000
    } else {
        !b
    }
}

/// Inverse of [`ord_key`].
fn from_ord_key(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & 0x7fff_ffff_ffff_ffff)
    } else {
        f64::from_bits(!k)
    }
}

impl RxProfile {
    /// The FOV cone test: `ψ ≤ Ψc`. The single shared predicate behind
    /// [`Self::gain`], [`Self::in_cone_cos`], and the [`crate::FovMask`]
    /// cone test.
    #[inline]
    pub fn in_cone(&self, incidence: f64) -> bool {
        incidence <= self.fov_half_angle
    }

    /// Concentrator-plus-filter gain `g(ψ)`: the precomputed peak inside
    /// the FOV, zero outside. Bitwise identical to [`RxOptics::gain`].
    #[inline]
    pub fn gain(&self, incidence: f64) -> f64 {
        if self.in_cone(incidence) {
            self.peak_gain
        } else {
            0.0
        }
    }

    /// [`Self::gain`] from the cosine of the incidence angle, recovering
    /// `ψ` exactly the way the scalar reference does
    /// (`cos ψ` clamped to `[-1, 1]`, then `acos`).
    #[inline]
    pub fn gain_from_cos(&self, cos_incidence: f64) -> f64 {
        self.gain(cos_incidence.clamp(-1.0, 1.0).acos())
    }

    /// [`Self::gain_from_cos`] without the per-call `acos`: one comparison
    /// against the bisected [`Self::cos_fov_threshold`], which takes the
    /// same branch for every representable input (see
    /// [`cos_fov_threshold`]). The quadrature lane kernels call this per
    /// patch; the `acos` form stays as the scalar reference.
    #[inline]
    pub fn gain_from_cos_fast(&self, cos_incidence: f64) -> f64 {
        if cos_incidence.clamp(-1.0, 1.0) >= self.cos_fov_threshold {
            self.peak_gain
        } else {
            0.0
        }
    }

    /// [`Self::in_cone`] from the cosine of the incidence angle, with the
    /// same clamp-then-`acos` recovery as the reference path.
    #[inline]
    pub fn in_cone_cos(&self, cos_incidence: f64) -> bool {
        self.in_cone(cos_incidence.clamp(-1.0, 1.0).acos())
    }
}

impl Default for RxOptics {
    fn default() -> Self {
        RxOptics::paper()
    }
}

/// The Lambertian order `m = −ln 2 / ln(cos φ½)` for a half-power semi-angle
/// `φ½` in radians. The paper's lens-equipped CREE XT-E has φ½ = 15°,
/// giving `m ≈ 20`.
pub fn lambertian_order(half_power_semi_angle: f64) -> f64 {
    assert!(
        half_power_semi_angle > 0.0 && half_power_semi_angle < std::f64::consts::FRAC_PI_2,
        "half-power semi-angle must be in (0, π/2), got {half_power_semi_angle}"
    );
    -std::f64::consts::LN_2 / half_power_semi_angle.cos().ln()
}

/// Line-of-sight optical path loss `H` between a transmitter and receiver
/// (paper Eq. 2):
///
/// `H = (m+1)·Apd / (2π·d²) · cosᵐ(φ) · g(ψ) · cos(ψ)` for `0 ≤ ψ ≤ Ψc`,
/// zero otherwise (and zero when the target is behind the emitter plane).
///
/// `m` is the Lambertian order (see [`lambertian_order`]); `φ` the
/// irradiation angle at the TX; `ψ` the incidence angle at the RX; `d` the
/// TX–RX distance.
pub fn los_gain(tx: &Pose, rx: &Pose, lambertian_m: f64, optics: &RxOptics) -> f64 {
    let d2 = (rx.position - tx.position).norm_sq();
    if d2 < 1e-12 {
        return 0.0; // coincident devices: undefined geometry, no coupling
    }
    let cos_phi = tx.cos_irradiation(rx.position);
    let cos_psi = rx.cos_incidence(tx.position);
    if cos_phi <= 0.0 || cos_psi <= 0.0 {
        return 0.0;
    }
    let psi = cos_psi.clamp(-1.0, 1.0).acos();
    let g = optics.gain(psi);
    if g == 0.0 {
        return 0.0;
    }
    (lambertian_m + 1.0) * optics.collection_area_m2 / (2.0 * std::f64::consts::PI * d2)
        * cos_phi.powf(lambertian_m)
        * g
        * cos_psi
}

/// [`los_gain`] with a precomputed [`RxProfile`]: the fused kernel behind
/// the SoA channel sweeps. One subtraction, one squared norm, and one
/// square root serve both the irradiation and incidence cosines (the
/// reference path normalizes the TX→RX ray three times), and the
/// concentrator peak comes from the profile instead of a per-call `sin²`.
///
/// Bitwise identical to [`los_gain`] — pinned by the
/// `tests/soa_identity.rs` proptests. The only representational
/// difference is the sign of zero in components of the negated ray
/// direction, which can only flip the sign of a *zero* `cos ψ`, and both
/// signed zeros take the same `≤ 0` early-out.
pub fn los_gain_profiled(tx: &Pose, rx: &Pose, lambertian_m: f64, profile: &RxProfile) -> f64 {
    let ray = rx.position - tx.position;
    let d2 = ray.norm_sq();
    if d2 < 1e-12 {
        return 0.0; // coincident devices: undefined geometry, no coupling
    }
    // d² ≥ 1e-12 ⟹ ‖ray‖ ≥ 1e-6 > 1e-12, so the reference
    // `try_normalized` always takes its `Some` branch here.
    let dir = ray / d2.sqrt();
    let cos_phi = tx.boresight.dot(dir);
    let cos_psi = rx.boresight.dot(-dir);
    if cos_phi <= 0.0 || cos_psi <= 0.0 {
        return 0.0;
    }
    let g = profile.gain_from_cos(cos_psi);
    if g == 0.0 {
        return 0.0;
    }
    (lambertian_m + 1.0) * profile.collection_area_m2 / (2.0 * std::f64::consts::PI * d2)
        * cos_phi.powf(lambertian_m)
        * g
        * cos_psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::Vec3;

    fn m15() -> f64 {
        lambertian_order(15f64.to_radians())
    }

    #[test]
    fn order_for_15_degrees_is_about_20() {
        let m = m15();
        assert!((m - 20.0).abs() < 0.2, "m = {m}");
    }

    #[test]
    fn order_for_60_degrees_is_1() {
        // cos 60° = 0.5 → m = ln2/ln2 = 1 (the classic Lambertian source).
        let m = lambertian_order(60f64.to_radians());
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn on_axis_gain_matches_hand_computation() {
        // TX at 2.8 m directly above an upward RX at 0.8 m → d = 2 m,
        // φ = ψ = 0: H = (m+1)·Apd / (2π·4).
        let tx = Pose::ceiling(1.0, 1.0, 2.8);
        let rx = Pose::face_up(1.0, 1.0, 0.8);
        let optics = RxOptics::paper();
        let m = m15();
        let expected = (m + 1.0) * 1.1e-6 / (2.0 * std::f64::consts::PI * 4.0);
        let h = los_gain(&tx, &rx, m, &optics);
        assert!(
            (h - expected).abs() / expected < 1e-12,
            "h = {h}, expected {expected}"
        );
    }

    #[test]
    fn gain_decays_off_axis_faster_than_cosine() {
        let optics = RxOptics::paper();
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let on_axis = los_gain(&tx, &Pose::face_up(0.0, 0.0, 0.0), m, &optics);
        let off_axis = los_gain(&tx, &Pose::face_up(0.5, 0.0, 0.0), m, &optics);
        // 0.5 m offset at 2 m drop ≈ 14° — near the half-power angle, the
        // narrow-beam gain should have fallen well below cos(14°).
        assert!(off_axis < on_axis * 0.6);
        assert!(off_axis > 0.0);
    }

    #[test]
    fn gain_is_zero_beyond_fov() {
        let m = m15();
        // RX tilted 90°: light from straight above arrives at ψ = 90° > Ψc
        // for a 60° FOV receiver.
        let narrow = RxOptics {
            fov_half_angle: 60f64.to_radians(),
            ..RxOptics::paper()
        };
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::new(Vec3::new(0.0, 0.0, 0.0), Vec3::X);
        assert_eq!(los_gain(&tx, &rx, m, &narrow), 0.0);
    }

    #[test]
    fn gain_is_zero_behind_emitter() {
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx_above = Pose::face_up(0.0, 0.0, 2.5); // above the ceiling TX
        assert_eq!(los_gain(&tx, &rx_above, m, &RxOptics::paper()), 0.0);
    }

    #[test]
    fn gain_is_zero_for_coincident_devices() {
        let m = m15();
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::face_up(0.0, 0.0, 2.0);
        assert_eq!(los_gain(&tx, &rx, m, &RxOptics::paper()), 0.0);
    }

    #[test]
    fn gain_scales_inverse_square_with_distance() {
        let m = m15();
        let optics = RxOptics::paper();
        let rx = Pose::face_up(0.0, 0.0, 0.0);
        let h1 = los_gain(&Pose::ceiling(0.0, 0.0, 1.0), &rx, m, &optics);
        let h2 = los_gain(&Pose::ceiling(0.0, 0.0, 2.0), &rx, m, &optics);
        assert!((h1 / h2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn concentrator_boosts_gain_quadratically() {
        let m = m15();
        let plain = RxOptics::paper();
        let lensed = RxOptics {
            concentrator_index: 1.5,
            ..plain
        };
        let tx = Pose::ceiling(0.0, 0.0, 2.0);
        let rx = Pose::face_up(0.0, 0.0, 0.0);
        let ratio = los_gain(&tx, &rx, m, &lensed) / los_gain(&tx, &rx, m, &plain);
        assert!((ratio - 2.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half-power semi-angle")]
    fn zero_semi_angle_panics() {
        lambertian_order(0.0);
    }

    #[test]
    fn profile_peak_matches_per_call_gain_bitwise() {
        for optics in [
            RxOptics::paper(),
            RxOptics {
                fov_half_angle: 35f64.to_radians(),
                concentrator_index: 1.5,
                filter_gain: 0.9,
                ..RxOptics::paper()
            },
        ] {
            let profile = optics.profile();
            for psi in [
                0.0,
                0.3,
                optics.fov_half_angle,
                optics.fov_half_angle + 1e-9,
                1.5,
            ] {
                assert_eq!(optics.gain(psi).to_bits(), profile.gain(psi).to_bits());
            }
        }
    }

    #[test]
    fn threshold_cone_gain_matches_acos_reference_bitwise() {
        for fov_deg in [
            0.0, 1e-6, 10.0, 35.0, 60.0, 89.999, 90.0, 120.0, 179.9, 180.0,
        ] {
            let profile = RxOptics {
                fov_half_angle: f64::to_radians(fov_deg),
                ..RxOptics::paper()
            }
            .profile();
            let t = profile.cos_fov_threshold;
            // Dense scan around the bisected boundary (where a monotonicity
            // defect in the platform acos would show), plus a coarse sweep
            // of the whole clamp range and the out-of-range/NaN inputs.
            let mut probes = vec![-1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5, f64::NAN];
            let mut c = t;
            for _ in 0..500 {
                c = f64::from_bits(c.to_bits() + 1); // next toward ±∞ magnitude
                probes.push(c);
            }
            let mut c = t;
            for _ in 0..500 {
                c = f64::from_bits(c.to_bits().wrapping_sub(1));
                probes.push(c);
            }
            for step in 0..2000 {
                probes.push(-1.0 + step as f64 / 1000.0);
            }
            for &cos in probes.iter().filter(|c| c.is_finite() || c.is_nan()) {
                assert_eq!(
                    profile.gain_from_cos_fast(cos).to_bits(),
                    profile.gain_from_cos(cos).to_bits(),
                    "fov {fov_deg}° cos {cos:e}"
                );
            }
        }
    }

    #[test]
    fn profiled_los_gain_is_bitwise_identical_to_reference() {
        let m = m15();
        let optics = RxOptics {
            fov_half_angle: 60f64.to_radians(),
            ..RxOptics::paper()
        };
        let profile = optics.profile();
        let cases = [
            (
                Pose::ceiling(0.75, 2.25, 2.8),
                Pose::face_up(0.75, 2.25, 0.8),
            ),
            (Pose::ceiling(0.0, 0.0, 2.0), Pose::face_up(0.5, 0.0, 0.0)),
            // Directly-overhead axis-aligned pair: exercises zero ray
            // components (the sign-of-zero corner of the fused kernel).
            (Pose::ceiling(1.0, 1.0, 2.8), Pose::face_up(1.0, 1.0, 0.8)),
            // Out of FOV, behind emitter, coincident.
            (
                Pose::ceiling(0.0, 0.0, 2.0),
                Pose::new(Vec3::new(0.0, 0.0, 0.0), Vec3::X),
            ),
            (Pose::ceiling(0.0, 0.0, 2.0), Pose::face_up(0.0, 0.0, 2.5)),
            (Pose::ceiling(0.0, 0.0, 2.0), Pose::face_up(0.0, 0.0, 2.0)),
        ];
        for (tx, rx) in cases {
            let reference = los_gain(&tx, &rx, m, &optics);
            let fused = los_gain_profiled(&tx, &rx, m, &profile);
            assert_eq!(reference.to_bits(), fused.to_bits(), "tx {tx:?} rx {rx:?}");
        }
    }

    #[test]
    fn paper_geometry_magnitude_sanity() {
        // For the paper's setup the strongest link (TX directly above an RX
        // at table height) should be ~1e-7..1e-6 — the scale that makes the
        // SINR numbers in §4 come out in the Mbit/s range.
        let tx = Pose::ceiling(0.75, 2.25, 2.8);
        let rx = Pose::face_up(0.75, 2.25, 0.8);
        let h = los_gain(&tx, &rx, m15(), &RxOptics::paper());
        assert!(h > 1e-7 && h < 1e-5, "h = {h}");
    }
}
