//! Line-of-sight blockage by occluders.
//!
//! The paper's §9 observes that in a cell-free VLC system blockage is not
//! purely harmful: an occluder that shadows an *interfering* TX improves the
//! victim RX's SINR. This module provides vertical-cylinder occluders (a
//! standing person, a column) and the segment test used to knock out LOS
//! links; the `blockage_study` example uses it to quantify the §9
//! hypothesis.

use serde::{Deserialize, Serialize};
use vlc_geom::Vec3;

/// A vertical cylindrical occluder standing on the floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CylinderBlocker {
    /// Center of the cylinder footprint on the floor.
    pub center_xy: Vec3,
    /// Cylinder radius in meters.
    pub radius: f64,
    /// Cylinder height in meters (e.g. 1.7 for a standing person).
    pub height: f64,
}

impl CylinderBlocker {
    /// A standing-person occluder (0.25 m radius, 1.7 m tall) at `(x, y)`.
    pub fn person(x: f64, y: f64) -> Self {
        CylinderBlocker {
            center_xy: Vec3::new(x, y, 0.0),
            radius: 0.25,
            height: 1.7,
        }
    }

    /// True when the straight segment from `a` to `b` passes through the
    /// cylinder volume.
    pub fn blocks(&self, a: Vec3, b: Vec3) -> bool {
        // Work in 2D first: find the parameter range of the infinite line
        // within the circle, then check the segment's z within that range.
        let d = b - a;
        let dx = d.x;
        let dy = d.y;
        let fx = a.x - self.center_xy.x;
        let fy = a.y - self.center_xy.y;
        let aa = dx * dx + dy * dy;
        if aa < 1e-18 {
            // Vertical segment: inside the circle iff XY within radius.
            let inside = fx * fx + fy * fy <= self.radius * self.radius;
            if !inside {
                return false;
            }
            let (zlo, zhi) = if a.z <= b.z { (a.z, b.z) } else { (b.z, a.z) };
            return zlo <= self.height && zhi >= 0.0;
        }
        let bb = 2.0 * (fx * dx + fy * dy);
        let cc = fx * fx + fy * fy - self.radius * self.radius;
        let disc = bb * bb - 4.0 * aa * cc;
        if disc < 0.0 {
            return false;
        }
        let sqrt_disc = disc.sqrt();
        let t1 = (-bb - sqrt_disc) / (2.0 * aa);
        let t2 = (-bb + sqrt_disc) / (2.0 * aa);
        // Clamp the circle-crossing interval to the segment.
        let t_lo = t1.max(0.0);
        let t_hi = t2.min(1.0);
        if t_lo > t_hi {
            return false;
        }
        // Heights at the interval endpoints (z is linear in t).
        let z_lo = a.z + d.z * t_lo;
        let z_hi = a.z + d.z * t_hi;
        let (zmin, zmax) = if z_lo <= z_hi {
            (z_lo, z_hi)
        } else {
            (z_hi, z_lo)
        };
        zmin <= self.height && zmax >= 0.0
    }
}

/// Returns true when any blocker occludes the `a`–`b` segment.
pub fn any_blocks(blockers: &[CylinderBlocker], a: Vec3, b: Vec3) -> bool {
    blockers.iter().any(|blk| blk.blocks(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_blocks_link_through_it() {
        let p = CylinderBlocker::person(1.0, 1.0);
        let tx = Vec3::new(1.0, 1.0, 2.8);
        let rx = Vec3::new(1.0, 1.0, 0.0);
        assert!(p.blocks(tx, rx));
    }

    #[test]
    fn offset_link_is_clear() {
        let p = CylinderBlocker::person(1.0, 1.0);
        let tx = Vec3::new(2.5, 2.5, 2.8);
        let rx = Vec3::new(2.5, 2.5, 0.0);
        assert!(!p.blocks(tx, rx));
    }

    #[test]
    fn slanted_link_over_the_head_is_clear() {
        // Link passes over the 1.7 m cylinder: TX at 2.8 m, RX at 2.6 m on
        // the other side — the crossing happens above head height.
        let p = CylinderBlocker::person(1.0, 1.0);
        let tx = Vec3::new(0.0, 1.0, 2.8);
        let rx = Vec3::new(2.0, 1.0, 2.6);
        assert!(!p.blocks(tx, rx));
    }

    #[test]
    fn slanted_link_through_torso_is_blocked() {
        let p = CylinderBlocker::person(1.0, 1.0);
        let tx = Vec3::new(0.0, 1.0, 2.8);
        let rx = Vec3::new(2.0, 1.0, 0.0); // crosses cylinder around z ≈ 1.4
        assert!(p.blocks(tx, rx));
    }

    #[test]
    fn grazing_tangent_counts_as_blocked() {
        let p = CylinderBlocker::person(1.0, 1.0);
        // Segment tangent to the circle at distance exactly radius.
        let tx = Vec3::new(0.0, 1.25, 1.0);
        let rx = Vec3::new(2.0, 1.25, 1.0);
        assert!(p.blocks(tx, rx));
    }

    #[test]
    fn vertical_segment_inside_footprint() {
        let p = CylinderBlocker::person(1.0, 1.0);
        assert!(p.blocks(Vec3::new(1.1, 1.0, 2.8), Vec3::new(1.1, 1.0, 0.0)));
        assert!(!p.blocks(Vec3::new(2.0, 2.0, 2.8), Vec3::new(2.0, 2.0, 0.0)));
    }

    #[test]
    fn vertical_segment_entirely_above_cylinder_is_clear() {
        let p = CylinderBlocker::person(1.0, 1.0);
        assert!(!p.blocks(Vec3::new(1.0, 1.0, 2.8), Vec3::new(1.0, 1.0, 2.0)));
    }

    #[test]
    fn any_blocks_over_multiple_occluders() {
        let blockers = vec![
            CylinderBlocker::person(0.5, 0.5),
            CylinderBlocker::person(2.0, 2.0),
        ];
        assert!(any_blocks(
            &blockers,
            Vec3::new(2.0, 2.0, 2.8),
            Vec3::new(2.0, 2.0, 0.0)
        ));
        assert!(!any_blocks(
            &blockers,
            Vec3::new(1.2, 2.4, 2.8),
            Vec3::new(1.2, 2.4, 0.0)
        ));
        assert!(!any_blocks(
            &[],
            Vec3::new(0.5, 0.5, 2.8),
            Vec3::new(0.5, 0.5, 0.0)
        ));
    }
}
