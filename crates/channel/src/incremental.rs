//! Dirty-column incremental updates of the [`ChannelMatrix`].
//!
//! The controller re-sounds the channel every adaptation period, but
//! between ticks most of the world is static: ceiling TXs never move, and
//! in a mobility run typically one receiver moves per tick while the rest
//! idle. [`ChannelUpdater`] exploits that: it remembers the per-RX poses
//! and blocker set of the previous update and recomputes only the matrix
//! *columns* whose receiver moved beyond `epsilon_m` (a **miss**) or whose
//! blockage geometry changed (a **partial** — the LOS gains are reused and
//! only the occlusion mask is re-tested); untouched columns are copied
//! from the previous tick (a **hit**).
//!
//! **Determinism contract:** matrix entries are pure per-pair functions
//! (no accumulation), so a recomputed column is bitwise identical to the
//! same column of a full [`ChannelMatrix::compute_with_blockage`] rebuild,
//! and a reused column is a verbatim copy of a previously recomputed one.
//! With `epsilon_m == 0.0` the updater therefore produces **bitwise
//! identical** matrices to a cold rebuild on every tick, for any worker
//! count (property-tested in `tests/cache_identity.rs`). A positive
//! `epsilon_m` deliberately trades staleness (bounded by ε) for speed.

use crate::blockage::{any_blocks, CylinderBlocker};
use crate::fov::{COUNTER_FOV_CULLED, COUNTER_FOV_LIVE};
use crate::lambertian::{lambertian_order, los_gain_profiled, RxOptics};
use crate::matrix::ChannelMatrix;
use vlc_geom::{Pose, TxGrid};
use vlc_par::{Jobs, Pool};
use vlc_telemetry::Registry;
use vlc_trace::Span;

/// What one [`ChannelUpdater::update`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelUpdate {
    /// The channel with blockage applied — what the controller plans on.
    pub matrix: ChannelMatrix,
    /// The clear (blockage-free) channel of the *same* tick.
    pub clear: ChannelMatrix,
    /// Links with positive clear gain currently occluded — computed
    /// against the same-tick clear gains, so a receiver that moved under
    /// a blocker between replans is counted once, not double-counted
    /// against a stale stored channel.
    pub blocked_links: usize,
    /// Columns copied verbatim from the previous tick.
    pub hits: usize,
    /// Columns whose occlusion mask was re-tested but LOS gains reused.
    pub partials: usize,
    /// Columns fully recomputed (receiver moved beyond ε, or first use).
    pub misses: usize,
}

/// Per-column state for the incremental channel engine.
///
/// One updater tracks one deployment's TX grid and optics; feed it the
/// receiver poses and blockers of each tick via [`ChannelUpdater::update`]
/// and it returns the full matrices while recomputing only what changed.
#[derive(Debug, Clone)]
pub struct ChannelUpdater {
    grid: TxGrid,
    lambertian_m: f64,
    optics: RxOptics,
    epsilon_m: f64,
    /// Pose each column was last *computed* for (within ε of the true one).
    poses: Vec<Pose>,
    blockers: Vec<CylinderBlocker>,
    /// Clear LOS gains, row-major `n_tx × n_rx` (same layout as the matrix).
    clear: Vec<f64>,
    /// Occlusion mask, row-major `n_tx × n_rx`.
    blocked: Vec<bool>,
    /// Per-column ascending live-TX lists: the indices with nonzero clear
    /// gain, rebuilt whenever a column is recomputed. The partial path
    /// re-tests occlusion only for these links — a dead link masks to the
    /// same exact zero whether or not a blocker crosses it.
    live: Vec<Vec<u32>>,
    primed: bool,
}

impl ChannelUpdater {
    /// Creates an unprimed updater: the first [`Self::update`] recomputes
    /// every column (all misses).
    ///
    /// `epsilon_m` is the movement tolerance: a receiver whose position
    /// stays within `epsilon_m` of the pose its column was last computed
    /// for (and whose boresight is unchanged) keeps the cached column.
    /// `0.0` means *any* pose change recomputes — the exact mode the
    /// simulation uses.
    ///
    /// # Panics
    /// Panics if `epsilon_m` is negative or non-finite.
    pub fn new(
        grid: &TxGrid,
        half_power_semi_angle: f64,
        optics: &RxOptics,
        epsilon_m: f64,
    ) -> Self {
        assert!(
            epsilon_m.is_finite() && epsilon_m >= 0.0,
            "epsilon must be finite and non-negative"
        );
        ChannelUpdater {
            grid: grid.clone(),
            lambertian_m: lambertian_order(half_power_semi_angle),
            optics: *optics,
            epsilon_m,
            poses: Vec::new(),
            blockers: Vec::new(),
            clear: Vec::new(),
            blocked: Vec::new(),
            live: Vec::new(),
            primed: false,
        }
    }

    /// Advances the world one tick and returns the updated matrices,
    /// fanning dirty columns out over `DENSEVLC_JOBS` workers.
    pub fn update(&mut self, receivers: &[Pose], blockers: &[CylinderBlocker]) -> ChannelUpdate {
        self.update_pooled(
            receivers,
            blockers,
            &Pool::new(Jobs::from_env()),
            &Registry::noop(),
            &Span::noop(),
        )
    }

    /// [`Self::update`] on a caller-supplied pool, recording a
    /// `channel.update` span under `parent` with one `channel.update.col`
    /// child per *recomputed* column (indexed by RX, so the span tree
    /// depends only on what changed, never on the worker count), and
    /// bumping the `channel.cache.hit` / `channel.cache.partial` /
    /// `channel.cache.miss` counters.
    pub fn update_pooled(
        &mut self,
        receivers: &[Pose],
        blockers: &[CylinderBlocker],
        pool: &Pool,
        telemetry: &Registry,
        parent: &Span,
    ) -> ChannelUpdate {
        let n_tx = self.grid.len();
        let n_rx = receivers.len();
        let span = parent.child("channel.update");
        span.attr("n_tx", &n_tx.to_string());
        span.attr("n_rx", &n_rx.to_string());

        // A changed receiver count invalidates the column layout wholesale.
        if self.poses.len() != n_rx {
            self.primed = false;
        }
        if !self.primed {
            self.poses = receivers.to_vec();
            self.clear = vec![0.0; n_tx * n_rx];
            self.blocked = vec![false; n_tx * n_rx];
            self.live = vec![Vec::new(); n_rx];
        }
        let blockers_changed = !self.primed || self.blockers != blockers;

        /// Column classification, in increasing order of work.
        #[derive(Clone, Copy, PartialEq)]
        enum Col {
            Hit,
            Partial,
            Miss,
        }
        let classes: Vec<Col> = (0..n_rx)
            .map(|r| {
                let moved = !self.primed
                    || self.poses[r].boresight != receivers[r].boresight
                    || self.poses[r].position.distance(receivers[r].position) > self.epsilon_m;
                if moved {
                    Col::Miss
                } else if blockers_changed {
                    Col::Partial
                } else {
                    Col::Hit
                }
            })
            .collect();

        // Recompute the dirty columns in parallel; each work item returns
        // the new LOS column (misses only) and occlusion column.
        let grid = &self.grid;
        let m = self.lambertian_m;
        let profile = self.optics.profile();
        let poses = &self.poses;
        let live = &self.live;
        // New LOS gains (misses only) plus the occlusion column.
        type DirtyCol = (Option<Vec<f64>>, Vec<bool>);
        let cols: Vec<Option<DirtyCol>> = pool.map_indexed(n_rx, |r| {
            match classes[r] {
                Col::Hit => None,
                Col::Partial => {
                    let _col = span.child_indexed("channel.update.col", r);
                    // Pose unchanged (within ε): keep the cached LOS gains,
                    // re-test occlusion against the pose they were computed
                    // for so gains and mask stay geometrically consistent.
                    // Only the live (nonzero-gain) links are re-tested: a
                    // dead link masks to the same exact zero either way and
                    // never counts as blocked.
                    let pose = poses[r];
                    let mut mask = vec![false; n_tx];
                    for &t in &live[r] {
                        let t = t as usize;
                        mask[t] = any_blocks(blockers, grid.pose(t).position, pose.position);
                    }
                    Some((None, mask))
                }
                Col::Miss => {
                    let _col = span.child_indexed("channel.update.col", r);
                    let pose = receivers[r];
                    let mut gains = Vec::with_capacity(n_tx);
                    for t in 0..n_tx {
                        gains.push(los_gain_profiled(&grid.pose(t), &pose, m, &profile));
                    }
                    // Occlusion only matters where the clear gain is
                    // nonzero; dead links keep a clear `false` mask.
                    let mask = gains
                        .iter()
                        .enumerate()
                        .map(|(t, &g)| {
                            g != 0.0 && any_blocks(blockers, grid.pose(t).position, pose.position)
                        })
                        .collect();
                    Some((Some(gains), mask))
                }
            }
        });

        // Scatter the recomputed columns into the row-major store.
        let mut hits = 0usize;
        let mut partials = 0usize;
        let mut misses = 0usize;
        for (r, col) in cols.into_iter().enumerate() {
            match (classes[r], col) {
                (Col::Hit, None) => hits += 1,
                (Col::Partial, Some((None, mask))) => {
                    partials += 1;
                    for (t, &blocked) in mask.iter().enumerate() {
                        self.blocked[t * n_rx + r] = blocked;
                    }
                }
                (Col::Miss, Some((Some(gains), mask))) => {
                    misses += 1;
                    self.poses[r] = receivers[r];
                    let mut col_live = Vec::new();
                    for (t, (&gain, &blocked)) in gains.iter().zip(mask.iter()).enumerate() {
                        self.clear[t * n_rx + r] = gain;
                        self.blocked[t * n_rx + r] = blocked;
                        if gain != 0.0 {
                            col_live.push(t as u32);
                        }
                    }
                    self.live[r] = col_live;
                }
                _ => unreachable!("column result matches its class"),
            }
        }
        self.blockers = blockers.to_vec();
        self.primed = true;

        let mut blocked_links = 0usize;
        let gains: Vec<f64> = self
            .clear
            .iter()
            .zip(self.blocked.iter())
            .map(|(&g, &b)| {
                if b {
                    if g > 0.0 {
                        blocked_links += 1;
                    }
                    0.0
                } else {
                    g
                }
            })
            .collect();

        span.attr("hits", &hits.to_string());
        span.attr("misses", &misses.to_string());
        telemetry.counter("channel.cache.updates").inc();
        telemetry.counter("channel.cache.hit").add(hits as u64);
        telemetry
            .counter("channel.cache.partial")
            .add(partials as u64);
        telemetry.counter("channel.cache.miss").add(misses as u64);
        // FOV-culling effectiveness of this tick's occlusion re-tests:
        // live links were (or would be) tested, dead ones skipped.
        let live_links: usize = self.live.iter().map(Vec::len).sum();
        telemetry.counter(COUNTER_FOV_LIVE).add(live_links as u64);
        telemetry
            .counter(COUNTER_FOV_CULLED)
            .add((n_tx * n_rx - live_links) as u64);

        ChannelUpdate {
            matrix: ChannelMatrix::from_gains(n_tx, n_rx, gains),
            clear: ChannelMatrix::from_gains(n_tx, n_rx, self.clear.clone()),
            blocked_links,
            hits,
            partials,
            misses,
        }
    }

    /// The movement tolerance in meters.
    pub fn epsilon_m(&self) -> f64 {
        self.epsilon_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::Room;

    fn setup() -> (TxGrid, Vec<Pose>, RxOptics) {
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let rxs = vec![
            Pose::face_up(0.92, 0.92, 0.8),
            Pose::face_up(1.65, 0.65, 0.8),
            Pose::face_up(0.72, 1.93, 0.8),
            Pose::face_up(1.99, 1.69, 0.8),
        ];
        (grid, rxs, RxOptics::paper())
    }

    fn full(grid: &TxGrid, rxs: &[Pose], blockers: &[CylinderBlocker]) -> ChannelMatrix {
        ChannelMatrix::compute_with_blockage(
            grid,
            rxs,
            15f64.to_radians(),
            &RxOptics::paper(),
            blockers,
        )
    }

    #[test]
    fn first_update_is_all_misses_and_matches_full_build() {
        let (grid, rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        let u = up.update(&rxs, &[]);
        assert_eq!((u.hits, u.partials, u.misses), (0, 0, 4));
        assert_eq!(u.matrix, full(&grid, &rxs, &[]));
        assert_eq!(u.clear, u.matrix);
        assert_eq!(u.blocked_links, 0);
    }

    #[test]
    fn static_world_is_all_hits_and_identical() {
        let (grid, rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        let first = up.update(&rxs, &[]);
        let second = up.update(&rxs, &[]);
        assert_eq!((second.hits, second.partials, second.misses), (4, 0, 0));
        assert_eq!(second.matrix, first.matrix);
    }

    #[test]
    fn moving_one_receiver_recomputes_one_column() {
        let (grid, mut rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        up.update(&rxs, &[]);
        rxs[2] = Pose::face_up(1.0, 1.5, 0.8);
        let u = up.update(&rxs, &[]);
        assert_eq!((u.hits, u.partials, u.misses), (3, 0, 1));
        assert_eq!(u.matrix, full(&grid, &rxs, &[]));
    }

    #[test]
    fn blocker_change_retests_masks_without_recomputing_gains() {
        let (grid, rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        up.update(&rxs, &[]);
        let blockers = [CylinderBlocker::person(0.92, 0.92)];
        let u = up.update(&rxs, &blockers);
        assert_eq!((u.hits, u.partials, u.misses), (0, 4, 0));
        assert_eq!(u.matrix, full(&grid, &rxs, &blockers));
        assert!(u.blocked_links > 0);
        // The clear channel of the same tick is blockage-free.
        assert_eq!(u.clear, full(&grid, &rxs, &[]));
    }

    #[test]
    fn blocked_links_counts_against_same_tick_clear_gains() {
        // A receiver that moves *and* is occluded on the same tick must be
        // counted against its new clear gains, not a stale stored channel.
        let (grid, mut rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        up.update(&rxs, &[]);
        rxs[0] = Pose::face_up(1.2, 1.2, 0.8);
        let blockers = [CylinderBlocker::person(1.2, 1.2)];
        let u = up.update(&rxs, &blockers);
        let clear = full(&grid, &rxs, &[]);
        let masked = full(&grid, &rxs, &blockers);
        let expected = clear
            .iter()
            .filter(|&(t, r, g)| g > 0.0 && masked.gain(t, r) == 0.0)
            .count();
        assert_eq!(u.blocked_links, expected);
        assert!(u.blocked_links > 0);
    }

    #[test]
    fn epsilon_tolerates_sub_threshold_motion() {
        let (grid, mut rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.05);
        let first = up.update(&rxs, &[]);
        rxs[1].position.x += 0.01; // 1 cm — under the 5 cm threshold
        let u = up.update(&rxs, &[]);
        assert_eq!((u.hits, u.partials, u.misses), (4, 0, 0));
        assert_eq!(u.matrix, first.matrix, "cached column retained under ε");
        rxs[1].position.x += 0.2; // now well past it
        let u = up.update(&rxs, &[]);
        assert_eq!(u.misses, 1);
        assert_eq!(u.matrix, full(&grid, &rxs, &[]));
    }

    #[test]
    fn receiver_count_change_reprimes() {
        let (grid, mut rxs, optics) = setup();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        up.update(&rxs, &[]);
        rxs.pop();
        let u = up.update(&rxs, &[]);
        assert_eq!(u.misses, 3);
        assert_eq!(u.matrix, full(&grid, &rxs, &[]));
    }

    #[test]
    fn telemetry_counts_hits_and_misses() {
        let (grid, mut rxs, optics) = setup();
        let registry = Registry::new();
        let pool = Pool::sequential();
        let mut up = ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, 0.0);
        up.update_pooled(&rxs, &[], &pool, &registry, &Span::noop());
        rxs[0] = Pose::face_up(1.4, 1.4, 0.8);
        up.update_pooled(&rxs, &[], &pool, &registry, &Span::noop());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("channel.cache.updates"), Some(2));
        assert_eq!(snap.counter("channel.cache.miss"), Some(5));
        assert_eq!(snap.counter("channel.cache.hit"), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_panics() {
        let (grid, _, optics) = setup();
        ChannelUpdater::new(&grid, 15f64.to_radians(), &optics, -0.1);
    }
}
