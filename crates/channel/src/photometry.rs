//! Photometry: luminous intensity and illuminance (lux).
//!
//! DenseVLC's non-negotiable constraint is lighting quality: the ISO 8995-1
//! standard for office premises requires ≥ 500 lux average illuminance and
//! ≥ 70 % uniformity (minimum / average) in the area of interest. The paper
//! verifies its 6 × 6 deployment meets this (564 lux / 74 % simulated,
//! 530 lux / 81 % measured) and DenseVLC's modulation preserves average
//! brightness by construction. This module computes illuminance maps over
//! the area of interest from a set of luminaire poses.

use crate::lambertian::lambertian_order;
use serde::{Deserialize, Serialize};
use vlc_geom::{AreaOfInterest, Pose, Vec3};

/// Illuminance produced at a floor/table point by one Lambertian luminaire.
///
/// The luminaire emits total luminous flux `flux_lm` with a generalized
/// Lambertian pattern of order `m`; its axial luminous intensity is
/// `I₀ = (m+1)·Φ / 2π` cd, and the illuminance at a surface point with
/// surface normal `normal` is `I₀ · cosᵐ(φ) · cos(ψ) / d²` lux.
pub fn illuminance_from(
    luminaire: &Pose,
    flux_lm: f64,
    lambertian_m: f64,
    point: Vec3,
    normal: Vec3,
) -> f64 {
    let d2 = (point - luminaire.position).norm_sq();
    if d2 < 1e-12 {
        return 0.0;
    }
    let cos_phi = luminaire.cos_irradiation(point);
    if cos_phi <= 0.0 {
        return 0.0;
    }
    let incoming = (luminaire.position - point).normalized();
    let cos_psi = normal.normalized().dot(incoming);
    if cos_psi <= 0.0 {
        return 0.0;
    }
    let axial_intensity = (lambertian_m + 1.0) * flux_lm / (2.0 * std::f64::consts::PI);
    axial_intensity * cos_phi.powf(lambertian_m) * cos_psi / d2
}

/// Summary statistics of an illuminance distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IlluminanceStats {
    /// Mean illuminance in lux.
    pub average_lux: f64,
    /// Minimum illuminance in lux.
    pub min_lux: f64,
    /// Maximum illuminance in lux.
    pub max_lux: f64,
    /// Uniformity: `min / average` (ISO 8995-1 requires ≥ 0.7).
    pub uniformity: f64,
}

impl IlluminanceStats {
    /// True when the ISO 8995-1 office requirements hold (≥ 500 lux average
    /// and ≥ 70 % uniformity).
    pub fn meets_iso_8995(&self) -> bool {
        self.average_lux >= 500.0 && self.uniformity >= 0.70
    }
}

/// A sampled illuminance map over an area of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IlluminanceMap {
    /// Sample points (all at the working-plane height).
    pub points: Vec<Vec3>,
    /// Illuminance at each sample point, in lux.
    pub lux: Vec<f64>,
}

impl IlluminanceMap {
    /// Computes the illuminance map over `area` at working-plane height
    /// `plane_height`, sampled every `step` meters, for luminaires with the
    /// given per-luminaire flux and half-power semi-angle.
    ///
    /// The working plane is horizontal (normal +Z), matching both the paper
    /// (table at 0.8 m in simulation, floor in the testbed) and ISO 8995-1.
    pub fn compute(
        luminaires: &[Pose],
        flux_lm: f64,
        half_power_semi_angle: f64,
        area: &AreaOfInterest,
        plane_height: f64,
        step: f64,
    ) -> Self {
        let m = lambertian_order(half_power_semi_angle);
        let points = area.sample_points(step, plane_height);
        let lux = points
            .iter()
            .map(|&p| {
                luminaires
                    .iter()
                    .map(|lum| illuminance_from(lum, flux_lm, m, p, Vec3::UP))
                    .sum()
            })
            .collect();
        IlluminanceMap { points, lux }
    }

    /// Summary statistics over the map.
    ///
    /// # Panics
    /// Panics if the map is empty.
    pub fn stats(&self) -> IlluminanceStats {
        assert!(!self.lux.is_empty(), "illuminance map has no samples");
        let sum: f64 = self.lux.iter().sum();
        let average_lux = sum / self.lux.len() as f64;
        let min_lux = self.lux.iter().copied().fold(f64::INFINITY, f64::min);
        let max_lux = self.lux.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        IlluminanceStats {
            average_lux,
            min_lux,
            max_lux,
            uniformity: if average_lux > 0.0 {
                min_lux / average_lux
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_geom::{Room, TxGrid};

    #[test]
    fn illuminance_inverse_square_on_axis() {
        let m = lambertian_order(15f64.to_radians());
        let lum = Pose::ceiling(0.0, 0.0, 2.0);
        let e1 = illuminance_from(&lum, 100.0, m, Vec3::new(0.0, 0.0, 1.0), Vec3::UP);
        let e2 = illuminance_from(&lum, 100.0, m, Vec3::new(0.0, 0.0, 0.0), Vec3::UP);
        assert!((e1 / e2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn axial_intensity_formula() {
        // At 1 m on axis, E = I0 = (m+1)·Φ/2π.
        let m = lambertian_order(15f64.to_radians());
        let lum = Pose::ceiling(0.0, 0.0, 1.0);
        let e = illuminance_from(&lum, 100.0, m, Vec3::ZERO, Vec3::UP);
        let i0 = (m + 1.0) * 100.0 / (2.0 * std::f64::consts::PI);
        assert!((e - i0).abs() / i0 < 1e-12);
    }

    #[test]
    fn no_illuminance_behind_luminaire_or_surface() {
        let m = lambertian_order(15f64.to_radians());
        let lum = Pose::ceiling(0.0, 0.0, 2.0);
        // Point above the (downward-facing) luminaire.
        assert_eq!(
            illuminance_from(&lum, 100.0, m, Vec3::new(0.0, 0.0, 2.5), Vec3::UP),
            0.0
        );
        // Surface facing away from the light.
        assert_eq!(
            illuminance_from(&lum, 100.0, m, Vec3::ZERO, Vec3::DOWN),
            0.0
        );
    }

    #[test]
    fn paper_grid_meets_iso_8995() {
        // Reproduces the §4 illuminance check: the 6 × 6 grid with the
        // calibrated per-LED flux must give ≥ 500 lux average and ≥ 70 %
        // uniformity over the central 2.2 m × 2.2 m area.
        let room = Room::paper_simulation();
        let grid = TxGrid::paper(&room);
        let area = AreaOfInterest::paper(&room);
        let map =
            IlluminanceMap::compute(&grid.poses(), 153.3, 15f64.to_radians(), &area, 0.8, 0.05);
        let stats = map.stats();
        assert!(
            stats.meets_iso_8995(),
            "avg {} lux, uniformity {}",
            stats.average_lux,
            stats.uniformity
        );
    }

    #[test]
    fn stats_detects_non_uniform_lighting() {
        // A single narrow luminaire cannot light the whole area uniformly.
        let room = Room::paper_simulation();
        let area = AreaOfInterest::paper(&room);
        let one = vec![Pose::ceiling(1.5, 1.5, 2.8)];
        let map = IlluminanceMap::compute(&one, 153.3, 15f64.to_radians(), &area, 0.8, 0.1);
        let stats = map.stats();
        assert!(stats.uniformity < 0.70);
    }

    #[test]
    fn map_and_stats_dimensions_agree() {
        let room = Room::paper_simulation();
        let area = AreaOfInterest::centered(&room, 2.0);
        let grid = TxGrid::paper(&room);
        let map =
            IlluminanceMap::compute(&grid.poses(), 153.3, 15f64.to_radians(), &area, 0.8, 0.5);
        assert_eq!(map.points.len(), map.lux.len());
        assert_eq!(map.points.len(), 25);
        let s = map.stats();
        assert!(s.min_lux <= s.average_lux && s.average_lux <= s.max_lux);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_map_stats_panics() {
        IlluminanceMap {
            points: vec![],
            lux: vec![],
        }
        .stats();
    }
}
